// dooc_top — live per-node / per-job view of a running DOoC cluster.
//
// Scrapes a Prometheus endpoint (the coordinator's --metrics-port, or a
// single daemon's) and renders a refreshing table: per-node task progress,
// queue depths, in-flight bytes, cache hit rate and health verdicts, plus
// per-job completion bars from the coordinator's aggregate.
//
//   dooc_top --port=9090 [--host=127.0.0.1] [--interval-ms=1000]
//            [--once] [--raw] [--file=PATH]
//
// --once prints one frame and exits (scriptable); --raw dumps the scrape
// body verbatim; --file renders from a saved scrape instead of HTTP (used
// by the tests, and handy with `curl -o`).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/options.hpp"
#include "obs/prom_http.hpp"

namespace {

struct NodeRow {
  double frames = 0;
  double tasks = 0;
  double inflight = 0;
  double queue = 0;
  double inflight_bytes = 0;
  double hit_rate = -1;  ///< -1 = unknown (no cache traffic yet)
  double trace_dropped = 0;
  double missed = 0, stalled = 0, straggler = 0, recovered = 0;
};

struct JobRow {
  double done = 0;
  double total = 0;
};

/// "dooc_jobs_j<ID>_tasks_done" -> ID, or -1 when the name is not a
/// per-job sample.
int job_id_of(const std::string& name, const char* suffix) {
  const std::string prefix = "dooc_jobs_j";
  if (name.rfind(prefix, 0) != 0) return -1;
  const std::string tail = name.substr(prefix.size());
  const auto pos = tail.find(suffix);
  if (pos == std::string::npos || pos == 0 || tail.substr(pos) != suffix) return -1;
  for (std::size_t i = 0; i < pos; ++i) {
    if (tail[i] < '0' || tail[i] > '9') return -1;
  }
  return std::atoi(tail.substr(0, pos).c_str());
}

std::string human_bytes(double b) {
  char buf[32];
  if (b >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", b / 1e9);
  } else if (b >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", b / 1e6);
  } else if (b >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", b / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", b);
  }
  return buf;
}

std::string render(const std::string& text) {
  const std::vector<dooc::obs::PromSample> samples = dooc::obs::parse_prometheus(text);
  std::map<int, NodeRow> nodes;
  std::map<int, JobRow> jobs;
  for (const auto& s : samples) {
    if (const int j = job_id_of(s.name, "_tasks_done"); j >= 0) {
      jobs[j].done = s.value;
      continue;
    }
    if (const int j = job_id_of(s.name, "_tasks_total"); j >= 0) {
      jobs[j].total = s.value;
      continue;
    }
    if (s.node < 0) continue;
    NodeRow& row = nodes[s.node];
    if (s.name == "dooc_telemetry_frames") row.frames = s.value;
    else if (s.name == "dooc_telemetry_tasks_executed") row.tasks = s.value;
    else if (s.name == "dooc_telemetry_tasks_inflight") row.inflight = s.value;
    else if (s.name == "dooc_telemetry_queue_depth") row.queue = s.value;
    else if (s.name == "dooc_telemetry_inflight_bytes") row.inflight_bytes = s.value;
    else if (s.name == "dooc_telemetry_cache_hit_rate") row.hit_rate = s.value;
    else if (s.name == "dooc_telemetry_trace_dropped") row.trace_dropped = s.value;
    else if (s.name == "dooc_health_missed_heartbeat") row.missed = s.value;
    else if (s.name == "dooc_health_stalled_queue") row.stalled = s.value;
    else if (s.name == "dooc_health_straggler") row.straggler = s.value;
    else if (s.name == "dooc_health_recovered") row.recovered = s.value;
  }

  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-5s %-8s %-8s %-9s %-7s %-10s %-6s %-8s %s\n", "node",
                "frames", "tasks", "inflight", "queue", "infl_bytes", "hit%", "dropped",
                "health");
  out << buf;
  for (const auto& [node, row] : nodes) {
    std::string health;
    if (row.missed > row.recovered) health += "MISSED-HB ";
    if (row.stalled > 0) health += "STALLED ";
    if (row.straggler > 0) health += "STRAGGLER ";
    if (health.empty()) health = "ok";
    std::snprintf(buf, sizeof(buf), "%-5d %-8.0f %-8.0f %-9.0f %-7.0f %-10s %-6s %-8.0f %s\n",
                  node, row.frames, row.tasks, row.inflight, row.queue,
                  human_bytes(row.inflight_bytes).c_str(),
                  row.hit_rate < 0 ? "-" : std::to_string(static_cast<int>(row.hit_rate * 100 + 0.5)).c_str(),
                  row.trace_dropped, health.c_str());
    out << buf;
  }
  if (nodes.empty()) out << "(no per-node telemetry samples yet)\n";
  if (!jobs.empty()) {
    out << "\njobs:\n";
    for (const auto& [job, row] : jobs) {
      const double frac = row.total > 0 ? std::min(1.0, row.done / row.total) : 0.0;
      const int filled = static_cast<int>(frac * 30 + 0.5);
      std::string bar(static_cast<std::size_t>(filled), '#');
      bar.resize(30, '.');
      std::snprintf(buf, sizeof(buf), "  job %-4d [%s] %5.0f/%-5.0f (%3.0f%%)\n", job,
                    bar.c_str(), row.done, row.total, frac * 100.0);
      out << buf;
    }
  }
  return out.str();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dooc;
  const Options opts = Options::from_args(argc, argv);
  const std::string file = opts.get("file");
  const int port = static_cast<int>(opts.get_int("port", 0));
  if (file.empty() && port <= 0) {
    std::fprintf(stderr,
                 "usage: dooc_top --port=P [--host=H] [--interval-ms=N] [--once] [--raw]\n"
                 "       dooc_top --file=PATH [--raw]\n");
    return 2;
  }
  const std::string host = opts.get("host", "127.0.0.1");
  const int interval_ms = static_cast<int>(opts.get_int("interval-ms", 1000));
  const bool once = opts.get_bool("once", false) || !file.empty();
  const bool raw = opts.get_bool("raw", false);

  while (true) {
    std::string text;
    try {
      text = file.empty() ? obs::http_get(host, port) : slurp(file);
    } catch (const std::exception& e) {
      if (once) {
        std::fprintf(stderr, "dooc_top: %s\n", e.what());
        return 1;
      }
      text.clear();  // endpoint not up yet; keep refreshing
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
    if (raw) {
      std::fwrite(text.data(), 1, text.size(), stdout);
    } else {
      const std::string frame = render(text);
      std::fwrite(frame.data(), 1, frame.size(), stdout);
    }
    std::fflush(stdout);
    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}
