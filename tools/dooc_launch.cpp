// dooc_launch — spawn an N-process doocd cluster on this machine, run a
// workload through it, collect per-node reports/metrics/traces, tear down.
//
//   dooc_launch --nodes=4 [--transport=unix|tcp] [--base-port=7400]
//               [--workdir=DIR] [--workload=spmv] [--n=2048] [--grid-k=4]
//               [--iterations=3] [--exec-threads=1] [--verify]
//               [--codec=SPEC] [--node-codec=SPEC]
//               [--trace] [--kill-node=I --kill-after-tasks=T]
//               [--stop-node=I --stop-after-tasks=T]
//               [--telemetry=SPEC] [--metrics-port=P]
//               [--node-metrics-base-port=P]
//               [--metrics-out=FILE] [--log-level=LVL]
//
// --verify re-runs the same workload through the single-process engine and
// compares result vectors bitwise. --kill-node SIGKILLs one daemon after T
// completed tasks to exercise re-queue + durable-fallback failover.
// --stop-node SIGSTOPs one instead (sockets stay open, no PeerDown): the
// straggler drill — only the telemetry watchdog notices, raising a
// missed-heartbeat HealthEvent; a watcher thread SIGCONTs the node as
// soon as the coordinator suspects it (suspicion never reschedules, so a
// frozen node's tasks wait for the thaw), and again before teardown.
// --telemetry=SPEC (DOOC_TELEMETRY grammar, e.g. "on,interval=100") turns
// on live telemetry for the coordinator and every daemon. --metrics-port
// serves the coordinator's cluster-wide aggregate as Prometheus text on
// 127.0.0.1; --node-metrics-base-port=P gives node n its own scrape
// endpoint on port P+n.
// --codec sets DOOC_CODEC for this whole process tree (coordinator deploy
// encoding + every daemon); --node-codec overrides the daemons only, so
// `--node-codec=adaptive --verify` is the mixed-configuration parity drill
// (compressed daemons, raw coordinator, bitwise-identical results).
// --metrics-out writes the merged per-node counters in Prometheus text
// format. Traces land in <workdir>/traces/node<i>.json, one per real pid.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "common/log.hpp"
#include "common/options.hpp"
#include "net/launch.hpp"
#include "net/socket_transport.hpp"
#include "net/spmv_job.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_http.hpp"
#include "obs/telemetry.hpp"

namespace {

dooc::LogLevel parse_level(const std::string& s) {
  if (s == "trace") return dooc::LogLevel::Trace;
  if (s == "debug") return dooc::LogLevel::Debug;
  if (s == "info") return dooc::LogLevel::Info;
  if (s == "error") return dooc::LogLevel::Error;
  return s == "warn" ? dooc::LogLevel::Warn : dooc::LogLevel::Info;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dooc;
  namespace fs = std::filesystem;
  const Options opts = Options::from_args(argc, argv);
  Log::set_level(parse_level(opts.get("log-level", "info")));

  const int nodes = static_cast<int>(opts.get_int("nodes", 4));
  const std::string workload = opts.get("workload", "spmv");
  if (nodes < 1 || workload != "spmv") {
    std::fprintf(stderr, "dooc_launch: --nodes must be >= 1 and --workload=spmv\n");
    return 2;
  }

  // Whole-tree codec policy: the coordinator's own deploy encoding reads
  // DOOC_CODEC, and the daemons inherit it unless --node-codec overrides.
  if (const std::string codec = opts.get("codec"); !codec.empty()) {
    ::setenv("DOOC_CODEC", codec.c_str(), 1);
  }

  const std::string workdir =
      opts.get("workdir", "/tmp/dooc_launch." + std::to_string(::getpid()));
  const std::string durable_dir = workdir + "/durable";
  const std::string trace_dir = workdir + "/traces";
  fs::create_directories(durable_dir);
  if (opts.get_bool("trace", false)) fs::create_directories(trace_dir);

  try {
    net::LaunchConfig lcfg;
    lcfg.manifest = opts.get("transport", "unix") == "tcp"
                        ? net::Manifest::local_tcp(
                              static_cast<int>(opts.get_int("base-port", 7400)), nodes)
                        : net::Manifest::local_unix(workdir, nodes);
    lcfg.manifest_path = workdir + "/manifest.txt";
    lcfg.durable_dir = durable_dir;
    lcfg.doocd_path = opts.get("doocd");
    lcfg.trace_dir = opts.get_bool("trace", false) ? trace_dir : "";
    lcfg.codec_spec = opts.get("node-codec");
    lcfg.telemetry_spec = opts.get("telemetry");
    lcfg.metrics_base_port = static_cast<int>(opts.get_int("node-metrics-base-port", 0));
    lcfg.exec_threads = static_cast<int>(opts.get_int("exec-threads", 1));
    lcfg.log_level = opts.get("log-level", "warn");
    // The coordinator follows the same telemetry policy as the daemons
    // (CoordinatorConfig resolves from DOOC_TELEMETRY).
    if (!lcfg.telemetry_spec.empty()) {
      ::setenv("DOOC_TELEMETRY", lcfg.telemetry_spec.c_str(), 1);
    }

    net::ClusterLauncher launcher(lcfg);
    launcher.spawn_all();

    net::SocketTransportConfig tcfg;
    tcfg.self = net::kCoordinatorId;
    auto transport = net::SocketTransport::client(tcfg);
    for (net::NodeId i = 0; i < nodes; ++i) {
      if (!transport->connect_peer(i, lcfg.manifest.nodes[i])) {
        std::fprintf(stderr, "dooc_launch: node %d did not come up\n", i);
        return 1;
      }
    }
    std::printf("cluster up: %d nodes (%s)\n", nodes,
                lcfg.manifest.nodes[0].to_string().c_str());

    net::CoordinatorConfig ccfg;
    ccfg.num_nodes = nodes;
    ccfg.durable_dir = durable_dir;
    net::Coordinator coord(*transport, ccfg);

    net::SpmvJobConfig jcfg;
    jcfg.n = static_cast<std::uint64_t>(opts.get_int("n", 2048));
    jcfg.grid_k = static_cast<int>(opts.get_int("grid-k", 4));
    jcfg.iterations = static_cast<int>(opts.get_int("iterations", 3));
    jcfg.num_nodes = nodes;
    const net::SpmvJob job(jcfg);
    job.deploy(coord);
    const auto driver = job.build_graph();

    // Coordinator-side scrape endpoint: the hub's cluster-wide aggregate
    // plus the watchdog's health counters.
    std::unique_ptr<obs::PromHttpServer> scrape;
    if (const int port = static_cast<int>(opts.get_int("metrics-port", 0)); port > 0) {
      scrape = std::make_unique<obs::PromHttpServer>(
          port, [&coord] { return coord.telemetry_prometheus(); });
      std::printf("metrics on http://127.0.0.1:%d/metrics\n", scrape->port());
    }

    const auto kill_node = static_cast<net::NodeId>(opts.get_int("kill-node", -1));
    const auto kill_after = static_cast<std::uint64_t>(opts.get_int("kill-after-tasks", 0));
    const auto stop_node = static_cast<net::NodeId>(opts.get_int("stop-node", -1));
    const auto stop_after = static_cast<std::uint64_t>(opts.get_int("stop-after-tasks", 0));
    bool killed = false;
    std::atomic<bool> stopped{false};
    if (kill_node >= 0 || stop_node >= 0) {
      coord.progress_hook = [&](std::uint64_t done) {
        if (kill_node >= 0 && !killed && done >= kill_after) {
          killed = true;
          std::printf("killing node %d (pid %d) after %" PRIu64 " tasks\n", kill_node,
                      static_cast<int>(launcher.pid(kill_node)), done);
          launcher.kill_node(kill_node);
        }
        if (stop_node >= 0 && !stopped && done >= stop_after) {
          stopped = true;
          std::printf("freezing node %d (pid %d) after %" PRIu64 " tasks (SIGSTOP)\n",
                      stop_node, static_cast<int>(launcher.pid(stop_node)), done);
          launcher.stop_node(stop_node);
        }
      };
    }

    // The thaw watcher: suspicion never alters scheduling, so a frozen
    // node's tasks simply wait — the drill completes by SIGCONTing the
    // daemon the moment the coordinator's watchdog suspects it. The
    // detection itself is the acceptance: it happens well before any TCP
    // timeout would fire.
    std::atomic<bool> run_done{false};
    std::thread thaw;
    if (stop_node >= 0) {
      thaw = std::thread([&] {
        while (!run_done.load()) {
          if (stopped.load() && coord.suspected_nodes().count(stop_node) != 0) {
            std::printf("coordinator suspects node %d — thawing it (SIGCONT)\n", stop_node);
            launcher.resume_node(stop_node);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      });
    }

    const net::RunResult run = coord.run(driver->graph());
    run_done.store(true);
    if (thaw.joinable()) thaw.join();
    // Belt and braces: a SIGSTOPped daemon cannot process Shutdown and
    // would be counted an abnormal exit (SIGCONT on a running pid is a
    // no-op).
    if (stopped.load()) launcher.resume_node(stop_node);
    if (!run.ok) {
      std::fprintf(stderr, "dooc_launch: run failed: %s\n", run.error.c_str());
      launcher.terminate_all();
      return 1;
    }
    std::printf("run ok: %" PRIu64 "/%" PRIu64 " tasks in %.3fs (%" PRIu64
                " retries, %" PRIu64 " re-queued after death, %zu dead nodes)\n",
                run.tasks_executed, run.tasks_total, run.makespan_s, run.retries,
                run.requeued_after_death, run.dead_nodes.size());
    for (const auto& ev : run.health_events) {
      std::printf("health: %s\n", ev.to_text().c_str());
    }
    if (!run.suspected_nodes.empty()) {
      std::printf("suspected at run end:");
      for (const net::NodeId n : run.suspected_nodes) std::printf(" %d", n);
      std::printf("\n");
    }

    const std::vector<double> result = job.gather(coord);
    if (opts.get_bool("verify", false)) {
      const std::string scratch = workdir + "/scratch";
      fs::create_directories(scratch);
      const std::vector<double> expect = job.reference(scratch);
      if (result.size() != expect.size() ||
          std::memcmp(result.data(), expect.data(), result.size() * sizeof(double)) != 0) {
        std::fprintf(stderr, "dooc_launch: VERIFY FAILED — wire result != in-process result\n");
        launcher.terminate_all();
        return 1;
      }
      std::printf("verify ok: bitwise identical to the in-process engine (%zu doubles)\n",
                  result.size());
    }

    // Per-node reports (and merged metrics) before tearing the cluster down.
    const auto reports = coord.collect_reports();
    obs::MetricsSnapshot merged;
    std::printf("%-5s %-8s %-7s %-12s %-9s %-12s %-10s %s\n", "node", "pid", "tasks",
                "bytes_stored", "fetches", "fetch_bytes", "durable_fb", "trace");
    for (const auto& [id, rep] : reports) {
      std::printf("%-5d %-8" PRIu64 " %-7" PRIu64 " %-12" PRIu64 " %-9" PRIu64 " %-12" PRIu64
                  " %-10" PRIu64 " %s\n",
                  id, rep.os_pid, rep.tasks_executed, rep.bytes_stored, rep.fetches_issued,
                  rep.fetch_bytes_in, rep.durable_fallbacks,
                  rep.trace_path.empty() ? "-" : rep.trace_path.c_str());
      auto& entry = merged.entries[{"dooc_node_tasks_executed", id}];
      entry.kind = obs::MetricKind::Counter;
      entry.count = rep.tasks_executed;
      auto& fb = merged.entries[{"dooc_node_fetch_bytes_in", id}];
      fb.kind = obs::MetricKind::Counter;
      fb.count = rep.fetch_bytes_in;
      auto& df = merged.entries[{"dooc_node_durable_fallbacks", id}];
      df.kind = obs::MetricKind::Counter;
      df.count = rep.durable_fallbacks;
    }
    if (const std::string out = opts.get("metrics-out"); !out.empty()) {
      if (FILE* f = std::fopen(out.c_str(), "w"); f != nullptr) {
        const std::string text = merged.to_prometheus();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("metrics -> %s\n", out.c_str());
      }
    }

    coord.shutdown_cluster();
    transport->close();
    // kill_node() already reaped the killed daemon, so any abnormal exit
    // wait_all() still sees is unexpected.
    const int failures = launcher.wait_all(5000);
    if (failures > 0) {
      std::fprintf(stderr, "dooc_launch: %d nodes exited abnormally\n", failures);
      return 1;
    }
    std::printf("teardown clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dooc_launch: %s\n", e.what());
    return 1;
  }
}
