// Matrix generator CLI: produce test matrices in binary-CSR (the
// middleware's on-disk format) or Matrix Market form.
//
//   dooc_matgen --kind=uniform-gap --rows=10000 --cols=10000 --nnz=200000 \
//               --out=A.bin [--format=csr|sell|mtx] [--seed=42]
//   dooc_matgen --kind=power-law --rows=10000 --nnz=500000 --alpha=1.5 ...
//   dooc_matgen --kind=laplacian --rows=4096 --out=L.mtx --format=mtx
//   dooc_matgen --kind=banded --rows=1000 --bandwidth=4 --diagonal=8 ...
//   dooc_matgen --kind=ci --protons=2 --neutrons=2 --nmax=2 --two-mj=0 ...
#include <cstdio>
#include <fstream>

#include "ci/hamiltonian.hpp"
#include "common/options.hpp"
#include "common/stats.hpp"
#include "spmv/generator.hpp"
#include "spmv/matrix_market.hpp"
#include "spmv/sell.hpp"

using namespace dooc;

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  const std::string kind = opts.get("kind", "uniform-gap");
  const std::string out_path = opts.get("out", "");
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: dooc_matgen --kind=uniform-gap|power-law|banded|laplacian|ci --out=FILE\n"
                 "       [--rows=N --cols=N --nnz=NNZ --seed=S] [--format=csr|sell|mtx]\n"
                 "       [--alpha=A] [--bandwidth=B --diagonal=D]\n"
                 "       [--protons= --neutrons= --nmax= --two-mj=]\n");
    return 2;
  }
  const auto rows = static_cast<std::uint64_t>(opts.get_int("rows", 1000));
  const auto cols = static_cast<std::uint64_t>(opts.get_int("cols", static_cast<std::int64_t>(rows)));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));

  spmv::CsrMatrix m;
  if (kind == "uniform-gap") {
    const auto nnz = static_cast<std::uint64_t>(opts.get_int("nnz", static_cast<std::int64_t>(rows * 16)));
    const double d = spmv::choose_gap_parameter(rows, cols, nnz);
    m = spmv::generate_uniform_gap(rows, cols, d, seed);
  } else if (kind == "power-law") {
    const auto nnz = static_cast<std::uint64_t>(opts.get_int("nnz", static_cast<std::int64_t>(rows * 16)));
    const double mean_row_nnz = static_cast<double>(nnz) / static_cast<double>(rows);
    m = spmv::generate_power_law(rows, cols, mean_row_nnz, opts.get_double("alpha", 1.5), seed);
  } else if (kind == "banded") {
    m = spmv::generate_banded(rows, static_cast<std::uint64_t>(opts.get_int("bandwidth", 3)),
                              opts.get_double("diagonal", 8.0));
  } else if (kind == "laplacian") {
    m = spmv::generate_laplacian_1d(rows);
  } else if (kind == "ci") {
    ci::NucleusConfig c;
    c.protons = static_cast<int>(opts.get_int("protons", 2));
    c.neutrons = static_cast<int>(opts.get_int("neutrons", 2));
    c.nmax = static_cast<int>(opts.get_int("nmax", 2));
    c.two_mj = static_cast<int>(opts.get_int("two-mj", 0));
    m = ci::build_hamiltonian(c);
  } else {
    std::fprintf(stderr, "unknown --kind '%s'\n", kind.c_str());
    return 2;
  }

  const std::string format =
      opts.get("format", out_path.size() > 4 && out_path.substr(out_path.size() - 4) == ".mtx"
                             ? "mtx"
                             : "csr");
  if (format == "mtx") {
    spmv::write_matrix_market_file(out_path, m);
  } else {
    std::vector<std::byte> bytes;
    if (format == "sell") {
      spmv::serialize_sell(spmv::build_sell(m, 8, 256), bytes);
    } else {
      spmv::serialize_csr(m, bytes);
    }
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("%s: %llu x %llu, %llu non-zeros (%s as %s)\n", out_path.c_str(),
              static_cast<unsigned long long>(m.rows), static_cast<unsigned long long>(m.cols),
              static_cast<unsigned long long>(m.nnz()),
              format_bytes(static_cast<double>(m.serialized_bytes())).c_str(), format.c_str());
  return 0;
}
