// dooc_benchdiff: compare two BENCH_*.json reports (bench_util JsonReport
// schema) and exit non-zero when a metric regressed past the threshold.
//
// Usage:  dooc_benchdiff before.json after.json [--threshold=10]
//           [--lower=metric1,metric2] [--higher=...] [--ignore=...]
//
// Direction (which way is "worse") is inferred from the metric name
// (seconds/time → lower better, gflops/bandwidth → higher better) and can
// be overridden per metric with --lower/--higher; unknown metrics are
// reported but never gate. Exit codes: 0 ok, 1 regression, 2 usage/input.
#include <cstdio>
#include <exception>
#include <string>

#include "common/benchdiff.hpp"
#include "common/options.hpp"

using namespace dooc;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(start, comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  if (opts.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: dooc_benchdiff <before.json> <after.json> [--threshold=10]\n"
                 "         [--lower=metric,...] [--higher=metric,...] [--ignore=metric,...]\n");
    return 2;
  }
  bench::DiffOptions diff_opts;
  diff_opts.threshold_pct = opts.get_double("threshold", 10.0);
  diff_opts.lower_better = split_csv(opts.get("lower"));
  diff_opts.higher_better = split_csv(opts.get("higher"));
  diff_opts.ignore = split_csv(opts.get("ignore"));

  bench::DiffResult result;
  try {
    result = bench::diff_report_files(opts.positional()[0], opts.positional()[1], diff_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dooc_benchdiff: %s\n", e.what());
    return 2;
  }
  std::printf("%s", bench::format_diff(result, diff_opts.threshold_pct).c_str());
  return result.regression ? 1 : 0;
}
