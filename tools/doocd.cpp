// doocd — one DOoC cluster node as a real OS process.
//
// Hosts the storage + executor role of one node: listens on its manifest
// address, dials its lower-id peers, then serves PutBlock / FetchReq /
// ExecTask / ReportReq until a Shutdown frame (or SIGTERM/SIGINT).
//
//   doocd --manifest=cluster.txt --node=2 [--durable-dir=DIR]
//         [--exec-threads=N] [--log-level=trace|debug|info|warn|error]
//         [--metrics-port=P]
//
// --metrics-port serves this daemon's metrics registry (plus the live
// transport/executor scalars from report()) as Prometheus text on
// http://127.0.0.1:P/metrics while the daemon runs.
//
// Tracing: set DOOC_TRACE=/path/node2.json in the environment (the
// launcher does this per node); the trace is written on clean exit.
// Codec: DOOC_CODEC (e.g. "adaptive") turns on compressed durable blocks
// for this daemon; decoding of frames from peers or the coordinator works
// regardless, so nodes with different codec settings interoperate.
#include <csignal>
#include <cstdio>
#include <memory>

#include "common/log.hpp"
#include "common/options.hpp"
#include "net/node_server.hpp"
#include "obs/metrics.hpp"
#include "obs/prom_http.hpp"
#include "obs/trace.hpp"

namespace {

dooc::net::NodeServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

dooc::LogLevel parse_level(const std::string& s) {
  if (s == "trace") return dooc::LogLevel::Trace;
  if (s == "debug") return dooc::LogLevel::Debug;
  if (s == "info") return dooc::LogLevel::Info;
  if (s == "warn") return dooc::LogLevel::Warn;
  if (s == "error") return dooc::LogLevel::Error;
  return dooc::LogLevel::Warn;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dooc;
  const Options opts = Options::from_args(argc, argv);
  if (!opts.contains("manifest") || !opts.contains("node")) {
    std::fprintf(stderr,
                 "usage: doocd --manifest=FILE --node=ID [--durable-dir=DIR]\n"
                 "             [--exec-threads=N] [--log-level=LVL]\n");
    return 2;
  }
  Log::set_level(parse_level(opts.get("log-level", "warn")));
  obs::TraceSession::instance().init_from_env();

  try {
    const net::Manifest manifest = net::Manifest::parse_file(opts.get("manifest"));
    const auto node = static_cast<net::NodeId>(opts.get_int("node", 0));

    net::SocketTransportConfig tcfg;
    auto transport = net::make_node_transport(manifest, node, tcfg);

    net::NodeServerConfig scfg;
    scfg.node = node;
    scfg.durable_dir = opts.get("durable-dir");
    scfg.exec_threads = static_cast<int>(opts.get_int("exec-threads", 1));
    net::NodeServer server(std::move(transport), scfg);

    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    // Live scrape endpoint: the registry is node-scoped already; overlay
    // the report() scalars that otherwise only reach the registry at exit
    // so a mid-run scrape sees the executor/transport counters too.
    std::unique_ptr<obs::PromHttpServer> scrape;
    if (const int port = static_cast<int>(opts.get_int("metrics-port", 0)); port > 0) {
      scrape = std::make_unique<obs::PromHttpServer>(port, [&server, node] {
        obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
        const net::NodeReportMsg rep = server.report();
        obs::MetricsSnapshot live;
        const auto put = [&live, node](const char* name, std::uint64_t v) {
          obs::MetricsSnapshot::Entry e;
          e.kind = obs::MetricKind::Counter;
          e.count = v;
          live.entries[{name, node}] = e;
        };
        put("net.tasks_executed", rep.tasks_executed);
        put("net.blocks_stored", rep.blocks_stored);
        put("net.bytes_stored", rep.bytes_stored);
        put("net.fetches_served", rep.fetches_served);
        put("net.fetch_bytes_out", rep.fetch_bytes_out);
        put("net.fetches_issued", rep.fetches_issued);
        put("net.fetch_bytes_in", rep.fetch_bytes_in);
        put("net.durable_fallbacks", rep.durable_fallbacks);
        put("net.frames_sent", rep.frames_sent);
        put("net.frames_received", rep.frames_received);
        put("net.bytes_sent", rep.bytes_sent);
        put("net.bytes_received", rep.bytes_received);
        snap.merge(live);
        return snap.to_prometheus();
      });
      DOOC_LOG(Info, "doocd") << "metrics on http://127.0.0.1:" << scrape->port() << "/metrics";
    }

    server.run();

    scrape.reset();
    g_server = nullptr;
    server.transport().close();
    // Final counter samples into the trace, so `dooc_tracecat --metrics`
    // over the per-node trace files reconstructs the cluster's totals.
    const net::NodeReportMsg rep = server.report();
    auto& metrics = obs::Metrics::instance();
    metrics.counter("net.tasks_executed", node).add(rep.tasks_executed);
    metrics.counter("net.blocks_stored", node).add(rep.blocks_stored);
    metrics.counter("net.bytes_stored", node).add(rep.bytes_stored);
    metrics.counter("net.fetches_served", node).add(rep.fetches_served);
    metrics.counter("net.fetch_bytes_out", node).add(rep.fetch_bytes_out);
    metrics.counter("net.fetches_issued", node).add(rep.fetches_issued);
    metrics.counter("net.fetch_bytes_in", node).add(rep.fetch_bytes_in);
    metrics.counter("net.durable_fallbacks", node).add(rep.durable_fallbacks);
    obs::MetricsSampler::flush_once();
    obs::TraceSession::instance().stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "doocd: %s\n", e.what());
    return 1;
  }
}
