// doocd — one DOoC cluster node as a real OS process.
//
// Hosts the storage + executor role of one node: listens on its manifest
// address, dials its lower-id peers, then serves PutBlock / FetchReq /
// ExecTask / ReportReq until a Shutdown frame (or SIGTERM/SIGINT).
//
//   doocd --manifest=cluster.txt --node=2 [--durable-dir=DIR]
//         [--exec-threads=N] [--log-level=trace|debug|info|warn|error]
//
// Tracing: set DOOC_TRACE=/path/node2.json in the environment (the
// launcher does this per node); the trace is written on clean exit.
// Codec: DOOC_CODEC (e.g. "adaptive") turns on compressed durable blocks
// for this daemon; decoding of frames from peers or the coordinator works
// regardless, so nodes with different codec settings interoperate.
#include <csignal>
#include <cstdio>

#include "common/log.hpp"
#include "common/options.hpp"
#include "net/node_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

dooc::net::NodeServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

dooc::LogLevel parse_level(const std::string& s) {
  if (s == "trace") return dooc::LogLevel::Trace;
  if (s == "debug") return dooc::LogLevel::Debug;
  if (s == "info") return dooc::LogLevel::Info;
  if (s == "warn") return dooc::LogLevel::Warn;
  if (s == "error") return dooc::LogLevel::Error;
  return dooc::LogLevel::Warn;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dooc;
  const Options opts = Options::from_args(argc, argv);
  if (!opts.contains("manifest") || !opts.contains("node")) {
    std::fprintf(stderr,
                 "usage: doocd --manifest=FILE --node=ID [--durable-dir=DIR]\n"
                 "             [--exec-threads=N] [--log-level=LVL]\n");
    return 2;
  }
  Log::set_level(parse_level(opts.get("log-level", "warn")));
  obs::TraceSession::instance().init_from_env();

  try {
    const net::Manifest manifest = net::Manifest::parse_file(opts.get("manifest"));
    const auto node = static_cast<net::NodeId>(opts.get_int("node", 0));

    net::SocketTransportConfig tcfg;
    auto transport = net::make_node_transport(manifest, node, tcfg);

    net::NodeServerConfig scfg;
    scfg.node = node;
    scfg.durable_dir = opts.get("durable-dir");
    scfg.exec_threads = static_cast<int>(opts.get_int("exec-threads", 1));
    net::NodeServer server(std::move(transport), scfg);

    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    server.run();

    g_server = nullptr;
    server.transport().close();
    // Final counter samples into the trace, so `dooc_tracecat --metrics`
    // over the per-node trace files reconstructs the cluster's totals.
    const net::NodeReportMsg rep = server.report();
    auto& metrics = obs::Metrics::instance();
    metrics.counter("net.tasks_executed", node).add(rep.tasks_executed);
    metrics.counter("net.blocks_stored", node).add(rep.blocks_stored);
    metrics.counter("net.bytes_stored", node).add(rep.bytes_stored);
    metrics.counter("net.fetches_served", node).add(rep.fetches_served);
    metrics.counter("net.fetch_bytes_out", node).add(rep.fetch_bytes_out);
    metrics.counter("net.fetches_issued", node).add(rep.fetches_issued);
    metrics.counter("net.fetch_bytes_in", node).add(rep.fetch_bytes_in);
    metrics.counter("net.durable_fallbacks", node).add(rep.durable_fallbacks);
    obs::MetricsSampler::flush_once();
    obs::TraceSession::instance().stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "doocd: %s\n", e.what());
    return 1;
  }
}
