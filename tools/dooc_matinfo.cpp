// Inspect a sparse matrix file (binary CSR, binary SELL or Matrix Market):
// dimensions, non-zeros, row-population statistics and histogram, bandwidth,
// symmetry check, and the thread-partition imbalance that tells whether the
// matrix needs the nnz-balanced split / SELL-C-σ kernels.
//
//   dooc_matinfo A.bin
//   dooc_matinfo A.mtx
//   dooc_matinfo --codec-estimate A.bin   predicted block-codec ratio
//
// --codec-estimate samples the column-index delta entropy of the payload
// (spmv::codec::estimate_block) to predict what DOOC_CODEC would achieve on
// this matrix WITHOUT running the encoder — the sizing tool for deciding
// whether a deployment should turn the codec on.
#include <cstdio>
#include <fstream>

#include "common/stats.hpp"
#include "spmv/codec.hpp"
#include "spmv/csr.hpp"
#include "spmv/matrix_market.hpp"
#include "spmv/partition.hpp"
#include "spmv/sell.hpp"

using namespace dooc;

namespace {

spmv::CsrMatrix sell_to_csr(const spmv::SellMatrix& s) {
  // Unpack chunks back to per-row (row, col, value) triplets in row order.
  spmv::CsrMatrix m;
  m.rows = s.rows;
  m.cols = s.cols;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(s.rows);
  for (std::uint64_t ch = 0; ch < s.num_chunks(); ++ch) {
    const std::uint64_t lanes = std::min<std::uint64_t>(s.chunk, s.rows - ch * s.chunk);
    const std::uint64_t width = (s.chunk_ptr[ch + 1] - s.chunk_ptr[ch]) / s.chunk;
    for (std::uint64_t w = 0; w < width; ++w) {
      for (std::uint64_t lane = 0; lane < lanes; ++lane) {
        const std::uint64_t e = s.chunk_ptr[ch] + w * s.chunk + lane;
        const double v = s.values[e];
        if (v == 0.0) continue;  // padding (or an explicit zero — dropped)
        rows[s.perm[ch * s.chunk + lane]].emplace_back(s.col_idx[e], v);
      }
    }
  }
  m.row_ptr.push_back(0);
  for (auto& row : rows) {
    for (const auto& [c, v] : row) {
      m.col_idx.push_back(c);
      m.values.push_back(v);
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

spmv::CsrMatrix load(const std::string& path) {
  // Try the binary formats first (cheap magic check), then Matrix Market.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in && (magic == spmv::kCsrMagic || magic == spmv::kSellMagic)) {
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<std::byte> bytes(size);
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
    if (magic == spmv::kSellMagic) {
      return sell_to_csr(spmv::materialize(spmv::SellView::from_bytes(bytes)));
    }
    return spmv::materialize(spmv::CsrView::from_bytes(bytes));
  }
  return spmv::read_matrix_market_file(path);
}

void print_partition_report(const spmv::CsrMatrix& m) {
  // Imbalance of the two splits at representative thread counts, plus the
  // SELL-C-σ padding overhead — the numbers that pick the kernel config.
  std::printf("partitioning (max part nnz / ideal):\n");
  double worst_equal = 1.0;
  for (std::size_t parts : {4u, 16u}) {
    const double eq = spmv::partition_imbalance(m.row_ptr, spmv::equal_row_ranges(m.rows, parts));
    const double bal =
        spmv::partition_imbalance(m.row_ptr, spmv::balanced_row_ranges(m.row_ptr, parts));
    worst_equal = std::max(worst_equal, eq);
    std::printf("  P=%-3zu equal-rows %.2f   nnz-balanced %.2f\n", parts, eq, bal);
  }
  const double fill = spmv::build_sell(m, 8, 256).fill_ratio();
  std::printf("SELL-8-256:  fill ratio %.3f (padding overhead %.1f%%)\n", fill,
              (fill - 1.0) * 100.0);
  if (worst_equal > 1.5) {
    std::printf("recommend:   nnz-balanced split%s (equal-rows starves at %.1fx)\n",
                fill < 1.5 ? " + SELL-C-sigma" : "", worst_equal);
  } else {
    std::printf("recommend:   row lengths are uniform; any split works\n");
  }
}

void print_codec_estimate(const spmv::CsrMatrix& m) {
  // Predicted DOOC_CODEC ratios from sampled column-delta entropy — no
  // encoder pass, so this stays cheap on matrices that don't fit in memory
  // comfortably twice.
  std::vector<std::byte> raw;
  serialize_csr(m, raw);
  const spmv::codec::CodecEstimate est = spmv::codec::estimate_block(raw);
  std::printf("codec estimate (sampled, no encode pass):\n");
  std::printf("  index streams:  ~%.2fx (delta entropy %.2f bits over %llu sampled deltas)\n",
              est.index_ratio, est.delta_entropy_bits,
              static_cast<unsigned long long>(est.sampled_deltas));
  std::printf("  whole payload:  ~%.2fx\n", est.overall_ratio);
  if (est.overall_ratio >= 1.05) {
    std::printf("  recommend:      DOOC_CODEC=adaptive (predicted ratio clears the 1.05 gate)\n");
  } else {
    std::printf("  recommend:      leave the codec off; predicted ratio %.2fx is below the\n"
                "                  adaptive gate, blocks would be stored raw anyway\n",
                est.overall_ratio);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool codec_estimate = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--codec-estimate") {
      codec_estimate = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: dooc_matinfo [--codec-estimate] FILE\n");
    return 2;
  }
  try {
    const auto m = load(path);
    m.validate();
    std::printf("file:        %s\n", path);
    std::printf("dimensions:  %llu x %llu\n", static_cast<unsigned long long>(m.rows),
                static_cast<unsigned long long>(m.cols));
    std::printf("non-zeros:   %llu (%.3f per row, density %.2e)\n",
                static_cast<unsigned long long>(m.nnz()),
                static_cast<double>(m.nnz()) / static_cast<double>(m.rows),
                static_cast<double>(m.nnz()) /
                    (static_cast<double>(m.rows) * static_cast<double>(m.cols)));
    std::printf("binary CSR:  %s\n",
                format_bytes(static_cast<double>(m.serialized_bytes())).c_str());

    RunningStats row_stats;
    Log2Histogram row_hist;
    std::uint64_t empty_rows = 0, bandwidth = 0, diag_nnz = 0;
    bool structurally_symmetric = m.rows == m.cols;
    for (std::uint64_t r = 0; r < m.rows; ++r) {
      const std::uint64_t count = m.row_ptr[r + 1] - m.row_ptr[r];
      row_stats.add(static_cast<double>(count));
      row_hist.add(static_cast<double>(count));
      if (count == 0) ++empty_rows;
      for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
        const std::uint64_t c = m.col_idx[k];
        bandwidth = std::max(bandwidth, c > r ? c - r : r - c);
        if (c == r) ++diag_nnz;
        if (structurally_symmetric) {
          // Check the mirrored entry exists (pattern symmetry only).
          bool found = false;
          for (std::uint64_t k2 = m.row_ptr[c]; k2 < m.row_ptr[c + 1]; ++k2) {
            if (m.col_idx[k2] == r) {
              found = true;
              break;
            }
          }
          if (!found) structurally_symmetric = false;
        }
      }
    }
    std::printf("row nnz:     min %.0f / mean %.2f / max %.0f (stddev %.2f)\n", row_stats.min(),
                row_stats.mean(), row_stats.max(), row_stats.stddev());
    std::printf("row nnz q:   p50 %.0f / p90 %.0f / p99 %.0f\n", row_hist.quantile(0.5),
                row_hist.quantile(0.9), row_hist.quantile(0.99));
    // Log2 histogram of row populations, one bar per occupied bucket.
    if (m.rows > 0) {
      std::uint64_t max_count = 1;
      for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
        max_count = std::max(max_count, row_hist.bucket(static_cast<std::size_t>(b)));
      }
      std::printf("row length histogram (log2 buckets):\n");
      for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
        const std::uint64_t c = row_hist.bucket(static_cast<std::size_t>(b));
        if (c == 0) continue;
        const auto lo = b == 0 ? 0ull : 1ull << (b - 1);
        const auto hi = b == 0 ? 1ull : 1ull << b;
        const int bar = static_cast<int>(50 * c / max_count);
        std::printf("  [%6llu, %6llu)  %10llu  %.*s\n", static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi), static_cast<unsigned long long>(c), bar,
                    "##################################################");
      }
    }
    std::printf("empty rows:  %llu\n", static_cast<unsigned long long>(empty_rows));
    std::printf("bandwidth:   %llu\n", static_cast<unsigned long long>(bandwidth));
    std::printf("diagonal:    %llu of %llu present\n", static_cast<unsigned long long>(diag_nnz),
                static_cast<unsigned long long>(std::min(m.rows, m.cols)));
    if (m.rows == m.cols) {
      std::printf("symmetry:    pattern %s\n",
                  structurally_symmetric ? "symmetric" : "asymmetric");
    }
    if (m.rows > 0 && m.nnz() > 0) print_partition_report(m);
    if (codec_estimate && m.nnz() > 0) print_codec_estimate(m);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
