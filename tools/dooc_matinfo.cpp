// Inspect a sparse matrix file (binary CSR or Matrix Market): dimensions,
// non-zeros, row-population statistics, bandwidth, symmetry check.
//
//   dooc_matinfo A.bin
//   dooc_matinfo A.mtx
#include <cstdio>
#include <fstream>

#include "common/stats.hpp"
#include "spmv/csr.hpp"
#include "spmv/matrix_market.hpp"

using namespace dooc;

namespace {

spmv::CsrMatrix load(const std::string& path) {
  // Try binary CSR first (cheap magic check), fall back to Matrix Market.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in && magic == spmv::kCsrMagic) {
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<std::byte> bytes(size);
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
    return spmv::materialize(spmv::CsrView::from_bytes(bytes));
  }
  return spmv::read_matrix_market_file(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dooc_matinfo FILE\n");
    return 2;
  }
  try {
    const auto m = load(argv[1]);
    m.validate();
    std::printf("file:        %s\n", argv[1]);
    std::printf("dimensions:  %llu x %llu\n", static_cast<unsigned long long>(m.rows),
                static_cast<unsigned long long>(m.cols));
    std::printf("non-zeros:   %llu (%.3f per row, density %.2e)\n",
                static_cast<unsigned long long>(m.nnz()),
                static_cast<double>(m.nnz()) / static_cast<double>(m.rows),
                static_cast<double>(m.nnz()) /
                    (static_cast<double>(m.rows) * static_cast<double>(m.cols)));
    std::printf("binary CSR:  %s\n",
                format_bytes(static_cast<double>(m.serialized_bytes())).c_str());

    RunningStats row_stats;
    std::uint64_t empty_rows = 0, bandwidth = 0, diag_nnz = 0;
    bool structurally_symmetric = m.rows == m.cols;
    for (std::uint64_t r = 0; r < m.rows; ++r) {
      const std::uint64_t count = m.row_ptr[r + 1] - m.row_ptr[r];
      row_stats.add(static_cast<double>(count));
      if (count == 0) ++empty_rows;
      for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
        const std::uint64_t c = m.col_idx[k];
        bandwidth = std::max(bandwidth, c > r ? c - r : r - c);
        if (c == r) ++diag_nnz;
        if (structurally_symmetric) {
          // Check the mirrored entry exists (pattern symmetry only).
          bool found = false;
          for (std::uint64_t k2 = m.row_ptr[c]; k2 < m.row_ptr[c + 1]; ++k2) {
            if (m.col_idx[k2] == r) {
              found = true;
              break;
            }
          }
          if (!found) structurally_symmetric = false;
        }
      }
    }
    std::printf("row nnz:     min %.0f / mean %.2f / max %.0f (stddev %.2f)\n", row_stats.min(),
                row_stats.mean(), row_stats.max(), row_stats.stddev());
    std::printf("empty rows:  %llu\n", static_cast<unsigned long long>(empty_rows));
    std::printf("bandwidth:   %llu\n", static_cast<unsigned long long>(bandwidth));
    std::printf("diagonal:    %llu of %llu present\n", static_cast<unsigned long long>(diag_nnz),
                static_cast<unsigned long long>(std::min(m.rows, m.cols)));
    if (m.rows == m.cols) {
      std::printf("symmetry:    pattern %s\n",
                  structurally_symmetric ? "symmetric" : "asymmetric");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
