// dooc_tracecat: summarize a Chrome trace written by the obs layer
// (DOOC_TRACE=out.json, --trace-out, or TraceSession::start).
//
// Reports per-category (phase) time, the I/O-vs-compute overlap fraction —
// the paper's headline metric — and the top-N slowest tasks. With flow
// events in the trace, --critical-path / --blame / --what-if run the
// obs::causal analysis; --metrics re-exports the trace's Counter samples
// in Prometheus text format.
//
// Usage:  dooc_tracecat trace.json [trace2.json ...] [--top=10] [--cat=task]
//                       [--critical-path] [--blame] [--what-if=io:0]
//                       [--metrics] [--job=ID]
//
// --job=ID narrows a multi-tenant trace to one job before any analysis:
// events tagged with a "job" arg keep only job ID's; untagged events
// (storage io spans, counter samples) are ambient and stay — so overlap,
// waits, critical path and blame come out per job.
//
// Several traces may be given at once — the per-process files a
// dooc_launch cluster writes (node0.json node1.json ...). Each file gets
// its own summary; --metrics merges every file's counter samples into one
// unified Prometheus export (samples stay distinguishable through their
// per-process node/pid label). The causal analyses need one process's
// flow graph and reject a multi-file invocation.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>

#include "common/options.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_reader.hpp"

using namespace dooc;

namespace {

/// "--what-if=io:0" → ("io", 0.0). Returns false on a malformed value.
bool parse_what_if(const std::string& spec, std::pair<std::string, double>& out) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  try {
    out.first = spec.substr(0, colon);
    out.second = std::stod(spec.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// The single-trace report (phase table, overlap, waits, slowest events).
void report_one(const std::string& path, const std::vector<obs::ParsedEvent>& events,
                std::size_t top_n, const std::string& cat);

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::from_args(argc, argv);
  if (opts.positional().empty()) {
    std::fprintf(stderr,
                 "usage: dooc_tracecat <trace.json> [more.json ...] [--top=10] [--cat=task]\n"
                 "                     [--critical-path] [--blame] [--what-if=CAT:FACTOR]\n"
                 "                     [--metrics] [--job=ID]\n");
    return 2;
  }
  const std::vector<std::string>& paths = opts.positional();
  const auto top_n = static_cast<std::size_t>(opts.get_int("top", 10));
  const std::string cat = opts.get("cat", "task");
  const bool job_filter = opts.contains("job");
  const double job_id = static_cast<double>(opts.get_int("job", 0));

  obs::MetricsSnapshot merged;
  std::vector<obs::ParsedEvent> events;  // the last file's events (causal)
  bool first = true;
  for (const std::string& path : paths) {
    try {
      events = obs::load_chrome_trace(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dooc_tracecat: %s\n", e.what());
      return 1;
    }
    if (job_filter) {
      std::erase_if(events, [&](const obs::ParsedEvent& ev) {
        const auto it = ev.args.find("job");
        return it != ev.args.end() && it->second != job_id;
      });
    }
    merged.merge(obs::snapshot_from_trace(events));
    if (!first) std::printf("\n");
    first = false;
    report_one(path, events, top_n, cat);
  }

  const bool want_path = opts.contains("critical-path");
  const bool want_blame = opts.contains("blame");
  std::vector<std::pair<std::string, double>> what_ifs;
  if (opts.contains("what-if")) {
    std::pair<std::string, double> wi;
    if (!parse_what_if(opts.get("what-if"), wi)) {
      std::fprintf(stderr, "dooc_tracecat: --what-if wants CATEGORY:FACTOR (e.g. io:0)\n");
      return 2;
    }
    what_ifs.push_back(std::move(wi));
  }
  if (want_path || want_blame || !what_ifs.empty()) {
    if (paths.size() != 1) {
      std::fprintf(stderr,
                   "dooc_tracecat: the causal analyses follow one process's flow graph; "
                   "pass a single trace file\n");
      return 2;
    }
    const auto graph = obs::causal::CausalGraph::build(events);
    std::printf("\n%s", obs::causal::causal_report(graph, want_path, want_blame, what_ifs).c_str());
  }

  if (opts.contains("metrics")) {
    std::printf("\n== metrics (prometheus, %zu trace file%s) ==\n%s", paths.size(),
                paths.size() == 1 ? "" : "s", merged.to_prometheus().c_str());
  }
  return 0;
}

namespace {

void report_one(const std::string& path, const std::vector<obs::ParsedEvent>& events,
                std::size_t top_n, const std::string& cat) {
  const obs::TraceSummary s = obs::summarize(events);
  std::printf("%s: %zu events, wall %.3f ms\n\n", path.c_str(), events.size(),
              s.wall_us * 1e-3);

  std::printf("%-12s %12s %12s %10s %8s\n", "phase", "busy (ms)", "sum (ms)", "parallel",
              "events");
  std::printf("%-12s %12s %12s %10s %8s\n", "-----", "---------", "--------", "--------",
              "------");
  for (const auto& [name, busy] : s.category_busy_us) {
    const double sum = s.category_sum_us.at(name);
    std::printf("%-12s %12.3f %12.3f %9.2fx %8llu\n", name.c_str(), busy * 1e-3, sum * 1e-3,
                busy > 0.0 ? sum / busy : 0.0,
                static_cast<unsigned long long>(s.category_events.at(name)));
  }

  std::printf("\nI/O busy    %10.3f ms\n", s.io_busy_us * 1e-3);
  std::printf("compute busy %9.3f ms\n", s.compute_busy_us * 1e-3);
  std::printf("I/O overlapped with compute: %.3f ms (%.1f%% of I/O hidden)\n",
              s.io_overlapped_us * 1e-3, 100.0 * s.overlap_fraction());

  const obs::WaitAnalysis waits = obs::analyze_waits(events);
  if (waits.overall.count > 0) {
    std::printf("\ninputs-pending waits (completion-driven engine):\n");
    std::printf("%-12s %8s %12s %10s %10s %10s\n", "scope", "spans", "total (ms)", "mean (ms)",
                "p99 (ms)", "max (ms)");
    const auto row = [](const std::string& label, const obs::WaitStats& s) {
      std::printf("%-12s %8llu %12.3f %10.3f %10.3f %10.3f\n", label.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_us * 1e-3, s.mean_us * 1e-3,
                  s.p99_us * 1e-3, s.max_us * 1e-3);
    };
    row("overall", waits.overall);
    for (const auto& [node, s] : waits.per_node) row("node " + std::to_string(node), s);
    for (const auto& [group, s] : waits.per_group) {
      row(group >= 0 ? "phase " + std::to_string(group) : "untagged", s);
    }
    std::printf("(%.1f%% of I/O hidden behind compute across these phases)\n",
                100.0 * s.overlap_fraction());
  }

  // Block-fetch source breakdown (hot-block replication triage). The
  // storage layer tags each cat "storage" name "block_fetch" span with a
  // "src" arg — 0 home-disk, 1 replica, 2 failover, 3 await (see
  // docs/TRACE_SCHEMA.md). A healthy replicated run shows its hot reads
  // under "replica"; a run stuck on "home-disk" never crossed the
  // DOOC_REPLICATION hot threshold.
  {
    static constexpr const char* kSrcNames[] = {"home-disk", "replica", "failover", "await"};
    std::uint64_t counts[4] = {0, 0, 0, 0};
    double us[4] = {0.0, 0.0, 0.0, 0.0};
    std::uint64_t total = 0;
    for (const obs::ParsedEvent& ev : events) {
      if (ev.phase != 'X' || ev.cat != "storage" || ev.name != "block_fetch") continue;
      const auto it = ev.args.find("src");
      if (it == ev.args.end()) continue;
      const auto src = static_cast<std::size_t>(it->second);
      if (src >= 4) continue;
      ++counts[src];
      us[src] += ev.dur_us;
      ++total;
    }
    if (total > 0) {
      std::printf("\nblock-fetch sources (%llu tagged fetches):\n",
                  static_cast<unsigned long long>(total));
      for (std::size_t i = 0; i < 4; ++i) {
        if (counts[i] == 0) continue;
        std::printf("  %-10s %8llu fetches %12.3f ms (%.1f%%)\n", kSrcNames[i],
                    static_cast<unsigned long long>(counts[i]), us[i] * 1e-3,
                    100.0 * static_cast<double>(counts[i]) / static_cast<double>(total));
      }
    }
  }

  const auto top = obs::slowest(events, top_n, cat);
  if (!top.empty()) {
    std::printf("\ntop %zu slowest '%s' events:\n", top.size(), cat.c_str());
    for (const auto& ev : top) {
      std::printf("  %10.3f ms  node %-3d %s\n", ev.dur_us * 1e-3, ev.pid, ev.name.c_str());
    }
  }
}

}  // namespace
