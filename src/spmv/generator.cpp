#include "spmv/generator.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace dooc::spmv {

double choose_gap_parameter(std::uint64_t rows, std::uint64_t cols, std::uint64_t target_nnz) {
  DOOC_REQUIRE(rows > 0 && cols > 0 && target_nnz > 0, "degenerate generator parameters");
  const double per_row = static_cast<double>(target_nnz) / static_cast<double>(rows);
  DOOC_REQUIRE(per_row <= static_cast<double>(cols),
               "nnz target exceeds the matrix capacity");
  // mean gap g = cols / per_row; gaps ~ U[1, 2d] have mean (1 + 2d)/2.
  const double mean_gap = static_cast<double>(cols) / per_row;
  const double d = std::max(0.5, mean_gap - 0.5);
  return d;
}

CsrMatrix generate_uniform_gap(std::uint64_t rows, std::uint64_t cols, double d,
                               std::uint64_t seed) {
  DOOC_REQUIRE(d >= 0.5, "gap parameter must be >= 0.5");
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  const std::uint64_t hi = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(2.0 * d));
  SplitMix64 rng(seed);
  for (std::uint64_t r = 0; r < rows; ++r) {
    // First entry: offset uniform in [0, gap) so the expected column
    // coverage is unbiased; then march by gaps uniform in [1, 2d].
    std::uint64_t c = rng.next_below(hi);
    while (c < cols) {
      m.col_idx.push_back(static_cast<std::uint32_t>(c));
      m.values.push_back(rng.next_double() * 2.0 - 1.0);
      c += rng.next_in(1, hi);
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

CsrMatrix generate_banded(std::uint64_t n, std::uint64_t half_bandwidth, double diagonal) {
  CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.reserve(n + 1);
  m.row_ptr.push_back(0);
  for (std::uint64_t r = 0; r < n; ++r) {
    const std::uint64_t lo = r >= half_bandwidth ? r - half_bandwidth : 0;
    const std::uint64_t hi = std::min(n - 1, r + half_bandwidth);
    for (std::uint64_t c = lo; c <= hi; ++c) {
      m.col_idx.push_back(static_cast<std::uint32_t>(c));
      m.values.push_back(c == r ? diagonal
                                : 1.0 / (1.0 + static_cast<double>(c > r ? c - r : r - c)));
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

CsrMatrix generate_laplacian_1d(std::uint64_t n) {
  CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.push_back(0);
  for (std::uint64_t r = 0; r < n; ++r) {
    if (r > 0) {
      m.col_idx.push_back(static_cast<std::uint32_t>(r - 1));
      m.values.push_back(-1.0);
    }
    m.col_idx.push_back(static_cast<std::uint32_t>(r));
    m.values.push_back(2.0);
    if (r + 1 < n) {
      m.col_idx.push_back(static_cast<std::uint32_t>(r + 1));
      m.values.push_back(-1.0);
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

CsrMatrix generate_power_law(std::uint64_t rows, std::uint64_t cols, double mean_row_nnz,
                             double alpha, std::uint64_t seed) {
  DOOC_REQUIRE(alpha > 1.0, "power-law shape must exceed 1 for a finite mean");
  DOOC_REQUIRE(mean_row_nnz >= 1.0, "mean row population must be at least 1");
  // Pareto with scale x_m has mean alpha * x_m / (alpha - 1); invert for x_m.
  const double x_m = mean_row_nnz * (alpha - 1.0) / alpha;
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.reserve(rows + 1);
  m.row_ptr.push_back(0);
  SplitMix64 rng(seed);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const double u = 1.0 - rng.next_double();  // (0, 1]
    const double raw = x_m * std::pow(u, -1.0 / alpha);
    const auto target =
        std::min<std::uint64_t>(cols, static_cast<std::uint64_t>(std::llround(raw)));
    if (target > 0) {
      // March columns with gaps averaging cols/target, as the uniform-gap
      // generator does; the walk may stop early at the right edge.
      const double gap = static_cast<double>(cols) / static_cast<double>(target);
      const std::uint64_t hi =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(2.0 * gap - 1.0));
      std::uint64_t c = rng.next_below(hi);
      std::uint64_t placed = 0;
      while (c < cols && placed < target) {
        m.col_idx.push_back(static_cast<std::uint32_t>(c));
        m.values.push_back(rng.next_double() * 2.0 - 1.0);
        c += rng.next_in(1, hi);
        ++placed;
      }
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

CsrMatrix extract_block(const CsrMatrix& m, std::uint64_t row0, std::uint64_t rows,
                        std::uint64_t col0, std::uint64_t cols) {
  DOOC_REQUIRE(row0 + rows <= m.rows && col0 + cols <= m.cols, "block out of range");
  CsrMatrix b;
  b.rows = rows;
  b.cols = cols;
  b.row_ptr.reserve(rows + 1);
  b.row_ptr.push_back(0);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t k = m.row_ptr[row0 + r]; k < m.row_ptr[row0 + r + 1]; ++k) {
      const std::uint64_t c = m.col_idx[k];
      if (c >= col0 && c < col0 + cols) {
        b.col_idx.push_back(static_cast<std::uint32_t>(c - col0));
        b.values.push_back(m.values[k]);
      }
    }
    b.row_ptr.push_back(b.col_idx.size());
  }
  return b;
}

}  // namespace dooc::spmv

namespace dooc::spmv {

CsrMatrix extract_lower_triangle(const CsrMatrix& m) {
  DOOC_REQUIRE(m.rows == m.cols, "lower triangle needs a square matrix");
  CsrMatrix out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.row_ptr.push_back(0);
  for (std::uint64_t r = 0; r < m.rows; ++r) {
    for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      if (m.col_idx[k] <= r) {
        out.col_idx.push_back(m.col_idx[k]);
        out.values.push_back(m.values[k]);
      }
    }
    out.row_ptr.push_back(out.col_idx.size());
  }
  return out;
}

CsrMatrix symmetrize(const CsrMatrix& m) {
  DOOC_REQUIRE(m.rows == m.cols, "symmetrize needs a square matrix");
  // Gather (i, j, v) for both A and A^T, then merge duplicates with 0.5x.
  struct Entry {
    std::uint64_t r;
    std::uint32_t c;
    double v;
  };
  std::vector<Entry> entries;
  entries.reserve(2 * m.nnz());
  for (std::uint64_t r = 0; r < m.rows; ++r) {
    for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      entries.push_back({r, m.col_idx[k], 0.5 * m.values[k]});
      entries.push_back({m.col_idx[k], static_cast<std::uint32_t>(r), 0.5 * m.values[k]});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.r, a.c) < std::tie(b.r, b.c);
  });
  CsrMatrix out;
  out.rows = m.rows;
  out.cols = m.cols;
  out.row_ptr.push_back(0);
  std::uint64_t row = 0;
  for (const auto& e : entries) {
    while (row < e.r) {
      out.row_ptr.push_back(out.col_idx.size());
      ++row;
    }
    if (out.col_idx.size() > out.row_ptr.back() && out.col_idx.back() == e.c) {
      out.values.back() += e.v;
    } else {
      out.col_idx.push_back(e.c);
      out.values.push_back(e.v);
    }
  }
  while (row < out.rows) {
    out.row_ptr.push_back(out.col_idx.size());
    ++row;
  }
  return out;
}

}  // namespace dooc::spmv
