#include "spmv/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dooc::spmv {

std::vector<RowRange> equal_row_ranges(std::uint64_t rows, std::size_t parts) {
  DOOC_REQUIRE(parts > 0, "partitioning needs at least one part");
  const std::uint64_t chunks =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(parts, std::max<std::uint64_t>(rows, 1)));
  const std::uint64_t per = (rows + chunks - 1) / chunks;
  std::vector<RowRange> out;
  out.reserve(chunks);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t begin = std::min(rows, c * per);
    const std::uint64_t end = std::min(rows, begin + per);
    out.push_back({begin, end});
    if (end == rows) break;
  }
  return out;
}

std::vector<RowRange> balanced_row_ranges(std::span<const std::uint64_t> row_ptr,
                                          std::size_t parts) {
  DOOC_REQUIRE(!row_ptr.empty(), "row_ptr must have at least the terminating entry");
  DOOC_REQUIRE(parts > 0, "partitioning needs at least one part");
  const std::uint64_t rows = row_ptr.size() - 1;
  if (rows == 0) return {RowRange{0, 0}};
  const std::uint64_t total = row_ptr[rows] - row_ptr[0];
  const auto chunks = static_cast<std::uint64_t>(parts);
  std::vector<RowRange> out;
  out.reserve(parts);
  std::uint64_t begin = 0;
  for (std::uint64_t p = 1; p <= chunks; ++p) {
    std::uint64_t end = rows;
    if (p < chunks) {
      // Row boundary nearest the p-th multiple of total/parts. upper_bound
      // finds the first boundary past the target; the one before it is the
      // last boundary at-or-below. Pick whichever is closer so a fat row
      // lands alone in its own chunk instead of dragging neighbours along.
      const std::uint64_t target =
          row_ptr[0] + total / chunks * p + (total % chunks) * p / chunks;
      const auto it = std::upper_bound(row_ptr.begin(), row_ptr.end(), target);
      auto hi = static_cast<std::uint64_t>(it - row_ptr.begin());
      hi = std::min(hi, rows);
      const std::uint64_t lo = hi - 1;  // row_ptr[0] <= target, so hi >= 1
      const std::uint64_t lo_gap = target - row_ptr[lo];
      const std::uint64_t hi_gap = row_ptr[hi] > target ? row_ptr[hi] - target : 0;
      end = (hi > lo && hi_gap < lo_gap) ? hi : lo;
      end = std::clamp(end, begin, rows);
    }
    out.push_back({begin, end});
    begin = end;
  }
  return out;
}

double partition_imbalance(std::span<const std::uint64_t> row_ptr,
                           std::span<const RowRange> ranges) {
  if (row_ptr.empty() || ranges.empty()) return 1.0;
  const std::uint64_t rows = row_ptr.size() - 1;
  const std::uint64_t total = row_ptr[rows] - row_ptr[0];
  if (total == 0) return 1.0;
  std::uint64_t worst = 0;
  for (const RowRange& r : ranges) {
    if (r.begin > rows || r.end > rows || r.begin >= r.end) continue;
    worst = std::max(worst, row_ptr[r.end] - row_ptr[r.begin]);
  }
  const double ideal = static_cast<double>(total) / static_cast<double>(ranges.size());
  return ideal > 0 ? static_cast<double>(worst) / ideal : 1.0;
}

}  // namespace dooc::spmv
