// Dense vector kernels used by the iterative solvers, plus the threaded
// SpMV entry point task bodies call with the node's split pool.
#pragma once

#include <cmath>
#include <span>

#include "common/thread_pool.hpp"
#include "spmv/csr.hpp"

namespace dooc::spmv {

/// y = A x, rows split across the pool ("the local scheduler decomposes the
/// tasks to expose more parallelism", realized as row-range splitting).
void multiply_parallel(const CsrView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool);

/// out[i] = sum_k parts[k][i] — the reduction combining partial SpMV
/// results; parts must all have out.size() elements.
void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out);

// Small BLAS-1 helpers (serial; the vectors in play are node-local).
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
void axpy(double alpha, std::span<const double> x, std::span<double> y);   // y += alpha x
void scale(std::span<double> x, double alpha);                             // x *= alpha
void copy(std::span<const double> src, std::span<double> dst);

}  // namespace dooc::spmv

namespace dooc::spmv {

/// y = A x for a symmetric matrix of which only the lower triangle
/// (diagonal included) is stored — MFDn's half-storage scheme (§II: the
/// Hamiltonian is symmetric, so the in-core code keeps ~half the bytes,
/// which is where Table I's ~8.5 bytes/non-zero comes from). Each stored
/// off-diagonal entry (i, j) contributes to both y_i and y_j; the scatter
/// to y_j makes this kernel inherently serial per output vector.
void multiply_symmetric_half(const CsrView& lower, std::span<const double> x,
                             std::span<double> y);

}  // namespace dooc::spmv
