// Dense vector kernels used by the iterative solvers, plus the threaded
// SpMV entry points task bodies call with the node's split pool.
//
// Every hot loop here is parallel (above a work threshold), vectorizable
// (restrict-qualified pointer loops with independent accumulators) and
// load-balanced (nnz-balanced row/chunk partitioning — see partition.hpp).
// Per-kernel GFLOP/s and partition-imbalance gauges are published through
// dooc::obs under kernel.*.
#pragma once

#include <cmath>
#include <span>

#include "common/thread_pool.hpp"
#include "spmv/csr.hpp"
#include "spmv/kernel_config.hpp"
#include "spmv/sell.hpp"

namespace dooc::spmv {

/// y = A x, rows split across the pool ("the local scheduler decomposes the
/// tasks to expose more parallelism", realized as row-range splitting).
/// Runs serial when the pool is trivial or the matrix carries fewer than
/// config.serial_nnz_threshold non-zeros (work gate, not a row gate).
/// Row-partitioned execution preserves the serial per-row summation order,
/// so results are bitwise equal to the serial kernel.
void multiply_parallel(const CsrView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool, const KernelConfig& config = {});

/// Same entry point for SELL-C-σ blocks; chunks are split across the pool
/// using chunk_ptr as the work prefix sum. Bitwise equal to the serial
/// SELL multiply (and to CSR, since each row's entries keep their order).
void multiply_parallel(const SellView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool, const KernelConfig& config = {});

/// Sniff a serialized matrix block (binary CRS or binary SELL, by magic)
/// and run the matching parallel multiply — what the engine's task bodies
/// call so storage blocks can carry either format.
void multiply_any(std::span<const std::byte> block, std::span<const double> x,
                  std::span<double> y, ThreadPool& pool, const KernelConfig& config = {});

/// out[i] = sum_k parts[k][i] — the reduction combining partial SpMV
/// results; parts must all have out.size() elements.
void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out);
/// Pool variant: index range split across workers above the BLAS-1
/// threshold. Summation order over parts is unchanged, so results are
/// bitwise equal to the serial reduction.
void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out,
                 ThreadPool& pool);

// BLAS-1 helpers. Serial forms are restrict-qualified multi-accumulator
// loops (vectorizable); pool overloads split the index range when the
// vector is at least kBlas1ParallelThreshold long. Reductions (dot/norm2)
// accumulate in a fixed lane/chunk order, so results are deterministic for
// a given length and pool size but may differ from the serial sum by
// normal floating-point reassociation (documented tolerance: a few ulp).
constexpr std::size_t kBlas1ParallelThreshold = std::size_t{1} << 15;

double dot(std::span<const double> a, std::span<const double> b);
double dot(std::span<const double> a, std::span<const double> b, ThreadPool& pool);
double norm2(std::span<const double> a);
double norm2(std::span<const double> a, ThreadPool& pool);
void axpy(double alpha, std::span<const double> x, std::span<double> y);  // y += alpha x
void axpy(double alpha, std::span<const double> x, std::span<double> y, ThreadPool& pool);
void scale(std::span<double> x, double alpha);  // x *= alpha
void copy(std::span<const double> src, std::span<double> dst);

}  // namespace dooc::spmv

namespace dooc::spmv {

/// y = A x for a symmetric matrix of which only the lower triangle
/// (diagonal included) is stored — MFDn's half-storage scheme (§II: the
/// Hamiltonian is symmetric, so the in-core code keeps ~half the bytes,
/// which is where Table I's ~8.5 bytes/non-zero comes from). Each stored
/// off-diagonal entry (i, j) contributes to both y_i and y_j; the scatter
/// to y_j makes this serial reference kernel single-threaded per output.
void multiply_symmetric_half(const CsrView& lower, std::span<const double> x,
                             std::span<double> y);

/// Parallel symmetric-half multiply: workers own nnz-balanced row ranges
/// and scatter into thread-private partial y vectors, which a parallel
/// index-sliced reduction then combines. Deterministic for a fixed matrix,
/// balance mode and pool size (partials are summed in partition order);
/// differs from the serial kernel only by floating-point reassociation.
void multiply_symmetric_half_parallel(const CsrView& lower, std::span<const double> x,
                                      std::span<double> y, ThreadPool& pool,
                                      const KernelConfig& config = {});

}  // namespace dooc::spmv
