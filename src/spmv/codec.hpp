// Per-block compression codec for serialized CSR/SELL matrix payloads —
// the CPU-for-I/O-bandwidth trade of the out-of-core hot path (DFOGraph's
// lever, ROADMAP item 2). A compressed block is a self-describing frame
// with its own magic word, so it slots into the existing magic-sniffed
// wire layer: blocks on disk, in flight over dooc::net frames, or handed
// between mixed-configuration processes are either a raw CSR/SELL payload
// or a codec frame, and every consumer can tell which with the first
// 8 bytes.
//
// Frame layout (little-endian, 8-byte aligned):
//   u64 magic       'DCODBLK1'
//   u64 endian      0x0102030405060708 (readers reject foreign byte order)
//   u64 raw_bytes   decoded payload size (validated against a caller cap
//                   BEFORE any allocation — ratio-bomb defense)
//   u64 body_bytes  encoded section stream size following the header
//   u64 flags       bit 0: delta+varint index sections present
//                   bit 1: byte-shuffled + RLE value sections present
//                   bits 8..15: inner format tag (1 = CSR, 2 = SELL)
//   u64 crc         low 32: CRC-32 of the body; high 32: CRC-32 of the
//                   raw (decoded) payload — end-to-end integrity
//
// The body is a sequence of sections, each `varint raw_len | u8 encoding |
// varint enc_len | enc_len bytes`, concatenating to exactly raw_bytes on
// decode. Section encodings:
//   0 raw        verbatim bytes
//   1 delta-u64  monotone u64 array (row_ptr/chunk_ptr): first value then
//                LEB128 varint gaps
//   2 zigzag-u32 u32 array (col_idx/perm incl. pad words): successive
//                differences, zigzag-mapped, LEB128 varint
//   3 shuffle-rle f64 array: bytes transposed into per-byte-plane lanes,
//                then run-length encoded (exponent/sign planes repeat)
//
// Decoding is hostile-input hardened in the same spirit as
// CsrView/SellView::from_bytes: every count is validated against the real
// buffer size with overflow-latched arithmetic, truncated varints and CRC
// mismatches surface as typed CodecError, and the declared raw size is
// capped before allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace dooc::spmv::codec {

constexpr std::uint64_t kCodecMagic = 0x44434F44'424C4B31ull;  // "DCODBLK1"
constexpr std::uint64_t kCodecHeaderWords = 6;
constexpr std::uint64_t kCodecHeaderBytes = kCodecHeaderWords * 8;

/// A codec frame that cannot be decoded: truncated varint stream, body or
/// raw CRC mismatch, ratio-bomb header (declared raw size above the
/// caller's cap), malformed section stream. Subtype of IoError so existing
/// storage retry/failover treats a corrupt frame like any other bad read.
class CodecError : public IoError {
 public:
  explicit CodecError(const std::string& what) : IoError(what) {}
};

enum class Mode {
  Off,       ///< never encode; decode still works (mixed-config interop)
  On,        ///< encode every matrix block, even when it grows
  Adaptive,  ///< encode, keep raw when achieved ratio < min_ratio
};

/// Runtime codec policy, settable programmatically or via the DOOC_CODEC
/// environment variable (see parse()).
struct CodecConfig {
  Mode mode = Mode::Off;
  /// Adaptive gate: store raw unless raw_bytes/encoded_bytes >= min_ratio.
  double min_ratio = 1.05;
  /// Attempt the byte-shuffle + RLE pass on f64 value sections (taken only
  /// when it shrinks the section; incompressible values stay raw either way).
  bool shuffle_values = true;
  /// Storage read path: attempt O_DIRECT block reads (graceful fallback to
  /// buffered pread when the filesystem or alignment refuses).
  bool direct_io = false;
  /// Storage read path: double-buffered read-ahead depth — enqueue_read of
  /// block k also stages up to this many following blocks, so decode of
  /// block k overlaps the read of block k+1. 0 = off.
  int read_ahead = 0;

  [[nodiscard]] bool enabled() const noexcept { return mode != Mode::Off; }

  /// Parse a `key=value,...` spec: `mode=on|off|adaptive` (a bare leading
  /// `on|off|adaptive` token is also accepted), `min_ratio=<float>=1>`,
  /// `shuffle=0|1`, `direct_io=0|1`, `read_ahead=<int>=0>`.
  /// Throws InvalidArgument on unknown keys or malformed values.
  static CodecConfig parse(const std::string& spec);

  /// CodecConfig from the DOOC_CODEC environment variable; defaults
  /// (mode=off) when unset or empty.
  static CodecConfig from_env();
};

[[nodiscard]] const char* mode_name(Mode m) noexcept;

/// Outcome of one encode, for the adaptive policy's sampling and the
/// compression-ratio gauges.
struct EncodeStats {
  std::uint64_t raw_bytes = 0;
  std::uint64_t encoded_bytes = 0;        ///< full frame size (header + body)
  std::uint64_t index_raw_bytes = 0;      ///< row_ptr/chunk_ptr/col_idx/perm
  std::uint64_t index_encoded_bytes = 0;  ///< their section-stream footprint
  std::uint64_t value_raw_bytes = 0;
  std::uint64_t value_encoded_bytes = 0;

  [[nodiscard]] double ratio() const noexcept {
    return encoded_bytes > 0 ? static_cast<double>(raw_bytes) / static_cast<double>(encoded_bytes)
                             : 1.0;
  }
  [[nodiscard]] double index_ratio() const noexcept {
    return index_encoded_bytes > 0 ? static_cast<double>(index_raw_bytes) /
                                         static_cast<double>(index_encoded_bytes)
                                   : 1.0;
  }
};

/// True when `bytes` starts with a codec frame magic.
[[nodiscard]] bool is_encoded(std::span<const std::byte> bytes) noexcept;

/// Validated declared decoded size of a codec frame. Throws CodecError on a
/// bad header or a declared size above `cap` (ratio-bomb defense) — callers
/// pass the size they are prepared to allocate (block bytes, frame cap).
[[nodiscard]] std::uint64_t decoded_bytes(std::span<const std::byte> bytes, std::uint64_t cap);

/// Header-only peek for directory scans: given just the first
/// kCodecHeaderBytes of a file plus the file's total size, return the
/// declared decoded size. Throws CodecError unless the header is well
/// formed, the declared size is within `cap`, and header + body account for
/// exactly `file_bytes`.
[[nodiscard]] std::uint64_t probe_frame(std::span<const std::byte> head, std::uint64_t file_bytes,
                                        std::uint64_t cap);

/// Encode a serialized CSR/SELL payload. Returns nullopt when the payload
/// carries neither matrix magic (unknown payloads travel raw), when
/// cfg.mode == Off, or when mode == Adaptive and the achieved ratio falls
/// below cfg.min_ratio. The encoded frame decodes bitwise-identically to
/// `raw`.
[[nodiscard]] std::optional<DataBuffer> encode_block(std::span<const std::byte> raw,
                                                     const CodecConfig& cfg,
                                                     EncodeStats* stats = nullptr);

/// Decode a codec frame into a fresh buffer of exactly decoded_bytes(...,
/// cap) bytes. Throws CodecError on any malformation (see class docs).
[[nodiscard]] DataBuffer decode_block(std::span<const std::byte> bytes, std::uint64_t cap);

/// Decode if encoded, pass through otherwise — the transparent-interop
/// helper every consumer of possibly-compressed bytes calls.
[[nodiscard]] DataBuffer decode_if_encoded(const DataBuffer& bytes, std::uint64_t cap);

/// Offline ratio prediction for `dooc_matinfo --codec-estimate`: samples
/// column-index deltas and scores their entropy to predict the varint
/// index-stream ratio without running the encoder. Cheap (samples at most
/// ~64Ki deltas) and format-aware (CSR and SELL payloads).
struct CodecEstimate {
  double index_ratio = 1.0;       ///< predicted raw/encoded for index bytes
  double overall_ratio = 1.0;     ///< predicted whole-payload ratio
  double delta_entropy_bits = 0;  ///< sampled entropy of varint byte widths
  std::uint64_t sampled_deltas = 0;
};
[[nodiscard]] CodecEstimate estimate_block(std::span<const std::byte> raw);

}  // namespace dooc::spmv::codec
