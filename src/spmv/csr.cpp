#include "spmv/csr.hpp"

#include <cstring>

#include "spmv/wire.hpp"

namespace dooc::spmv {

namespace {
constexpr std::uint64_t kHeaderWords = 5;  // magic, endian, rows, cols, nnz

std::uint64_t padded_col_bytes(std::uint64_t nnz) {
  const std::uint64_t raw = nnz * sizeof(std::uint32_t);
  return (raw + 7) & ~std::uint64_t{7};
}
}  // namespace

void CsrMatrix::validate() const {
  DOOC_REQUIRE(row_ptr.size() == rows + 1, "row_ptr size must be rows+1");
  DOOC_REQUIRE(row_ptr.front() == 0, "row_ptr must start at 0");
  DOOC_REQUIRE(row_ptr.back() == nnz(), "row_ptr must end at nnz");
  DOOC_REQUIRE(col_idx.size() == values.size(), "col_idx/values size mismatch");
  for (std::uint64_t r = 0; r < rows; ++r) {
    DOOC_REQUIRE(row_ptr[r] <= row_ptr[r + 1], "row_ptr must be monotone");
    for (std::uint64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      DOOC_REQUIRE(col_idx[k] < cols, "column index out of range");
      if (k > row_ptr[r]) {
        DOOC_REQUIRE(col_idx[k - 1] < col_idx[k], "column indices must be strictly increasing");
      }
    }
  }
}

std::uint64_t CsrMatrix::serialized_bytes() const noexcept {
  return kHeaderWords * 8 + (rows + 1) * 8 + padded_col_bytes(nnz()) + nnz() * 8;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  DOOC_REQUIRE(x.size() >= cols && y.size() >= rows, "operand size mismatch in CSR multiply");
  for (std::uint64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (std::uint64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += values[k] * x[col_idx[k]];
    }
    y[r] = acc;
  }
}

void serialize_csr(const CsrMatrix& m, std::vector<std::byte>& out) {
  const std::uint64_t header[kHeaderWords] = {kCsrMagic, kEndianProbe, m.rows, m.cols, m.nnz()};
  const std::size_t base = out.size();
  out.resize(base + m.serialized_bytes());
  std::byte* p = out.data() + base;
  auto append = [&p](const void* src, std::size_t n) {
    std::memcpy(p, src, n);
    p += n;
  };
  append(header, sizeof(header));
  append(m.row_ptr.data(), (m.rows + 1) * 8);
  append(m.col_idx.data(), m.nnz() * 4);
  const std::uint64_t pad = padded_col_bytes(m.nnz()) - m.nnz() * 4;
  if (pad != 0) {
    const std::uint64_t zero = 0;
    append(&zero, pad);
  }
  append(m.values.data(), m.nnz() * 8);
}

CsrView CsrView::from_bytes(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderWords * 8) throw IoError("binary CRS: truncated header");
  std::uint64_t header[kHeaderWords];
  std::memcpy(header, bytes.data(), sizeof(header));
  if (header[0] != kCsrMagic) throw IoError("binary CRS: bad magic");
  if (header[1] != kEndianProbe) throw IoError("binary CRS: foreign byte order");
  CsrView v;
  v.rows_ = header[2];
  v.cols_ = header[3];
  v.nnz_ = header[4];
  // Overflow-checked byte count: an adversarial header (rows near 2^64,
  // huge nnz) must not wrap `need` back under bytes.size() and turn the
  // truncation check into an out-of-bounds read.
  std::uint64_t row_entries;
  wire::ByteCount need;
  if (!wire::checked_add(v.rows_, 1, row_entries)) {
    throw IoError("binary CRS: header overflows size computation");
  }
  need.add(kHeaderWords * 8)
      .add_u64_array(row_entries)
      .add_padded_u32_array(v.nnz_)
      .add_u64_array(v.nnz_);
  if (!need.ok()) throw IoError("binary CRS: header overflows size computation");
  if (bytes.size() < need.total()) throw IoError("binary CRS: truncated payload");
  const std::byte* p = bytes.data() + kHeaderWords * 8;
  v.row_ptr_ = {reinterpret_cast<const std::uint64_t*>(p), v.rows_ + 1};
  p += (v.rows_ + 1) * 8;
  v.col_idx_ = {reinterpret_cast<const std::uint32_t*>(p), v.nnz_};
  p += padded_col_bytes(v.nnz_);
  v.values_ = {reinterpret_cast<const double*>(p), v.nnz_};
  return v;
}

void CsrView::multiply_rows(std::span<const double> x, std::span<double> y,
                            std::uint64_t row_begin, std::uint64_t row_end) const {
  DOOC_REQUIRE(row_end <= rows_ && row_begin <= row_end, "row range out of bounds");
  DOOC_REQUIRE(x.size() >= cols_ && y.size() >= rows_, "operand size mismatch in CSR multiply");
  const std::uint64_t* rp = row_ptr_.data();
  const std::uint32_t* ci = col_idx_.data();
  const double* va = values_.data();
  const double* xv = x.data();
  for (std::uint64_t r = row_begin; r < row_end; ++r) {
    double acc = 0.0;
    for (std::uint64_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += va[k] * xv[ci[k]];
    }
    y[r] = acc;
  }
}

CsrMatrix materialize(const CsrView& view) {
  CsrMatrix m;
  m.rows = view.rows();
  m.cols = view.cols();
  m.row_ptr.assign(view.row_ptr().begin(), view.row_ptr().end());
  m.col_idx.assign(view.col_idx().begin(), view.col_idx().end());
  m.values.assign(view.values().begin(), view.values().end());
  return m;
}

}  // namespace dooc::spmv
