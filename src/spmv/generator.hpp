// Sparse matrix generators.
//
// UniformGap is the paper's synthetic workload (§V): "submatrices have been
// generated randomly, such that the separation between two consecutive
// nonzero entries on a row is uniformly distributed in the interval [1:2d],
// where d is a parameter. d is chosen to yield a certain number of total
// non-zero elements in a sub-matrix."  Expected gap is (1+2d)/2, so a row
// of C columns carries ~C/((1+2d)/2) non-zeros; choose_gap_parameter()
// inverts that to hit an nnz target.
//
// The banded and diagonally-dominant generators support tests and the
// Lanczos/CG examples (known spectra / guaranteed SPD).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "spmv/csr.hpp"

namespace dooc::spmv {

/// d such that a rows×cols uniform-gap matrix has ~target_nnz non-zeros.
[[nodiscard]] double choose_gap_parameter(std::uint64_t rows, std::uint64_t cols,
                                          std::uint64_t target_nnz);

/// The paper's random matrix: per row, column gaps uniform in [1, 2d].
/// Values are uniform in [-1, 1). Deterministic in `seed`.
[[nodiscard]] CsrMatrix generate_uniform_gap(std::uint64_t rows, std::uint64_t cols, double d,
                                             std::uint64_t seed);

/// Symmetric banded matrix with the given half bandwidth; entry (i,j) is
/// 1/(1+|i-j|) off the diagonal and `diagonal` on it. With a large enough
/// diagonal it is strictly diagonally dominant, hence SPD — handy for CG.
[[nodiscard]] CsrMatrix generate_banded(std::uint64_t n, std::uint64_t half_bandwidth,
                                        double diagonal);

/// Standard 1-D Laplacian (tridiagonal [-1, 2, -1]); eigenvalues are
/// 4 sin^2(k pi / (2(n+1))) — the closed form the Lanczos tests check
/// against.
[[nodiscard]] CsrMatrix generate_laplacian_1d(std::uint64_t n);

/// Skewed workload: per-row population drawn from a Pareto (power-law)
/// distribution with shape `alpha` (> 1) scaled to a mean of
/// `mean_row_nnz`, capped at `cols`. A few rows carry most of the
/// non-zeros — the shape that starves an equal-row thread split and
/// motivates nnz-balanced partitioning and SELL-C-σ. Deterministic in
/// `seed`; column positions follow the same uniform-gap walk as
/// generate_uniform_gap with a per-row gap parameter.
[[nodiscard]] CsrMatrix generate_power_law(std::uint64_t rows, std::uint64_t cols,
                                           double mean_row_nnz, double alpha,
                                           std::uint64_t seed);

/// Restrict a matrix to a sub-block [row0, row0+rows) × [col0, col0+cols)
/// (column indices re-based). Used to cut a global matrix into the paper's
/// K×K grid.
[[nodiscard]] CsrMatrix extract_block(const CsrMatrix& m, std::uint64_t row0, std::uint64_t rows,
                                      std::uint64_t col0, std::uint64_t cols);

}  // namespace dooc::spmv

namespace dooc::spmv {

/// Keep only the lower triangle (diagonal included) of a matrix — the
/// half-storage form consumed by multiply_symmetric_half().
[[nodiscard]] CsrMatrix extract_lower_triangle(const CsrMatrix& m);

/// Symmetrize an arbitrary square matrix: (A + A^T) / 2.
[[nodiscard]] CsrMatrix symmetrize(const CsrMatrix& m);

}  // namespace dooc::spmv
