#include "spmv/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/crc32.hpp"
#include "spmv/csr.hpp"
#include "spmv/sell.hpp"
#include "spmv/wire.hpp"

namespace dooc::spmv::codec {

namespace {

enum : std::uint8_t {
  kSectionRaw = 0,
  kSectionDeltaU64 = 1,
  kSectionZigzagU32 = 2,
  kSectionShuffleRle = 3,
};

constexpr std::uint64_t kFlagVarintIndices = 1ull << 0;
constexpr std::uint64_t kFlagShuffledValues = 1ull << 1;
constexpr std::uint64_t kFormatShift = 8;
constexpr std::uint64_t kFormatCsr = 1;
constexpr std::uint64_t kFormatSell = 2;

// --- LEB128 varints --------------------------------------------------------

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t varint_bytes(std::uint64_t v) noexcept {
  std::uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Bounded varint read; throws CodecError on truncation or an overlong
/// (> 10 byte) encoding — the "truncated varint stream" hostile case.
std::uint64_t get_varint(std::span<const std::byte> body, std::uint64_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos >= body.size()) throw CodecError("codec frame: truncated varint stream");
    const auto b = static_cast<std::uint8_t>(body[pos++]);
    if (shift == 63 && (b & ~std::uint8_t{1}) != 0) {
      throw CodecError("codec frame: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  throw CodecError("codec frame: overlong varint");
}

/// Fast-path varint read: the caller guarantees 10 readable bytes at `pos`
/// (the maximum encoding length), so no per-byte bounds check is needed.
/// Same value and overflow semantics as get_varint.
inline std::uint64_t get_varint_fast(const std::byte* body, std::uint64_t& pos) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const auto b = static_cast<std::uint8_t>(body[pos++]);
    if (shift == 63 && (b & ~std::uint8_t{1}) != 0) {
      throw CodecError("codec frame: varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw CodecError("codec frame: overlong varint");
}

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// --- section encoders ------------------------------------------------------

/// Monotone u64 array (row_ptr / chunk_ptr): first value, then gaps.
/// Returns false (leaving `out` untouched) if the array is not monotone.
bool encode_delta_u64(std::span<const std::byte> raw, std::vector<std::byte>& out) {
  const std::uint64_t n = raw.size() / 8;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v;
    std::memcpy(&v, raw.data() + i * 8, 8);
    if (i == 0) {
      put_varint(out, v);
    } else {
      if (v < prev) return false;
      put_varint(out, v - prev);
    }
    prev = v;
  }
  return true;
}

void decode_delta_u64(std::span<const std::byte> body, std::uint64_t& pos, std::uint64_t enc_end,
                      std::byte* dst, std::uint64_t raw_len) {
  if (raw_len % 8 != 0) throw CodecError("codec frame: delta-u64 section not 8-byte multiple");
  const std::uint64_t n = raw_len / 8;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    // A varint is at most 10 bytes: with that much headroom before enc_end
    // the unchecked read cannot overrun the section. The bounded tail read
    // throws on any varint that would cross enc_end.
    const std::uint64_t gap = enc_end - pos >= 10 ? get_varint_fast(body.data(), pos)
                                                  : get_varint(body.first(enc_end), pos);
    std::uint64_t v;
    if (i == 0) {
      v = gap;
    } else if (!wire::checked_add(prev, gap, v)) {
      throw CodecError("codec frame: delta-u64 section overflows");
    }
    std::memcpy(dst + i * 8, &v, 8);
    prev = v;
  }
}

/// u32 array (col_idx / perm, including pad words): zigzag varints of
/// successive differences. Handles the drop at each row/chunk boundary and
/// the final zero pad word without knowing the matrix structure.
void encode_zigzag_u32(std::span<const std::byte> raw, std::vector<std::byte>& out) {
  const std::uint64_t n = raw.size() / 4;
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t v;
    std::memcpy(&v, raw.data() + i * 4, 4);
    put_varint(out, zigzag(static_cast<std::int64_t>(v) - prev));
    prev = static_cast<std::int64_t>(v);
  }
}

void decode_zigzag_u32(std::span<const std::byte> body, std::uint64_t& pos, std::uint64_t enc_end,
                       std::byte* dst, std::uint64_t raw_len) {
  if (raw_len % 4 != 0) throw CodecError("codec frame: zigzag-u32 section not 4-byte multiple");
  const std::uint64_t n = raw_len / 4;
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t gap = enc_end - pos >= 10 ? get_varint_fast(body.data(), pos)
                                                  : get_varint(body.first(enc_end), pos);
    // Wrapping unsigned add: a hostile delta near INT64_MAX/MIN must not hit
    // signed-overflow UB, and any out-of-range true sum lands outside
    // [0, 2^32) after the wrap, so the range check stays exact.
    const std::uint64_t cur = prev + static_cast<std::uint64_t>(unzigzag(gap));
    if (cur > 0xFFFFFFFFull) {
      throw CodecError("codec frame: zigzag-u32 value out of range");
    }
    const auto v = static_cast<std::uint32_t>(cur);
    std::memcpy(dst + i * 4, &v, 4);
    prev = cur;
  }
}

/// f64 array: transpose into 8 byte planes (all byte-0s, then byte-1s, ...)
/// so the repetitive sign/exponent bytes line up, then run-length encode.
/// RLE tokens: control c < 128 -> (c+1) literal bytes follow; c >= 128 ->
/// one byte follows, repeated (c - 128 + 3) times.
void rle_flush_literals(std::vector<std::byte>& out, const std::byte* lit, std::size_t n) {
  while (n > 0) {
    const std::size_t take = std::min<std::size_t>(n, 128);
    out.push_back(static_cast<std::byte>(take - 1));
    out.insert(out.end(), lit, lit + take);
    lit += take;
    n -= take;
  }
}

void encode_shuffle_rle(std::span<const std::byte> raw, std::vector<std::byte>& out) {
  const std::uint64_t n = raw.size() / 8;
  std::vector<std::byte> planes(raw.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t p = 0; p < 8; ++p) planes[p * n + i] = raw[i * 8 + p];
  }
  std::size_t lit_begin = 0;
  std::size_t i = 0;
  while (i < planes.size()) {
    std::size_t run = 1;
    while (i + run < planes.size() && planes[i + run] == planes[i] && run < 130) ++run;
    if (run >= 3) {
      rle_flush_literals(out, planes.data() + lit_begin, i - lit_begin);
      out.push_back(static_cast<std::byte>(128 + (run - 3)));
      out.push_back(planes[i]);
      i += run;
      lit_begin = i;
    } else {
      i += run;
    }
  }
  rle_flush_literals(out, planes.data() + lit_begin, planes.size() - lit_begin);
}

void decode_shuffle_rle(std::span<const std::byte> body, std::uint64_t& pos, std::uint64_t enc_end,
                        std::byte* dst, std::uint64_t raw_len) {
  if (raw_len % 8 != 0) throw CodecError("codec frame: shuffle-rle section not 8-byte multiple");
  std::vector<std::byte> planes(raw_len);
  std::uint64_t filled = 0;
  while (filled < raw_len) {
    if (pos >= enc_end) throw CodecError("codec frame: shuffle-rle section underruns");
    const auto c = static_cast<std::uint8_t>(body[pos++]);
    if (c < 128) {
      const std::uint64_t take = c + 1u;
      if (pos + take > enc_end) throw CodecError("codec frame: shuffle-rle literal truncated");
      if (filled + take > raw_len) throw CodecError("codec frame: shuffle-rle overruns output");
      std::memcpy(planes.data() + filled, body.data() + pos, take);
      pos += take;
      filled += take;
    } else {
      if (pos >= enc_end) throw CodecError("codec frame: shuffle-rle run truncated");
      const std::uint64_t run = static_cast<std::uint64_t>(c - 128) + 3;
      if (filled + run > raw_len) throw CodecError("codec frame: shuffle-rle overruns output");
      std::memset(planes.data() + filled, static_cast<int>(body[pos++]), run);
      filled += run;
    }
  }
  // Un-shuffle: gather one byte per plane and store the reassembled f64 as
  // a single 8-byte word (8 sequential read streams, 1 sequential write).
  const std::uint64_t n = raw_len / 8;
  const std::byte* lane = planes.data();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t w = 0;
    for (std::uint64_t p = 0; p < 8; ++p) {
      w |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(lane[p * n + i])) << (8 * p);
    }
    std::memcpy(dst + i * 8, &w, 8);
  }
}

// --- section assembly ------------------------------------------------------

struct SectionPlan {
  std::uint64_t offset = 0;  ///< into the raw payload
  std::uint64_t length = 0;
  std::uint8_t preferred = kSectionRaw;
  bool is_index = false;  ///< counts toward the index-stream ratio
  bool is_value = false;
};

/// Split a serialized matrix payload into codec sections. Returns false
/// when the bytes carry neither matrix magic.
bool plan_sections(std::span<const std::byte> raw, std::vector<SectionPlan>& plan,
                   std::uint64_t& format_tag) {
  if (raw.size() < 8) return false;
  std::uint64_t magic;
  std::memcpy(&magic, raw.data(), 8);
  const auto pad4 = [](std::uint64_t n) { return (n * 4 + 7) & ~std::uint64_t{7}; };
  if (magic == kCsrMagic) {
    const CsrView v = CsrView::from_bytes(raw);  // validates the layout
    format_tag = kFormatCsr;
    std::uint64_t at = 5 * 8;
    plan.push_back({0, at, kSectionRaw, false, false});
    plan.push_back({at, (v.rows() + 1) * 8, kSectionDeltaU64, true, false});
    at += (v.rows() + 1) * 8;
    plan.push_back({at, pad4(v.nnz()), kSectionZigzagU32, true, false});
    at += pad4(v.nnz());
    plan.push_back({at, v.nnz() * 8, kSectionShuffleRle, false, true});
    at += v.nnz() * 8;
    if (at < raw.size()) plan.push_back({at, raw.size() - at, kSectionRaw, false, false});
    return true;
  }
  if (magic == kSellMagic) {
    const SellView v = SellView::from_bytes(raw);
    format_tag = kFormatSell;
    const std::uint64_t padded = v.chunk_ptr().empty() ? 0 : v.chunk_ptr().back();
    std::uint64_t at = 8 * 8;
    plan.push_back({0, at, kSectionRaw, false, false});
    plan.push_back({at, (v.num_chunks() + 1) * 8, kSectionDeltaU64, true, false});
    at += (v.num_chunks() + 1) * 8;
    plan.push_back({at, pad4(v.rows()), kSectionZigzagU32, true, false});
    at += pad4(v.rows());
    plan.push_back({at, pad4(padded), kSectionZigzagU32, true, false});
    at += pad4(padded);
    plan.push_back({at, padded * 8, kSectionShuffleRle, false, true});
    at += padded * 8;
    if (at < raw.size()) plan.push_back({at, raw.size() - at, kSectionRaw, false, false});
    return true;
  }
  return false;
}

}  // namespace

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::On: return "on";
    case Mode::Adaptive: return "adaptive";
  }
  return "unknown";
}

CodecConfig CodecConfig::parse(const std::string& spec) {
  CodecConfig cfg;
  if (spec.empty()) return cfg;
  const auto parse_mode = [](const std::string& v) -> std::optional<Mode> {
    if (v == "off") return Mode::Off;
    if (v == "on") return Mode::On;
    if (v == "adaptive") return Mode::Adaptive;
    return std::nullopt;
  };
  const auto parse_bool = [](const std::string& key, const std::string& v) {
    if (v == "0" || v == "false") return false;
    if (v == "1" || v == "true") return true;
    throw InvalidArgument("DOOC_CODEC: '" + key + "' wants 0|1, got '" + v + "'");
  };
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      const auto m = parse_mode(tok);
      if (!first || !m) {
        throw InvalidArgument("DOOC_CODEC: unknown token '" + tok +
                              "' (want mode=on|off|adaptive, min_ratio=, shuffle=, direct_io=, "
                              "read_ahead=)");
      }
      cfg.mode = *m;
    } else {
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "mode") {
        const auto m = parse_mode(val);
        if (!m) throw InvalidArgument("DOOC_CODEC: bad mode '" + val + "'");
        cfg.mode = *m;
      } else if (key == "min_ratio") {
        char* end = nullptr;
        const double r = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0' || !(r >= 1.0)) {
          throw InvalidArgument("DOOC_CODEC: min_ratio wants a float >= 1, got '" + val + "'");
        }
        cfg.min_ratio = r;
      } else if (key == "shuffle") {
        cfg.shuffle_values = parse_bool(key, val);
      } else if (key == "direct_io") {
        cfg.direct_io = parse_bool(key, val);
      } else if (key == "read_ahead") {
        char* end = nullptr;
        const long n = std::strtol(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0' || n < 0 || n > 64) {
          throw InvalidArgument("DOOC_CODEC: read_ahead wants an int in [0,64], got '" + val +
                                "'");
        }
        cfg.read_ahead = static_cast<int>(n);
      } else {
        throw InvalidArgument("DOOC_CODEC: unknown key '" + key + "'");
      }
    }
    first = false;
  }
  return cfg;
}

CodecConfig CodecConfig::from_env() {
  const char* env = std::getenv("DOOC_CODEC");
  return env != nullptr ? parse(env) : CodecConfig{};
}

bool is_encoded(std::span<const std::byte> bytes) noexcept {
  if (bytes.size() < 8) return false;
  std::uint64_t magic;
  std::memcpy(&magic, bytes.data(), 8);
  return magic == kCodecMagic;
}

namespace {

struct FrameHeader {
  std::uint64_t raw_bytes = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t flags = 0;
  std::uint32_t body_crc = 0;
  std::uint32_t raw_crc = 0;
};

FrameHeader parse_header(std::span<const std::byte> bytes, std::uint64_t cap) {
  if (bytes.size() < kCodecHeaderBytes) throw CodecError("codec frame: truncated header");
  std::uint64_t words[kCodecHeaderWords];
  std::memcpy(words, bytes.data(), sizeof(words));
  if (words[0] != kCodecMagic) throw CodecError("codec frame: bad magic");
  if (words[1] != kEndianProbe) throw CodecError("codec frame: foreign byte order");
  FrameHeader h;
  h.raw_bytes = words[2];
  h.body_bytes = words[3];
  h.flags = words[4];
  h.body_crc = static_cast<std::uint32_t>(words[5] & 0xFFFFFFFFull);
  h.raw_crc = static_cast<std::uint32_t>(words[5] >> 32);
  // Ratio-bomb defense: the declared decoded size is validated against the
  // caller's cap BEFORE any allocation sized from it.
  if (h.raw_bytes > cap) {
    throw CodecError("codec frame: declared decoded size " + std::to_string(h.raw_bytes) +
                     " exceeds cap " + std::to_string(cap));
  }
  std::uint64_t need;
  if (!wire::checked_add(kCodecHeaderBytes, h.body_bytes, need) || bytes.size() < need) {
    throw CodecError("codec frame: truncated body");
  }
  return h;
}

}  // namespace

std::uint64_t decoded_bytes(std::span<const std::byte> bytes, std::uint64_t cap) {
  return parse_header(bytes, cap).raw_bytes;
}

std::uint64_t probe_frame(std::span<const std::byte> head, std::uint64_t file_bytes,
                          std::uint64_t cap) {
  if (head.size() < kCodecHeaderBytes) throw CodecError("codec frame: truncated header");
  std::uint64_t words[kCodecHeaderWords];
  std::memcpy(words, head.data(), sizeof(words));
  if (words[0] != kCodecMagic) throw CodecError("codec frame: bad magic");
  if (words[1] != kEndianProbe) throw CodecError("codec frame: foreign byte order");
  if (words[2] > cap) {
    throw CodecError("codec frame: declared decoded size " + std::to_string(words[2]) +
                     " exceeds cap " + std::to_string(cap));
  }
  std::uint64_t need;
  if (!wire::checked_add(kCodecHeaderBytes, words[3], need) || need != file_bytes) {
    throw CodecError("codec frame: body does not match file size");
  }
  return words[2];
}

std::optional<DataBuffer> encode_block(std::span<const std::byte> raw, const CodecConfig& cfg,
                                       EncodeStats* stats) {
  if (cfg.mode == Mode::Off) return std::nullopt;
  std::vector<SectionPlan> plan;
  std::uint64_t format_tag = 0;
  if (!plan_sections(raw, plan, format_tag)) return std::nullopt;

  EncodeStats st;
  st.raw_bytes = raw.size();
  std::vector<std::byte> body;
  body.reserve(raw.size() / 2);
  std::vector<std::byte> scratch;
  std::uint64_t flags = format_tag << kFormatShift;
  for (const SectionPlan& s : plan) {
    // Zero-length sections (empty blocks have no col_idx/values) would sit
    // after the decoder's fill loop has already reached raw_bytes — emit
    // nothing for them.
    if (s.length == 0) continue;
    const auto raw_section = raw.subspan(s.offset, s.length);
    scratch.clear();
    std::uint8_t encoding = kSectionRaw;
    if (s.preferred == kSectionDeltaU64) {
      if (!encode_delta_u64(raw_section, scratch)) scratch.clear();
      else encoding = kSectionDeltaU64;
    } else if (s.preferred == kSectionZigzagU32) {
      encode_zigzag_u32(raw_section, scratch);
      encoding = kSectionZigzagU32;
    } else if (s.preferred == kSectionShuffleRle && cfg.shuffle_values && s.length > 0) {
      encode_shuffle_rle(raw_section, scratch);
      encoding = kSectionShuffleRle;
    }
    // Keep the encoded form only when it actually shrinks the section —
    // incompressible streams ride along raw inside the frame. The value
    // pass must shrink by a margin (1/16th): its unshuffle is the priciest
    // decode, so a ~1% saving would cost more CPU than the bytes it buys.
    const std::uint64_t keep_below =
        encoding == kSectionShuffleRle ? s.length - s.length / 16 : s.length;
    if (encoding == kSectionRaw || scratch.size() >= keep_below) {
      encoding = kSectionRaw;
      scratch.assign(raw_section.begin(), raw_section.end());
    }
    if (s.is_index) {
      st.index_raw_bytes += s.length;
      st.index_encoded_bytes +=
          varint_bytes(s.length) + 1 + varint_bytes(scratch.size()) + scratch.size();
      if (encoding != kSectionRaw) flags |= kFlagVarintIndices;
    }
    if (s.is_value) {
      st.value_raw_bytes += s.length;
      st.value_encoded_bytes +=
          varint_bytes(s.length) + 1 + varint_bytes(scratch.size()) + scratch.size();
      if (encoding != kSectionRaw) flags |= kFlagShuffledValues;
    }
    put_varint(body, s.length);
    body.push_back(static_cast<std::byte>(encoding));
    put_varint(body, scratch.size());
    body.insert(body.end(), scratch.begin(), scratch.end());
  }

  st.encoded_bytes = kCodecHeaderBytes + body.size();
  if (stats != nullptr) *stats = st;
  if (cfg.mode == Mode::Adaptive && st.ratio() < cfg.min_ratio) return std::nullopt;

  DataBuffer frame(st.encoded_bytes);
  const std::uint64_t crc_word =
      static_cast<std::uint64_t>(common::crc32(std::span<const std::byte>(body))) |
      (static_cast<std::uint64_t>(common::crc32(raw)) << 32);
  const std::uint64_t words[kCodecHeaderWords] = {kCodecMagic, kEndianProbe,         raw.size(),
                                                  body.size(), flags,                crc_word};
  std::memcpy(frame.data(), words, sizeof(words));
  std::memcpy(frame.data() + kCodecHeaderBytes, body.data(), body.size());
  return frame;
}

DataBuffer decode_block(std::span<const std::byte> bytes, std::uint64_t cap) {
  const FrameHeader h = parse_header(bytes, cap);
  const auto body = bytes.subspan(kCodecHeaderBytes, h.body_bytes);
  if (common::crc32(body) != h.body_crc) {
    throw CodecError("codec frame: body CRC mismatch (corrupt frame)");
  }
  DataBuffer out(h.raw_bytes);
  std::uint64_t pos = 0;
  std::uint64_t filled = 0;
  while (filled < h.raw_bytes) {
    const std::uint64_t raw_len = get_varint(body, pos);
    if (pos >= body.size()) throw CodecError("codec frame: truncated section header");
    const auto encoding = static_cast<std::uint8_t>(body[pos++]);
    const std::uint64_t enc_len = get_varint(body, pos);
    std::uint64_t enc_end;
    if (!wire::checked_add(pos, enc_len, enc_end) || enc_end > body.size()) {
      throw CodecError("codec frame: section overruns body");
    }
    std::uint64_t next_filled;
    if (!wire::checked_add(filled, raw_len, next_filled) || next_filled > h.raw_bytes) {
      throw CodecError("codec frame: sections exceed declared decoded size");
    }
    std::byte* dst = out.data() + filled;
    switch (encoding) {
      case kSectionRaw:
        if (enc_len != raw_len) throw CodecError("codec frame: raw section length mismatch");
        std::memcpy(dst, body.data() + pos, raw_len);
        pos = enc_end;
        break;
      case kSectionDeltaU64:
        decode_delta_u64(body, pos, enc_end, dst, raw_len);
        break;
      case kSectionZigzagU32:
        decode_zigzag_u32(body, pos, enc_end, dst, raw_len);
        break;
      case kSectionShuffleRle:
        decode_shuffle_rle(body, pos, enc_end, dst, raw_len);
        break;
      default:
        throw CodecError("codec frame: unknown section encoding " + std::to_string(encoding));
    }
    if (pos != enc_end) throw CodecError("codec frame: section length mismatch");
    filled = next_filled;
  }
  if (pos != body.size()) throw CodecError("codec frame: trailing bytes after last section");
  if (common::crc32(out.span()) != h.raw_crc) {
    throw CodecError("codec frame: decoded payload CRC mismatch");
  }
  return out;
}

DataBuffer decode_if_encoded(const DataBuffer& bytes, std::uint64_t cap) {
  if (!is_encoded(bytes.span())) return bytes;
  return decode_block(bytes.span(), cap);
}

CodecEstimate estimate_block(std::span<const std::byte> raw) {
  CodecEstimate est;
  std::vector<SectionPlan> plan;
  std::uint64_t format_tag = 0;
  if (!plan_sections(raw, plan, format_tag)) return est;

  // Sample zigzag deltas of the u32 index sections and the gap widths of
  // the u64 pointer sections; predict the varint footprint from the byte
  // widths and score their distribution's entropy for the report.
  constexpr std::uint64_t kMaxSamples = 64 * 1024;
  std::uint64_t index_raw = 0;
  std::uint64_t value_raw = 0;
  double predicted_index = 0;
  // Valid varint widths are 1..10 bytes (a u64 delta >= 2^63 takes 10);
  // indexed directly by width, so slot 0 stays unused.
  std::uint64_t width_hist[11] = {};
  std::uint64_t sampled = 0;
  for (const SectionPlan& s : plan) {
    if (s.is_value) value_raw += s.length;
    if (!s.is_index) continue;
    index_raw += s.length;
    const auto section = raw.subspan(s.offset, s.length);
    if (s.preferred == kSectionDeltaU64) {
      const std::uint64_t n = s.length / 8;
      const std::uint64_t stride = std::max<std::uint64_t>(1, n / kMaxSamples);
      std::uint64_t bytes_for_sampled = 0;
      std::uint64_t taken = 0;
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < n; i += stride) {
        std::uint64_t v;
        std::memcpy(&v, section.data() + i * 8, 8);
        const std::uint64_t gap = v >= prev ? v - prev : prev - v;
        const std::uint64_t w = varint_bytes(gap / std::max<std::uint64_t>(1, stride));
        bytes_for_sampled += w;
        ++width_hist[w];
        ++taken;
        prev = v;
      }
      if (taken > 0) {
        predicted_index += static_cast<double>(bytes_for_sampled) / static_cast<double>(taken) *
                           static_cast<double>(n);
        sampled += taken;
      }
    } else {
      const std::uint64_t n = s.length / 4;
      const std::uint64_t stride = std::max<std::uint64_t>(1, n / kMaxSamples);
      std::uint64_t bytes_for_sampled = 0;
      std::uint64_t taken = 0;
      std::int64_t prev = 0;
      for (std::uint64_t i = 0; i < n; i += stride) {
        std::uint32_t v;
        std::memcpy(&v, section.data() + i * 4, 4);
        // Contiguous deltas are what the encoder sees; a strided sample
        // approximates them by scaling the observed jump back down.
        const std::int64_t jump =
            (static_cast<std::int64_t>(v) - prev) / static_cast<std::int64_t>(stride);
        const std::uint64_t w = varint_bytes(zigzag(jump));
        bytes_for_sampled += w;
        ++width_hist[w];
        ++taken;
        prev = static_cast<std::int64_t>(v);
      }
      if (taken > 0) {
        predicted_index += static_cast<double>(bytes_for_sampled) / static_cast<double>(taken) *
                           static_cast<double>(n);
        sampled += taken;
      }
    }
  }
  est.sampled_deltas = sampled;
  if (predicted_index > 0 && index_raw > 0) {
    est.index_ratio = static_cast<double>(index_raw) / predicted_index;
    // Conservative: assume values ride raw (the adaptive value pass only
    // helps padded/structured payloads).
    est.overall_ratio = static_cast<double>(index_raw + value_raw) /
                        (predicted_index + static_cast<double>(value_raw));
  }
  if (sampled > 0) {
    double h = 0;
    for (const std::uint64_t c : width_hist) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / static_cast<double>(sampled);
      h -= p * std::log2(p);
    }
    est.delta_entropy_bits = h;
  }
  return est;
}

}  // namespace dooc::spmv::codec
