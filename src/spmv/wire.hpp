// Overflow-checked arithmetic for parsing untrusted serialized-matrix
// headers: a hostile rows/nnz can wrap the byte-count computation past the
// buffer size and turn a truncation check into an out-of-bounds read. All
// helpers return false (or no value) on wraparound instead.
#pragma once

#include <cstdint>
#include <optional>

namespace dooc::spmv::wire {

[[nodiscard]] inline bool checked_add(std::uint64_t a, std::uint64_t b, std::uint64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

[[nodiscard]] inline bool checked_mul(std::uint64_t a, std::uint64_t b, std::uint64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

/// n 4-byte words padded up to an 8-byte boundary; nullopt on overflow.
[[nodiscard]] inline std::optional<std::uint64_t> padded_u32_bytes(std::uint64_t n) {
  std::uint64_t raw, padded;
  if (!checked_mul(n, 4, raw) || !checked_add(raw, 7, padded)) return std::nullopt;
  return padded & ~std::uint64_t{7};
}

/// Running total that latches overflow: acc.add(x).add(y).ok() style.
class ByteCount {
 public:
  ByteCount& add(std::uint64_t n) {
    ok_ = ok_ && checked_add(total_, n, total_);
    return *this;
  }
  ByteCount& add_u64_array(std::uint64_t count) {
    std::uint64_t bytes;
    ok_ = ok_ && checked_mul(count, 8, bytes) && checked_add(total_, bytes, total_);
    return *this;
  }
  ByteCount& add_padded_u32_array(std::uint64_t count) {
    const auto bytes = padded_u32_bytes(count);
    ok_ = ok_ && bytes.has_value() && checked_add(total_, *bytes, total_);
    return *this;
  }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  std::uint64_t total_ = 0;
  bool ok_ = true;
};

}  // namespace dooc::spmv::wire
