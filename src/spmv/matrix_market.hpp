// Matrix Market (.mtx) interchange I/O — the standard exchange format for
// sparse matrices, so real matrices (SuiteSparse, NIST) can be dropped into
// the middleware and deployed as binary-CSR grids.
//
// Supported: "matrix coordinate real {general|symmetric}" (symmetric files
// are expanded to full storage on read) and "matrix coordinate pattern"
// (values default to 1.0). Writers emit coordinate real general, 1-based.
#pragma once

#include <iosfwd>
#include <string>

#include "spmv/csr.hpp"

namespace dooc::spmv {

/// Parse a Matrix Market stream. Throws IoError on malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in coordinate/real/general form.
void write_matrix_market(std::ostream& out, const CsrMatrix& m);
void write_matrix_market_file(const std::string& path, const CsrMatrix& m);

}  // namespace dooc::spmv
