// K×K block partitioning of a square matrix and its deployment into the
// distributed storage layer (paper §IV): "the A matrix is partitioned into
// sub-matrices of a K*K square grid ... Each sub-matrix is stored in a
// separate file in binary Compressed Row Storage format."
//
// Each sub-matrix file is imported as a single-block array (the paper's
// sub-matrix is "the smallest unit of data transferred"), named A_u_v by
// grid coordinates. The initial vector is partitioned conformally with the
// row partition into K sub-vector arrays.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spmv/csr.hpp"
#include "spmv/kernel_config.hpp"
#include "storage/storage_cluster.hpp"

namespace dooc::spmv {

/// Uniform K-way partition of [0, n).
class BlockGrid {
 public:
  BlockGrid() = default;
  BlockGrid(std::uint64_t n, int k);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] int k() const noexcept { return k_; }

  [[nodiscard]] std::uint64_t part_begin(int p) const;
  [[nodiscard]] std::uint64_t part_size(int p) const;

  /// Canonical array names.
  [[nodiscard]] static std::string matrix_name(int u, int v, const std::string& prefix = "A");
  [[nodiscard]] static std::string vector_name(const std::string& base, int iteration, int part);
  [[nodiscard]] static std::string partial_name(const std::string& base, int iteration, int u,
                                                int v);

 private:
  std::uint64_t n_ = 0;
  int k_ = 0;
};

/// Maps grid block (u, v) to the owning node. The paper's Fig. 5 scenario
/// stores column strips (node i owns A_{*,i}); its testbed experiments give
/// each node a square sub-block of the grid.
using BlockOwner = std::function<int(int u, int v)>;

[[nodiscard]] BlockOwner column_strip_owner(int num_nodes);
[[nodiscard]] BlockOwner row_strip_owner(int num_nodes);
/// Square tiling: requires num_nodes = s*s and k % s == 0; node (i,j) owns
/// the (k/s)×(k/s) tile at (i, j) — the layout of the paper's experiments.
[[nodiscard]] BlockOwner square_tile_owner(int num_nodes, int k);

/// A matrix deployed into the storage layer: grid metadata plus the prefix
/// its sub-matrix arrays were registered under.
struct DeployedMatrix {
  BlockGrid grid;
  std::string prefix = "A";
  /// On-storage block format (the kernel layer sniffs per-block magic, so
  /// this is informational — e.g. for reports and benches).
  MatrixFormat format = MatrixFormat::Csr;
  std::vector<int> owner;           ///< owner[u * k + v]
  std::vector<std::uint64_t> nnz;   ///< nnz[u * k + v]
  std::vector<std::uint64_t> bytes; ///< raw serialized size per block
  /// On-disk size per block: the codec frame size when the block was stored
  /// encoded, equal to `bytes` when stored raw. This is what a demand load
  /// actually moves over disk/wire.
  std::vector<std::uint64_t> stored;

  [[nodiscard]] int owner_of(int u, int v) const { return owner[static_cast<std::size_t>(u) * grid.k() + v]; }
  [[nodiscard]] std::uint64_t nnz_of(int u, int v) const { return nnz[static_cast<std::size_t>(u) * grid.k() + v]; }
  [[nodiscard]] std::uint64_t bytes_of(int u, int v) const { return bytes[static_cast<std::size_t>(u) * grid.k() + v]; }
  [[nodiscard]] std::uint64_t stored_of(int u, int v) const { return stored[static_cast<std::size_t>(u) * grid.k() + v]; }
  [[nodiscard]] std::string name_of(int u, int v) const { return BlockGrid::matrix_name(u, v, prefix); }
  [[nodiscard]] std::uint64_t total_nnz() const {
    std::uint64_t t = 0;
    for (auto v : nnz) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t t = 0;
    for (auto v : bytes) t += v;
    return t;
  }
  [[nodiscard]] std::uint64_t total_stored_bytes() const {
    std::uint64_t t = 0;
    for (auto v : stored) t += v;
    return t;
  }
  /// Achieved whole-matrix compression ratio (1.0 when everything is raw).
  [[nodiscard]] double compression_ratio() const {
    const auto s = total_stored_bytes();
    return s > 0 ? static_cast<double>(total_bytes()) / static_cast<double>(s) : 1.0;
  }
};

/// Cut `global` into a K×K grid, write each sub-matrix in the configured
/// block format (binary CRS by default, SELL-C-σ when
/// kernels.format == MatrixFormat::Sell) to its owner's scratch directory,
/// and import it (single block).
DeployedMatrix deploy_matrix(storage::StorageCluster& cluster, const CsrMatrix& global, int k,
                             const BlockOwner& owner, const std::string& prefix = "A",
                             const KernelConfig& kernels = {});

/// Same, but sub-matrices come from a generator callback (no global matrix
/// is ever materialized) — how paper-scale matrices are built per node.
DeployedMatrix deploy_generated(storage::StorageCluster& cluster, const BlockGrid& grid,
                                const BlockOwner& owner,
                                const std::function<CsrMatrix(int u, int v)>& generate,
                                const std::string& prefix = "A",
                                const KernelConfig& kernels = {});

/// Create the K distributed sub-vector arrays `vector_name(base, iter, u)`
/// seeded with `value(global_index)`, part u homed on `owner(u, u)`.
void create_distributed_vector(storage::StorageCluster& cluster, const BlockGrid& grid,
                               const BlockOwner& owner, const std::string& base, int iteration,
                               const std::function<double(std::uint64_t)>& value);

/// Read back a distributed vector into one dense std::vector (for
/// verification and small examples; pulls every part to the caller).
std::vector<double> gather_vector(storage::StorageCluster& cluster, const BlockGrid& grid,
                                  const std::string& base, int iteration);

}  // namespace dooc::spmv
