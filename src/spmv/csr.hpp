// Compressed Row Storage (CRS/CSR) sparse matrices.
//
// Two forms:
//  * CsrMatrix — owning, mutable; produced by generators and tests.
//  * CsrView  — non-owning view over the binary CRS byte layout (the
//    paper's on-disk sub-matrix format). A storage ReadHandle's bytes can
//    be viewed directly, so an out-of-core multiply never copies the
//    matrix after it reaches memory.
//
// Binary CRS layout (little-endian, 8-byte aligned):
//   u64 magic      'DCRSBIN1'
//   u64 endian     0x0102030405060708 (readers reject foreign byte order)
//   u64 rows, cols, nnz
//   u64 row_ptr[rows+1]
//   u32 col_idx[nnz]      (padded to 8 bytes)
//   f64 values[nnz]
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace dooc::spmv {

constexpr std::uint64_t kCsrMagic = 0x44435253'42494E31ull;  // "DCRSBIN1"
constexpr std::uint64_t kEndianProbe = 0x0102030405060708ull;

struct CsrMatrix {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::vector<std::uint64_t> row_ptr;  // size rows+1
  std::vector<std::uint32_t> col_idx;  // size nnz
  std::vector<double> values;          // size nnz

  [[nodiscard]] std::uint64_t nnz() const noexcept { return col_idx.size(); }

  /// Structural sanity: monotone row_ptr, in-range sorted column indices.
  void validate() const;

  /// Size of this matrix in the binary CRS byte layout.
  [[nodiscard]] std::uint64_t serialized_bytes() const noexcept;

  /// y = A x (serial). Spans must match dimensions.
  void multiply(std::span<const double> x, std::span<double> y) const;
};

/// Non-owning view over binary CRS bytes.
class CsrView {
 public:
  CsrView() = default;

  /// Parse the layout; throws IoError on bad magic/endianness/truncation.
  static CsrView from_bytes(std::span<const std::byte> bytes);

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::span<const std::uint64_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }
  [[nodiscard]] bool valid() const noexcept { return rows_ != 0 || cols_ != 0; }

  /// y = A x over rows [row_begin, row_end) — the splittable unit the
  /// local scheduler hands to multiple compute threads.
  void multiply_rows(std::span<const double> x, std::span<double> y, std::uint64_t row_begin,
                     std::uint64_t row_end) const;
  /// y = A x over all rows (serial).
  void multiply(std::span<const double> x, std::span<double> y) const {
    multiply_rows(x, y, 0, rows_);
  }

 private:
  std::uint64_t rows_ = 0, cols_ = 0, nnz_ = 0;
  std::span<const std::uint64_t> row_ptr_;
  std::span<const std::uint32_t> col_idx_;
  std::span<const double> values_;
};

/// Serialize to the binary CRS layout (appends to `out`).
void serialize_csr(const CsrMatrix& m, std::vector<std::byte>& out);

/// Convenience: round-trip an owning matrix out of a view.
CsrMatrix materialize(const CsrView& view);

}  // namespace dooc::spmv
