// Row partitioning for threaded sparse kernels.
//
// The equal-row split hands each worker the same number of rows; on skewed
// matrices (power-law row populations, CI Hamiltonians with dense stripes)
// one worker can end up with almost all the non-zeros and the multiply
// serializes on it. The balanced split exploits that row_ptr *is* the
// prefix sum of per-row work: cutting it at multiples of nnz/parts gives
// every worker ~the same number of non-zeros at O(parts · log rows) cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dooc::spmv {

/// Half-open row range [begin, end) handed to one worker.
struct RowRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return end - begin; }
  bool operator==(const RowRange&) const = default;
};

/// Contiguous equal-row chunks (ceil(rows/parts) each, last may be short).
/// Always returns at least one range; never more than `parts`.
[[nodiscard]] std::vector<RowRange> equal_row_ranges(std::uint64_t rows, std::size_t parts);

/// nnz-balanced chunks: split points are the row boundaries nearest the
/// multiples of nnz/parts in the row_ptr prefix sum. `row_ptr` must be the
/// CSR row-pointer array (size rows+1, monotone). A single row heavier
/// than nnz/parts gets a chunk of its own; neighbouring chunks may then be
/// empty (callers should skip empty ranges). Works for any monotone prefix
/// array — SELL chunk pointers partition the same way.
[[nodiscard]] std::vector<RowRange> balanced_row_ranges(std::span<const std::uint64_t> row_ptr,
                                                        std::size_t parts);

/// Load imbalance of a split: max chunk non-zeros / ideal chunk non-zeros
/// (total/parts). 1.0 is perfect; the equal-row split of a matrix with one
/// dense row approaches `parts`. Returns 1.0 for empty matrices.
[[nodiscard]] double partition_imbalance(std::span<const std::uint64_t> row_ptr,
                                         std::span<const RowRange> ranges);

}  // namespace dooc::spmv
