// Kernel-layer configuration shared by the SpMV kernels, the block
// deployment path and the solver drivers: which on-disk/block format the
// sub-matrices carry (binary CRS or SELL-C-σ), how row work is split
// across a node's compute threads, and when a multiply is too small to be
// worth splitting at all.
#pragma once

#include <cstdint>

namespace dooc::spmv {

enum class MatrixFormat : std::uint8_t {
  Csr,   ///< binary CRS (the paper's on-disk sub-matrix format)
  Sell,  ///< SELL-C-σ sliced ELLPACK (vectorization-friendly)
};

enum class BalanceMode : std::uint8_t {
  EqualRows,    ///< contiguous equal-row chunks (the historical split)
  BalancedNnz,  ///< prefix-sum split over row_ptr: ~equal non-zeros per chunk
};

struct KernelConfig {
  MatrixFormat format = MatrixFormat::Csr;
  /// SELL chunk height C (rows packed column-major per chunk).
  std::uint32_t sell_chunk = 8;
  /// SELL sorting window σ: rows are sorted by length only within windows
  /// of σ rows, bounding how far the permutation displaces a row.
  std::uint32_t sell_sigma = 128;
  BalanceMode balance = BalanceMode::BalancedNnz;
  /// Below this many non-zeros a multiply runs serial regardless of the
  /// pool: the split overhead exceeds the work. Gates on nnz (work), not
  /// rows — a short fat matrix still parallelizes.
  std::uint64_t serial_nnz_threshold = 1u << 15;
};

}  // namespace dooc::spmv
