#include "spmv/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <future>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "spmv/partition.hpp"

namespace dooc::spmv {

namespace {

/// Split work [0, items) per the balance mode, using `prefix` (row_ptr or
/// chunk_ptr) as the work prefix sum; empty ranges (a fat row took a whole
/// chunk) are dropped.
std::vector<RowRange> pick_ranges(std::span<const std::uint64_t> prefix, std::uint64_t items,
                                  std::size_t parts, BalanceMode mode) {
  auto ranges = mode == BalanceMode::BalancedNnz ? balanced_row_ranges(prefix, parts)
                                                 : equal_row_ranges(items, parts);
  std::erase_if(ranges, [](const RowRange& r) { return r.begin >= r.end; });
  if (ranges.empty()) ranges.push_back({0, items});
  return ranges;
}

/// Run `body(range)` for every range on the pool and wait.
template <typename Body>
void run_ranges(ThreadPool& pool, const std::vector<RowRange>& ranges, const Body& body) {
  if (ranges.size() == 1) {
    body(ranges[0]);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (const RowRange& r : ranges) {
    futures.push_back(pool.submit([&body, r] { body(r); }));
  }
  for (auto& f : futures) f.get();
}

/// Run `body(slice_index, begin, end)` over [0, n) split into `parts`
/// equal slices (parallel_for with a stable slice id for partial buffers).
template <typename Body>
void run_slices(ThreadPool& pool, std::size_t n, std::size_t parts, const Body& body) {
  const std::size_t per = (n + parts - 1) / parts;
  std::vector<std::future<void>> futures;
  std::size_t idx = 0;
  for (std::size_t begin = 0; begin < n; begin += per, ++idx) {
    const std::size_t end = std::min(n, begin + per);
    futures.push_back(pool.submit([&body, idx, begin, end] { body(idx, begin, end); }));
  }
  for (auto& f : futures) f.get();
}

struct KernelGauges {
  obs::Gauge& gflops;
  obs::Gauge& imbalance;
  obs::Counter& calls;

  static KernelGauges make(const char* kernel) {
    auto& m = obs::Metrics::instance();
    const std::string base = std::string("kernel.") + kernel;
    return {m.gauge(base + ".gflops"), m.gauge(base + ".imbalance"), m.counter(base + ".calls")};
  }

  /// flops / elapsed ns happens to be GFLOP/s exactly.
  void record(double flops, std::uint64_t start_ns, double imbalance_factor) {
    const std::uint64_t end_ns = obs::TraceClock::now_ns();
    if (end_ns > start_ns) gflops.set(flops / static_cast<double>(end_ns - start_ns));
    imbalance.set(imbalance_factor);
    calls.add();
  }
};

KernelGauges& csr_gauges() {
  static KernelGauges g = KernelGauges::make("spmv.csr");
  return g;
}
KernelGauges& sell_gauges() {
  static KernelGauges g = KernelGauges::make("spmv.sell");
  return g;
}
KernelGauges& symv_gauges() {
  static KernelGauges g = KernelGauges::make("spmv.symhalf");
  return g;
}

}  // namespace

void multiply_parallel(const CsrView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool, const KernelConfig& config) {
  auto& gauges = csr_gauges();
  const std::uint64_t t0 = obs::TraceClock::now_ns();
  if (pool.size() <= 1 || a.nnz() < config.serial_nnz_threshold) {
    a.multiply(x, y);
    gauges.record(2.0 * static_cast<double>(a.nnz()), t0, 1.0);
    return;
  }
  const auto ranges = pick_ranges(a.row_ptr(), a.rows(), pool.size(), config.balance);
  const double imbalance = partition_imbalance(a.row_ptr(), ranges);
  run_ranges(pool, ranges,
             [&](const RowRange& r) { a.multiply_rows(x, y, r.begin, r.end); });
  gauges.record(2.0 * static_cast<double>(a.nnz()), t0, imbalance);
}

void multiply_parallel(const SellView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool, const KernelConfig& config) {
  auto& gauges = sell_gauges();
  const std::uint64_t t0 = obs::TraceClock::now_ns();
  if (pool.size() <= 1 || a.nnz() < config.serial_nnz_threshold) {
    a.multiply(x, y);
    gauges.record(2.0 * static_cast<double>(a.nnz()), t0, 1.0);
    return;
  }
  // chunk_ptr is the (padding-inclusive) work prefix over chunks — exactly
  // what the balanced partitioner wants.
  const auto ranges = pick_ranges(a.chunk_ptr(), a.num_chunks(), pool.size(), config.balance);
  const double imbalance = partition_imbalance(a.chunk_ptr(), ranges);
  run_ranges(pool, ranges,
             [&](const RowRange& r) { a.multiply_chunks(x, y, r.begin, r.end); });
  gauges.record(2.0 * static_cast<double>(a.nnz()), t0, imbalance);
}

void multiply_any(std::span<const std::byte> block, std::span<const double> x,
                  std::span<double> y, ThreadPool& pool, const KernelConfig& config) {
  switch (sniff_block_format(block)) {
    case BlockFormat::Csr:
      multiply_parallel(CsrView::from_bytes(block), x, y, pool, config);
      break;
    case BlockFormat::Sell:
      multiply_parallel(SellView::from_bytes(block), x, y, pool, config);
      break;
  }
}

namespace {

/// out[b:e] += part[b:e] (the restrict-qualified inner loop of both
/// sum_vectors forms).
inline void add_slice(std::span<const double> part, std::span<double> out, std::size_t begin,
                      std::size_t end) {
  const double* __restrict src = part.data();
  double* __restrict dst = out.data();
  for (std::size_t i = begin; i < end; ++i) dst[i] += src[i];
}

}  // namespace

void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& part : parts) {
    DOOC_REQUIRE(part.size() == out.size(), "partial vector size mismatch in reduction");
    add_slice(part, out, 0, out.size());
  }
}

void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out,
                 ThreadPool& pool) {
  if (pool.size() <= 1 || out.size() < kBlas1ParallelThreshold) {
    sum_vectors(parts, out);
    return;
  }
  for (const auto& part : parts) {
    DOOC_REQUIRE(part.size() == out.size(), "partial vector size mismatch in reduction");
  }
  pool.parallel_ranges(out.size(), [&](std::size_t begin, std::size_t end) {
    std::fill(out.begin() + static_cast<std::ptrdiff_t>(begin),
              out.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    for (const auto& part : parts) add_slice(part, out, begin, end);
  });
}

double dot(std::span<const double> a, std::span<const double> b) {
  DOOC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  const std::size_t n = a.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += pa[i] * pb[i];
    s1 += pa[i + 1] * pb[i + 1];
    s2 += pa[i + 2] * pb[i + 2];
    s3 += pa[i + 3] * pb[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += pa[i] * pb[i];
  return ((s0 + s2) + (s1 + s3)) + tail;
}

double dot(std::span<const double> a, std::span<const double> b, ThreadPool& pool) {
  DOOC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  if (pool.size() <= 1 || a.size() < kBlas1ParallelThreshold) return dot(a, b);
  const std::size_t parts = pool.size();
  std::vector<double> partial(parts, 0.0);
  run_slices(pool, a.size(), parts, [&](std::size_t p, std::size_t begin, std::size_t end) {
    partial[p] = dot(a.subspan(begin, end - begin), b.subspan(begin, end - begin));
  });
  double acc = 0.0;
  for (double v : partial) acc += v;  // fixed slice order: deterministic
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm2(std::span<const double> a, ThreadPool& pool) { return std::sqrt(dot(a, a, pool)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DOOC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  const double* __restrict px = x.data();
  double* __restrict py = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

void axpy(double alpha, std::span<const double> x, std::span<double> y, ThreadPool& pool) {
  DOOC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  if (pool.size() <= 1 || x.size() < kBlas1ParallelThreshold) {
    axpy(alpha, x, y);
    return;
  }
  pool.parallel_ranges(x.size(), [&](std::size_t begin, std::size_t end) {
    axpy(alpha, x.subspan(begin, end - begin), y.subspan(begin, end - begin));
  });
}

void scale(std::span<double> x, double alpha) {
  double* __restrict px = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) px[i] *= alpha;
}

void copy(std::span<const double> src, std::span<double> dst) {
  DOOC_REQUIRE(src.size() == dst.size(), "copy size mismatch");
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
}

}  // namespace dooc::spmv

namespace dooc::spmv {

void multiply_symmetric_half(const CsrView& lower, std::span<const double> x,
                             std::span<double> y) {
  DOOC_REQUIRE(lower.rows() == lower.cols(), "half-stored matrix must be square");
  DOOC_REQUIRE(x.size() >= lower.cols() && y.size() >= lower.rows(),
               "operand size mismatch in symmetric multiply");
  std::fill(y.begin(), y.end(), 0.0);
  const auto rp = lower.row_ptr();
  const auto ci = lower.col_idx();
  const auto va = lower.values();
  for (std::uint64_t r = 0; r < lower.rows(); ++r) {
    double acc = 0.0;
    for (std::uint64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::uint32_t c = ci[k];
      DOOC_REQUIRE(c <= r, "half-stored matrix has an upper-triangle entry");
      acc += va[k] * x[c];
      if (c != r) y[c] += va[k] * x[r];  // the mirrored (c, r) entry
    }
    y[r] += acc;
  }
}

void multiply_symmetric_half_parallel(const CsrView& lower, std::span<const double> x,
                                      std::span<double> y, ThreadPool& pool,
                                      const KernelConfig& config) {
  DOOC_REQUIRE(lower.rows() == lower.cols(), "half-stored matrix must be square");
  DOOC_REQUIRE(x.size() >= lower.cols() && y.size() >= lower.rows(),
               "operand size mismatch in symmetric multiply");
  auto& gauges = symv_gauges();
  const std::uint64_t t0 = obs::TraceClock::now_ns();
  // Nominal 4 flops per stored non-zero (2 for the row dot, 2 for the
  // mirrored scatter; diagonal entries do half that).
  const double flops = 4.0 * static_cast<double>(lower.nnz());
  if (pool.size() <= 1 || lower.nnz() < config.serial_nnz_threshold) {
    multiply_symmetric_half(lower, x, y);
    gauges.record(flops, t0, 1.0);
    return;
  }
  const std::uint64_t n = lower.rows();
  const auto ranges = pick_ranges(lower.row_ptr(), n, pool.size(), config.balance);
  const double imbalance = partition_imbalance(lower.row_ptr(), ranges);

  // Phase 1: each worker owns a row range and scatters into its private
  // partial vector — the scatter to y_c that serialized the old kernel
  // never crosses workers.
  std::vector<std::vector<double>> partials(ranges.size());
  {
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (std::size_t p = 0; p < ranges.size(); ++p) {
      futures.push_back(pool.submit([&, p] {
        auto& partial = partials[p];
        partial.assign(n, 0.0);
        const auto rp = lower.row_ptr();
        const auto ci = lower.col_idx();
        const auto va = lower.values();
        double* __restrict py = partial.data();
        const double* __restrict xv = x.data();
        for (std::uint64_t r = ranges[p].begin; r < ranges[p].end; ++r) {
          double acc = 0.0;
          for (std::uint64_t k = rp[r]; k < rp[r + 1]; ++k) {
            const std::uint32_t c = ci[k];
            DOOC_REQUIRE(c <= r, "half-stored matrix has an upper-triangle entry");
            acc += va[k] * xv[c];
            if (c != r) py[c] += va[k] * xv[r];
          }
          py[r] += acc;
        }
      }));
    }
    for (auto& f : futures) f.get();
  }

  // Phase 2: parallel reduction — the index space is sliced across the
  // pool and each worker sums every partial over its slice (fixed
  // partition order, so the result is deterministic for this pool size).
  pool.parallel_ranges(n, [&](std::size_t begin, std::size_t end) {
    std::fill(y.begin() + static_cast<std::ptrdiff_t>(begin),
              y.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    for (const auto& partial : partials) add_slice(partial, y, begin, end);
  });
  gauges.record(flops, t0, imbalance);
}

}  // namespace dooc::spmv
