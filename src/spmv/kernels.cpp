#include "spmv/kernels.hpp"

#include <algorithm>
#include <cstring>

namespace dooc::spmv {

void multiply_parallel(const CsrView& a, std::span<const double> x, std::span<double> y,
                       ThreadPool& pool) {
  if (pool.size() <= 1 || a.rows() < 1024) {
    a.multiply(x, y);
    return;
  }
  pool.parallel_ranges(a.rows(), [&](std::size_t begin, std::size_t end) {
    a.multiply_rows(x, y, begin, end);
  });
}

void sum_vectors(std::span<const std::span<const double>> parts, std::span<double> out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (const auto& part : parts) {
    DOOC_REQUIRE(part.size() == out.size(), "partial vector size mismatch in reduction");
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += part[i];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  DOOC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DOOC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (auto& v : x) v *= alpha;
}

void copy(std::span<const double> src, std::span<double> dst) {
  DOOC_REQUIRE(src.size() == dst.size(), "copy size mismatch");
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
}

}  // namespace dooc::spmv

namespace dooc::spmv {

void multiply_symmetric_half(const CsrView& lower, std::span<const double> x,
                             std::span<double> y) {
  DOOC_REQUIRE(lower.rows() == lower.cols(), "half-stored matrix must be square");
  DOOC_REQUIRE(x.size() >= lower.cols() && y.size() >= lower.rows(),
               "operand size mismatch in symmetric multiply");
  std::fill(y.begin(), y.end(), 0.0);
  const auto rp = lower.row_ptr();
  const auto ci = lower.col_idx();
  const auto va = lower.values();
  for (std::uint64_t r = 0; r < lower.rows(); ++r) {
    double acc = 0.0;
    for (std::uint64_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::uint32_t c = ci[k];
      DOOC_REQUIRE(c <= r, "half-stored matrix has an upper-triangle entry");
      acc += va[k] * x[c];
      if (c != r) y[c] += va[k] * x[r];  // the mirrored (c, r) entry
    }
    y[r] += acc;
  }
}

}  // namespace dooc::spmv
