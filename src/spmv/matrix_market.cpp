#include "spmv/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/error.hpp"

namespace dooc::spmv {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw IoError("matrix market: empty input");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket") throw IoError("matrix market: missing %%MatrixMarket banner");
  if (lower(object) != "matrix" || lower(format) != "coordinate") {
    throw IoError("matrix market: only 'matrix coordinate' is supported");
  }
  const std::string f = lower(field);
  const bool pattern = f == "pattern";
  if (!pattern && f != "real" && f != "integer") {
    throw IoError("matrix market: unsupported field '" + field + "'");
  }
  const std::string sym = lower(symmetry);
  const bool symmetric = sym == "symmetric";
  if (!symmetric && sym != "general") {
    throw IoError("matrix market: unsupported symmetry '" + symmetry + "'");
  }

  // Skip comments, read the size line.
  std::uint64_t rows = 0, cols = 0, entries = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> entries)) throw IoError("matrix market: bad size line");
    break;
  }
  if (rows == 0 || cols == 0) throw IoError("matrix market: missing size line");
  DOOC_REQUIRE(cols <= 0xFFFFFFFFull, "matrix market: too many columns for 32-bit indices");

  struct Entry {
    std::uint64_t r;
    std::uint32_t c;
    double v;
  };
  std::vector<Entry> triples;
  triples.reserve(symmetric ? entries * 2 : entries);
  for (std::uint64_t k = 0; k < entries; ++k) {
    std::uint64_t r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) throw IoError("matrix market: truncated entry list");
    if (!pattern && !(in >> v)) throw IoError("matrix market: truncated entry list");
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw IoError("matrix market: entry out of bounds");
    }
    triples.push_back({r - 1, static_cast<std::uint32_t>(c - 1), v});
    if (symmetric && r != c) {
      triples.push_back({c - 1, static_cast<std::uint32_t>(r - 1), v});
    }
  }
  std::sort(triples.begin(), triples.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.r, a.c) < std::tie(b.r, b.c);
  });

  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.assign(1, 0);
  m.row_ptr.reserve(rows + 1);
  m.col_idx.reserve(triples.size());
  m.values.reserve(triples.size());
  std::uint64_t row = 0;
  for (const auto& e : triples) {
    while (row < e.r) {
      m.row_ptr.push_back(m.col_idx.size());
      ++row;
    }
    // Duplicate coordinates are summed (the Matrix Market convention).
    // row_ptr.back() is the start of the current row: a previous entry in
    // this row with the same column is necessarily col_idx.back().
    if (m.col_idx.size() > m.row_ptr.back() && m.col_idx.back() == e.c) {
      m.values.back() += e.v;
      continue;
    }
    m.col_idx.push_back(e.c);
    m.values.push_back(e.v);
  }
  while (row < rows) {
    m.row_ptr.push_back(m.col_idx.size());
    ++row;
  }
  return m;
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open matrix market file '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by dooc\n";
  out << m.rows << ' ' << m.cols << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (std::uint64_t r = 0; r < m.rows; ++r) {
    for (std::uint64_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      out << (r + 1) << ' ' << (m.col_idx[k] + 1) << ' ' << m.values[k] << '\n';
    }
  }
  if (!out) throw IoError("matrix market: write failed");
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& m) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create matrix market file '" + path + "'");
  write_matrix_market(out, m);
}

}  // namespace dooc::spmv
