#include "spmv/block_grid.hpp"

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "spmv/codec.hpp"
#include "spmv/generator.hpp"
#include "spmv/sell.hpp"

namespace dooc::spmv {

BlockGrid::BlockGrid(std::uint64_t n, int k) : n_(n), k_(k) {
  DOOC_REQUIRE(k > 0 && static_cast<std::uint64_t>(k) <= n, "grid K must be in [1, n]");
}

std::uint64_t BlockGrid::part_begin(int p) const {
  DOOC_REQUIRE(p >= 0 && p <= k_, "partition index out of range");
  // Even spread: the first (n mod k) parts get one extra row.
  const std::uint64_t q = n_ / static_cast<std::uint64_t>(k_);
  const std::uint64_t r = n_ % static_cast<std::uint64_t>(k_);
  const auto up = static_cast<std::uint64_t>(p);
  return q * up + std::min(up, r);
}

std::uint64_t BlockGrid::part_size(int p) const { return part_begin(p + 1) - part_begin(p); }

std::string BlockGrid::matrix_name(int u, int v, const std::string& prefix) {
  return prefix + "_" + std::to_string(u) + "_" + std::to_string(v);
}

std::string BlockGrid::vector_name(const std::string& base, int iteration, int part) {
  return base + std::to_string(iteration) + "_" + std::to_string(part);
}

std::string BlockGrid::partial_name(const std::string& base, int iteration, int u, int v) {
  return base + "p" + std::to_string(iteration) + "_" + std::to_string(u) + "_" +
         std::to_string(v);
}

BlockOwner column_strip_owner(int num_nodes) {
  return [num_nodes](int /*u*/, int v) { return v % num_nodes; };
}

BlockOwner row_strip_owner(int num_nodes) {
  return [num_nodes](int u, int /*v*/) { return u % num_nodes; };
}

BlockOwner square_tile_owner(int num_nodes, int k) {
  const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(num_nodes))));
  DOOC_REQUIRE(s * s == num_nodes, "square_tile_owner needs a perfect-square node count");
  DOOC_REQUIRE(k % s == 0, "grid K must be a multiple of sqrt(num_nodes)");
  const int tile = k / s;
  return [s, tile](int u, int v) { return (u / tile) * s + (v / tile); };
}

namespace {

struct WrittenBlock {
  std::uint64_t raw_bytes = 0;     ///< serialized (logical) size
  std::uint64_t stored_bytes = 0;  ///< on-disk size (== raw when stored raw)
};

WrittenBlock write_and_import(storage::StorageCluster& cluster, int node,
                              const std::string& name, const CsrMatrix& block,
                              const KernelConfig& kernels) {
  auto& store = cluster.node(node);
  const std::string path = store.scratch_dir() + "/" + name;
  std::vector<std::byte> bytes;
  if (kernels.format == MatrixFormat::Sell) {
    serialize_sell(build_sell(block, kernels.sell_chunk, kernels.sell_sigma), bytes);
  } else {
    serialize_csr(block, bytes);
  }
  // Per-block compression: under mode=on/adaptive the durable file holds a
  // codec frame instead of the raw payload (adaptive keeps raw blocks whose
  // achieved ratio falls under the gate — incompressible data costs nothing).
  const spmv::codec::CodecConfig& codec_cfg = store.codec();
  spmv::codec::EncodeStats est;
  std::optional<DataBuffer> frame;
  if (codec_cfg.enabled()) frame = spmv::codec::encode_block(bytes, codec_cfg, &est);
  const std::byte* out_data = frame ? frame->data() : bytes.data();
  const std::size_t out_size = frame ? frame->size() : bytes.size();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot create sub-matrix file '" + path + "'");
    out.write(reinterpret_cast<const char*>(out_data), static_cast<std::streamsize>(out_size));
    if (!out) throw IoError("short write to '" + path + "'");
  }
  // One block per sub-matrix: the whole file is the transfer unit.
  if (frame) {
    store.import_encoded_file(name, path, bytes.size());
    obs::Metrics::instance().counter("codec.blocks_encoded", node).add();
    obs::Metrics::instance().gauge("codec.ratio", node).set(est.ratio());
  } else {
    store.import_file(name, path, bytes.size());
    if (codec_cfg.enabled()) obs::Metrics::instance().counter("codec.blocks_raw", node).add();
  }
  return {bytes.size(), out_size};
}

}  // namespace

DeployedMatrix deploy_matrix(storage::StorageCluster& cluster, const CsrMatrix& global, int k,
                             const BlockOwner& owner, const std::string& prefix,
                             const KernelConfig& kernels) {
  DOOC_REQUIRE(global.rows == global.cols, "block deployment expects a square matrix");
  const BlockGrid grid(global.rows, k);
  return deploy_generated(
      cluster, grid, owner,
      [&](int u, int v) {
        return extract_block(global, grid.part_begin(u), grid.part_size(u), grid.part_begin(v),
                             grid.part_size(v));
      },
      prefix, kernels);
}

DeployedMatrix deploy_generated(storage::StorageCluster& cluster, const BlockGrid& grid,
                                const BlockOwner& owner,
                                const std::function<CsrMatrix(int u, int v)>& generate,
                                const std::string& prefix, const KernelConfig& kernels) {
  DeployedMatrix deployed;
  deployed.grid = grid;
  deployed.prefix = prefix;
  deployed.format = kernels.format;
  const auto cells = static_cast<std::size_t>(grid.k()) * grid.k();
  deployed.owner.resize(cells);
  deployed.nnz.resize(cells);
  deployed.bytes.resize(cells);
  deployed.stored.resize(cells);
  for (int u = 0; u < grid.k(); ++u) {
    for (int v = 0; v < grid.k(); ++v) {
      const int node = owner(u, v);
      DOOC_REQUIRE(node >= 0 && node < cluster.num_nodes(), "block owner out of range");
      const auto cell = static_cast<std::size_t>(u) * grid.k() + v;
      deployed.owner[cell] = node;
      CsrMatrix block = generate(u, v);
      DOOC_REQUIRE(block.rows == grid.part_size(u) && block.cols == grid.part_size(v),
                   "generated block has wrong dimensions");
      deployed.nnz[cell] = block.nnz();
      const WrittenBlock written =
          write_and_import(cluster, node, BlockGrid::matrix_name(u, v, prefix), block, kernels);
      deployed.bytes[cell] = written.raw_bytes;
      deployed.stored[cell] = written.stored_bytes;
    }
  }
  return deployed;
}

void create_distributed_vector(storage::StorageCluster& cluster, const BlockGrid& grid,
                               const BlockOwner& owner, const std::string& base, int iteration,
                               const std::function<double(std::uint64_t)>& value) {
  for (int u = 0; u < grid.k(); ++u) {
    const int node = owner(u, u);
    const std::string name = BlockGrid::vector_name(base, iteration, u);
    const std::uint64_t bytes = grid.part_size(u) * sizeof(double);
    auto& store = cluster.node(node);
    store.create_array(name, bytes, bytes);
    auto handle = store.request_write({name, 0, bytes}).get();
    auto span = handle.as<double>();
    const std::uint64_t base_index = grid.part_begin(u);
    for (std::uint64_t i = 0; i < span.size(); ++i) span[i] = value(base_index + i);
    handle.release();  // seal
  }
}

std::vector<double> gather_vector(storage::StorageCluster& cluster, const BlockGrid& grid,
                                  const std::string& base, int iteration) {
  std::vector<double> out(grid.n());
  for (int u = 0; u < grid.k(); ++u) {
    const std::string name = BlockGrid::vector_name(base, iteration, u);
    const std::uint64_t bytes = grid.part_size(u) * sizeof(double);
    auto handle = cluster.node(0).request_read({name, 0, bytes}).get();
    auto span = handle.as<double>();
    std::copy(span.begin(), span.end(), out.begin() + static_cast<std::ptrdiff_t>(grid.part_begin(u)));
  }
  return out;
}

}  // namespace dooc::spmv
