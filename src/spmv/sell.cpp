#include "spmv/sell.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "spmv/wire.hpp"

namespace dooc::spmv {

namespace {

constexpr std::uint64_t kSellHeaderWords = 8;  // magic, endian, rows, cols, nnz, C, σ, padded

SellMatrix build_sell_impl(std::uint64_t rows, std::uint64_t cols,
                           std::span<const std::uint64_t> row_ptr,
                           std::span<const std::uint32_t> col_idx,
                           std::span<const double> values, std::uint32_t c,
                           std::uint32_t sigma) {
  DOOC_REQUIRE(c >= 1, "SELL chunk height must be >= 1");
  DOOC_REQUIRE(sigma >= 1, "SELL sort window must be >= 1");
  DOOC_REQUIRE(rows <= std::numeric_limits<std::uint32_t>::max(),
               "SELL permutation indices are 32-bit");
  SellMatrix s;
  s.rows = rows;
  s.cols = cols;
  s.nnz = row_ptr.empty() ? 0 : row_ptr[rows] - row_ptr[0];
  s.chunk = c;
  s.sigma = sigma;

  const auto row_len = [&](std::uint64_t r) { return row_ptr[r + 1] - row_ptr[r]; };

  // Sort rows by descending length within σ-windows (stable, so equal-length
  // rows keep their original order). Round the window up to a multiple of C
  // so no chunk straddles two windows.
  s.perm.resize(rows);
  std::iota(s.perm.begin(), s.perm.end(), 0u);
  const std::uint64_t window = (static_cast<std::uint64_t>(sigma) + c - 1) / c * c;
  for (std::uint64_t w = 0; w < rows; w += window) {
    const auto begin = s.perm.begin() + static_cast<std::ptrdiff_t>(w);
    const auto end = s.perm.begin() + static_cast<std::ptrdiff_t>(std::min(rows, w + window));
    std::stable_sort(begin, end, [&](std::uint32_t a, std::uint32_t b) {
      return row_len(a) > row_len(b);
    });
  }

  const std::uint64_t nchunks = s.num_chunks();
  s.chunk_ptr.assign(nchunks + 1, 0);
  for (std::uint64_t ch = 0; ch < nchunks; ++ch) {
    std::uint64_t width = 0;
    const std::uint64_t slot0 = ch * c;
    for (std::uint64_t i = 0; i < c && slot0 + i < rows; ++i) {
      width = std::max(width, row_len(s.perm[slot0 + i]));
    }
    s.chunk_ptr[ch + 1] = s.chunk_ptr[ch] + width * c;
  }

  s.col_idx.assign(s.padded_nnz(), 0u);
  s.values.assign(s.padded_nnz(), 0.0);
  for (std::uint64_t ch = 0; ch < nchunks; ++ch) {
    const std::uint64_t base = s.chunk_ptr[ch];
    const std::uint64_t slot0 = ch * c;
    for (std::uint64_t i = 0; i < c && slot0 + i < rows; ++i) {
      const std::uint32_t r = s.perm[slot0 + i];
      const std::uint64_t len = row_len(r);
      for (std::uint64_t j = 0; j < len; ++j) {
        const std::uint64_t at = base + j * c + i;
        s.col_idx[at] = col_idx[row_ptr[r] + j];
        s.values[at] = values[row_ptr[r] + j];
      }
    }
  }
  return s;
}

}  // namespace

SellMatrix build_sell(const CsrMatrix& m, std::uint32_t c, std::uint32_t sigma) {
  return build_sell_impl(m.rows, m.cols, m.row_ptr, m.col_idx, m.values, c, sigma);
}

SellMatrix build_sell(const CsrView& m, std::uint32_t c, std::uint32_t sigma) {
  return build_sell_impl(m.rows(), m.cols(), m.row_ptr(), m.col_idx(), m.values(), c, sigma);
}

std::uint64_t SellMatrix::serialized_bytes() const noexcept {
  const std::uint64_t pad4 = [](std::uint64_t n) { return (n * 4 + 7) & ~std::uint64_t{7}; }(rows);
  const std::uint64_t padc = (padded_nnz() * 4 + 7) & ~std::uint64_t{7};
  return kSellHeaderWords * 8 + (num_chunks() + 1) * 8 + pad4 + padc + padded_nnz() * 8;
}

void SellMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  DOOC_REQUIRE(x.size() >= cols && y.size() >= rows, "operand size mismatch in SELL multiply");
  std::vector<double> acc(chunk);
  const std::uint64_t nchunks = num_chunks();
  for (std::uint64_t ch = 0; ch < nchunks; ++ch) {
    const std::uint64_t base = chunk_ptr[ch];
    const std::uint64_t width = (chunk_ptr[ch + 1] - base) / chunk;
    std::fill(acc.begin(), acc.end(), 0.0);
    double* __restrict pa = acc.data();
    const std::uint32_t* __restrict ci = col_idx.data();
    const double* __restrict va = values.data();
    const double* __restrict xv = x.data();
    for (std::uint64_t j = 0; j < width; ++j) {
      const std::uint64_t off = base + j * chunk;
      for (std::uint32_t i = 0; i < chunk; ++i) pa[i] += va[off + i] * xv[ci[off + i]];
    }
    const std::uint64_t slot0 = ch * chunk;
    for (std::uint32_t i = 0; i < chunk && slot0 + i < rows; ++i) y[perm[slot0 + i]] = pa[i];
  }
}

void serialize_sell(const SellMatrix& m, std::vector<std::byte>& out) {
  const std::uint64_t header[kSellHeaderWords] = {kSellMagic, kEndianProbe, m.rows,  m.cols,
                                                  m.nnz,      m.chunk,      m.sigma, m.padded_nnz()};
  const std::size_t base = out.size();
  out.resize(base + m.serialized_bytes());
  std::byte* p = out.data() + base;
  auto append = [&p](const void* src, std::size_t n) {
    if (n != 0) std::memcpy(p, src, n);
    p += n;
  };
  auto append_padded_u32 = [&](const std::uint32_t* src, std::uint64_t count) {
    append(src, count * 4);
    if (count % 2 != 0) {
      const std::uint32_t zero = 0;
      append(&zero, 4);
    }
  };
  append(header, sizeof(header));
  append(m.chunk_ptr.data(), (m.num_chunks() + 1) * 8);
  append_padded_u32(m.perm.data(), m.rows);
  append_padded_u32(m.col_idx.data(), m.padded_nnz());
  append(m.values.data(), m.padded_nnz() * 8);
}

SellView SellView::from_bytes(std::span<const std::byte> bytes) {
  if (bytes.size() < kSellHeaderWords * 8) throw IoError("binary SELL: truncated header");
  std::uint64_t header[kSellHeaderWords];
  std::memcpy(header, bytes.data(), sizeof(header));
  if (header[0] != kSellMagic) throw IoError("binary SELL: bad magic");
  if (header[1] != kEndianProbe) throw IoError("binary SELL: foreign byte order");
  SellView v;
  v.rows_ = header[2];
  v.cols_ = header[3];
  v.nnz_ = header[4];
  const std::uint64_t chunk = header[5];
  const std::uint64_t sigma = header[6];
  const std::uint64_t padded = header[7];
  if (chunk < 1 || chunk > std::numeric_limits<std::uint32_t>::max() || sigma < 1 ||
      sigma > std::numeric_limits<std::uint32_t>::max() ||
      v.rows_ > std::numeric_limits<std::uint32_t>::max()) {
    throw IoError("binary SELL: implausible header");
  }
  v.chunk_ = static_cast<std::uint32_t>(chunk);
  v.sigma_ = static_cast<std::uint32_t>(sigma);
  const std::uint64_t nchunks = v.rows_ == 0 ? 0 : (v.rows_ + chunk - 1) / chunk;

  wire::ByteCount need;
  need.add(kSellHeaderWords * 8)
      .add_u64_array(nchunks + 1)
      .add_padded_u32_array(v.rows_)
      .add_padded_u32_array(padded)
      .add_u64_array(padded);
  if (!need.ok()) throw IoError("binary SELL: header overflows size computation");
  if (bytes.size() < need.total()) throw IoError("binary SELL: truncated payload");

  const std::byte* p = bytes.data() + kSellHeaderWords * 8;
  v.chunk_ptr_ = {reinterpret_cast<const std::uint64_t*>(p), nchunks + 1};
  p += (nchunks + 1) * 8;
  if (v.chunk_ptr_.back() != padded) throw IoError("binary SELL: chunk_ptr/padded_nnz mismatch");
  v.perm_ = {reinterpret_cast<const std::uint32_t*>(p), v.rows_};
  p += *wire::padded_u32_bytes(v.rows_);
  v.col_idx_ = {reinterpret_cast<const std::uint32_t*>(p), padded};
  p += *wire::padded_u32_bytes(padded);
  v.values_ = {reinterpret_cast<const double*>(p), padded};
  return v;
}

void SellView::multiply_chunks(std::span<const double> x, std::span<double> y,
                               std::uint64_t chunk_begin, std::uint64_t chunk_end) const {
  DOOC_REQUIRE(chunk_end <= num_chunks() && chunk_begin <= chunk_end,
               "chunk range out of bounds");
  DOOC_REQUIRE(x.size() >= cols_ && y.size() >= rows_, "operand size mismatch in SELL multiply");
  const std::uint64_t* cp = chunk_ptr_.data();
  const std::uint32_t* pm = perm_.data();
  const std::uint32_t c = chunk_;
  std::vector<double> acc(c);
  for (std::uint64_t ch = chunk_begin; ch < chunk_end; ++ch) {
    const std::uint64_t base = cp[ch];
    const std::uint64_t width = (cp[ch + 1] - base) / c;
    std::fill(acc.begin(), acc.end(), 0.0);
    double* __restrict pa = acc.data();
    const std::uint32_t* __restrict ci = col_idx_.data();
    const double* __restrict va = values_.data();
    const double* __restrict xv = x.data();
    for (std::uint64_t j = 0; j < width; ++j) {
      const std::uint64_t off = base + j * c;
      for (std::uint32_t i = 0; i < c; ++i) pa[i] += va[off + i] * xv[ci[off + i]];
    }
    const std::uint64_t slot0 = ch * c;
    for (std::uint32_t i = 0; i < c && slot0 + i < rows_; ++i) y[pm[slot0 + i]] = pa[i];
  }
}

SellMatrix materialize(const SellView& view) {
  SellMatrix m;
  m.rows = view.rows();
  m.cols = view.cols();
  m.nnz = view.nnz();
  m.chunk = view.chunk();
  m.sigma = view.sigma();
  m.chunk_ptr.assign(view.chunk_ptr().begin(), view.chunk_ptr().end());
  m.perm.assign(view.perm().begin(), view.perm().end());
  m.col_idx.assign(view.col_idx().begin(), view.col_idx().end());
  m.values.assign(view.values().begin(), view.values().end());
  return m;
}

BlockFormat sniff_block_format(std::span<const std::byte> bytes) {
  if (bytes.size() >= 8) {
    std::uint64_t magic;
    std::memcpy(&magic, bytes.data(), 8);
    if (magic == kCsrMagic) return BlockFormat::Csr;
    if (magic == kSellMagic) return BlockFormat::Sell;
  }
  throw IoError("unknown matrix block format (neither binary CRS nor SELL magic)");
}

}  // namespace dooc::spmv
