// SELL-C-σ sliced-ELLPACK sparse format (Kreutzer et al.), the
// vectorization-friendly alternative to CSR for the iterated-SpMV hot loop.
//
// Rows are sorted by descending length within windows of σ rows (bounding
// how far any row is displaced), then packed into chunks of C consecutive
// sorted rows. Within a chunk, entries are stored column-major and every
// row is padded to the chunk's longest row, so the multiply's inner loop
// runs C independent lanes over contiguous memory — exactly the shape the
// compiler auto-vectorizes. The σ-window sorting keeps padding low on
// skewed matrices; σ = 1 disables sorting, σ = rows sorts globally.
//
// The multiply is permutation-aware: lane results are scattered to
// y[perm[slot]], so callers see x/y in the original row order and SELL is
// a drop-in replacement for the CSR kernel.
//
// Binary SELL layout (little-endian, 8-byte aligned), the on-storage twin
// of the binary CRS layout so storage blocks can carry either format:
//   u64 magic       'DSELBIN1'
//   u64 endian      0x0102030405060708
//   u64 rows, cols, nnz (logical, without padding)
//   u64 chunk (C), sigma (σ), padded_nnz
//   u64 chunk_ptr[num_chunks+1]
//   u32 perm[rows]            (padded to 8 bytes)
//   u32 col_idx[padded_nnz]   (padded to 8 bytes; padding entries point at column 0)
//   f64 values[padded_nnz]    (padding entries are 0.0)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "spmv/csr.hpp"

namespace dooc::spmv {

constexpr std::uint64_t kSellMagic = 0x4453454C'42494E31ull;  // "DSELBIN1"

struct SellMatrix {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;  ///< logical non-zeros (padding excluded)
  std::uint32_t chunk = 8;
  std::uint32_t sigma = 128;
  std::vector<std::uint64_t> chunk_ptr;  ///< size num_chunks()+1; offsets into col_idx/values
  std::vector<std::uint32_t> perm;       ///< size rows: perm[slot] = original row in sorted slot
  std::vector<std::uint32_t> col_idx;    ///< size chunk_ptr.back(), column-major per chunk
  std::vector<double> values;            ///< size chunk_ptr.back()

  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return rows == 0 ? 0 : (rows + chunk - 1) / chunk;
  }
  [[nodiscard]] std::uint64_t padded_nnz() const noexcept {
    return chunk_ptr.empty() ? 0 : chunk_ptr.back();
  }
  /// Padding overhead: padded_nnz / nnz (1.0 = none). 1.0 for empty matrices.
  [[nodiscard]] double fill_ratio() const noexcept {
    return nnz == 0 ? 1.0 : static_cast<double>(padded_nnz()) / static_cast<double>(nnz);
  }

  [[nodiscard]] std::uint64_t serialized_bytes() const noexcept;

  /// y = A x (serial, all chunks). Spans must cover cols/rows.
  void multiply(std::span<const double> x, std::span<double> y) const;
};

/// Pack a CSR matrix into SELL-C-σ. C >= 1; σ >= 1 (rounded up to a
/// multiple of C internally so chunks never straddle sort windows).
[[nodiscard]] SellMatrix build_sell(const CsrMatrix& m, std::uint32_t c, std::uint32_t sigma);
[[nodiscard]] SellMatrix build_sell(const CsrView& m, std::uint32_t c, std::uint32_t sigma);

/// Serialize to the binary SELL layout (appends to `out`).
void serialize_sell(const SellMatrix& m, std::vector<std::byte>& out);

/// Non-owning view over binary SELL bytes; the storage-block counterpart
/// of CsrView for blocks deployed in SELL format.
class SellView {
 public:
  SellView() = default;

  /// Parse the layout; throws IoError on bad magic/endianness/truncation
  /// or a header whose implied size overflows.
  static SellView from_bytes(std::span<const std::byte> bytes);

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::uint32_t chunk() const noexcept { return chunk_; }
  [[nodiscard]] std::uint32_t sigma() const noexcept { return sigma_; }
  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return chunk_ptr_.empty() ? 0 : chunk_ptr_.size() - 1;
  }
  [[nodiscard]] std::span<const std::uint64_t> chunk_ptr() const noexcept { return chunk_ptr_; }
  [[nodiscard]] std::span<const std::uint32_t> perm() const noexcept { return perm_; }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const noexcept { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// y = A x over chunks [chunk_begin, chunk_end) — the splittable unit
  /// handed to compute threads; chunk_ptr doubles as the work prefix sum
  /// for nnz-balanced chunk partitioning.
  void multiply_chunks(std::span<const double> x, std::span<double> y,
                       std::uint64_t chunk_begin, std::uint64_t chunk_end) const;
  void multiply(std::span<const double> x, std::span<double> y) const {
    multiply_chunks(x, y, 0, num_chunks());
  }

 private:
  std::uint64_t rows_ = 0, cols_ = 0, nnz_ = 0;
  std::uint32_t chunk_ = 1, sigma_ = 1;
  std::span<const std::uint64_t> chunk_ptr_;
  std::span<const std::uint32_t> perm_;
  std::span<const std::uint32_t> col_idx_;
  std::span<const double> values_;
};

/// Round-trip an owning SELL matrix out of a view.
[[nodiscard]] SellMatrix materialize(const SellView& view);

/// Format of a serialized matrix block, sniffed from its magic word.
/// Throws IoError if the bytes carry neither known magic.
enum class BlockFormat { Csr, Sell };
[[nodiscard]] BlockFormat sniff_block_format(std::span<const std::byte> bytes);

}  // namespace dooc::spmv
