// Backend-agnostic task lifecycle of the hierarchical scheduler — ONE
// completion-driven state machine shared by the real engine (sched::Engine,
// wall-clock time, storage completion queues) and the discrete-event
// simulator (sim::SimEngine, virtual time, modeled flows).
//
//   Waiting ──deps done──▶ Assigned ──next_to_stage──▶ InputsPending
//       InputsPending ──last input landed──▶ Runnable ──take_runnable──▶
//       Running ──finish──▶ Done
//
// The core owns dependency counting, the per-node queues, the local policy
// ordering (Fifo / DataAware / BackAndForth — the Fig. 5 reorder logic)
// and the prefetch window: at most `prefetch_window` tasks with missing
// inputs are staged ahead (their loads in flight), plus up to
// `demand_slots` extra when compute would otherwise idle. Tasks whose
// inputs are already resident never consume the window — this is the
// paper's "the local scheduler makes sure that there are a given number of
// ready tasks whose data are in memory" (§III-C), expressed once for both
// backends.
//
// What the core does NOT do is touch storage or clocks: backends observe
// residency through a ResidencyProbe, issue their own loads when a task is
// staged, and report input arrival either per-event (note_input — the real
// engine counting storage completions) or by re-probing (refresh — the DES
// after virtual-time flow completions).
//
// Thread-safe: every method takes the internal mutex. The probe is called
// with that mutex held, so probes may take locks of their own (e.g. the
// storage node's) but must never call back into the core.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "sched/policy.hpp"
#include "sched/task.hpp"

namespace dooc::sched {

enum class TaskState : std::uint8_t {
  Waiting,
  Assigned,
  InputsPending,
  Runnable,
  Running,
  Done,
  /// The task's input loads failed permanently and its retry budget is
  /// exhausted (or an ancestor's was): it will never run. Faulted tasks are
  /// *settled* — the engine drains instead of hanging or aborting.
  Faulted,
};

[[nodiscard]] const char* to_string(TaskState s);

/// How a backend exposes data residency to the core's policy ordering.
class ResidencyProbe {
 public:
  virtual ~ResidencyProbe() = default;
  /// Bytes of `task`'s inputs currently resident on `node`.
  [[nodiscard]] virtual std::uint64_t resident_input_bytes(int node, const Task& task) = 0;
  /// True when every input of `task` is resident on `node`.
  [[nodiscard]] virtual bool inputs_resident(int node, const Task& task) = 0;
};

struct CoreConfig {
  LocalPolicy policy = LocalPolicy::DataAware;
  /// Staged-ahead tasks with inputs in flight, per node.
  int prefetch_window = 2;
  /// Extra InputsPending tasks allowed when compute would otherwise idle
  /// (the real engine passes its compute slot count so an idle worker can
  /// always demand-stage something; the DES passes 0 — its old scheduler
  /// never demand-staged beyond the window).
  int demand_slots = 0;
  /// How many times a task whose input load failed permanently is re-queued
  /// (fault() → Assigned) before it is poisoned.
  int max_task_retries = 3;
};

/// Which class of Assigned candidates next_to_stage may return.
enum class StageSelect {
  Resident,  ///< inputs fully resident (stages freely, never uses the window)
  Missing,   ///< inputs missing (bounded by window + idle demand slots)
};

struct StageDecision {
  TaskId task = kInvalidTask;
  /// The policy jumped past the task static order would have run (the
  /// Fig. 5(b) "back and forth" moments). Backends emit the trace instant
  /// themselves — the core knows no clock.
  bool reordered = false;
  TaskId over = kInvalidTask;  ///< the task static order preferred
  bool inputs_resident = false;
};

class ExecutorCore {
 public:
  /// `graph` must outlive the core and stay built; `assignment[t]` is the
  /// node of task t (from the global scheduler).
  ExecutorCore(const TaskGraph& graph, std::vector<int> assignment, int num_nodes,
               CoreConfig config, ResidencyProbe* probe);

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] std::size_t total() const noexcept { return graph_->size(); }
  [[nodiscard]] std::size_t completed() const;
  [[nodiscard]] bool all_done() const;
  /// Every task is Done or Faulted — nothing will ever run again. This is
  /// the graceful-degradation drain condition: equals all_done() while no
  /// task has faulted.
  [[nodiscard]] bool all_settled() const;
  [[nodiscard]] std::vector<TaskId> faulted_tasks() const;
  [[nodiscard]] int retries(TaskId t) const;
  [[nodiscard]] TaskState state(TaskId t) const;
  [[nodiscard]] std::size_t backlog(int node) const;   ///< Assigned count
  [[nodiscard]] std::size_t pending(int node) const;   ///< InputsPending count
  [[nodiscard]] std::size_t runnable(int node) const;
  [[nodiscard]] std::vector<TaskId> pending_tasks(int node) const;

  // ---- staging ----------------------------------------------------------
  /// Pick the best Assigned candidate (policy order) of the requested
  /// residency class and move it to InputsPending. Missing-class picks are
  /// bounded by the window (+ idle demand slots). kInvalidTask when none.
  StageDecision next_to_stage(int node, StageSelect select);
  /// Declare how many input-arrival events the staged task waits for;
  /// 0 promotes it to Runnable immediately.
  void stage(TaskId t, int missing_inputs);
  /// One awaited input landed (storage completion). True when that made
  /// the task Runnable.
  bool note_input(TaskId t);
  /// Re-probe residency (DES path): promote InputsPending tasks whose data
  /// arrived, demote Runnable tasks whose data was evicted back to
  /// Assigned.
  void refresh(int node);

  // ---- running ----------------------------------------------------------
  /// Policy-best Runnable task → Running; kInvalidTask when none.
  TaskId take_runnable(int node);
  /// Blocking-I/O compatibility pick (the --blocking-io ablation): best
  /// Assigned task regardless of residency, straight to Running — the
  /// worker will block on its input futures.
  StageDecision take_direct(int node);
  /// All Assigned tasks in policy order (for the blocking mode's prefetch
  /// pass over the window).
  void policy_order(int node, std::vector<TaskId>& out);
  /// Task finished: dependents whose last dependency this was become
  /// Assigned and are reported as (node, task) in `newly_assigned`.
  void finish(TaskId t, std::vector<std::pair<int, TaskId>>& newly_assigned);

  // ---- fault recovery ----------------------------------------------------
  /// What fault() decided for a task whose input load failed permanently.
  enum class FaultAction {
    Ignored,   ///< stale report (the task was not InputsPending)
    Retry,     ///< re-queued to Assigned; the backend should re-stage it
    Poisoned,  ///< retry budget exhausted: task + transitive successors Faulted
  };
  /// Report a permanent input-load failure of a staged task. Retries move
  /// the task back to Assigned up to max_task_retries times; past that the
  /// task and every transitive successor become Faulted (appended to
  /// `poisoned`, the failed task first).
  FaultAction fault(TaskId t, std::vector<TaskId>* poisoned);
  /// Lost-block recovery: re-queue a Done producer so it re-derives its
  /// write-once outputs. finish() of the re-run does NOT re-decrement
  /// successor dependencies. False when the task is not currently Done.
  bool resurrect(TaskId t);

 private:
  struct NodeQueues {
    std::vector<TaskId> assigned;
    std::vector<TaskId> pending;
    std::vector<TaskId> runnable;
    int running = 0;
  };

  [[nodiscard]] std::pair<std::int64_t, std::int64_t> key_static(TaskId t) const;
  [[nodiscard]] bool candidate_resident(int node, TaskId t) const;
  [[nodiscard]] std::uint64_t score(int node, TaskId t) const;
  /// Best index in `list` by policy order (ties keep the earliest entry,
  /// preserving submission order under Fifo). npos when empty.
  [[nodiscard]] std::size_t best_by_policy(int node, const std::vector<TaskId>& list) const;
  void promote_locked(NodeQueues& nq, TaskId t);

  const TaskGraph* graph_;
  std::vector<int> assignment_;
  CoreConfig config_;
  ResidencyProbe* probe_;

  void poison_locked(TaskId t, std::vector<TaskId>* poisoned);

  mutable std::mutex mutex_;
  std::vector<TaskState> states_;
  std::vector<int> deps_;
  std::vector<int> missing_;
  std::vector<int> retries_;
  /// Task is a resurrected producer: its next finish() must not re-decrement
  /// successor dependencies (they were counted on the first run).
  std::vector<std::uint8_t> rerun_;
  std::vector<NodeQueues> nodes_;
  std::size_t completed_ = 0;
  std::size_t faulted_ = 0;
};

}  // namespace dooc::sched
