#include "sched/executor_core.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dooc::sched {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

void erase_value(std::vector<TaskId>& v, TaskId t) {
  auto it = std::find(v.begin(), v.end(), t);
  DOOC_CHECK(it != v.end(), "executor core queue is missing a task it must hold");
  v.erase(it);
}
}  // namespace

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::Waiting: return "waiting";
    case TaskState::Assigned: return "assigned";
    case TaskState::InputsPending: return "inputs-pending";
    case TaskState::Runnable: return "runnable";
    case TaskState::Running: return "running";
    case TaskState::Done: return "done";
    case TaskState::Faulted: return "faulted";
  }
  return "?";
}

ExecutorCore::ExecutorCore(const TaskGraph& graph, std::vector<int> assignment, int num_nodes,
                           CoreConfig config, ResidencyProbe* probe)
    : graph_(&graph),
      assignment_(std::move(assignment)),
      config_(config),
      probe_(probe) {
  DOOC_REQUIRE(graph.built(), "executor core needs a built task graph");
  DOOC_REQUIRE(assignment_.size() == graph.size(), "assignment size mismatch");
  DOOC_REQUIRE(probe_ != nullptr, "executor core needs a residency probe");
  states_.assign(graph.size(), TaskState::Waiting);
  deps_.resize(graph.size());
  missing_.assign(graph.size(), 0);
  retries_.assign(graph.size(), 0);
  rerun_.assign(graph.size(), 0);
  nodes_.resize(static_cast<std::size_t>(num_nodes));
  for (TaskId t = 0; t < graph.size(); ++t) {
    deps_[t] = static_cast<int>(graph.predecessors(t).size());
    if (deps_[t] == 0) {
      states_[t] = TaskState::Assigned;
      nodes_[static_cast<std::size_t>(assignment_[t])].assigned.push_back(t);
    }
  }
}

std::size_t ExecutorCore::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

bool ExecutorCore::all_done() const {
  std::lock_guard lock(mutex_);
  return completed_ == graph_->size();
}

bool ExecutorCore::all_settled() const {
  std::lock_guard lock(mutex_);
  return completed_ + faulted_ == graph_->size();
}

std::vector<TaskId> ExecutorCore::faulted_tasks() const {
  std::lock_guard lock(mutex_);
  std::vector<TaskId> out;
  for (TaskId t = 0; t < states_.size(); ++t) {
    if (states_[t] == TaskState::Faulted) out.push_back(t);
  }
  return out;
}

int ExecutorCore::retries(TaskId t) const {
  std::lock_guard lock(mutex_);
  return retries_[t];
}

TaskState ExecutorCore::state(TaskId t) const {
  std::lock_guard lock(mutex_);
  return states_[t];
}

std::size_t ExecutorCore::backlog(int node) const {
  std::lock_guard lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].assigned.size();
}

std::size_t ExecutorCore::pending(int node) const {
  std::lock_guard lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].pending.size();
}

std::size_t ExecutorCore::runnable(int node) const {
  std::lock_guard lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].runnable.size();
}

std::vector<TaskId> ExecutorCore::pending_tasks(int node) const {
  std::lock_guard lock(mutex_);
  return nodes_[static_cast<std::size_t>(node)].pending;
}

std::pair<std::int64_t, std::int64_t> ExecutorCore::key_static(TaskId t) const {
  const Task& task = graph_->task(t);
  std::int64_t seq = task.seq;
  if (config_.policy == LocalPolicy::BackAndForth && (task.group % 2) != 0) seq = -seq;
  return {task.group, seq};
}

bool ExecutorCore::candidate_resident(int node, TaskId t) const {
  const Task& task = graph_->task(t);
  // Sync tasks are barriers — control messages, not transfers.
  if (task.kind == "sync" || task.inputs.empty()) return true;
  return probe_->inputs_resident(node, task);
}

std::uint64_t ExecutorCore::score(int node, TaskId t) const {
  return probe_->resident_input_bytes(node, graph_->task(t));
}

std::size_t ExecutorCore::best_by_policy(int node, const std::vector<TaskId>& list) const {
  if (list.empty()) return kNpos;
  std::size_t best = 0;
  if (config_.policy == LocalPolicy::DataAware) {
    // Highest resident byte count wins; ties by (group, seq).
    std::uint64_t best_score = score(node, list[0]);
    for (std::size_t i = 1; i < list.size(); ++i) {
      const std::uint64_t s = score(node, list[i]);
      if (s > best_score || (s == best_score && key_static(list[i]) < key_static(list[best]))) {
        best = i;
        best_score = s;
      }
    }
  } else {
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (key_static(list[i]) < key_static(list[best])) best = i;
    }
  }
  return best;
}

StageDecision ExecutorCore::next_to_stage(int node, StageSelect select) {
  std::lock_guard lock(mutex_);
  auto& nq = nodes_[static_cast<std::size_t>(node)];
  if (nq.assigned.empty()) return {};
  if (select == StageSelect::Missing) {
    int cap = config_.prefetch_window;
    if (config_.demand_slots > 0) {
      const int busy = nq.running + static_cast<int>(nq.runnable.size()) +
                       static_cast<int>(nq.pending.size());
      cap += std::max(0, config_.demand_slots - busy);
    }
    if (static_cast<int>(nq.pending.size()) >= cap) return {};
  }

  // Policy-best candidate of the requested residency class. Ties keep the
  // earliest entry so Fifo degenerates to submission order.
  const bool want_resident = select == StageSelect::Resident;
  std::size_t best = kNpos;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < nq.assigned.size(); ++i) {
    const TaskId t = nq.assigned[i];
    if (candidate_resident(node, t) != want_resident) continue;
    if (best == kNpos) {
      best = i;
      if (config_.policy == LocalPolicy::DataAware) best_score = score(node, t);
      continue;
    }
    bool better;
    if (config_.policy == LocalPolicy::DataAware) {
      const std::uint64_t s = score(node, t);
      better = s > best_score ||
               (s == best_score && key_static(t) < key_static(nq.assigned[best]));
      if (better) best_score = s;
    } else {
      better = key_static(t) < key_static(nq.assigned[best]);
    }
    if (better) best = i;
  }
  if (best == kNpos) return {};

  StageDecision d;
  d.task = nq.assigned[best];
  d.inputs_resident = want_resident;
  if (config_.policy == LocalPolicy::DataAware) {
    // Did the data-aware policy jump past the static order's choice?
    std::size_t fifo = 0;
    for (std::size_t i = 1; i < nq.assigned.size(); ++i) {
      if (key_static(nq.assigned[i]) < key_static(nq.assigned[fifo])) fifo = i;
    }
    if (nq.assigned[fifo] != d.task) {
      d.reordered = true;
      d.over = nq.assigned[fifo];
    }
  }
  nq.assigned.erase(nq.assigned.begin() + static_cast<std::ptrdiff_t>(best));
  states_[d.task] = TaskState::InputsPending;
  nq.pending.push_back(d.task);
  return d;
}

void ExecutorCore::promote_locked(NodeQueues& nq, TaskId t) {
  erase_value(nq.pending, t);
  states_[t] = TaskState::Runnable;
  nq.runnable.push_back(t);
}

void ExecutorCore::stage(TaskId t, int missing_inputs) {
  std::lock_guard lock(mutex_);
  DOOC_CHECK(states_[t] == TaskState::InputsPending, "stage() on a task that was not staged");
  missing_[t] = missing_inputs;
  if (missing_inputs == 0) {
    promote_locked(nodes_[static_cast<std::size_t>(assignment_[t])], t);
  }
}

bool ExecutorCore::note_input(TaskId t) {
  std::lock_guard lock(mutex_);
  if (states_[t] != TaskState::InputsPending) return false;
  if (--missing_[t] > 0) return false;
  promote_locked(nodes_[static_cast<std::size_t>(assignment_[t])], t);
  return true;
}

void ExecutorCore::refresh(int node) {
  std::lock_guard lock(mutex_);
  auto& nq = nodes_[static_cast<std::size_t>(node)];
  // Promote staged tasks whose data has (virtually) arrived.
  for (std::size_t i = 0; i < nq.pending.size();) {
    const TaskId t = nq.pending[i];
    if (candidate_resident(node, t)) {
      nq.pending.erase(nq.pending.begin() + static_cast<std::ptrdiff_t>(i));
      states_[t] = TaskState::Runnable;
      nq.runnable.push_back(t);
    } else {
      ++i;
    }
  }
  // Demote runnable tasks whose data was evicted while they queued (memory
  // pressure can reclaim an unpinned input between turns).
  for (std::size_t i = 0; i < nq.runnable.size();) {
    const TaskId t = nq.runnable[i];
    if (!candidate_resident(node, t)) {
      nq.runnable.erase(nq.runnable.begin() + static_cast<std::ptrdiff_t>(i));
      states_[t] = TaskState::Assigned;
      missing_[t] = 0;
      nq.assigned.push_back(t);
    } else {
      ++i;
    }
  }
}

TaskId ExecutorCore::take_runnable(int node) {
  std::lock_guard lock(mutex_);
  auto& nq = nodes_[static_cast<std::size_t>(node)];
  const std::size_t best = best_by_policy(node, nq.runnable);
  if (best == kNpos) return kInvalidTask;
  const TaskId t = nq.runnable[best];
  nq.runnable.erase(nq.runnable.begin() + static_cast<std::ptrdiff_t>(best));
  states_[t] = TaskState::Running;
  ++nq.running;
  return t;
}

StageDecision ExecutorCore::take_direct(int node) {
  std::lock_guard lock(mutex_);
  auto& nq = nodes_[static_cast<std::size_t>(node)];
  const std::size_t best = best_by_policy(node, nq.assigned);
  if (best == kNpos) return {};
  StageDecision d;
  d.task = nq.assigned[best];
  d.inputs_resident = candidate_resident(node, d.task);
  if (config_.policy == LocalPolicy::DataAware) {
    std::size_t fifo = 0;
    for (std::size_t i = 1; i < nq.assigned.size(); ++i) {
      if (key_static(nq.assigned[i]) < key_static(nq.assigned[fifo])) fifo = i;
    }
    if (nq.assigned[fifo] != d.task) {
      d.reordered = true;
      d.over = nq.assigned[fifo];
    }
  }
  nq.assigned.erase(nq.assigned.begin() + static_cast<std::ptrdiff_t>(best));
  states_[d.task] = TaskState::Running;
  ++nq.running;
  return d;
}

void ExecutorCore::policy_order(int node, std::vector<TaskId>& out) {
  std::lock_guard lock(mutex_);
  const auto& nq = nodes_[static_cast<std::size_t>(node)];
  out = nq.assigned;
  std::sort(out.begin(), out.end(), [&](TaskId a, TaskId b) {
    if (config_.policy == LocalPolicy::DataAware) {
      const std::uint64_t ra = score(node, a);
      const std::uint64_t rb = score(node, b);
      if (ra != rb) return ra > rb;
    }
    const Task& ta = graph_->task(a);
    const Task& tb = graph_->task(b);
    return std::make_pair(ta.group, ta.seq) < std::make_pair(tb.group, tb.seq);
  });
}

void ExecutorCore::finish(TaskId t, std::vector<std::pair<int, TaskId>>& newly_assigned) {
  std::lock_guard lock(mutex_);
  DOOC_CHECK(states_[t] == TaskState::Running, "finish() on a task that was not running");
  states_[t] = TaskState::Done;
  --nodes_[static_cast<std::size_t>(assignment_[t])].running;
  ++completed_;
  if (rerun_[t] != 0) {
    // Resurrected producer: its successors' dependencies were decremented on
    // the first run; only the rewritten blocks matter this time.
    rerun_[t] = 0;
    return;
  }
  for (TaskId s : graph_->successors(t)) {
    if (--deps_[s] == 0 && states_[s] == TaskState::Waiting) {
      states_[s] = TaskState::Assigned;
      const int node = assignment_[s];
      nodes_[static_cast<std::size_t>(node)].assigned.push_back(s);
      newly_assigned.emplace_back(node, s);
    }
  }
}

ExecutorCore::FaultAction ExecutorCore::fault(TaskId t, std::vector<TaskId>* poisoned) {
  std::lock_guard lock(mutex_);
  if (states_[t] != TaskState::InputsPending) return FaultAction::Ignored;  // stale report
  auto& nq = nodes_[static_cast<std::size_t>(assignment_[t])];
  erase_value(nq.pending, t);
  missing_[t] = 0;
  if (++retries_[t] <= config_.max_task_retries) {
    states_[t] = TaskState::Assigned;
    nq.assigned.push_back(t);
    return FaultAction::Retry;
  }
  poison_locked(t, poisoned);
  return FaultAction::Poisoned;
}

void ExecutorCore::poison_locked(TaskId t, std::vector<TaskId>* poisoned) {
  // The failed task and every transitive successor will never run: mark
  // them Faulted (settled). Successors of a non-Done task are necessarily
  // still Waiting (their dependencies cannot all be Done), so no queue
  // entries need removing beyond t's own, handled by the caller.
  std::vector<TaskId> stack{t};
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    if (states_[cur] == TaskState::Faulted) continue;
    states_[cur] = TaskState::Faulted;
    ++faulted_;
    if (poisoned != nullptr) poisoned->push_back(cur);
    for (TaskId s : graph_->successors(cur)) {
      if (states_[s] != TaskState::Done && states_[s] != TaskState::Faulted) stack.push_back(s);
    }
  }
}

bool ExecutorCore::resurrect(TaskId t) {
  std::lock_guard lock(mutex_);
  if (states_[t] != TaskState::Done) return false;
  rerun_[t] = 1;
  states_[t] = TaskState::Assigned;
  --completed_;
  nodes_[static_cast<std::size_t>(assignment_[t])].assigned.push_back(t);
  return true;
}

}  // namespace dooc::sched
