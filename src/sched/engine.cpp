#include "sched/engine.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/log.hpp"
#include "fault/fault_plan.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace dooc::sched {

namespace {

/// Subtract per-field to get the delta of cluster stats over a run.
storage::StorageStats delta(const storage::StorageStats& after, const storage::StorageStats& before) {
  storage::StorageStats d;
  d.disk_reads = after.disk_reads - before.disk_reads;
  d.disk_read_bytes = after.disk_read_bytes - before.disk_read_bytes;
  d.disk_writes = after.disk_writes - before.disk_writes;
  d.disk_write_bytes = after.disk_write_bytes - before.disk_write_bytes;
  d.remote_fetches = after.remote_fetches - before.remote_fetches;
  d.remote_fetch_bytes = after.remote_fetch_bytes - before.remote_fetch_bytes;
  d.evictions = after.evictions - before.evictions;
  d.evicted_bytes = after.evicted_bytes - before.evicted_bytes;
  d.lookup_hops = after.lookup_hops - before.lookup_hops;
  d.read_requests = after.read_requests - before.read_requests;
  d.write_requests = after.write_requests - before.write_requests;
  d.prefetch_requests = after.prefetch_requests - before.prefetch_requests;
  d.disk_read_seconds = after.disk_read_seconds - before.disk_read_seconds;
  d.disk_write_seconds = after.disk_write_seconds - before.disk_write_seconds;
  return d;
}

/// Completion tag layout: | job:16 | task:32 | attempt:4 | input:12 |.
/// The job field routes a completion to its job's core and lets stragglers
/// of a finished (or failed) job be dropped at the queue; the attempt
/// nibble lets the fault path discard completions of a staging that was
/// already torn down by a retry — without it, a straggler read of attempt
/// N could double-count an input of attempt N+1 and promote the task to
/// Runnable with loads still in flight. (Live jobs whose ids collide in
/// the low 16 bits are rejected at submit.)
std::uint64_t make_tag(std::uint32_t job, TaskId t, int attempt, std::size_t input_index) {
  return ((static_cast<std::uint64_t>(job) & 0xFFFFull) << 48) |
         (static_cast<std::uint64_t>(t) << 16) |
         ((static_cast<std::uint64_t>(attempt) & 0xFull) << 12) | (input_index & 0xFFFull);
}

/// what() of a stored exception, for the structured failure summary.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

void emit_reorder(int node, const StageDecision& d, std::uint32_t job) {
  // A reorder decision: the data-aware policy jumped past the task static
  // order would have run. These instants are the Fig. 5(b) "back and
  // forth" moments, visible right on the node's timeline.
  obs::Event ev;
  ev.phase = obs::Phase::Instant;
  ev.cat = obs::intern("sched");
  ev.name = obs::intern("reorder");
  ev.pid = node;
  ev.ts_ns = obs::TraceClock::now_ns();
  ev.nargs = 3;
  ev.arg_name[0] = obs::intern("picked");
  ev.arg_val[0] = d.task;
  ev.arg_name[1] = obs::intern("over");
  ev.arg_val[1] = d.over;
  ev.arg_name[2] = obs::intern("job");
  ev.arg_val[2] = job;
  obs::TraceSession::instance().emit(ev);
}

}  // namespace

std::string FaultSummary::to_text() const {
  std::string out = "fault summary: " + std::to_string(failed.size()) + " failed, " +
                    std::to_string(poisoned) + " poisoned, " + std::to_string(load_faults) +
                    " load fault(s), " + std::to_string(task_retries) + " task retry(ies), " +
                    std::to_string(producer_reruns) + " producer rerun(s)";
  for (const FaultRecord& r : failed) {
    out += "\n  task " + std::to_string(r.task) + " '" + r.name + "' on node " +
           std::to_string(r.node) + " after " + std::to_string(r.retries) +
           " retry(ies): " + r.error;
  }
  return out;
}

/// Handles a staged task carries while it is InputsPending: the slots its
/// read completions fill, plus what the trace needs to know about the wait.
struct Engine::Staged {
  std::vector<storage::ReadHandle> inputs;
  std::vector<std::uint8_t> missing;    ///< per-input: non-resident at stage
  std::uint64_t missing_bytes = 0;      ///< at stage time
  bool resident_at_stage = true;
  std::uint64_t stage_ts_ns = 0;        ///< InputsPending span start
};

/// One submitted job: its graph, assignment, ExecutorCore and accounting.
/// Shared between the job table and the workers touching it; the comments
/// name the lock guarding each field.
struct Engine::JobRun {
  std::uint32_t id = 0;
  double weight = 1.0;
  int priority = 0;
  TaskGraph* graph = nullptr;
  std::vector<int> assignment;
  std::unique_ptr<ExecutorCore> core;
  Stopwatch clock;                       ///< started at submit
  storage::StorageStats stats_before;
  std::uint64_t cross_before = 0;
  FaultSummary faults;                   ///< fault_mutex_
  std::vector<TraceEvent> trace;         ///< trace_mutex_
  std::atomic<bool> failed{false};
  std::exception_ptr error;              ///< jobs_mutex_
  bool retired = false;                  ///< jobs_mutex_
  bool done = false;                     ///< jobs_mutex_
  Report report;                         ///< jobs_mutex_ until done
  obs::Counter* m_tasks_done = nullptr;  ///< jobs.tasks_done, keyed by job id
};

struct Engine::NodeState {
  int node = -1;
  std::mutex mutex;
  std::condition_variable cv;
  /// Bumped under `mutex` by every wake source (completion-queue notifier,
  /// complete(), wake_all()) so waits never miss an edge.
  std::uint64_t wake_seq = 0;
  /// Staged inputs, keyed by (job << 32 | task) — per-job task namespaces.
  std::unordered_map<std::uint64_t, Staged> staged;
  /// Round-robin cursor over equal-priority jobs (compute fairness).
  std::uint64_t rr = 0;
  /// Tag→job routing cache for drain_completions, refreshed from the job
  /// table when jobs_version_ moves.
  std::unordered_map<std::uint16_t, JobPtr> job_cache;
  std::uint64_t job_cache_version = static_cast<std::uint64_t>(-1);
  obs::Histogram* m_wait = nullptr;     ///< sched.inputs_pending_us
  obs::Counter* m_parked = nullptr;     ///< sched.tasks_parked
  obs::Gauge* m_cq_depth = nullptr;     ///< sched.completion_queue_depth
  obs::Counter* m_load_faults = nullptr;     ///< sched.load_faults
  obs::Counter* m_task_retries = nullptr;    ///< sched.task_retries
  obs::Counter* m_producer_reruns = nullptr; ///< sched.producer_reruns
  obs::Counter* m_tasks_exec = nullptr;      ///< sched.tasks_executed
  obs::Histogram* m_exec_us = nullptr;       ///< sched.exec_us (task body only)
};

/// ExecutorCore's view of this engine's storage residency.
class Engine::Probe final : public ResidencyProbe {
 public:
  explicit Probe(storage::StorageCluster& cluster) : cluster_(&cluster) {}

  std::uint64_t resident_input_bytes(int node, const Task& task) override {
    std::uint64_t resident = 0;
    auto& storage_node = cluster_->node(node);
    for (const auto& in : task.inputs) {
      if (storage_node.is_resident(in)) resident += in.length;
    }
    return resident;
  }

  bool inputs_resident(int node, const Task& task) override {
    auto& storage_node = cluster_->node(node);
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) return false;
    }
    return true;
  }

 private:
  storage::StorageCluster* cluster_;
};

Engine::Engine(storage::StorageCluster& cluster, EngineConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  DOOC_REQUIRE(config_.compute_slots_per_node > 0, "need at least one compute slot per node");
  DOOC_REQUIRE(config_.split_threads_per_node > 0, "need at least one split thread per node");
  split_pools_.reserve(static_cast<std::size_t>(cluster_.num_nodes()));
  for (int i = 0; i < cluster_.num_nodes(); ++i) {
    split_pools_.push_back(
        std::make_unique<ThreadPool>(static_cast<std::size_t>(config_.split_threads_per_node)));
  }
  probe_ = std::make_unique<Probe>(cluster_);
  // Blocking-io mode keeps the legacy abort-on-error path: its reads block
  // on futures inside execute(), never reaching the completion-queue fault
  // handling (the I/O filters still retry transient errors underneath).
  fault_tolerant_ = cluster_.fault_plan() != nullptr && !config_.blocking_io;
}

Engine::~Engine() {
  // Stop the telemetry sampler first: its final sample still sees the
  // registry (a leaked singleton), but must not observe a half-torn engine.
  telemetry_.reset();
  shutdown_.store(true);
  wake_all();
  for (auto& w : workers_) w.join();
  // Close the queues before tearing down per-job state: completions of
  // still-in-flight reads (an abandoned job's stragglers) drop their
  // payloads at the queue boundary instead of touching freed engine state.
  if (started_ && !config_.blocking_io) {
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      cluster_.node(n).completions().close();
    }
  }
  // Destroying NodeStates releases read pins a staged-but-never-run task
  // still holds (abandoned jobs).
  node_states_.clear();
}

std::uint32_t Engine::reserve_job_id() { return next_job_id_.fetch_add(1); }

void Engine::set_on_job_done(std::function<void(std::uint32_t)> cb) {
  std::lock_guard lock(jobs_mutex_);
  on_job_done_ = std::move(cb);
}

void Engine::ensure_started() {
  std::lock_guard start(start_mutex_);
  if (started_) return;
  auto& metrics = obs::Metrics::instance();
  node_states_.clear();
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    ns->m_wait = &metrics.histogram("sched.inputs_pending_us", n);
    ns->m_parked = &metrics.counter("sched.tasks_parked", n);
    ns->m_cq_depth = &metrics.gauge("sched.completion_queue_depth", n);
    ns->m_load_faults = &metrics.counter("sched.load_faults", n);
    ns->m_task_retries = &metrics.counter("sched.task_retries", n);
    ns->m_producer_reruns = &metrics.counter("sched.producer_reruns", n);
    ns->m_tasks_exec = &metrics.counter("sched.tasks_executed", n);
    ns->m_exec_us = &metrics.histogram("sched.exec_us", n);
    node_states_.push_back(std::move(ns));
  }
  if (!config_.blocking_io) {
    for (auto& ns : node_states_) {
      NodeState* state = ns.get();
      cluster_.node(state->node).completions().open([state] {
        {
          std::lock_guard lock(state->mutex);
          ++state->wake_seq;
        }
        state->cv.notify_all();
      });
    }
  }
  workers_.reserve(node_states_.size() * static_cast<std::size_t>(config_.compute_slots_per_node));
  for (auto& ns : node_states_) {
    NodeState* state = ns.get();
    for (int slot = 0; slot < config_.compute_slots_per_node; ++slot) {
      workers_.emplace_back([this, state, slot] {
        if (config_.blocking_io) {
          worker_loop_blocking(*state, slot);
        } else {
          worker_loop(*state, slot);
        }
      });
    }
  }
  // Opt-in live telemetry for the in-process backend: one sampler thread
  // snapshots the registry per node on the configured cadence and runs
  // the health watchdog over its own hub.
  if (const auto tcfg = obs::telemetry::TelemetryConfig::from_env(); tcfg.enabled) {
    telemetry_ = std::make_unique<obs::telemetry::LocalTelemetry>(
        tcfg, cluster_.num_nodes(), "engine");
  }
  started_ = true;
}

std::uint32_t Engine::submit(TaskGraph& graph, SubmitOptions options) {
  DOOC_REQUIRE(graph.built(), "submit() needs a built task graph");
  DOOC_REQUIRE(options.weight > 0.0, "job weight must be positive");
  const std::uint32_t id = options.job != 0 ? options.job : reserve_job_id();

  auto jr = std::make_shared<JobRun>();
  jr->id = id;
  jr->weight = options.weight;
  jr->priority = options.priority;
  jr->graph = &graph;
  jr->stats_before = cluster_.total_stats();
  jr->cross_before =
      cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0;

  GlobalScheduler global(cluster_.num_nodes(), config_.global_policy);
  CatalogLocator locator(&cluster_.catalog());
  jr->assignment = global.assign(graph, locator);

  CoreConfig core_config;
  core_config.policy = config_.local_policy;
  core_config.prefetch_window = config_.prefetch_window;
  // Completion-driven mode: an idle compute slot may always demand-stage
  // something even with the window exhausted, else the node deadlocks idle.
  core_config.demand_slots = config_.blocking_io ? 0 : config_.compute_slots_per_node;
  jr->core = std::make_unique<ExecutorCore>(graph, jr->assignment, cluster_.num_nodes(),
                                            core_config, probe_.get());

  auto& metrics = obs::Metrics::instance();
  jr->m_tasks_done = &metrics.counter("jobs.tasks_done", static_cast<int>(id));

  // The job id is the storage tenant: every read the job issues is
  // arbitrated under this weight/priority.
  cluster_.set_tenant(id, jr->weight, jr->priority);

  ensure_started();

  {
    std::lock_guard lock(jobs_mutex_);
    const auto tag16 = static_cast<std::uint16_t>(id & 0xFFFF);
    DOOC_REQUIRE(jobs_.find(id) == jobs_.end(), "duplicate live job id");
    DOOC_REQUIRE(jobs_by_tag_.find(tag16) == jobs_by_tag_.end(),
                 "job id collides with a live job in the low 16 bits");
    jobs_.emplace(id, jr);
    jobs_by_tag_.emplace(tag16, jr);
    ++jobs_version_;
  }
  metrics.counter("jobs.submitted", -1).add();

  if (config_.blocking_io) {
    // Initial prefetch pass over the seeded backlog, as the old engine did.
    for (auto& ns : node_states_) {
      std::lock_guard lock(ns->mutex);
      prefetch_blocking_locked(*ns, *jr);
    }
  }

  jr->clock.restart();
  if (jr->core->all_settled()) {
    // Empty graph: nothing will ever call complete() — settle it here.
    retire_job(jr);
  } else {
    wake_all();
  }
  return id;
}

Report Engine::await(std::uint32_t job) {
  JobPtr jr;
  {
    std::unique_lock lock(jobs_mutex_);
    auto it = jobs_.find(job);
    DOOC_REQUIRE(it != jobs_.end(), "await() of an unknown or already-awaited job");
    jr = it->second;
    jobs_cv_.wait(lock, [&] { return jr->done; });
    jobs_.erase(job);
    ++jobs_version_;
  }
  if (jr->error) std::rethrow_exception(jr->error);
  return std::move(jr->report);
}

bool Engine::finished(std::uint32_t job) {
  std::lock_guard lock(jobs_mutex_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return true;  // already reaped
  return it->second->done;
}

Report Engine::run(TaskGraph& graph) {
  const std::uint32_t id = submit(graph);
  return await(id);
}

std::vector<Engine::JobPtr> Engine::job_snapshot(std::uint64_t rotate) {
  std::vector<JobPtr> out;
  {
    std::lock_guard lock(jobs_mutex_);
    out.reserve(jobs_.size());
    for (auto& [id, jr] : jobs_) {
      if (!jr->done && !jr->retired && !jr->failed.load()) out.push_back(jr);
    }
  }
  std::sort(out.begin(), out.end(), [](const JobPtr& a, const JobPtr& b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->id < b->id;
  });
  // Rotate within the top priority tier only: strict priority between
  // tiers, round-robin fairness inside one.
  if (out.size() > 1) {
    std::size_t tier = 1;
    while (tier < out.size() && out[tier]->priority == out[0]->priority) ++tier;
    if (tier > 1) {
      std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(rotate % tier),
                  out.begin() + static_cast<std::ptrdiff_t>(tier));
    }
  }
  return out;
}

void Engine::wake_all() {
  for (auto& ns : node_states_) {
    {
      std::lock_guard lock(ns->mutex);
      ++ns->wake_seq;
    }
    ns->cv.notify_all();
  }
}

void Engine::notify_nodes(std::vector<int>& nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const int node : nodes) {
    NodeState& other = *node_states_[static_cast<std::size_t>(node)];
    {
      std::lock_guard lock(other.mutex);
      ++other.wake_seq;
    }
    other.cv.notify_all();
  }
  nodes.clear();
}

void Engine::drain_completions(NodeState& ns, std::vector<int>& wakes,
                               std::vector<JobPtr>& failures, std::vector<JobPtr>& settled) {
  auto& queue = cluster_.node(ns.node).completions();
  if (ns.m_cq_depth != nullptr) ns.m_cq_depth->set(static_cast<double>(queue.depth()));
  const bool tracing = obs::trace_enabled();
  if (ns.job_cache_version != jobs_version_.load()) {
    std::lock_guard lock(jobs_mutex_);
    ns.job_cache = jobs_by_tag_;
    ns.job_cache_version = jobs_version_.load();
  }
  storage::Completion c;
  while (queue.pop(c)) {
    const auto tag16 = static_cast<std::uint16_t>(c.tag >> 48);
    auto jit = ns.job_cache.find(tag16);
    if (jit == ns.job_cache.end()) continue;  // finished job's straggler; pin drops here
    const JobPtr& jr = jit->second;
    const auto t = static_cast<TaskId>((c.tag >> 16) & 0xFFFFFFFFull);
    if (jr->failed.load()) {
      // The job died between issue and completion: drop the payload and
      // any staged shell the failure sweep may have missed.
      ns.staged.erase(staged_key(jr->id, t));
      continue;
    }
    // Straggler from a staging the fault path already tore down: dropping
    // it releases its pin at the queue boundary; counting it would corrupt
    // the current attempt's input accounting.
    if (fault_tolerant_ &&
        static_cast<int>((c.tag >> 12) & 0xFull) != (jr->core->retries(t) & 0xF)) {
      continue;
    }
    if (c.error) {
      if (!fault_tolerant_) {
        // Legacy plan-less behaviour, scoped to the owning job: the first
        // storage error fails that job (and only that job).
        jr->error = jr->error ? jr->error : c.error;  // jobs_mutex_-free: fail_job re-records
        failures.push_back(jr);
        continue;
      }
      handle_load_fault(ns, jr, t, c.error, wakes, settled);
      continue;
    }
    auto it = ns.staged.find(staged_key(jr->id, t));
    if (it == ns.staged.end()) continue;
    Staged& st = it->second;
    const auto idx = static_cast<std::size_t>(c.tag & 0xFFFull);
    if (idx < st.inputs.size()) st.inputs[idx] = std::move(c.read);
    if (jr->core->note_input(t) && !st.resident_at_stage) {
      // The InputsPending wait is over: the span from stage to last input.
      const std::uint64_t now = obs::TraceClock::now_ns();
      const std::uint64_t dur = now - st.stage_ts_ns;
      if (ns.m_wait != nullptr) ns.m_wait->add(static_cast<double>(dur) / 1e3);
      if (tracing) {
        obs::Event ev;
        ev.phase = obs::Phase::Complete;
        ev.cat = obs::intern("sched");
        ev.name = obs::intern("inputs-pending");
        ev.pid = ns.node;
        // Parked tasks are not bound to a worker thread, so they render on
        // their own lane band rather than a compute lane.
        ev.tid = 200 + static_cast<std::int32_t>(t % 16);
        ev.ts_ns = st.stage_ts_ns;
        ev.dur_ns = dur;
        ev.nargs = 3;
        ev.arg_name[0] = obs::intern("group");
        ev.arg_val[0] = static_cast<std::uint64_t>(jr->graph->task(t).group);
        ev.arg_name[1] = obs::intern("missing_bytes");
        ev.arg_val[1] = st.missing_bytes;
        ev.arg_name[2] = obs::intern("job");
        ev.arg_val[2] = jr->id;
        obs::TraceSession::instance().emit(ev);
        // Close each missing input's load flow on the waiting task: the
        // 'f' point carries the consumer task id, which is how the causal
        // graph knows which load gated which task.
        const Task& task = jr->graph->task(t);
        for (std::size_t i = 0; i < task.inputs.size() && i < st.missing.size(); ++i) {
          if (st.missing[i] == 0) continue;
          obs::emit_flow(obs::Phase::FlowEnd, obs::intern("load"), obs::intern("load-ready"),
                         ns.node, ev.tid, now,
                         obs::causal::flow_id_load(task.inputs[i].array, task.inputs[i].offset),
                         obs::intern("task"), t, obs::intern("job"), jr->id);
        }
      }
    }
  }
}

void Engine::handle_load_fault(NodeState& ns, const JobPtr& jr, TaskId t,
                               const std::exception_ptr& err, std::vector<int>& wakes,
                               std::vector<JobPtr>& settled) {
  if (ns.m_load_faults != nullptr) ns.m_load_faults->add();
  {
    std::lock_guard flock(fault_mutex_);
    ++jr->faults.load_faults;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant(obs::intern("fault"), obs::intern("load-failed"), ns.node, 0);
  }
  // A load only fails permanently once the I/O filters exhausted the
  // retry/backoff policy, so first check whether an input is genuinely
  // *lost* (its only copies on downed nodes, nothing durable) and re-derive
  // it by re-running the Done producer before this task retries.
  maybe_resurrect_producers(ns, jr, t, wakes);
  std::vector<TaskId> poisoned;
  const ExecutorCore::FaultAction action = jr->core->fault(t, &poisoned);
  if (action == ExecutorCore::FaultAction::Ignored) return;
  // Drop the partial staging: surviving read handles release their pins.
  ns.staged.erase(staged_key(jr->id, t));
  if (action == ExecutorCore::FaultAction::Retry) {
    if (ns.m_task_retries != nullptr) ns.m_task_retries->add();
    std::lock_guard flock(fault_mutex_);
    ++jr->faults.task_retries;
    return;
  }
  // Poisoned: this task and its transitive successors will never run. The
  // job keeps draining everything else — graceful degradation, not abort.
  FaultRecord rec;
  rec.task = t;
  rec.name = jr->graph->task(t).name;
  rec.node = ns.node;
  rec.retries = jr->core->retries(t) - 1;
  rec.error = describe(err);
  DOOC_LOG(Warn, "engine") << "job " << jr->id << " task " << t << " '" << rec.name
                           << "' poisoned after " << rec.retries << " retries: " << rec.error;
  {
    std::lock_guard flock(fault_mutex_);
    jr->faults.failed.push_back(std::move(rec));
    jr->faults.poisoned += poisoned.empty() ? 0 : poisoned.size() - 1;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant(obs::intern("fault"), obs::intern("task-poisoned"), ns.node, 0);
  }
  if (jr->core->all_settled()) {
    // Poisoning settled the job: the usual settle point lives in
    // complete(), which a poisoned task never reaches, so queue the
    // retirement here (the caller runs it once ns.mutex is released) and
    // fan the wake out so parked workers drop the job from their
    // snapshots.
    settled.push_back(jr);
    for (int n = 0; n < cluster_.num_nodes(); ++n) wakes.push_back(n);
  }
}

void Engine::maybe_resurrect_producers(NodeState& ns, const JobPtr& jr, TaskId t,
                                       std::vector<int>& wakes) {
  const Task& task = jr->graph->task(t);
  for (const auto& in : task.inputs) {
    const TaskId p = jr->graph->writer_of(in);
    if (p == kInvalidTask) continue;                       // pre-existing input
    if (jr->core->state(p) != TaskState::Done) continue;   // queued / rerunning / poisoned
    if (!block_lost(in)) continue;                         // still reachable: plain retry suffices
    // Forget *every* output block of the producer, not just the lost one —
    // the arrays are write-once, so a partial rewrite would trip
    // immutability on the surviving blocks.
    if (!forget_outputs(jr, p)) continue;  // some block still live → not actually lost
    if (!jr->core->resurrect(p)) continue;
    if (ns.m_producer_reruns != nullptr) ns.m_producer_reruns->add();
    {
      std::lock_guard flock(fault_mutex_);
      ++jr->faults.producer_reruns;
    }
    DOOC_LOG(Warn, "engine") << "re-running task " << p << " to re-derive lost block(s) of '"
                             << in.array << "'";
    if (obs::trace_enabled()) {
      obs::emit_instant(obs::intern("fault"), obs::intern("producer-rerun"), jr->assignment[p], 0);
    }
    wakes.push_back(jr->assignment[p]);
  }
}

bool Engine::block_lost(const storage::Interval& in) const {
  const fault::FaultPlan* plan = cluster_.fault_plan().get();
  auto& shard = cluster_.catalog().shard_for(in.array);
  const std::optional<storage::ArrayMeta> meta = shard.find(in.array);
  if (!meta || meta->block_size == 0) return false;
  const storage::BlockInfo info =
      shard.block_info(storage::BlockKey{in.array, in.offset / meta->block_size});
  // Durable blocks are never lost: the scratch file outlives the node
  // process (the paper's shared GPFS tier), so a demand read or the
  // home-down failover path can always re-load them.
  if (info.durable) return false;
  const auto up = [plan](int node) { return plan == nullptr || !plan->node_down(node); };
  for (const int holder : info.holders) {
    if (up(holder)) return false;  // a live in-memory copy exists
  }
  return true;
}

bool Engine::forget_outputs(const JobPtr& jr, TaskId p) {
  const Task& task = jr->graph->task(p);
  for (const auto& out : task.outputs) {
    auto& shard = cluster_.catalog().shard_for(out.array);
    const std::optional<storage::ArrayMeta> meta = shard.find(out.array);
    if (!meta || meta->block_size == 0) continue;
    const std::uint64_t first = out.offset / meta->block_size;
    const std::uint64_t last = out.length == 0 ? first : (out.end() - 1) / meta->block_size;
    for (std::uint64_t b = first; b <= last; ++b) {
      // forget_block purges *every* node's copy — catalog-listed replicas
      // and unlisted transient ones alike — and resets the block's heat, so
      // a resurrected producer can never race a stale replica serving
      // pre-fault bytes (the write-once coherence story's one invalidation
      // point).
      if (!cluster_.forget_block(storage::BlockKey{out.array, b})) return false;
      if (obs::trace_enabled()) {
        obs::emit_instant(obs::intern("replication"), obs::intern("invalidate"), jr->assignment[p],
                          static_cast<int>(b));
      }
    }
  }
  return true;
}

void Engine::stage_tasks(NodeState& ns, std::unique_lock<std::mutex>& lock,
                         const std::vector<JobPtr>& jobs) {
  auto& storage_node = cluster_.node(ns.node);
  const bool tracing = obs::trace_enabled();
  struct Plan {
    JobPtr job;
    TaskId task;
    const Task* def;
    std::vector<std::uint8_t> missing;  ///< per-input, as staged
  };
  std::vector<Plan> plans;
  for (const JobPtr& jr : jobs) {
    // Resident candidates stage freely (they never consume the window),
    // then missing candidates up to window + idle demand slots — per job:
    // every job owns a full window, so a small job's staging is never
    // crowded out by a large one's backlog.
    for (const StageSelect select : {StageSelect::Resident, StageSelect::Missing}) {
      while (true) {
        const StageDecision d = jr->core->next_to_stage(ns.node, select);
        if (d.task == kInvalidTask) break;
        const Task& task = jr->graph->task(d.task);
        if (tracing && d.reordered) emit_reorder(ns.node, d, jr->id);
        if (task.kind == "sync" || task.inputs.empty()) {
          // Barriers move no data: straight to Runnable.
          ns.staged.emplace(staged_key(jr->id, d.task), Staged{});
          jr->core->stage(d.task, 0);
          continue;
        }
        Staged st;
        st.inputs.resize(task.inputs.size());
        st.missing.resize(task.inputs.size(), 0);
        for (std::size_t i = 0; i < task.inputs.size(); ++i) {
          if (!storage_node.is_resident(task.inputs[i])) {
            st.missing[i] = 1;
            st.missing_bytes += task.inputs[i].length;
          }
        }
        st.resident_at_stage = st.missing_bytes == 0;
        st.stage_ts_ns = obs::TraceClock::now_ns();
        if (!st.resident_at_stage && ns.m_parked != nullptr) ns.m_parked->add();
        std::vector<std::uint8_t> missing = st.missing;
        ns.staged.emplace(staged_key(jr->id, d.task), std::move(st));
        // Every input read reports through the completion queue, so the
        // task waits for one event per input (resident ones land
        // immediately).
        jr->core->stage(d.task, static_cast<int>(task.inputs.size()));
        plans.push_back({jr, d.task, &task, std::move(missing)});
      }
    }
  }
  if (plans.empty()) return;
  // Already-resident inputs complete inline and the queue notifier re-takes
  // ns.mutex, so the reads must be issued with it released.
  lock.unlock();
  std::set<std::uint32_t> dead;  ///< jobs whose read issue threw in this pass
  for (const Plan& p : plans) {
    if (dead.count(p.job->id) != 0) continue;
    // The staging attempt tags the reads so a retry can tell this
    // staging's completions from a torn-down predecessor's stragglers.
    const int attempt = fault_tolerant_ ? (p.job->core->retries(p.task) & 0xF) : 0;
    for (std::size_t i = 0; i < p.def->inputs.size(); ++i) {
      const auto& in = p.def->inputs[i];
      if (tracing && i < p.missing.size() && p.missing[i] != 0) {
        // Load flow opens here, at issue; the storage node marks delivery
        // ('t') and drain_completions closes it ('f') at the consumer.
        obs::emit_flow(obs::Phase::FlowStart, obs::intern("load"), obs::intern("read-issue"),
                       ns.node, obs::current_thread_lane(), obs::TraceClock::now_ns(),
                       obs::causal::flow_id_load(in.array, in.offset), obs::intern("job"),
                       p.job->id);
      }
      try {
        storage_node.read_async(in, make_tag(p.job->id, p.task, attempt, i), p.job->id);
      } catch (...) {
        // A synchronous storage rejection (bad interval, unknown array)
        // fails this job; other jobs' plans proceed.
        dead.insert(p.job->id);
        fail_job(p.job, std::current_exception());
        break;
      }
    }
  }
  lock.lock();
}

void Engine::prefetch_blocking_locked(NodeState& ns, JobRun& jr) {
  if (config_.prefetch_window <= 0) return;
  // Blocking-io ablation: prefetch inputs of the first `prefetch_window`
  // backlog tasks in policy order, as a bolt-on pass next to the blocking
  // picks.
  std::vector<TaskId> order;
  jr.core->policy_order(ns.node, order);
  auto& storage_node = cluster_.node(ns.node);
  int window = config_.prefetch_window;
  for (const TaskId t : order) {
    if (window <= 0) break;
    const Task& task = jr.graph->task(t);
    if (task.kind == "sync") continue;  // barriers move no data
    bool missing = false;
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        storage_node.prefetch(in, jr.id);
        missing = true;
      }
    }
    if (missing) --window;
  }
}

void Engine::execute(NodeState& ns, int slot, JobRun& jr, TaskId t, Staged* staged) {
  const Task& task = jr.graph->task(t);
  auto& storage_node = cluster_.node(ns.node);

  // Sync tasks are barriers: their dependencies are enforced by the DAG
  // but they move no data, so their inputs are never acquired (a global
  // synchronization is a control message, not a transfer).
  const bool control_only = task.kind == "sync";

  const bool tracing = obs::trace_enabled();
  bool inputs_resident = true;
  std::uint64_t missing_bytes = 0;
  if (staged != nullptr) {
    // Residency as observed when the task was staged — by now its inputs
    // are pinned, so probing again would always say "resident".
    inputs_resident = staged->resident_at_stage;
    missing_bytes = staged->missing_bytes;
  } else if ((config_.record_trace || tracing) && !control_only) {
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        inputs_resident = false;
        missing_bytes += in.length;
      }
    }
  }

  TraceEvent ev;
  if (config_.record_trace) {
    ev.task = t;
    ev.name = task.name;
    ev.kind = task.kind;
    ev.node = ns.node;
    ev.slot = slot;
    ev.inputs_resident = inputs_resident;
    ev.missing_bytes = missing_bytes;
    ev.start = jr.clock.seconds();
  }
  // Acquire output handles (immediate) then input handles. On the
  // completion-driven path the inputs arrived with the storage completions
  // that made the task Runnable; the blocking path waits on futures here.
  std::vector<storage::WriteHandle> outputs;
  outputs.reserve(task.outputs.size());
  for (const auto& out : task.outputs) {
    outputs.push_back(storage_node.request_write(out).get());
  }
  std::vector<storage::ReadHandle> inputs;
  if (!control_only) {
    if (staged != nullptr) {
      inputs = std::move(staged->inputs);
    } else {
      std::vector<std::future<storage::ReadHandle>> input_futures;
      input_futures.reserve(task.inputs.size());
      for (const auto& in : task.inputs) {
        input_futures.push_back(storage_node.request_read(in));
      }
      inputs.reserve(task.inputs.size());
      // The wait for loads/producers gets its own sched span, so Gantt
      // views show load time vs compute time directly.
      std::optional<obs::Span> wait_span;
      if (tracing && !inputs_resident) {
        wait_span.emplace("sched", "wait-inputs", ns.node);
        wait_span->arg("missing_bytes", missing_bytes).arg("job", jr.id);
      }
      for (auto& f : input_futures) inputs.push_back(f.get());
    }
  }

  // The task span opens only once the inputs are in hand: it measures
  // compute, not the time a blocking worker spends stalled on a load —
  // otherwise the blocking ablation's I/O waits would masquerade as
  // compute in the overlap accounting. tid is the per-thread lane
  // (unique process-wide), so spans emitted by one worker always nest
  // cleanly; the compute slot travels as an arg.
  const std::int32_t lane = obs::current_thread_lane();
  std::optional<obs::Span> task_span;
  if (tracing) {
    task_span.emplace("task", task.name, ns.node, lane);
    task_span->arg("task", t).arg("job", jr.id).arg("missing_bytes", missing_bytes);
    // Close the producer→consumer flow of every input array here, inside
    // the just-opened task span: the array name is write-once (storage
    // immutability), so its dep flow id uniquely names the producer.
    const std::uint64_t now = obs::TraceClock::now_ns();
    for (const auto& in : task.inputs) {
      obs::emit_flow(obs::Phase::FlowEnd, obs::intern("dep"), obs::intern("consume"), ns.node,
                     lane, now, obs::causal::flow_id_dep(in.array), obs::intern("task"), t,
                     obs::intern("job"), jr.id);
    }
  }

  if (task.work) {
    TaskContext ctx(&task, ns.node, split_pools_[static_cast<std::size_t>(ns.node)].get(),
                    &inputs, &outputs);
    const std::uint64_t body_start = obs::TraceClock::now_ns();
    task.work(ctx);
    if (ns.m_exec_us != nullptr) {
      ns.m_exec_us->add(static_cast<double>(obs::TraceClock::now_ns() - body_start) * 1e-3);
    }
  }

  // Release inputs first, then outputs (sealing makes results visible).
  inputs.clear();
  outputs.clear();

  if (tracing) {
    // Open the dep flow of every produced array while the task span is
    // still alive ('s' binds to the enclosing slice). Consumers may have
    // unblocked the instant outputs sealed above, so a consumer span can
    // legitimately start before this 's' lands; the causal graph drops
    // such sub-µs inversions instead of inventing a backwards edge.
    const std::uint64_t now = obs::TraceClock::now_ns();
    for (const auto& out : task.outputs) {
      obs::emit_flow(obs::Phase::FlowStart, obs::intern("dep"), obs::intern("produce"), ns.node,
                     lane, now, obs::causal::flow_id_dep(out.array), obs::intern("task"), t,
                     obs::intern("job"), jr.id);
    }
  }

  if (config_.record_trace) {
    ev.end = jr.clock.seconds();
    std::lock_guard lock(trace_mutex_);
    jr.trace.push_back(std::move(ev));
  }
}

void Engine::complete(const JobPtr& jr, TaskId t) {
  if (jr->failed.load()) return;  // the job died while this task was running
  if (jr->m_tasks_done != nullptr) jr->m_tasks_done->add();
  {
    NodeState& owner = *node_states_[static_cast<std::size_t>(jr->assignment[t])];
    if (owner.m_tasks_exec != nullptr) owner.m_tasks_exec->add();
  }
  std::vector<std::pair<int, TaskId>> newly_assigned;
  jr->core->finish(t, newly_assigned);
  if (jr->core->all_settled()) {
    retire_job(jr);
    wake_all();
    return;
  }
  // Wake every node that gained work, plus the finished task's own node
  // (a compute slot just freed up there).
  std::set<int> to_wake;
  to_wake.insert(jr->assignment[t]);
  for (const auto& [node, task] : newly_assigned) to_wake.insert(node);
  for (const int node : to_wake) {
    NodeState& ns = *node_states_[static_cast<std::size_t>(node)];
    {
      std::lock_guard lock(ns.mutex);
      ++ns.wake_seq;
      if (config_.blocking_io) prefetch_blocking_locked(ns, *jr);
    }
    ns.cv.notify_all();
  }
}

void Engine::fail_job(const JobPtr& jr, std::exception_ptr e) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (!jr->error) jr->error = e;
    if (jr->failed.exchange(true)) return;  // someone else is tearing it down
    ++jobs_version_;
  }
  // Drop the job's staged inputs on every node: surviving read handles
  // release their pins; the wake lets parked workers refresh snapshots.
  for (auto& ns : node_states_) {
    {
      std::lock_guard lock(ns->mutex);
      for (auto it = ns->staged.begin(); it != ns->staged.end();) {
        if (static_cast<std::uint32_t>(it->first >> 32) == jr->id) {
          it = ns->staged.erase(it);
        } else {
          ++it;
        }
      }
      ++ns->wake_seq;
    }
    ns->cv.notify_all();
  }
  retire_job(jr);
}

void Engine::retire_job(const JobPtr& jr) {
  {
    std::lock_guard lock(jobs_mutex_);
    if (jr->retired) return;
    jr->retired = true;
  }
  Report report;
  report.makespan = jr->clock.seconds();
  const bool settled = jr->core->all_settled();
  report.tasks_executed = jr->core->completed();
  const std::vector<TaskId> faulted = jr->core->faulted_tasks();
  if (!jr->error) {
    DOOC_CHECK(settled, "job finished without settling all tasks");
  }
  std::vector<std::uint8_t> is_faulted(jr->graph->size(), 0);
  for (const TaskId t : faulted) is_faulted[t] = 1;
  for (TaskId t = 0; t < jr->graph->size(); ++t) {
    if (is_faulted[t] == 0) report.total_flops += jr->graph->task(t).est_flops;
  }
  report.assignment = jr->assignment;
  {
    std::lock_guard tlock(trace_mutex_);
    report.trace = std::move(jr->trace);
  }
  report.storage = delta(cluster_.total_stats(), jr->stats_before);
  report.cross_node_bytes =
      (cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0) -
      jr->cross_before;
  {
    std::lock_guard flock(fault_mutex_);
    report.faults = jr->faults;
  }
  if (!report.faults.ok()) {
    DOOC_LOG(Warn, "engine") << "job " << jr->id << ": " << report.faults.to_text();
  }
  cluster_.retire_tenant(jr->id);
  auto& metrics = obs::Metrics::instance();
  metrics.counter("jobs.completed", -1).add();
  metrics.histogram("jobs.makespan_us", -1).add(report.makespan * 1e6);

  std::function<void(std::uint32_t)> cb;
  {
    std::lock_guard lock(jobs_mutex_);
    jr->report = std::move(report);
    jr->done = true;
    const auto tag16 = static_cast<std::uint16_t>(jr->id & 0xFFFF);
    auto it = jobs_by_tag_.find(tag16);
    if (it != jobs_by_tag_.end() && it->second == jr) jobs_by_tag_.erase(it);
    ++jobs_version_;
    cb = on_job_done_;
  }
  jobs_cv_.notify_all();
  if (cb) cb(jr->id);
}

void Engine::worker_loop(NodeState& ns, int slot) {
  std::vector<int> wakes;
  std::vector<JobPtr> failures;
  std::vector<JobPtr> settled;
  // Fail/retire jobs and notify nodes only with ns.mutex released
  // (fail_job takes every node's mutex; notify takes other nodes').
  const auto service = [&](std::unique_lock<std::mutex>& lock) {
    if (wakes.empty() && failures.empty() && settled.empty()) return false;
    lock.unlock();
    notify_nodes(wakes);
    for (const JobPtr& jr : failures) fail_job(jr, jr->error);
    failures.clear();
    for (const JobPtr& jr : settled) retire_job(jr);
    settled.clear();
    lock.lock();
    return true;
  };
  while (true) {
    JobPtr jr;
    TaskId t = kInvalidTask;
    Staged staged;
    {
      std::unique_lock lock(ns.mutex);
      while (true) {
        if (shutdown_.load()) return;
        drain_completions(ns, wakes, failures, settled);
        if (service(lock)) continue;
        const std::vector<JobPtr> jobs = job_snapshot(ns.rr);
        if (!jobs.empty()) {
          stage_tasks(ns, lock, jobs);
          if (shutdown_.load()) return;
          // Reads issued while unlocked may have completed inline already.
          drain_completions(ns, wakes, failures, settled);
          if (service(lock)) continue;
          for (const JobPtr& j : jobs) {
            if (j->failed.load()) continue;
            t = j->core->take_runnable(ns.node);
            if (t != kInvalidTask) {
              jr = j;
              break;
            }
          }
          if (t != kInvalidTask) {
            ++ns.rr;  // round-robin: next wake starts at the next job
            break;
          }
        }
        const std::uint64_t seen = ns.wake_seq;
        ns.cv.wait(lock, [&] { return ns.wake_seq != seen || shutdown_.load(); });
      }
      auto it = ns.staged.find(staged_key(jr->id, t));
      DOOC_CHECK(it != ns.staged.end(), "runnable task lost its staged inputs");
      staged = std::move(it->second);
      ns.staged.erase(it);
    }
    try {
      execute(ns, slot, *jr, t, &staged);
    } catch (...) {
      fail_job(jr, std::current_exception());
      continue;
    }
    complete(jr, t);
  }
}

void Engine::worker_loop_blocking(NodeState& ns, int slot) {
  while (true) {
    JobPtr jr;
    TaskId t = kInvalidTask;
    {
      std::unique_lock lock(ns.mutex);
      while (true) {
        if (shutdown_.load()) return;
        const std::vector<JobPtr> jobs = job_snapshot(ns.rr);
        for (const JobPtr& j : jobs) {
          if (j->core->backlog(ns.node) == 0) continue;
          const StageDecision d = j->core->take_direct(ns.node);
          if (d.task == kInvalidTask) continue;
          if (obs::trace_enabled() && d.reordered) emit_reorder(ns.node, d, j->id);
          prefetch_blocking_locked(ns, *j);
          jr = j;
          t = d.task;
          break;
        }
        if (t != kInvalidTask) {
          ++ns.rr;
          break;
        }
        const std::uint64_t seen = ns.wake_seq;
        ns.cv.wait(lock, [&] { return ns.wake_seq != seen || shutdown_.load(); });
      }
    }
    try {
      execute(ns, slot, *jr, t, nullptr);
    } catch (...) {
      fail_job(jr, std::current_exception());
      continue;
    }
    complete(jr, t);
  }
}

}  // namespace dooc::sched
