#include "sched/engine.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/log.hpp"
#include "fault/fault_plan.hpp"
#include "obs/causal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dooc::sched {

namespace {

/// Subtract per-field to get the delta of cluster stats over a run.
storage::StorageStats delta(const storage::StorageStats& after, const storage::StorageStats& before) {
  storage::StorageStats d;
  d.disk_reads = after.disk_reads - before.disk_reads;
  d.disk_read_bytes = after.disk_read_bytes - before.disk_read_bytes;
  d.disk_writes = after.disk_writes - before.disk_writes;
  d.disk_write_bytes = after.disk_write_bytes - before.disk_write_bytes;
  d.remote_fetches = after.remote_fetches - before.remote_fetches;
  d.remote_fetch_bytes = after.remote_fetch_bytes - before.remote_fetch_bytes;
  d.evictions = after.evictions - before.evictions;
  d.evicted_bytes = after.evicted_bytes - before.evicted_bytes;
  d.lookup_hops = after.lookup_hops - before.lookup_hops;
  d.read_requests = after.read_requests - before.read_requests;
  d.write_requests = after.write_requests - before.write_requests;
  d.prefetch_requests = after.prefetch_requests - before.prefetch_requests;
  d.disk_read_seconds = after.disk_read_seconds - before.disk_read_seconds;
  d.disk_write_seconds = after.disk_write_seconds - before.disk_write_seconds;
  return d;
}

/// Completion tag layout: | epoch:16 | task:32 | attempt:4 | input:12 |.
/// The epoch lets a later run() discard completions a previous (aborted)
/// run left in the queue; the attempt nibble lets the fault path discard
/// completions of a staging that was already torn down by a retry — without
/// it, a straggler read of attempt N could double-count an input of
/// attempt N+1 and promote the task to Runnable with loads still in flight.
std::uint64_t make_tag(std::uint64_t epoch, TaskId t, int attempt, std::size_t input_index) {
  return ((epoch & 0xFFFFull) << 48) | (static_cast<std::uint64_t>(t) << 16) |
         ((static_cast<std::uint64_t>(attempt) & 0xFull) << 12) | (input_index & 0xFFFull);
}

/// what() of a stored exception, for the structured failure summary.
std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

void emit_reorder(int node, const StageDecision& d) {
  // A reorder decision: the data-aware policy jumped past the task static
  // order would have run. These instants are the Fig. 5(b) "back and
  // forth" moments, visible right on the node's timeline.
  obs::Event ev;
  ev.phase = obs::Phase::Instant;
  ev.cat = obs::intern("sched");
  ev.name = obs::intern("reorder");
  ev.pid = node;
  ev.ts_ns = obs::TraceClock::now_ns();
  ev.nargs = 2;
  ev.arg_name[0] = obs::intern("picked");
  ev.arg_val[0] = d.task;
  ev.arg_name[1] = obs::intern("over");
  ev.arg_val[1] = d.over;
  obs::TraceSession::instance().emit(ev);
}

}  // namespace

std::string FaultSummary::to_text() const {
  std::string out = "fault summary: " + std::to_string(failed.size()) + " failed, " +
                    std::to_string(poisoned) + " poisoned, " + std::to_string(load_faults) +
                    " load fault(s), " + std::to_string(task_retries) + " task retry(ies), " +
                    std::to_string(producer_reruns) + " producer rerun(s)";
  for (const FaultRecord& r : failed) {
    out += "\n  task " + std::to_string(r.task) + " '" + r.name + "' on node " +
           std::to_string(r.node) + " after " + std::to_string(r.retries) +
           " retry(ies): " + r.error;
  }
  return out;
}

/// Handles a staged task carries while it is InputsPending: the slots its
/// read completions fill, plus what the trace needs to know about the wait.
struct Engine::Staged {
  std::vector<storage::ReadHandle> inputs;
  std::vector<std::uint8_t> missing;    ///< per-input: non-resident at stage
  std::uint64_t missing_bytes = 0;      ///< at stage time
  bool resident_at_stage = true;
  std::uint64_t stage_ts_ns = 0;        ///< InputsPending span start
};

struct Engine::NodeState {
  int node = -1;
  std::mutex mutex;
  std::condition_variable cv;
  /// Bumped under `mutex` by every wake source (completion-queue notifier,
  /// complete(), wake_all()) so waits never miss an edge.
  std::uint64_t wake_seq = 0;
  std::unordered_map<TaskId, Staged> staged;
  obs::Histogram* m_wait = nullptr;     ///< sched.inputs_pending_us
  obs::Counter* m_parked = nullptr;     ///< sched.tasks_parked
  obs::Gauge* m_cq_depth = nullptr;     ///< sched.completion_queue_depth
  obs::Counter* m_load_faults = nullptr;     ///< sched.load_faults
  obs::Counter* m_task_retries = nullptr;    ///< sched.task_retries
  obs::Counter* m_producer_reruns = nullptr; ///< sched.producer_reruns
};

/// ExecutorCore's view of this engine's storage residency.
class Engine::Probe final : public ResidencyProbe {
 public:
  explicit Probe(storage::StorageCluster& cluster) : cluster_(&cluster) {}

  std::uint64_t resident_input_bytes(int node, const Task& task) override {
    std::uint64_t resident = 0;
    auto& storage_node = cluster_->node(node);
    for (const auto& in : task.inputs) {
      if (storage_node.is_resident(in)) resident += in.length;
    }
    return resident;
  }

  bool inputs_resident(int node, const Task& task) override {
    auto& storage_node = cluster_->node(node);
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) return false;
    }
    return true;
  }

 private:
  storage::StorageCluster* cluster_;
};

Engine::Engine(storage::StorageCluster& cluster, EngineConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  DOOC_REQUIRE(config_.compute_slots_per_node > 0, "need at least one compute slot per node");
  DOOC_REQUIRE(config_.split_threads_per_node > 0, "need at least one split thread per node");
  split_pools_.reserve(static_cast<std::size_t>(cluster_.num_nodes()));
  for (int i = 0; i < cluster_.num_nodes(); ++i) {
    split_pools_.push_back(
        std::make_unique<ThreadPool>(static_cast<std::size_t>(config_.split_threads_per_node)));
  }
  probe_ = std::make_unique<Probe>(cluster_);
}

Engine::~Engine() = default;

void Engine::record_error(std::exception_ptr e) {
  std::lock_guard lock(error_mutex_);
  if (!first_error_) first_error_ = e;
}

void Engine::wake_all() {
  for (auto& ns : node_states_) {
    {
      std::lock_guard lock(ns->mutex);
      ++ns->wake_seq;
    }
    ns->cv.notify_all();
  }
}

bool Engine::drain_completions(NodeState& ns, std::vector<int>& wakes) {
  auto& queue = cluster_.node(ns.node).completions();
  if (ns.m_cq_depth != nullptr) ns.m_cq_depth->set(static_cast<double>(queue.depth()));
  const bool tracing = obs::trace_enabled();
  storage::Completion c;
  bool ok = true;
  while (queue.pop(c)) {
    if ((c.tag >> 48) != (run_epoch_ & 0xFFFFull)) continue;  // stale run's read
    const auto t = static_cast<TaskId>((c.tag >> 16) & 0xFFFFFFFFull);
    // Straggler from a staging the fault path already tore down: dropping
    // it releases its pin at the queue boundary; counting it would corrupt
    // the current attempt's input accounting.
    if (fault_tolerant_ &&
        static_cast<int>((c.tag >> 12) & 0xFull) != (core_->retries(t) & 0xF)) {
      continue;
    }
    if (c.error) {
      if (!fault_tolerant_) {
        record_error(c.error);
        abort_.store(true);
        ok = false;
        continue;
      }
      handle_load_fault(ns, t, c.error, wakes);
      continue;
    }
    auto it = ns.staged.find(t);
    if (it == ns.staged.end()) continue;
    Staged& st = it->second;
    const auto idx = static_cast<std::size_t>(c.tag & 0xFFFull);
    if (idx < st.inputs.size()) st.inputs[idx] = std::move(c.read);
    if (core_->note_input(t) && !st.resident_at_stage) {
      // The InputsPending wait is over: the span from stage to last input.
      const std::uint64_t now = obs::TraceClock::now_ns();
      const std::uint64_t dur = now - st.stage_ts_ns;
      if (ns.m_wait != nullptr) ns.m_wait->add(static_cast<double>(dur) / 1e3);
      if (tracing) {
        obs::Event ev;
        ev.phase = obs::Phase::Complete;
        ev.cat = obs::intern("sched");
        ev.name = obs::intern("inputs-pending");
        ev.pid = ns.node;
        // Parked tasks are not bound to a worker thread, so they render on
        // their own lane band rather than a compute lane.
        ev.tid = 200 + static_cast<std::int32_t>(t % 16);
        ev.ts_ns = st.stage_ts_ns;
        ev.dur_ns = dur;
        ev.nargs = 2;
        ev.arg_name[0] = obs::intern("group");
        ev.arg_val[0] = static_cast<std::uint64_t>(graph_->task(t).group);
        ev.arg_name[1] = obs::intern("missing_bytes");
        ev.arg_val[1] = st.missing_bytes;
        obs::TraceSession::instance().emit(ev);
        // Close each missing input's load flow on the waiting task: the
        // 'f' point carries the consumer task id, which is how the causal
        // graph knows which load gated which task.
        const Task& task = graph_->task(t);
        for (std::size_t i = 0; i < task.inputs.size() && i < st.missing.size(); ++i) {
          if (st.missing[i] == 0) continue;
          obs::emit_flow(obs::Phase::FlowEnd, obs::intern("load"), obs::intern("load-ready"),
                         ns.node, ev.tid, now,
                         obs::causal::flow_id_load(task.inputs[i].array, task.inputs[i].offset),
                         obs::intern("task"), t);
        }
      }
    }
  }
  return ok;
}

void Engine::handle_load_fault(NodeState& ns, TaskId t, const std::exception_ptr& err,
                               std::vector<int>& wakes) {
  if (ns.m_load_faults != nullptr) ns.m_load_faults->add();
  {
    std::lock_guard flock(fault_mutex_);
    ++faults_.load_faults;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant(obs::intern("fault"), obs::intern("load-failed"), ns.node, 0);
  }
  // A load only fails permanently once the I/O filters exhausted the
  // retry/backoff policy, so first check whether an input is genuinely
  // *lost* (its only copies on downed nodes, nothing durable) and re-derive
  // it by re-running the Done producer before this task retries.
  maybe_resurrect_producers(ns, t, wakes);
  std::vector<TaskId> poisoned;
  const ExecutorCore::FaultAction action = core_->fault(t, &poisoned);
  if (action == ExecutorCore::FaultAction::Ignored) return;
  // Drop the partial staging: surviving read handles release their pins.
  ns.staged.erase(t);
  if (action == ExecutorCore::FaultAction::Retry) {
    if (ns.m_task_retries != nullptr) ns.m_task_retries->add();
    std::lock_guard flock(fault_mutex_);
    ++faults_.task_retries;
    return;
  }
  // Poisoned: this task and its transitive successors will never run. The
  // run keeps draining everything else — graceful degradation, not abort.
  FaultRecord rec;
  rec.task = t;
  rec.name = graph_->task(t).name;
  rec.node = ns.node;
  rec.retries = core_->retries(t) - 1;
  rec.error = describe(err);
  DOOC_LOG(Warn, "engine") << "task " << t << " '" << rec.name << "' poisoned after "
                           << rec.retries << " retries: " << rec.error;
  {
    std::lock_guard flock(fault_mutex_);
    faults_.failed.push_back(std::move(rec));
    faults_.poisoned += poisoned.empty() ? 0 : poisoned.size() - 1;
  }
  if (obs::trace_enabled()) {
    obs::emit_instant(obs::intern("fault"), obs::intern("task-poisoned"), ns.node, 0);
  }
  if (core_->all_settled()) {
    // Poisoning settled the run: fan the wake out to every node so parked
    // workers notice (the usual fan-out lives in complete(), which a
    // poisoned task never reaches).
    for (int n = 0; n < cluster_.num_nodes(); ++n) wakes.push_back(n);
  }
}

void Engine::maybe_resurrect_producers(NodeState& ns, TaskId t, std::vector<int>& wakes) {
  const Task& task = graph_->task(t);
  for (const auto& in : task.inputs) {
    const TaskId p = graph_->writer_of(in);
    if (p == kInvalidTask) continue;                   // pre-existing input
    if (core_->state(p) != TaskState::Done) continue;  // queued / rerunning / poisoned
    if (!block_lost(in)) continue;                     // still reachable: plain retry suffices
    // Forget *every* output block of the producer, not just the lost one —
    // the arrays are write-once, so a partial rewrite would trip
    // immutability on the surviving blocks.
    if (!forget_outputs(p)) continue;  // some block still live → not actually lost
    if (!core_->resurrect(p)) continue;
    if (ns.m_producer_reruns != nullptr) ns.m_producer_reruns->add();
    {
      std::lock_guard flock(fault_mutex_);
      ++faults_.producer_reruns;
    }
    DOOC_LOG(Warn, "engine") << "re-running task " << p << " to re-derive lost block(s) of '"
                             << in.array << "'";
    if (obs::trace_enabled()) {
      obs::emit_instant(obs::intern("fault"), obs::intern("producer-rerun"), assignment_[p], 0);
    }
    wakes.push_back(assignment_[p]);
  }
}

bool Engine::block_lost(const storage::Interval& in) const {
  const fault::FaultPlan* plan = cluster_.fault_plan().get();
  auto& shard = cluster_.catalog().shard_for(in.array);
  const std::optional<storage::ArrayMeta> meta = shard.find(in.array);
  if (!meta || meta->block_size == 0) return false;
  const storage::BlockInfo info =
      shard.block_info(storage::BlockKey{in.array, in.offset / meta->block_size});
  // Durable blocks are never lost: the scratch file outlives the node
  // process (the paper's shared GPFS tier), so a demand read or the
  // home-down failover path can always re-load them.
  if (info.durable) return false;
  const auto up = [plan](int node) { return plan == nullptr || !plan->node_down(node); };
  for (const int holder : info.holders) {
    if (up(holder)) return false;  // a live in-memory copy exists
  }
  return true;
}

bool Engine::forget_outputs(TaskId p) {
  const Task& task = graph_->task(p);
  for (const auto& out : task.outputs) {
    auto& shard = cluster_.catalog().shard_for(out.array);
    const std::optional<storage::ArrayMeta> meta = shard.find(out.array);
    if (!meta || meta->block_size == 0) continue;
    const std::uint64_t first = out.offset / meta->block_size;
    const std::uint64_t last = out.length == 0 ? first : (out.end() - 1) / meta->block_size;
    for (std::uint64_t b = first; b <= last; ++b) {
      if (!cluster_.forget_block(storage::BlockKey{out.array, b})) return false;
    }
  }
  return true;
}

void Engine::notify_nodes(std::vector<int>& nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const int node : nodes) {
    NodeState& other = *node_states_[static_cast<std::size_t>(node)];
    {
      std::lock_guard lock(other.mutex);
      ++other.wake_seq;
    }
    other.cv.notify_all();
  }
  nodes.clear();
}

void Engine::stage_tasks(NodeState& ns, std::unique_lock<std::mutex>& lock) {
  auto& storage_node = cluster_.node(ns.node);
  const bool tracing = obs::trace_enabled();
  struct Plan {
    TaskId task;
    const Task* def;
    std::vector<std::uint8_t> missing;  ///< per-input, as staged
  };
  std::vector<Plan> plans;
  // Resident candidates stage freely (they never consume the window), then
  // missing candidates up to window + idle demand slots.
  for (const StageSelect select : {StageSelect::Resident, StageSelect::Missing}) {
    while (true) {
      const StageDecision d = core_->next_to_stage(ns.node, select);
      if (d.task == kInvalidTask) break;
      const Task& task = graph_->task(d.task);
      if (tracing && d.reordered) emit_reorder(ns.node, d);
      if (task.kind == "sync" || task.inputs.empty()) {
        // Barriers move no data: straight to Runnable.
        ns.staged.emplace(d.task, Staged{});
        core_->stage(d.task, 0);
        continue;
      }
      Staged st;
      st.inputs.resize(task.inputs.size());
      st.missing.resize(task.inputs.size(), 0);
      for (std::size_t i = 0; i < task.inputs.size(); ++i) {
        if (!storage_node.is_resident(task.inputs[i])) {
          st.missing[i] = 1;
          st.missing_bytes += task.inputs[i].length;
        }
      }
      st.resident_at_stage = st.missing_bytes == 0;
      st.stage_ts_ns = obs::TraceClock::now_ns();
      if (!st.resident_at_stage && ns.m_parked != nullptr) ns.m_parked->add();
      std::vector<std::uint8_t> missing = st.missing;
      ns.staged.emplace(d.task, std::move(st));
      // Every input read reports through the completion queue, so the task
      // waits for one event per input (resident ones land immediately).
      core_->stage(d.task, static_cast<int>(task.inputs.size()));
      plans.push_back({d.task, &task, std::move(missing)});
    }
  }
  if (plans.empty()) return;
  // Already-resident inputs complete inline and the queue notifier re-takes
  // ns.mutex, so the reads must be issued with it released.
  lock.unlock();
  for (const Plan& p : plans) {
    // The staging attempt tags the reads so a retry can tell this
    // staging's completions from a torn-down predecessor's stragglers.
    const int attempt = fault_tolerant_ ? (core_->retries(p.task) & 0xF) : 0;
    for (std::size_t i = 0; i < p.def->inputs.size(); ++i) {
      const auto& in = p.def->inputs[i];
      if (tracing && i < p.missing.size() && p.missing[i] != 0) {
        // Load flow opens here, at issue; the storage node marks delivery
        // ('t') and drain_completions closes it ('f') at the consumer.
        obs::emit_flow(obs::Phase::FlowStart, obs::intern("load"), obs::intern("read-issue"),
                       ns.node, obs::current_thread_lane(), obs::TraceClock::now_ns(),
                       obs::causal::flow_id_load(in.array, in.offset));
      }
      try {
        storage_node.read_async(in, make_tag(run_epoch_, p.task, attempt, i));
      } catch (...) {
        record_error(std::current_exception());
        abort_.store(true);
        lock.lock();
        return;
      }
    }
  }
  lock.lock();
}

void Engine::prefetch_blocking_locked(NodeState& ns) {
  if (config_.prefetch_window <= 0) return;
  // Blocking-io ablation: prefetch inputs of the first `prefetch_window`
  // backlog tasks in policy order, as a bolt-on pass next to the blocking
  // picks.
  std::vector<TaskId> order;
  core_->policy_order(ns.node, order);
  auto& storage_node = cluster_.node(ns.node);
  int window = config_.prefetch_window;
  for (const TaskId t : order) {
    if (window <= 0) break;
    const Task& task = graph_->task(t);
    if (task.kind == "sync") continue;  // barriers move no data
    bool missing = false;
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        storage_node.prefetch(in);
        missing = true;
      }
    }
    if (missing) --window;
  }
}

void Engine::execute(NodeState& ns, int slot, TaskId t, Staged* staged) {
  const Task& task = graph_->task(t);
  auto& storage_node = cluster_.node(ns.node);

  // Sync tasks are barriers: their dependencies are enforced by the DAG
  // but they move no data, so their inputs are never acquired (a global
  // synchronization is a control message, not a transfer).
  const bool control_only = task.kind == "sync";

  const bool tracing = obs::trace_enabled();
  bool inputs_resident = true;
  std::uint64_t missing_bytes = 0;
  if (staged != nullptr) {
    // Residency as observed when the task was staged — by now its inputs
    // are pinned, so probing again would always say "resident".
    inputs_resident = staged->resident_at_stage;
    missing_bytes = staged->missing_bytes;
  } else if ((config_.record_trace || tracing) && !control_only) {
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        inputs_resident = false;
        missing_bytes += in.length;
      }
    }
  }

  TraceEvent ev;
  if (config_.record_trace) {
    ev.task = t;
    ev.name = task.name;
    ev.kind = task.kind;
    ev.node = ns.node;
    ev.slot = slot;
    ev.inputs_resident = inputs_resident;
    ev.missing_bytes = missing_bytes;
    ev.start = clock_.seconds();
  }
  // Acquire output handles (immediate) then input handles. On the
  // completion-driven path the inputs arrived with the storage completions
  // that made the task Runnable; the blocking path waits on futures here.
  std::vector<storage::WriteHandle> outputs;
  outputs.reserve(task.outputs.size());
  for (const auto& out : task.outputs) {
    outputs.push_back(storage_node.request_write(out).get());
  }
  std::vector<storage::ReadHandle> inputs;
  if (!control_only) {
    if (staged != nullptr) {
      inputs = std::move(staged->inputs);
    } else {
      std::vector<std::future<storage::ReadHandle>> input_futures;
      input_futures.reserve(task.inputs.size());
      for (const auto& in : task.inputs) {
        input_futures.push_back(storage_node.request_read(in));
      }
      inputs.reserve(task.inputs.size());
      // The wait for loads/producers gets its own sched span, so Gantt
      // views show load time vs compute time directly.
      std::optional<obs::Span> wait_span;
      if (tracing && !inputs_resident) {
        wait_span.emplace("sched", "wait-inputs", ns.node);
        wait_span->arg("missing_bytes", missing_bytes);
      }
      for (auto& f : input_futures) inputs.push_back(f.get());
    }
  }

  // The task span opens only once the inputs are in hand: it measures
  // compute, not the time a blocking worker spends stalled on a load —
  // otherwise the blocking ablation's I/O waits would masquerade as
  // compute in the overlap accounting. tid is the per-thread lane
  // (unique process-wide), so spans emitted by one worker always nest
  // cleanly; the compute slot travels as an arg.
  const std::int32_t lane = obs::current_thread_lane();
  std::optional<obs::Span> task_span;
  if (tracing) {
    task_span.emplace("task", task.name, ns.node, lane);
    task_span->arg("task", t).arg("missing_bytes", missing_bytes);
    // Close the producer→consumer flow of every input array here, inside
    // the just-opened task span: the array name is write-once (storage
    // immutability), so its dep flow id uniquely names the producer.
    const std::uint64_t now = obs::TraceClock::now_ns();
    for (const auto& in : task.inputs) {
      obs::emit_flow(obs::Phase::FlowEnd, obs::intern("dep"), obs::intern("consume"), ns.node,
                     lane, now, obs::causal::flow_id_dep(in.array), obs::intern("task"), t);
    }
  }

  if (task.work) {
    TaskContext ctx(&task, ns.node, split_pools_[static_cast<std::size_t>(ns.node)].get(),
                    &inputs, &outputs);
    task.work(ctx);
  }

  // Release inputs first, then outputs (sealing makes results visible).
  inputs.clear();
  outputs.clear();

  if (tracing) {
    // Open the dep flow of every produced array while the task span is
    // still alive ('s' binds to the enclosing slice). Consumers may have
    // unblocked the instant outputs sealed above, so a consumer span can
    // legitimately start before this 's' lands; the causal graph drops
    // such sub-µs inversions instead of inventing a backwards edge.
    const std::uint64_t now = obs::TraceClock::now_ns();
    for (const auto& out : task.outputs) {
      obs::emit_flow(obs::Phase::FlowStart, obs::intern("dep"), obs::intern("produce"), ns.node,
                     lane, now, obs::causal::flow_id_dep(out.array), obs::intern("task"), t);
    }
  }

  if (config_.record_trace) {
    ev.end = clock_.seconds();
    std::lock_guard lock(trace_mutex_);
    trace_.push_back(std::move(ev));
  }
}

void Engine::complete(TaskId t) {
  std::vector<std::pair<int, TaskId>> newly_assigned;
  core_->finish(t, newly_assigned);
  if (core_->all_settled()) {
    wake_all();
    return;
  }
  // Wake every node that gained work, plus the finished task's own node
  // (a compute slot just freed up there).
  std::set<int> to_wake;
  to_wake.insert(assignment_[t]);
  for (const auto& [node, task] : newly_assigned) to_wake.insert(node);
  for (const int node : to_wake) {
    NodeState& ns = *node_states_[static_cast<std::size_t>(node)];
    {
      std::lock_guard lock(ns.mutex);
      ++ns.wake_seq;
      if (config_.blocking_io) prefetch_blocking_locked(ns);
    }
    ns.cv.notify_all();
  }
}

void Engine::worker_loop(NodeState& ns, int slot) {
  std::vector<int> wakes;
  while (true) {
    TaskId t = kInvalidTask;
    Staged staged;
    {
      std::unique_lock lock(ns.mutex);
      while (true) {
        if (abort_.load()) return;
        if (!drain_completions(ns, wakes)) {
          lock.unlock();
          wake_all();
          return;
        }
        if (!wakes.empty()) {
          // Fault handling resurrected producers on other nodes or settled
          // the run: notify them with no lock held, then re-drain.
          lock.unlock();
          notify_nodes(wakes);
          lock.lock();
          continue;
        }
        if (core_->all_settled()) return;
        stage_tasks(ns, lock);
        if (abort_.load()) {
          lock.unlock();
          wake_all();
          return;
        }
        // Reads issued while unlocked may have completed inline already.
        if (!drain_completions(ns, wakes)) {
          lock.unlock();
          wake_all();
          return;
        }
        if (!wakes.empty()) {
          lock.unlock();
          notify_nodes(wakes);
          lock.lock();
          continue;
        }
        t = core_->take_runnable(ns.node);
        if (t != kInvalidTask) break;
        const std::uint64_t seen = ns.wake_seq;
        ns.cv.wait(lock, [&] {
          return ns.wake_seq != seen || abort_.load() || core_->all_settled();
        });
      }
      auto it = ns.staged.find(t);
      DOOC_CHECK(it != ns.staged.end(), "runnable task lost its staged inputs");
      staged = std::move(it->second);
      ns.staged.erase(it);
    }
    try {
      execute(ns, slot, t, &staged);
    } catch (...) {
      record_error(std::current_exception());
      abort_.store(true);
      wake_all();
      return;
    }
    complete(t);
  }
}

void Engine::worker_loop_blocking(NodeState& ns, int slot) {
  while (true) {
    TaskId t = kInvalidTask;
    {
      std::unique_lock lock(ns.mutex);
      ns.cv.wait(lock, [&] {
        return abort_.load() || core_->all_settled() || core_->backlog(ns.node) > 0;
      });
      if (abort_.load() || core_->all_settled()) return;
      const StageDecision d = core_->take_direct(ns.node);
      if (d.task == kInvalidTask) continue;
      if (obs::trace_enabled() && d.reordered) emit_reorder(ns.node, d);
      prefetch_blocking_locked(ns);
      t = d.task;
    }
    try {
      execute(ns, slot, t, nullptr);
    } catch (...) {
      record_error(std::current_exception());
      abort_.store(true);
      wake_all();
      return;
    }
    complete(t);
  }
}

Report Engine::run(TaskGraph& graph) {
  DOOC_REQUIRE(graph.built(), "run() needs a built task graph");
  graph_ = &graph;
  abort_.store(false);
  first_error_ = nullptr;
  trace_.clear();
  ++run_epoch_;
  // Blocking-io mode keeps the legacy abort-on-error path: its reads block
  // on futures inside execute(), never reaching the completion-queue fault
  // handling (the I/O filters still retry transient errors underneath).
  fault_tolerant_ = cluster_.fault_plan() != nullptr && !config_.blocking_io;
  {
    std::lock_guard flock(fault_mutex_);
    faults_ = {};
  }

  const storage::StorageStats stats_before = cluster_.total_stats();
  const std::uint64_t cross_before =
      cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0;

  GlobalScheduler global(cluster_.num_nodes(), config_.global_policy);
  CatalogLocator locator(&cluster_.catalog());
  assignment_ = global.assign(graph, locator);

  CoreConfig core_config;
  core_config.policy = config_.local_policy;
  core_config.prefetch_window = config_.prefetch_window;
  // Completion-driven mode: an idle compute slot may always demand-stage
  // something even with the window exhausted, else the node deadlocks idle.
  core_config.demand_slots = config_.blocking_io ? 0 : config_.compute_slots_per_node;
  core_ = std::make_unique<ExecutorCore>(graph, assignment_, cluster_.num_nodes(), core_config,
                                         probe_.get());

  auto& metrics = obs::Metrics::instance();
  node_states_.clear();
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    ns->m_wait = &metrics.histogram("sched.inputs_pending_us", n);
    ns->m_parked = &metrics.counter("sched.tasks_parked", n);
    ns->m_cq_depth = &metrics.gauge("sched.completion_queue_depth", n);
    ns->m_load_faults = &metrics.counter("sched.load_faults", n);
    ns->m_task_retries = &metrics.counter("sched.task_retries", n);
    ns->m_producer_reruns = &metrics.counter("sched.producer_reruns", n);
    node_states_.push_back(std::move(ns));
  }

  if (config_.blocking_io) {
    // Initial prefetch pass over the seeded backlog, as the old engine did.
    for (auto& ns : node_states_) {
      std::lock_guard lock(ns->mutex);
      prefetch_blocking_locked(*ns);
    }
  } else {
    for (auto& ns : node_states_) {
      NodeState* state = ns.get();
      cluster_.node(state->node).completions().open([state] {
        {
          std::lock_guard lock(state->mutex);
          ++state->wake_seq;
        }
        state->cv.notify_all();
      });
    }
  }

  clock_.restart();
  std::vector<std::thread> workers;
  workers.reserve(node_states_.size() * static_cast<std::size_t>(config_.compute_slots_per_node));
  for (auto& ns : node_states_) {
    NodeState* state = ns.get();
    for (int slot = 0; slot < config_.compute_slots_per_node; ++slot) {
      workers.emplace_back([this, state, slot] {
        if (config_.blocking_io) {
          worker_loop_blocking(*state, slot);
        } else {
          worker_loop(*state, slot);
        }
      });
    }
  }
  for (auto& w : workers) w.join();

  // Close the queues before tearing down per-run state: completions of
  // still-in-flight reads (an aborted run's stragglers) drop their payloads
  // at the queue boundary instead of touching freed engine state.
  if (!config_.blocking_io) {
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      cluster_.node(n).completions().close();
    }
  }

  Report report;
  report.makespan = clock_.seconds();
  graph_ = nullptr;
  const bool settled = core_->all_settled();
  const std::size_t done = core_->completed();
  const std::vector<TaskId> faulted = core_->faulted_tasks();
  // Destroying NodeStates releases read pins a staged-but-never-run task
  // still holds (abort path).
  node_states_.clear();
  core_.reset();

  if (first_error_) std::rethrow_exception(first_error_);
  DOOC_CHECK(settled, "engine finished without settling all tasks");

  report.tasks_executed = done;
  std::vector<std::uint8_t> is_faulted(graph.size(), 0);
  for (const TaskId t : faulted) is_faulted[t] = 1;
  for (TaskId t = 0; t < graph.size(); ++t) {
    if (is_faulted[t] == 0) report.total_flops += graph.task(t).est_flops;
  }
  report.assignment = assignment_;
  report.trace = std::move(trace_);
  report.storage = delta(cluster_.total_stats(), stats_before);
  report.cross_node_bytes =
      (cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0) -
      cross_before;
  {
    std::lock_guard flock(fault_mutex_);
    report.faults = faults_;
  }
  if (!report.faults.ok()) {
    DOOC_LOG(Warn, "engine") << report.faults.to_text();
  }
  return report;
}

}  // namespace dooc::sched
