#include "sched/engine.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <thread>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace dooc::sched {

namespace {

/// Subtract per-field to get the delta of cluster stats over a run.
storage::StorageStats delta(const storage::StorageStats& after, const storage::StorageStats& before) {
  storage::StorageStats d;
  d.disk_reads = after.disk_reads - before.disk_reads;
  d.disk_read_bytes = after.disk_read_bytes - before.disk_read_bytes;
  d.disk_writes = after.disk_writes - before.disk_writes;
  d.disk_write_bytes = after.disk_write_bytes - before.disk_write_bytes;
  d.remote_fetches = after.remote_fetches - before.remote_fetches;
  d.remote_fetch_bytes = after.remote_fetch_bytes - before.remote_fetch_bytes;
  d.evictions = after.evictions - before.evictions;
  d.evicted_bytes = after.evicted_bytes - before.evicted_bytes;
  d.lookup_hops = after.lookup_hops - before.lookup_hops;
  d.read_requests = after.read_requests - before.read_requests;
  d.write_requests = after.write_requests - before.write_requests;
  d.prefetch_requests = after.prefetch_requests - before.prefetch_requests;
  d.disk_read_seconds = after.disk_read_seconds - before.disk_read_seconds;
  d.disk_write_seconds = after.disk_write_seconds - before.disk_write_seconds;
  return d;
}

}  // namespace

struct Engine::NodeState {
  int node = -1;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<TaskId> ready;
  /// Monotonic pick counter, for trace slots.
  std::uint64_t picks = 0;
};

Engine::Engine(storage::StorageCluster& cluster, EngineConfig config)
    : cluster_(cluster), config_(std::move(config)) {
  DOOC_REQUIRE(config_.compute_slots_per_node > 0, "need at least one compute slot per node");
  DOOC_REQUIRE(config_.split_threads_per_node > 0, "need at least one split thread per node");
  split_pools_.reserve(static_cast<std::size_t>(cluster_.num_nodes()));
  for (int i = 0; i < cluster_.num_nodes(); ++i) {
    split_pools_.push_back(
        std::make_unique<ThreadPool>(static_cast<std::size_t>(config_.split_threads_per_node)));
  }
}

Engine::~Engine() = default;

std::uint64_t Engine::resident_input_bytes(int node, const Task& task) const {
  std::uint64_t resident = 0;
  auto& storage_node = cluster_.node(node);
  for (const auto& in : task.inputs) {
    if (storage_node.is_resident(in)) resident += in.length;
  }
  return resident;
}

TaskId Engine::pick_locked(NodeState& ns) {
  if (ns.ready.empty()) return kInvalidTask;
  const auto key_static = [this](TaskId t) {
    const Task& task = graph_->task(t);
    std::int64_t seq = task.seq;
    if (config_.local_policy == LocalPolicy::BackAndForth && (task.group % 2) != 0) {
      seq = -seq;
    }
    return std::make_pair(task.group, seq);
  };

  std::size_t best_idx = 0;
  if (config_.local_policy == LocalPolicy::DataAware) {
    // Highest resident byte count wins; ties by (group, seq).
    std::uint64_t best_score = 0;
    bool first = true;
    for (std::size_t i = 0; i < ns.ready.size(); ++i) {
      const TaskId t = ns.ready[i];
      const std::uint64_t score = resident_input_bytes(ns.node, graph_->task(t));
      if (first || score > best_score ||
          (score == best_score && key_static(t) < key_static(ns.ready[best_idx]))) {
        best_idx = i;
        best_score = score;
        first = false;
      }
    }
  } else {
    for (std::size_t i = 1; i < ns.ready.size(); ++i) {
      if (key_static(ns.ready[i]) < key_static(ns.ready[best_idx])) best_idx = i;
    }
  }
  const TaskId picked = ns.ready[best_idx];
  if (obs::trace_enabled() && config_.local_policy == LocalPolicy::DataAware) {
    // A reorder decision: the data-aware policy jumped past the task static
    // order would have run. These instants are the Fig. 5(b) "back and
    // forth" moments, visible right on the node's timeline.
    std::size_t fifo_idx = 0;
    for (std::size_t i = 1; i < ns.ready.size(); ++i) {
      if (key_static(ns.ready[i]) < key_static(ns.ready[fifo_idx])) fifo_idx = i;
    }
    if (ns.ready[fifo_idx] != picked) {
      obs::Event ev;
      ev.phase = obs::Phase::Instant;
      ev.cat = obs::intern("sched");
      ev.name = obs::intern("reorder");
      ev.pid = ns.node;
      ev.ts_ns = obs::TraceClock::now_ns();
      ev.nargs = 2;
      ev.arg_name[0] = obs::intern("picked");
      ev.arg_val[0] = picked;
      ev.arg_name[1] = obs::intern("over");
      ev.arg_val[1] = ns.ready[fifo_idx];
      obs::TraceSession::instance().emit(ev);
    }
  }
  ns.ready.erase(ns.ready.begin() + static_cast<std::ptrdiff_t>(best_idx));
  return picked;
}

void Engine::prefetch_locked(NodeState& ns) {
  if (config_.prefetch_window <= 0) return;
  // Prefetch inputs of the first `prefetch_window` ready tasks in *policy*
  // order: under the data-aware policy, tasks with resident blocks come
  // first so their small missing inputs arrive before later prefetches
  // evict the blocks they would reuse.
  std::vector<TaskId> order = ns.ready;
  std::sort(order.begin(), order.end(), [this, &ns](TaskId a, TaskId b) {
    const Task& ta = graph_->task(a);
    const Task& tb = graph_->task(b);
    if (config_.local_policy == LocalPolicy::DataAware) {
      const std::uint64_t ra = resident_input_bytes(ns.node, ta);
      const std::uint64_t rb = resident_input_bytes(ns.node, tb);
      if (ra != rb) return ra > rb;
    }
    return std::make_pair(ta.group, ta.seq) < std::make_pair(tb.group, tb.seq);
  });
  auto& storage_node = cluster_.node(ns.node);
  int window = config_.prefetch_window;
  for (const TaskId t : order) {
    if (window <= 0) break;
    const Task& task = graph_->task(t);
    if (task.kind == "sync") continue;  // barriers move no data
    bool missing = false;
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        storage_node.prefetch(in);
        missing = true;
      }
    }
    if (missing) --window;
  }
}

void Engine::execute(NodeState& ns, int slot, TaskId t) {
  const Task& task = graph_->task(t);
  auto& storage_node = cluster_.node(ns.node);

  // Sync tasks are barriers: their dependencies are enforced by the DAG
  // but they move no data, so their inputs are never acquired (a global
  // synchronization is a control message, not a transfer).
  const bool control_only = task.kind == "sync";

  const bool tracing = obs::trace_enabled();
  bool inputs_resident = true;
  std::uint64_t missing_bytes = 0;
  if ((config_.record_trace || tracing) && !control_only) {
    for (const auto& in : task.inputs) {
      if (!storage_node.is_resident(in)) {
        inputs_resident = false;
        missing_bytes += in.length;
      }
    }
  }

  TraceEvent ev;
  if (config_.record_trace) {
    ev.task = t;
    ev.name = task.name;
    ev.kind = task.kind;
    ev.node = ns.node;
    ev.slot = slot;
    ev.inputs_resident = inputs_resident;
    ev.missing_bytes = missing_bytes;
    ev.start = clock_.seconds();
  }
  // tid is the per-thread lane (unique process-wide), so spans emitted by
  // one worker always nest cleanly; the compute slot travels as an arg.
  std::optional<obs::Span> task_span;
  if (tracing) {
    task_span.emplace("task", task.name, ns.node);
    task_span->arg("task", t).arg("missing_bytes", missing_bytes);
  }

  // Acquire output handles (immediate) then input handles (may block until
  // producers seal / loads complete).
  std::vector<storage::WriteHandle> outputs;
  outputs.reserve(task.outputs.size());
  for (const auto& out : task.outputs) {
    outputs.push_back(storage_node.request_write(out).get());
  }
  std::vector<storage::ReadHandle> inputs;
  if (!control_only) {
    std::vector<std::future<storage::ReadHandle>> input_futures;
    input_futures.reserve(task.inputs.size());
    for (const auto& in : task.inputs) {
      input_futures.push_back(storage_node.request_read(in));
    }
    inputs.reserve(task.inputs.size());
    // The wait for loads/producers renders as a nested span under the task,
    // so Fig. 5-style Gantt views show load time vs compute time directly.
    std::optional<obs::Span> wait_span;
    if (tracing && !inputs_resident) {
      wait_span.emplace("sched", "wait-inputs", ns.node);
      wait_span->arg("missing_bytes", missing_bytes);
    }
    for (auto& f : input_futures) inputs.push_back(f.get());
  }

  if (task.work) {
    TaskContext ctx(&task, ns.node, split_pools_[static_cast<std::size_t>(ns.node)].get(),
                    &inputs, &outputs);
    task.work(ctx);
  }

  // Release inputs first, then outputs (sealing makes results visible).
  inputs.clear();
  outputs.clear();

  if (config_.record_trace) {
    ev.end = clock_.seconds();
    std::lock_guard lock(trace_mutex_);
    trace_.push_back(std::move(ev));
  }
}

void Engine::complete(TaskId t) {
  // Publish all newly-ready successors per node in one batch: a worker
  // that wakes up must see every choice this completion enables, or the
  // data-aware policy would degenerate to arrival order.
  std::map<int, std::vector<TaskId>> newly_ready;
  for (TaskId s : graph_->successors(t)) {
    if (deps_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      newly_ready[assignment_[s]].push_back(s);
    }
  }
  for (auto& [node, tasks] : newly_ready) {
    NodeState& ns = *node_states_[static_cast<std::size_t>(node)];
    {
      std::lock_guard lock(ns.mutex);
      ns.ready.insert(ns.ready.end(), tasks.begin(), tasks.end());
      prefetch_locked(ns);
    }
    ns.cv.notify_all();
  }
  if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_) {
    for (auto& ns : node_states_) ns->cv.notify_all();
  }
}

void Engine::worker_loop(NodeState& ns, int slot) {
  while (true) {
    TaskId t = kInvalidTask;
    {
      std::unique_lock lock(ns.mutex);
      ns.cv.wait(lock, [&] {
        return abort_.load() || completed_.load() == total_ || !ns.ready.empty();
      });
      if (abort_.load() || completed_.load() == total_) return;
      t = pick_locked(ns);
      if (t == kInvalidTask) continue;
      prefetch_locked(ns);
    }
    try {
      execute(ns, slot, t);
    } catch (...) {
      {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      abort_.store(true);
      for (auto& other : node_states_) other->cv.notify_all();
      return;
    }
    complete(t);
  }
}

Report Engine::run(TaskGraph& graph) {
  DOOC_REQUIRE(graph.built(), "run() needs a built task graph");
  graph_ = &graph;
  total_ = graph.size();
  completed_.store(0);
  abort_.store(false);
  first_error_ = nullptr;
  trace_.clear();

  const storage::StorageStats stats_before = cluster_.total_stats();
  const std::uint64_t cross_before =
      cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0;

  GlobalScheduler global(cluster_.num_nodes(), config_.global_policy);
  CatalogLocator locator(&cluster_.catalog());
  assignment_ = global.assign(graph, locator);

  deps_ = std::vector<std::atomic<int>>(graph.size());
  for (TaskId t = 0; t < graph.size(); ++t) {
    deps_[t].store(static_cast<int>(graph.predecessors(t).size()), std::memory_order_relaxed);
  }

  node_states_.clear();
  for (int n = 0; n < cluster_.num_nodes(); ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    node_states_.push_back(std::move(ns));
  }
  // Seed ready sets with dependency-free tasks.
  for (TaskId t = 0; t < graph.size(); ++t) {
    if (deps_[t].load(std::memory_order_relaxed) == 0) {
      NodeState& ns = *node_states_[static_cast<std::size_t>(assignment_[t])];
      ns.ready.push_back(t);
    }
  }
  for (auto& ns : node_states_) {
    std::lock_guard lock(ns->mutex);
    prefetch_locked(*ns);
  }

  clock_.restart();
  std::vector<std::thread> workers;
  workers.reserve(node_states_.size() * static_cast<std::size_t>(config_.compute_slots_per_node));
  for (auto& ns : node_states_) {
    NodeState* state = ns.get();
    for (int slot = 0; slot < config_.compute_slots_per_node; ++slot) {
      workers.emplace_back([this, state, slot] { worker_loop(*state, slot); });
    }
  }
  for (auto& w : workers) w.join();

  Report report;
  report.makespan = clock_.seconds();
  graph_ = nullptr;

  if (first_error_) std::rethrow_exception(first_error_);
  DOOC_CHECK(completed_.load() == total_, "engine finished without completing all tasks");

  report.tasks_executed = total_;
  for (TaskId t = 0; t < graph.size(); ++t) report.total_flops += graph.task(t).est_flops;
  report.assignment = assignment_;
  report.trace = std::move(trace_);
  report.storage = delta(cluster_.total_stats(), stats_before);
  report.cross_node_bytes =
      (cluster_.transport() != nullptr ? cluster_.transport()->cross_node_bytes() : 0) -
      cross_before;
  return report;
}

}  // namespace dooc::sched
