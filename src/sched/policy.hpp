// Local scheduling policies: how a node's local scheduler orders its ready
// tasks. The paper's local scheduler "reorders the tasks to minimize the
// cost of memory transfers"; DataAware is that behaviour (prefer tasks
// whose inputs are already resident — this is what discovers the
// back-and-forth plan of Fig. 5(b) automatically). Fifo and the static
// BackAndForth order exist as baselines for the scheduler-policy ablation.
#pragma once

#include <cstdint>
#include <string>

namespace dooc::sched {

enum class LocalPolicy {
  /// Strict submission order (the "Regular" plan of Fig. 5(a)).
  Fifo,
  /// Dynamic: pick the ready task with the most resident input bytes;
  /// ties broken by submission order. The paper's default.
  DataAware,
  /// Static: within even groups (iterations) run by ascending seq, within
  /// odd groups by descending seq — the hand-crafted plan of Fig. 5(b).
  BackAndForth,
};

inline const char* to_string(LocalPolicy p) {
  switch (p) {
    case LocalPolicy::Fifo: return "fifo";
    case LocalPolicy::DataAware: return "data-aware";
    case LocalPolicy::BackAndForth: return "back-and-forth";
  }
  return "?";
}

/// Global (task → node) assignment strategies.
enum class GlobalPolicy {
  /// The paper's heuristic: "tasks are sent to the compute nodes which
  /// host most of the data required to process them."
  Affinity,
  /// Round-robin baseline for the ablation bench.
  RoundRobin,
};

inline const char* to_string(GlobalPolicy p) {
  switch (p) {
    case GlobalPolicy::Affinity: return "affinity";
    case GlobalPolicy::RoundRobin: return "round-robin";
  }
  return "?";
}

}  // namespace dooc::sched
