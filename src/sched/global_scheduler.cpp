#include "sched/global_scheduler.hpp"

#include <optional>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dooc::sched {

std::vector<int> GlobalScheduler::assign(const TaskGraph& graph, const DataLocator& locator) const {
  DOOC_REQUIRE(graph.built(), "assign() needs a built task graph");
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) {
    span.emplace("sched", "global-assign", -1);
    span->arg("tasks", graph.size());
  }
  std::vector<int> assignment(graph.size(), -1);

  std::size_t rr_next = 0;
  for (TaskId t : graph.topo_order()) {
    const Task& task = graph.task(t);
    if (task.preferred_node >= 0) {
      DOOC_REQUIRE(task.preferred_node < num_nodes_,
                   "task '" + task.name + "' pinned to nonexistent node");
      assignment[t] = task.preferred_node;
      continue;
    }
    if (policy_ == GlobalPolicy::RoundRobin) {
      assignment[t] = static_cast<int>(rr_next++ % static_cast<std::size_t>(num_nodes_));
      continue;
    }
    // Affinity: count input bytes hosted per node. Intermediate inputs are
    // hosted where their producer was assigned.
    std::vector<std::uint64_t> hosted(static_cast<std::size_t>(num_nodes_), 0);
    for (const auto& in : task.inputs) {
      int host = -1;
      const TaskId producer = graph.writer_of(in);
      if (producer != kInvalidTask) {
        host = assignment[producer];
      } else {
        host = locator.home_of(in.array);
      }
      if (host >= 0 && host < num_nodes_) hosted[static_cast<std::size_t>(host)] += in.length;
    }
    int best = 0;
    for (int node = 1; node < num_nodes_; ++node) {
      if (hosted[static_cast<std::size_t>(node)] > hosted[static_cast<std::size_t>(best)]) {
        best = node;
      }
    }
    assignment[t] = best;
  }
  return assignment;
}

}  // namespace dooc::sched
