#include "sched/task.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "common/error.hpp"

namespace dooc::sched {

TaskId TaskGraph::add(Task task) {
  DOOC_REQUIRE(!built_, "cannot add tasks after build()");
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

const std::vector<TaskGraph::WriteRecord>* TaskGraph::writers_for(const std::string& array) const {
  for (const auto& [name, records] : writers_) {
    if (name == array) return &records;
  }
  return nullptr;
}

TaskId TaskGraph::writer_of(const storage::Interval& iv) const {
  DOOC_REQUIRE(built_, "writer_of() before build()");
  const auto* records = writers_for(iv.array);
  if (records == nullptr) return kInvalidTask;
  for (const auto& r : *records) {
    const bool overlap = r.iv.offset < iv.end() && iv.offset < r.iv.end();
    if (overlap) return r.writer;
  }
  return kInvalidTask;
}

void TaskGraph::rename_arrays(const std::function<std::string(const std::string&)>& fn) {
  for (Task& t : tasks_) {
    for (auto& in : t.inputs) in.array = fn(in.array);
    for (auto& out : t.outputs) out.array = fn(out.array);
  }
  for (auto& [array, records] : writers_) {
    array = fn(array);
    for (auto& r : records) r.iv.array = array;
  }
}

void TaskGraph::build() {
  DOOC_REQUIRE(!built_, "build() called twice");
  const std::size_t n = tasks_.size();
  succ_.assign(n, {});
  pred_.assign(n, {});

  // Index all writes per array and detect write-once violations.
  std::map<std::string, std::vector<WriteRecord>> writers;
  for (TaskId t = 0; t < n; ++t) {
    for (const auto& out : tasks_[t].outputs) {
      writers[out.array].push_back(WriteRecord{out, t});
    }
  }
  for (auto& [array, records] : writers) {
    std::sort(records.begin(), records.end(),
              [](const WriteRecord& a, const WriteRecord& b) { return a.iv.offset < b.iv.offset; });
    for (std::size_t i = 1; i < records.size(); ++i) {
      if (records[i - 1].iv.end() > records[i].iv.offset) {
        throw ImmutabilityViolation(
            "tasks '" + tasks_[records[i - 1].writer].name + "' and '" +
            tasks_[records[i].writer].name + "' both write array '" + array +
            "' around offset " + std::to_string(records[i].iv.offset));
      }
    }
    writers_.emplace_back(array, records);
  }

  // Derive edges: reader depends on every writer its interval overlaps.
  for (TaskId t = 0; t < n; ++t) {
    std::vector<TaskId> deps;
    for (const auto& in : tasks_[t].inputs) {
      auto it = writers.find(in.array);
      if (it == writers.end()) continue;
      // records sorted by offset; scan overlapping range
      for (const auto& r : it->second) {
        if (r.iv.offset >= in.end()) break;
        if (r.iv.end() <= in.offset) continue;
        if (r.writer == t) {
          throw InvalidArgument("task '" + tasks_[t].name + "' reads its own output");
        }
        deps.push_back(r.writer);
      }
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    for (TaskId d : deps) {
      pred_[t].push_back(d);
      succ_[d].push_back(t);
      ++num_edges_;
    }
  }

  // Kahn toposort; stable via a min-heap on task id.
  std::vector<std::size_t> indeg(n);
  for (TaskId t = 0; t < n; ++t) indeg[t] = pred_[t].size();
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> frontier;
  for (TaskId t = 0; t < n; ++t)
    if (indeg[t] == 0) frontier.push(t);
  topo_.clear();
  topo_.reserve(n);
  while (!frontier.empty()) {
    const TaskId t = frontier.top();
    frontier.pop();
    topo_.push_back(t);
    for (TaskId s : succ_[t]) {
      if (--indeg[s] == 0) frontier.push(s);
    }
  }
  if (topo_.size() != n) {
    throw InvalidArgument("task graph has a cycle (" + std::to_string(n - topo_.size()) +
                          " tasks unreachable)");
  }
  built_ = true;
}

}  // namespace dooc::sched
