// The global scheduler: the coarse level of DOoC's two-level hierarchy.
// It walks the task DAG in topological order and assigns every task to a
// compute node, by default the node "which hosts most of the data required
// to process" the task (paper §III-C). For inputs that do not exist yet
// (they are produced by other tasks), the producer's assigned node counts
// as the host — which is why assignment follows topological order.
#pragma once

#include <vector>

#include "sched/policy.hpp"
#include "sched/task.hpp"
#include "storage/catalog.hpp"

namespace dooc::sched {

/// Resolves where the initial (pre-existing) data lives. Implemented by the
/// real storage catalog and by the DES testbed model.
class DataLocator {
 public:
  virtual ~DataLocator() = default;
  /// Home node of an array, or -1 when unknown (not yet created).
  [[nodiscard]] virtual int home_of(const storage::ArrayName& name) const = 0;
};

/// DataLocator over the real distributed catalog.
class CatalogLocator final : public DataLocator {
 public:
  explicit CatalogLocator(const storage::DistributedCatalog* catalog) : catalog_(catalog) {}
  [[nodiscard]] int home_of(const storage::ArrayName& name) const override {
    auto meta = catalog_->shard_for(name).find(name);
    return meta ? meta->home_node : -1;
  }

 private:
  const storage::DistributedCatalog* catalog_;
};

class GlobalScheduler {
 public:
  GlobalScheduler(int num_nodes, GlobalPolicy policy = GlobalPolicy::Affinity)
      : num_nodes_(num_nodes), policy_(policy) {}

  /// Returns assignment[task] = node for every task in the graph.
  [[nodiscard]] std::vector<int> assign(const TaskGraph& graph, const DataLocator& locator) const;

 private:
  int num_nodes_;
  GlobalPolicy policy_;
};

}  // namespace dooc::sched
