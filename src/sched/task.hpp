// Task and task-graph model of the DOoC hierarchical scheduler (paper
// §III-C): "Each computation takes some data as an input and outputs some
// data. Each data is a complete array that is (or will be) stored within
// the storage layer. The input and output data information is used to
// derive a DAG of the tasks."
//
// We generalize slightly: tasks read/write *intervals* of arrays, and an
// edge is derived wherever a reader's interval overlaps a writer's interval
// on the same array. Validation enforces the storage layer's immutability
// contract statically: no two tasks may write overlapping intervals.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/types.hpp"

namespace dooc::sched {

using TaskId = std::uint32_t;
constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

class TaskContext;

struct Task {
  std::string name;  ///< human-readable ("x_0_1^2"), used in traces/Gantt
  std::string kind;  ///< "load-bearing" category ("multiply", "sum", ...)
  std::vector<storage::Interval> inputs;
  std::vector<storage::Interval> outputs;
  /// Executed by the real backend; absent tasks are treated as no-ops
  /// (useful for pure schedule studies and the DES backend).
  std::function<void(TaskContext&)> work;
  /// Estimated floating point work, for reports and the DES cost model.
  double est_flops = 0.0;
  /// Static ordering metadata for trace output and static policies:
  /// `group` is typically the iteration number, `seq` the position within
  /// the iteration.
  std::int64_t group = 0;
  std::int64_t seq = 0;
  /// Pin the task to a node (-1 = let the global scheduler decide).
  int preferred_node = -1;
};

class TaskGraph {
 public:
  TaskId add(Task task);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] const Task& task(TaskId id) const { return tasks_[id]; }
  [[nodiscard]] Task& task(TaskId id) { return tasks_[id]; }

  /// Derive dependency edges from interval overlaps and validate:
  /// write-once (no overlapping writers) and acyclicity. Must be called
  /// after the last add() and before querying edges.
  void build();

  [[nodiscard]] bool built() const noexcept { return built_; }
  [[nodiscard]] const std::vector<TaskId>& successors(TaskId id) const { return succ_[id]; }
  [[nodiscard]] const std::vector<TaskId>& predecessors(TaskId id) const { return pred_[id]; }
  /// Topological order (stable: ties broken by insertion order).
  [[nodiscard]] const std::vector<TaskId>& topo_order() const { return topo_; }
  /// Which task writes the given interval's block range first byte; returns
  /// kInvalidTask for inputs that pre-exist in storage.
  [[nodiscard]] TaskId writer_of(const storage::Interval& iv) const;

  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Rewrite every array name in the graph (task inputs/outputs and the
  /// derived writer index) through `fn`. Interval geometry and edges are
  /// untouched — renaming is how the jobs layer namespaces a job's arrays
  /// without rebuilding its graph. Works before or after build().
  void rename_arrays(const std::function<std::string(const std::string&)>& fn);

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::vector<TaskId> topo_;
  std::size_t num_edges_ = 0;
  bool built_ = false;

  struct WriteRecord {
    storage::Interval iv;
    TaskId writer;
  };
  // array name -> sorted write records (by offset)
  std::vector<std::pair<std::string, std::vector<WriteRecord>>> writers_;
  [[nodiscard]] const std::vector<WriteRecord>* writers_for(const std::string& array) const;
};

}  // namespace dooc::sched
