// The real execution backend: global assignment + per-node local
// schedulers + compute workers, over the distributed storage layer.
//
// Each virtual node runs `compute_slots_per_node` compute filters (worker
// threads) around the shared ExecutorCore state machine. Workers never
// block on storage reads: a picked task's inputs are requested with
// read_async and the task parks in InputsPending while the worker takes
// the next Runnable task; storage completion events (the node's
// CompletionQueue) transition parked tasks to Runnable. This is how "the
// local scheduler makes sure that there are a given number of ready tasks
// whose data are in memory" (paper §III-C) and how loads overlap with
// compute — the prefetch window is simply how many tasks may park with
// loads in flight.
//
// EngineConfig::blocking_io retains the pre-completion-driven behaviour
// (workers block on future::get(), prefetch as a bolt-on pass) as the
// --blocking-io ablation baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "sched/executor_core.hpp"
#include "sched/global_scheduler.hpp"
#include "sched/policy.hpp"
#include "sched/task.hpp"
#include "storage/storage_cluster.hpp"

namespace dooc::sched {

/// What a task body may touch while running.
class TaskContext {
 public:
  TaskContext(const Task* task, int node, ThreadPool* pool,
              std::vector<storage::ReadHandle>* inputs,
              std::vector<storage::WriteHandle>* outputs)
      : task_(task), node_(node), pool_(pool), inputs_(inputs), outputs_(outputs) {}

  [[nodiscard]] const Task& task() const noexcept { return *task_; }
  [[nodiscard]] int node() const noexcept { return node_; }
  /// Node-local pool for splitting the task across the node's parallelism.
  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_->size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_->size(); }
  /// Input handle i corresponds to task().inputs[i]; same for outputs.
  [[nodiscard]] const storage::ReadHandle& input(std::size_t i) const { return (*inputs_)[i]; }
  [[nodiscard]] storage::WriteHandle& output(std::size_t i) { return (*outputs_)[i]; }

 private:
  const Task* task_;
  int node_;
  ThreadPool* pool_;
  std::vector<storage::ReadHandle>* inputs_;
  std::vector<storage::WriteHandle>* outputs_;
};

struct EngineConfig {
  /// Compute filters (worker threads) per node.
  int compute_slots_per_node = 1;
  /// Threads each node's task bodies may split across (TaskContext::pool).
  int split_threads_per_node = 1;
  /// How many upcoming ready tasks to prefetch inputs for.
  int prefetch_window = 2;
  LocalPolicy local_policy = LocalPolicy::DataAware;
  GlobalPolicy global_policy = GlobalPolicy::Affinity;
  bool record_trace = true;
  /// Ablation baseline: workers pick a task and block on future::get() for
  /// its inputs (the pre-completion-driven engine). Default is the
  /// completion-driven path where compute workers never block on I/O.
  bool blocking_io = false;
};

struct TraceEvent {
  TaskId task = kInvalidTask;
  std::string name;
  std::string kind;
  int node = -1;
  int slot = -1;
  double start = 0.0;  ///< seconds since run() start
  double end = 0.0;
  bool inputs_resident = false;  ///< all inputs resident when the task was picked
  std::uint64_t missing_bytes = 0;  ///< input bytes that had to be loaded/fetched
};

/// One task whose input loads failed permanently (retry budget exhausted).
struct FaultRecord {
  TaskId task = kInvalidTask;
  std::string name;
  int node = -1;
  int retries = 0;    ///< re-queues performed before giving up
  std::string error;  ///< what() of the final load failure
};

/// Structured failure report of a fault-tolerant run. With a FaultPlan
/// installed the engine does not abort on a permanent storage error: it
/// drains every still-runnable task and reports what could not be computed
/// — graceful degradation instead of a crash.
struct FaultSummary {
  std::vector<FaultRecord> failed;  ///< tasks whose retry budget ran out
  std::uint64_t poisoned = 0;       ///< successors skipped because an ancestor failed
  std::uint64_t load_faults = 0;    ///< permanent load failures reported by storage
  std::uint64_t task_retries = 0;   ///< task re-queues after a load fault
  std::uint64_t producer_reruns = 0;///< Done producers re-run to re-derive lost blocks

  /// Every task ran to completion (retries and reruns may still be > 0).
  [[nodiscard]] bool ok() const noexcept { return failed.empty() && poisoned == 0; }
  [[nodiscard]] std::string to_text() const;
};

struct Report {
  double makespan = 0.0;  ///< seconds
  std::uint64_t tasks_executed = 0;
  double total_flops = 0.0;
  std::vector<int> assignment;        ///< task -> node
  std::vector<TraceEvent> trace;      ///< empty unless record_trace
  storage::StorageStats storage;      ///< cluster-wide delta over the run
  std::uint64_t cross_node_bytes = 0; ///< transport delta over the run
  FaultSummary faults;                ///< empty/ok unless a FaultPlan was active

  [[nodiscard]] double gflops() const {
    return makespan > 0 ? total_flops / makespan * 1e-9 : 0.0;
  }
};

class Engine {
 public:
  Engine(storage::StorageCluster& cluster, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute the graph. Without a fault plan (and in blocking-io mode) the
  /// first task/storage error is rethrown. With the cluster's FaultPlan
  /// installed, permanent load failures instead retry / re-derive / poison
  /// per the recovery policy and the run drains, reporting the damage in
  /// Report::faults.
  Report run(TaskGraph& graph);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  struct NodeState;
  class Probe;
  struct Staged;

  void worker_loop(NodeState& ns, int slot);
  void worker_loop_blocking(NodeState& ns, int slot);
  /// Drain the node's storage completion queue into the core; returns false
  /// when a completion carried an error and the run must abort (legacy,
  /// plan-less behaviour). In fault-tolerant mode errors route into
  /// handle_load_fault instead and nodes that gained work (resurrected
  /// producers, settle fan-out) are appended to `wakes` for the caller to
  /// notify once ns.mutex is released. ns.mutex held.
  bool drain_completions(NodeState& ns, std::vector<int>& wakes);
  /// A staged task's input load failed permanently (the I/O filters already
  /// exhausted the retry/backoff policy). Re-derives lost blocks, then asks
  /// the core to retry or poison the task. ns.mutex held.
  void handle_load_fault(NodeState& ns, TaskId t, const std::exception_ptr& err,
                         std::vector<int>& wakes);
  /// Re-queue Done producers of `t`'s inputs whose write-once output blocks
  /// are genuinely lost (no live holder, no durable copy). ns.mutex held.
  void maybe_resurrect_producers(NodeState& ns, TaskId t, std::vector<int>& wakes);
  [[nodiscard]] bool block_lost(const storage::Interval& in) const;
  /// Purge every output block of `p` cluster-wide so a re-run may rewrite
  /// them; false when some block is still live (pinned / awaited).
  bool forget_outputs(TaskId p);
  /// Bump + notify each listed node's wake counter, then clear the list.
  /// Must be called with no ns.mutex held.
  void notify_nodes(std::vector<int>& nodes);
  /// Stage policy-picked tasks (resident first, then missing up to the
  /// window) and issue their async reads. ns.mutex held via `lock`; the
  /// reads themselves are issued with it released.
  void stage_tasks(NodeState& ns, std::unique_lock<std::mutex>& lock);
  /// Issue prefetches for the next `prefetch_window` tasks (blocking-io
  /// compatibility pass). ns.mutex held.
  void prefetch_blocking_locked(NodeState& ns);
  void execute(NodeState& ns, int slot, TaskId t, Staged* staged);
  void complete(TaskId t);
  void record_error(std::exception_ptr e);
  /// Bump every node's wake counter and notify (abort / all-done fanout).
  /// Must be called with no ns.mutex held.
  void wake_all();

  storage::StorageCluster& cluster_;
  EngineConfig config_;
  std::vector<std::unique_ptr<ThreadPool>> split_pools_;
  std::unique_ptr<Probe> probe_;

  // Per-run state (valid during run()).
  TaskGraph* graph_ = nullptr;
  std::vector<int> assignment_;
  std::unique_ptr<ExecutorCore> core_;
  std::vector<std::unique_ptr<NodeState>> node_states_;
  std::uint64_t run_epoch_ = 0;  ///< tags completions; stale runs are dropped
  /// The cluster has a FaultPlan and we run completion-driven: storage
  /// errors go through the recovery policy instead of aborting.
  bool fault_tolerant_ = false;
  std::mutex fault_mutex_;
  FaultSummary faults_;  ///< guarded by fault_mutex_
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  Stopwatch clock_;
  std::mutex trace_mutex_;
  std::vector<TraceEvent> trace_;
};

}  // namespace dooc::sched
