// The real execution backend: global assignment + per-node local
// schedulers + compute workers, over the distributed storage layer.
//
// The engine is multi-tenant: it hosts N concurrent jobs (one built
// TaskGraph each), every job with its own ExecutorCore state machine,
// multiplexed onto one shared set of persistent compute workers. submit()
// registers a job and returns immediately; await() blocks for its Report.
// Workers iterate the live jobs in priority order (round-robin within a
// priority tier) so every job makes progress; storage admission is
// arbitrated per job by the fair-share layer (the job id travels as the
// storage tenant on every read). run() is the single-job wrapper —
// submit + await — and with one job the schedule is exactly the
// pre-multi-tenant engine's.
//
// Each virtual node runs `compute_slots_per_node` compute filters (worker
// threads) around the shared ExecutorCore state machine. Workers never
// block on storage reads: a picked task's inputs are requested with
// read_async and the task parks in InputsPending while the worker takes
// the next Runnable task; storage completion events (the node's
// CompletionQueue) transition parked tasks to Runnable. This is how "the
// local scheduler makes sure that there are a given number of ready tasks
// whose data are in memory" (paper §III-C) and how loads overlap with
// compute — the prefetch window is simply how many tasks may park with
// loads in flight.
//
// EngineConfig::blocking_io retains the pre-completion-driven behaviour
// (workers block on future::get(), prefetch as a bolt-on pass) as the
// --blocking-io ablation baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "sched/executor_core.hpp"
#include "sched/global_scheduler.hpp"
#include "sched/policy.hpp"
#include "sched/task.hpp"
#include "storage/storage_cluster.hpp"

namespace dooc::obs::telemetry {
class LocalTelemetry;  // heavy include avoided; engine.cpp owns the definition
}

namespace dooc::sched {

/// What a task body may touch while running.
class TaskContext {
 public:
  TaskContext(const Task* task, int node, ThreadPool* pool,
              std::vector<storage::ReadHandle>* inputs,
              std::vector<storage::WriteHandle>* outputs)
      : task_(task), node_(node), pool_(pool), inputs_(inputs), outputs_(outputs) {}

  [[nodiscard]] const Task& task() const noexcept { return *task_; }
  [[nodiscard]] int node() const noexcept { return node_; }
  /// Node-local pool for splitting the task across the node's parallelism.
  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_->size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_->size(); }
  /// Input handle i corresponds to task().inputs[i]; same for outputs.
  [[nodiscard]] const storage::ReadHandle& input(std::size_t i) const { return (*inputs_)[i]; }
  [[nodiscard]] storage::WriteHandle& output(std::size_t i) { return (*outputs_)[i]; }

 private:
  const Task* task_;
  int node_;
  ThreadPool* pool_;
  std::vector<storage::ReadHandle>* inputs_;
  std::vector<storage::WriteHandle>* outputs_;
};

struct EngineConfig {
  /// Compute filters (worker threads) per node.
  int compute_slots_per_node = 1;
  /// Threads each node's task bodies may split across (TaskContext::pool).
  int split_threads_per_node = 1;
  /// How many upcoming ready tasks to prefetch inputs for.
  int prefetch_window = 2;
  LocalPolicy local_policy = LocalPolicy::DataAware;
  GlobalPolicy global_policy = GlobalPolicy::Affinity;
  bool record_trace = true;
  /// Ablation baseline: workers pick a task and block on future::get() for
  /// its inputs (the pre-completion-driven engine). Default is the
  /// completion-driven path where compute workers never block on I/O.
  bool blocking_io = false;
};

struct TraceEvent {
  TaskId task = kInvalidTask;
  std::string name;
  std::string kind;
  int node = -1;
  int slot = -1;
  double start = 0.0;  ///< seconds since the job's submit
  double end = 0.0;
  bool inputs_resident = false;  ///< all inputs resident when the task was picked
  std::uint64_t missing_bytes = 0;  ///< input bytes that had to be loaded/fetched
};

/// One task whose input loads failed permanently (retry budget exhausted).
struct FaultRecord {
  TaskId task = kInvalidTask;
  std::string name;
  int node = -1;
  int retries = 0;    ///< re-queues performed before giving up
  std::string error;  ///< what() of the final load failure
};

/// Structured failure report of a fault-tolerant run. With a FaultPlan
/// installed the engine does not abort on a permanent storage error: it
/// drains every still-runnable task and reports what could not be computed
/// — graceful degradation instead of a crash.
struct FaultSummary {
  std::vector<FaultRecord> failed;  ///< tasks whose retry budget ran out
  std::uint64_t poisoned = 0;       ///< successors skipped because an ancestor failed
  std::uint64_t load_faults = 0;    ///< permanent load failures reported by storage
  std::uint64_t task_retries = 0;   ///< task re-queues after a load fault
  std::uint64_t producer_reruns = 0;///< Done producers re-run to re-derive lost blocks

  /// Every task ran to completion (retries and reruns may still be > 0).
  [[nodiscard]] bool ok() const noexcept { return failed.empty() && poisoned == 0; }
  [[nodiscard]] std::string to_text() const;
};

struct Report {
  double makespan = 0.0;  ///< seconds, submit to last task settled
  std::uint64_t tasks_executed = 0;
  double total_flops = 0.0;
  std::vector<int> assignment;        ///< task -> node
  std::vector<TraceEvent> trace;      ///< empty unless record_trace
  /// Cluster-wide stats delta over the job. Exact for a lone job; when
  /// jobs overlap in time the deltas overlap too (shared cluster).
  storage::StorageStats storage;
  std::uint64_t cross_node_bytes = 0; ///< transport delta over the job
  FaultSummary faults;                ///< empty/ok unless a FaultPlan was active

  [[nodiscard]] double gflops() const {
    return makespan > 0 ? total_flops / makespan * 1e-9 : 0.0;
  }
};

/// Per-job scheduling knobs for Engine::submit.
struct SubmitOptions {
  /// Job id; 0 = let the engine assign one (see reserve_job_id). Ids of
  /// live jobs must be unique and non-zero.
  std::uint32_t job = 0;
  /// Fair-share weight for the storage admission budget (relative).
  double weight = 1.0;
  /// Compute priority: higher-priority jobs' tasks are staged and picked
  /// first; equal priorities round-robin.
  int priority = 0;
};

class Engine {
 public:
  Engine(storage::StorageCluster& cluster, EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a job for execution and return its id. The graph must stay
  /// alive and untouched until await() returns. Thread-safe.
  std::uint32_t submit(TaskGraph& graph, SubmitOptions options = {});
  /// Block until the job settles, reap it, and return its Report. Without
  /// a fault plan (and in blocking-io mode) the job's first task/storage
  /// error is rethrown here. Each submitted job must be awaited exactly
  /// once.
  Report await(std::uint32_t job);
  /// Non-blocking: has the job settled (await will not block)?
  [[nodiscard]] bool finished(std::uint32_t job);
  /// Pre-allocate a job id (for callers that queue jobs before submitting
  /// them, so the id — and its array-namespace prefix — exists up front).
  std::uint32_t reserve_job_id();
  /// Callback fired (outside all engine locks, on a worker thread) when a
  /// job settles. The jobs layer uses it to pump its admission queue.
  void set_on_job_done(std::function<void(std::uint32_t)> cb);

  /// Single-job convenience: submit + await. With one live job the
  /// schedule is exactly the pre-multi-tenant engine's.
  Report run(TaskGraph& graph);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  struct NodeState;
  class Probe;
  struct Staged;
  struct JobRun;
  using JobPtr = std::shared_ptr<JobRun>;

  /// staged-map key: one namespace of task ids per job.
  static std::uint64_t staged_key(std::uint32_t job, TaskId t) {
    return (static_cast<std::uint64_t>(job) << 32) | t;
  }

  void worker_loop(NodeState& ns, int slot);
  void worker_loop_blocking(NodeState& ns, int slot);
  /// Live (not settled/failed) jobs in scheduling order: priority
  /// descending, id ascending within a tier. `rotate` offsets the start
  /// within the top tier for per-node round-robin fairness.
  std::vector<JobPtr> job_snapshot(std::uint64_t rotate);
  /// Drain the node's storage completion queue into the owning jobs'
  /// cores. Jobs whose completion carried an error (plan-less mode) are
  /// appended to `failures`; in fault-tolerant mode errors route into
  /// handle_load_fault, nodes that gained work are appended to `wakes`,
  /// and jobs a poisoning settled to `settled`. ns.mutex held; the out
  /// lists are processed by the caller with it released.
  void drain_completions(NodeState& ns, std::vector<int>& wakes, std::vector<JobPtr>& failures,
                         std::vector<JobPtr>& settled);
  /// A staged task's input load failed permanently (the I/O filters already
  /// exhausted the retry/backoff policy). Re-derives lost blocks, then asks
  /// the core to retry or poison the task. ns.mutex held.
  void handle_load_fault(NodeState& ns, const JobPtr& jr, TaskId t,
                         const std::exception_ptr& err, std::vector<int>& wakes,
                         std::vector<JobPtr>& settled);
  /// Re-queue Done producers of `t`'s inputs whose write-once output blocks
  /// are genuinely lost (no live holder, no durable copy). ns.mutex held.
  void maybe_resurrect_producers(NodeState& ns, const JobPtr& jr, TaskId t,
                                 std::vector<int>& wakes);
  [[nodiscard]] bool block_lost(const storage::Interval& in) const;
  /// Purge every output block of `p` cluster-wide so a re-run may rewrite
  /// them; false when some block is still live (pinned / awaited).
  bool forget_outputs(const JobPtr& jr, TaskId p);
  /// Bump + notify each listed node's wake counter, then clear the list.
  /// Must be called with no ns.mutex held.
  void notify_nodes(std::vector<int>& nodes);
  /// Stage policy-picked tasks of every live job (resident first, then
  /// missing up to each job's window) and issue their async reads.
  /// ns.mutex held via `lock`; the reads themselves are issued with it
  /// released.
  void stage_tasks(NodeState& ns, std::unique_lock<std::mutex>& lock,
                   const std::vector<JobPtr>& jobs);
  /// Issue prefetches for the next `prefetch_window` tasks of a job
  /// (blocking-io compatibility pass). ns.mutex held.
  void prefetch_blocking_locked(NodeState& ns, JobRun& jr);
  void execute(NodeState& ns, int slot, JobRun& jr, TaskId t, Staged* staged);
  /// finish() on the job's core, wake nodes that gained work, retire the
  /// job if that settled it. No locks held on entry.
  void complete(const JobPtr& jr, TaskId t);
  /// Fail the whole job (task body threw, or a storage error in plan-less
  /// mode): record the error, drop its staged inputs on every node, settle
  /// it. No locks held on entry.
  void fail_job(const JobPtr& jr, std::exception_ptr e);
  /// The job settled: build its Report, mark done, notify awaiters and the
  /// on-done callback. No locks held on entry.
  void retire_job(const JobPtr& jr);
  /// Start workers / open completion queues on first submit.
  void ensure_started();
  /// Bump every node's wake counter and notify. No ns.mutex held.
  void wake_all();

  storage::StorageCluster& cluster_;
  EngineConfig config_;
  std::vector<std::unique_ptr<ThreadPool>> split_pools_;
  std::unique_ptr<Probe> probe_;
  /// The cluster has a FaultPlan and we run completion-driven: storage
  /// errors go through the recovery policy instead of aborting the job.
  bool fault_tolerant_ = false;

  // Job table. Lock order: ns.mutex before jobs_mutex_; never the reverse.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;  ///< signalled on job done
  std::unordered_map<std::uint32_t, JobPtr> jobs_;
  /// Completion tags carry only the low 16 bits of the job id.
  std::unordered_map<std::uint16_t, JobPtr> jobs_by_tag_;
  std::atomic<std::uint32_t> next_job_id_{1};
  std::atomic<std::uint64_t> jobs_version_{0};  ///< bumped on add/retire
  std::function<void(std::uint32_t)> on_job_done_;

  std::vector<std::unique_ptr<NodeState>> node_states_;
  std::vector<std::thread> workers_;
  /// In-process telemetry sampler + watchdog, created in ensure_started()
  /// when DOOC_TELEMETRY enables it; nullptr otherwise.
  std::unique_ptr<obs::telemetry::LocalTelemetry> telemetry_;
  std::atomic<bool> shutdown_{false};
  bool started_ = false;  ///< guarded by start_mutex_
  std::mutex start_mutex_;

  std::mutex fault_mutex_;   ///< guards every JobRun's FaultSummary
  std::mutex trace_mutex_;   ///< guards every JobRun's TraceEvent vector
};

}  // namespace dooc::sched
