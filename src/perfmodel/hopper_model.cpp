#include "perfmodel/hopper_model.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace dooc::perfmodel {

const std::vector<MfdnCase>& hopper_reference() {
  // Tables I and II of the paper (10B, MFDn v13-beta02, 99 iterations).
  static const std::vector<MfdnCase> cases = {
      {"test276", 7, 0, 4.66e7, 2.81e10, 276, 244.0, 0.34},
      {"test1128", 8, 1, 1.60e8, 1.24e11, 1128, 543.0, 0.60},
      {"test4560", 9, 2, 4.82e8, 4.62e11, 4560, 759.0, 0.67},
      {"test18336", 10, 3, 1.30e9, 1.51e12, 18336, 1870.0, 0.86},
  };
  return cases;
}

int triangular_grid_d(int np) {
  const int d = static_cast<int>(std::floor((std::sqrt(8.0 * np + 1.0) - 1.0) / 2.0 + 0.5));
  DOOC_REQUIRE(d * (d + 1) / 2 == np,
               "processor count " + std::to_string(np) + " is not triangular");
  return d;
}

int next_triangular(std::uint64_t np) {
  int d = 1;
  while (static_cast<std::uint64_t>(d) * (d + 1) / 2 < np) ++d;
  return d * (d + 1) / 2;
}

namespace {

/// Least-squares fit y ≈ c0*f0 + c1*f1 over n points (normal equations).
/// Falls back to a single-term fit if a coefficient would go negative.
std::array<double, 2> fit2(const std::vector<std::array<double, 2>>& f,
                           const std::vector<double>& y) {
  double a00 = 0, a01 = 0, a11 = 0, b0 = 0, b1 = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    a00 += f[i][0] * f[i][0];
    a01 += f[i][0] * f[i][1];
    a11 += f[i][1] * f[i][1];
    b0 += f[i][0] * y[i];
    b1 += f[i][1] * y[i];
  }
  const double det = a00 * a11 - a01 * a01;
  if (std::abs(det) > 1e-30) {
    const double c0 = (b0 * a11 - b1 * a01) / det;
    const double c1 = (a00 * b1 - a01 * b0) / det;
    if (c0 >= 0 && c1 >= 0) return {c0, c1};
  }
  // Degenerate or sign-violating: fit the dominant single term.
  if (a11 > a00) return {0.0, b1 / a11};
  return {b0 / a00, 0.0};
}

}  // namespace

HopperModel HopperModel::calibrated() {
  const auto& cases = hopper_reference();
  std::vector<std::array<double, 2>> comp_features, comm_features;
  std::vector<double> comp_y, comm_y;
  for (const auto& c : cases) {
    const int d = triangular_grid_d(c.np);
    const double t_iter = c.t_total_99 / 99.0;
    comp_features.push_back({c.nnz / c.np, c.dimension * d / c.np});
    comp_y.push_back(t_iter * (1.0 - c.comm_fraction));
    comm_features.push_back({c.dimension * d / c.np, c.dimension * d * static_cast<double>(d) / c.np});
    comm_y.push_back(t_iter * c.comm_fraction);
  }
  HopperModel m;
  const auto comp = fit2(comp_features, comp_y);
  const auto comm = fit2(comm_features, comm_y);
  m.c_nnz_ = comp[0];
  m.c_row_ = comp[1];
  m.c_vol_ = comm[0];
  m.c_sync_ = comm[1];
  return m;
}

HopperPrediction HopperModel::predict(double dimension, double nnz, int np) const {
  const int d = triangular_grid_d(np);
  HopperPrediction p;
  p.t_comp = c_nnz_ * nnz / np + c_row_ * dimension * d / np;
  p.t_comm = c_vol_ * dimension * d / np + c_sync_ * dimension * d * static_cast<double>(d) / np;
  return p;
}

double HopperModel::local_vector_bytes(double dimension, int np) {
  const int d = triangular_grid_d(np);
  return 8.0 * dimension / (2.0 * d);
}

double HopperModel::local_matrix_bytes(double nnz, int np) {
  return kBytesPerNnz * nnz / np;
}

int HopperModel::min_processors(double nnz, double local_budget) {
  const auto need = static_cast<std::uint64_t>(std::ceil(kBytesPerNnz * nnz / local_budget));
  return next_triangular(need);
}

}  // namespace dooc::perfmodel
