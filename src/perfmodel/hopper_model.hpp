// Analytic cost model of in-core MFDn Lanczos iterations on Hopper
// (Cray XE6), the comparison baseline of Tables I/II and Fig. 7.
//
// MFDn distributes the (symmetric, half-stored) Hamiltonian over a
// triangular d(d+1)/2 processor grid — the paper's processor counts 276,
// 1128, 4560 and 18336 are exactly d(d+1)/2 for d = 23, 47, 95, 191.
//
// Per-iteration model (np processors, grid size d, dimension D, nnz):
//   t_comp = c_nnz * nnz / np  +  c_row * D * d / np
//   t_comm = c_vol * D * d / np  +  c_sync * D * d^2 / np
// The four coefficients are calibrated by least squares against the four
// Table II measurements (total time and communication fraction of 99
// Lanczos iterations). The d and d² communication terms capture the
// vector distribution/reduction along grid rows/columns and the growing
// synchronization/imbalance cost that dominates at 18k cores (86% comm).
//
// Auxiliary Table I models (constants read off the paper's own numbers):
//   local Lanczos vector size  ≈ 8 D / (2 d)  bytes   (matches 8.8/13.6/20.4/27.2 MB)
//   local matrix size          ≈ B * nnz / np bytes, B ≈ 8.5 bytes per stored non-zero
//   n_p(case) = smallest triangular number with local matrix ≤ ~880 MB
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dooc::perfmodel {

/// One Table II calibration/evaluation case.
struct MfdnCase {
  std::string name;      ///< "test276", ...
  int nmax = 0;
  int mj = 0;            ///< integer M_j of Table I
  double dimension = 0;  ///< D(H)
  double nnz = 0;        ///< nnz(H)
  int np = 0;            ///< processors used
  double t_total_99 = 0;     ///< measured seconds for 99 iterations
  double comm_fraction = 0;  ///< measured t_comm / t_total
};

/// The paper's Table I + II reference data for 10B on Hopper.
[[nodiscard]] const std::vector<MfdnCase>& hopper_reference();

/// d for a triangular processor count np = d(d+1)/2; throws otherwise.
[[nodiscard]] int triangular_grid_d(int np);
/// Smallest triangular number >= np.
[[nodiscard]] int next_triangular(std::uint64_t np);

struct HopperPrediction {
  double t_comp = 0;  ///< seconds per iteration
  double t_comm = 0;
  [[nodiscard]] double t_iter() const noexcept { return t_comp + t_comm; }
  [[nodiscard]] double comm_fraction() const noexcept {
    return t_iter() > 0 ? t_comm / t_iter() : 0.0;
  }
  [[nodiscard]] double cpu_hours_per_iter(int np) const noexcept {
    return static_cast<double>(np) * t_iter() / 3600.0;
  }
};

class HopperModel {
 public:
  /// Least-squares calibration against hopper_reference().
  [[nodiscard]] static HopperModel calibrated();

  [[nodiscard]] HopperPrediction predict(double dimension, double nnz, int np) const;

  // Table I auxiliary models.
  [[nodiscard]] static double local_vector_bytes(double dimension, int np);
  [[nodiscard]] static double local_matrix_bytes(double nnz, int np);
  /// Minimum triangular processor count to fit the matrix in memory
  /// (~`local_budget` bytes of H per process).
  [[nodiscard]] static int min_processors(double nnz, double local_budget = 880e6);

  [[nodiscard]] double c_nnz() const noexcept { return c_nnz_; }
  [[nodiscard]] double c_row() const noexcept { return c_row_; }
  [[nodiscard]] double c_vol() const noexcept { return c_vol_; }
  [[nodiscard]] double c_sync() const noexcept { return c_sync_; }

  /// Bytes MFDn stores per non-zero of the half matrix (calibrated).
  static constexpr double kBytesPerNnz = 8.5;

 private:
  double c_nnz_ = 0, c_row_ = 0, c_vol_ = 0, c_sync_ = 0;
};

}  // namespace dooc::perfmodel
