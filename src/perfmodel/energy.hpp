// Energy-efficiency model — the study the paper proposes as future work
// (§VI-B): "a study where the energy-efficiency of alternative SSD-testbed
// configurations are compared against large-scale clusters like Hopper
// could be very interesting."
//
// The model charges node power over the run time:
//   * compute nodes draw active power while busy;
//   * DRAM draws refresh power for the whole allocation the whole time —
//     the paper's point that in-core runs "power up the entire DRAM
//     constantly" over thousands of nodes;
//   * SSDs are non-volatile: they draw power only while transferring;
//   * the testbed's separate I/O nodes must stay powered for the whole run
//     ("the separation ... prevents shutting off unused I/O nodes"),
//     whereas a node-local-SSD design (§VI-A) has no such tax.
//
// Power figures are c.2012 server-class defaults and are configurable; the
// model's output is a *ratio* between configurations, not a power bill.
#pragma once

namespace dooc::perfmodel {

struct PowerProfile {
  double compute_node_active_w = 350.0;  ///< Xeon X5550 node under load
  double compute_node_idle_w = 180.0;
  double dram_w_per_gb = 0.6;            ///< refresh + background
  double ssd_active_w = 20.0;            ///< Virident-class PCIe card, busy
  double ssd_idle_w = 8.0;
  double io_node_base_w = 250.0;         ///< testbed I/O node, always on
  double hopper_node_w = 420.0;          ///< XE6 dual-MagnyCours node (24 cores)
  double hopper_dram_gb = 32.0;
  int hopper_cores_per_node = 24;
};

struct EnergyBreakdown {
  double compute_kwh = 0.0;
  double dram_kwh = 0.0;
  double storage_kwh = 0.0;  ///< SSD cards + I/O-node base power
  [[nodiscard]] double total_kwh() const { return compute_kwh + dram_kwh + storage_kwh; }
};

/// Energy of an SSD-testbed run: `nodes` compute nodes busy for
/// `busy_fraction` of `seconds`, `io_nodes` dedicated I/O nodes with two
/// SSD cards each (the NERSC testbed), SSDs active for `ssd_busy_fraction`.
/// Set io_nodes = 0 and ssds_per_compute_node > 0 for the paper's proposed
/// node-local-SSD design.
[[nodiscard]] EnergyBreakdown testbed_energy(const PowerProfile& p, int nodes, double seconds,
                                             double busy_fraction, double ssd_busy_fraction,
                                             int io_nodes, int ssds_per_io_node = 2,
                                             int ssds_per_compute_node = 0,
                                             double dram_gb_per_node = 24.0);

/// Energy of an in-core Hopper run: np cores for `seconds`, full DRAM of
/// every allocated node powered for the duration.
[[nodiscard]] EnergyBreakdown hopper_energy(const PowerProfile& p, int np, double seconds);

}  // namespace dooc::perfmodel
