#include "perfmodel/energy.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dooc::perfmodel {

namespace {
constexpr double kSecondsPerHour = 3600.0;
double kwh(double watts, double seconds) { return watts * seconds / kSecondsPerHour / 1000.0; }
}  // namespace

EnergyBreakdown testbed_energy(const PowerProfile& p, int nodes, double seconds,
                               double busy_fraction, double ssd_busy_fraction, int io_nodes,
                               int ssds_per_io_node, int ssds_per_compute_node,
                               double dram_gb_per_node) {
  DOOC_REQUIRE(nodes > 0 && seconds >= 0, "degenerate energy query");
  DOOC_REQUIRE(busy_fraction >= 0 && busy_fraction <= 1, "busy fraction out of range");
  EnergyBreakdown e;
  const double node_w =
      p.compute_node_active_w * busy_fraction + p.compute_node_idle_w * (1.0 - busy_fraction);
  e.compute_kwh = kwh(node_w * nodes, seconds);
  e.dram_kwh = kwh(p.dram_w_per_gb * dram_gb_per_node * nodes, seconds);

  const double ssd_w = p.ssd_active_w * ssd_busy_fraction + p.ssd_idle_w * (1.0 - ssd_busy_fraction);
  const int io_ssds = io_nodes * ssds_per_io_node;
  const int local_ssds = nodes * ssds_per_compute_node;
  e.storage_kwh = kwh(static_cast<double>(io_ssds + local_ssds) * ssd_w, seconds) +
                  kwh(p.io_node_base_w * io_nodes, seconds);
  return e;
}

EnergyBreakdown hopper_energy(const PowerProfile& p, int np, double seconds) {
  DOOC_REQUIRE(np > 0 && seconds >= 0, "degenerate energy query");
  const double nodes = std::ceil(static_cast<double>(np) / p.hopper_cores_per_node);
  EnergyBreakdown e;
  e.compute_kwh = kwh(p.hopper_node_w * nodes, seconds);
  e.dram_kwh = kwh(p.dram_w_per_gb * p.hopper_dram_gb * nodes, seconds);
  e.storage_kwh = 0.0;  // the matrix lives in DRAM; no storage tier
  return e;
}

}  // namespace dooc::perfmodel
