#include "fault/fault_plan.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace dooc::fault {

namespace {

/// Mix (seed, node, kind, op-index) into one uniform draw. The op-index is
/// the only moving part, so the schedule is a pure function of the plan.
double draw(std::uint64_t seed, int node, bool is_read, std::uint64_t op) {
  SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(node + 1) * 0x9e3779b97f4a7c15ull) ^
                 (is_read ? 0x243f6a8885a308d3ull : 0x13198a2e03707344ull) ^
                 (op * 0xa0761d6478bd642full));
  return rng.next_double();
}

/// "5ms" / "250us" / "2s" / "1.5" (default ms) → seconds.
double parse_duration_s(const std::string& text) {
  std::size_t pos = 0;
  const double value = std::stod(text, &pos);
  const std::string unit = text.substr(pos);
  if (unit.empty() || unit == "ms") return value * 1e-3;
  if (unit == "ns") return value * 1e-9;
  if (unit == "us") return value * 1e-6;
  if (unit == "s") return value;
  throw InvalidArgument("DOOC_FAULTS: unknown duration unit '" + unit + "'");
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::ReadError: return "read-error";
    case FaultKind::WriteError: return "write-error";
    case FaultKind::ShortRead: return "short-read";
    case FaultKind::Latency: return "latency";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {
  DOOC_REQUIRE(config_.read_error_rate >= 0.0 && config_.read_error_rate <= 1.0 &&
                   config_.write_error_rate >= 0.0 && config_.write_error_rate <= 1.0 &&
                   config_.short_read_rate >= 0.0 && config_.short_read_rate <= 1.0 &&
                   config_.latency_rate >= 0.0 && config_.latency_rate <= 1.0,
               "fault rates must lie in [0, 1]");
}

bool FaultPlan::enabled() const noexcept {
  return config_.read_error_rate > 0.0 || config_.write_error_rate > 0.0 ||
         config_.short_read_rate > 0.0 || config_.latency_rate > 0.0 ||
         !config_.outages.empty();
}

FaultConfig FaultPlan::parse(const std::string& spec) {
  FaultConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("DOOC_FAULTS: expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    try {
      if (key == "seed") {
        cfg.seed = std::stoull(value);
      } else if (key == "read_error") {
        cfg.read_error_rate = std::stod(value);
      } else if (key == "write_error") {
        cfg.write_error_rate = std::stod(value);
      } else if (key == "short_read") {
        cfg.short_read_rate = std::stod(value);
      } else if (key == "latency") {
        // P:DUR — probability and spike duration.
        const std::size_t colon = value.find(':');
        if (colon == std::string::npos) {
          throw InvalidArgument("DOOC_FAULTS: latency wants P:DURATION, got '" + value + "'");
        }
        cfg.latency_rate = std::stod(value.substr(0, colon));
        cfg.latency_s = parse_duration_s(value.substr(colon + 1));
      } else if (key == "down") {
        // NODE@AFTER[+OPS]
        const std::size_t at = value.find('@');
        if (at == std::string::npos) {
          throw InvalidArgument("DOOC_FAULTS: down wants NODE@AFTER[+OPS], got '" + value + "'");
        }
        OutageSpec o;
        o.node = std::stoi(value.substr(0, at));
        const std::string rest = value.substr(at + 1);
        const std::size_t plus = rest.find('+');
        o.after_ops = std::stoull(rest.substr(0, plus));
        if (plus != std::string::npos) o.duration_ops = std::stoull(rest.substr(plus + 1));
        cfg.outages.push_back(o);
      } else if (key == "retries") {
        cfg.retry.max_attempts = std::stoi(value);
      } else if (key == "backoff") {
        // BASE:CAP durations.
        const std::size_t colon = value.find(':');
        if (colon == std::string::npos) {
          throw InvalidArgument("DOOC_FAULTS: backoff wants BASE:CAP, got '" + value + "'");
        }
        cfg.retry.base_backoff_s = parse_duration_s(value.substr(0, colon));
        cfg.retry.max_backoff_s = parse_duration_s(value.substr(colon + 1));
      } else if (key == "deadline") {
        cfg.retry.deadline_s = parse_duration_s(value);
      } else {
        throw InvalidArgument("DOOC_FAULTS: unknown key '" + key + "'");
      }
    } catch (const InvalidArgument&) {
      throw;
    } catch (const std::exception&) {
      throw InvalidArgument("DOOC_FAULTS: malformed value in '" + item + "'");
    }
  }
  return cfg;
}

std::shared_ptr<FaultPlan> FaultPlan::from_env() {
  const char* p = std::getenv("DOOC_FAULTS");
  if (p == nullptr || *p == '\0') return nullptr;
  return std::make_shared<FaultPlan>(parse(p));
}

FaultPlan::NodeCursor& FaultPlan::cursor(int node) {
  const auto idx = static_cast<std::size_t>(node < 0 ? 0 : node);
  std::lock_guard lock(nodes_mutex_);
  while (nodes_.size() <= idx) nodes_.push_back(std::make_unique<NodeCursor>());
  return *nodes_[idx];
}

const FaultPlan::NodeCursor* FaultPlan::cursor_if(int node) const {
  const auto idx = static_cast<std::size_t>(node < 0 ? 0 : node);
  std::lock_guard lock(nodes_mutex_);
  return idx < nodes_.size() ? nodes_[idx].get() : nullptr;
}

FaultDecision FaultPlan::decide(int node, bool is_read, std::uint64_t op) {
  FaultDecision d;
  const double u = draw(config_.seed, node, is_read, op);
  // One draw, carved into disjoint probability bands so at most one fault
  // fires per op and each band's schedule is independent of the others'
  // rates being zero or not.
  double edge = 0.0;
  if (is_read) {
    edge += config_.read_error_rate;
    if (config_.read_error_rate > 0.0 && u < edge) {
      d.action = FaultDecision::Action::Fail;
      injected_[static_cast<int>(FaultKind::ReadError)].fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    edge += config_.short_read_rate;
    if (config_.short_read_rate > 0.0 && u < edge) {
      d.action = FaultDecision::Action::ShortRead;
      injected_[static_cast<int>(FaultKind::ShortRead)].fetch_add(1, std::memory_order_relaxed);
      return d;
    }
  } else {
    edge += config_.write_error_rate;
    if (config_.write_error_rate > 0.0 && u < edge) {
      d.action = FaultDecision::Action::Fail;
      injected_[static_cast<int>(FaultKind::WriteError)].fetch_add(1, std::memory_order_relaxed);
      return d;
    }
  }
  edge += config_.latency_rate;
  if (config_.latency_rate > 0.0 && u < edge) {
    d.action = FaultDecision::Action::Delay;
    d.delay_s = config_.latency_s;
    injected_[static_cast<int>(FaultKind::Latency)].fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

FaultDecision FaultPlan::next_read(int node) {
  if (!enabled()) return {};
  const std::uint64_t op = cursor(node).ops.fetch_add(1, std::memory_order_relaxed);
  return decide(node, /*is_read=*/true, op);
}

FaultDecision FaultPlan::next_write(int node) {
  if (!enabled()) return {};
  const std::uint64_t op = cursor(node).ops.fetch_add(1, std::memory_order_relaxed);
  return decide(node, /*is_read=*/false, op);
}

bool FaultPlan::node_down(int node) const {
  const NodeCursor* c = cursor_if(node);
  if (c != nullptr && c->forced_down.load(std::memory_order_relaxed)) return true;
  const std::uint64_t ops = c != nullptr ? c->ops.load(std::memory_order_relaxed) : 0;
  for (const OutageSpec& o : config_.outages) {
    if (o.node != node) continue;
    if (ops < o.after_ops) continue;
    if (o.duration_ops == UINT64_MAX || ops < o.after_ops + o.duration_ops) return true;
  }
  return false;
}

void FaultPlan::mark_down(int node) {
  cursor(node).forced_down.store(true, std::memory_order_relaxed);
  obs::Metrics::instance().counter("fault.node_down", node).add();
}

void FaultPlan::mark_up(int node) {
  cursor(node).forced_down.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultPlan::ops_seen(int node) const {
  const NodeCursor* c = cursor_if(node);
  return c != nullptr ? c->ops.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultPlan::injected(FaultKind k) const {
  return injected_[static_cast<int>(k)].load(std::memory_order_relaxed);
}

}  // namespace dooc::fault
