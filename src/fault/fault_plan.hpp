// dooc::fault — deterministic fault injection for the storage / execution
// stack.
//
// A FaultPlan is a seeded schedule of storage-tier misbehaviour: transient
// read/write errors, latency spikes, short reads, and whole-storage-node
// outages. Decisions are pure functions of (seed, node, op-kind, op-index):
// the i-th read issued against node n always draws the same verdict for the
// same seed, regardless of thread interleaving — which is what makes
// recovery policies unit-testable (same seed ⇒ same injection schedule) and
// lets the DES replay the exact schedule under virtual time.
//
// The plan is shared by every storage node of a cluster (it is cluster
// state, not node state) and is configured either programmatically or from
// the DOOC_FAULTS environment variable:
//
//   DOOC_FAULTS="seed=7,read_error=0.05,write_error=0.01,short_read=0.02,
//                latency=0.1:5ms,down=1@40,retries=4,backoff=1ms:50ms"
//
//   seed=N            injection schedule seed (default 1)
//   read_error=P      probability an I/O-filter read fails transiently
//   write_error=P     probability an I/O-filter write fails transiently
//   short_read=P      probability a read returns fewer bytes than asked
//   latency=P:DUR     probability of a latency spike, and its duration
//                     (suffix ns/us/ms/s; default ms)
//   down=NODE@AFTER[+OPS]  node NODE goes down after its AFTER-th storage
//                     op, for OPS further ops (omit +OPS for a permanent
//                     outage); repeatable
//   retries=N, backoff=BASE:CAP, deadline=DUR  override RetryPolicy
//
// Injection sites (all at the io_worker / storage_node boundary):
//  * IoWorkerPool::do_read / do_write consult next_read / next_write;
//  * StorageNode::fetch_block answers "don't have it" while its node is
//    down (peers see an unreachable node and fail over);
//  * SimEngine draws from the same plan when deciding whether a modeled
//    GPFS/IB flow fails.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fault/retry_policy.hpp"

namespace dooc::fault {

enum class FaultKind : std::uint8_t { ReadError, WriteError, ShortRead, Latency };

[[nodiscard]] const char* to_string(FaultKind k);

/// Verdict for one storage operation.
struct FaultDecision {
  enum class Action : std::uint8_t {
    None,       ///< proceed normally
    Fail,       ///< fail the op with a transient I/O error
    ShortRead,  ///< deliver fewer bytes than requested (reads only)
    Delay,      ///< proceed, but only after `delay_s`
  };
  Action action = Action::None;
  double delay_s = 0.0;

  [[nodiscard]] bool injects() const noexcept { return action != Action::None; }
};

/// One scheduled node outage, in units of that node's storage-op count.
struct OutageSpec {
  int node = -1;
  std::uint64_t after_ops = 0;  ///< ops the node serves before going down
  /// Ops the outage lasts; UINT64_MAX = permanent.
  std::uint64_t duration_ops = UINT64_MAX;
};

struct FaultConfig {
  std::uint64_t seed = 1;
  double read_error_rate = 0.0;
  double write_error_rate = 0.0;
  double short_read_rate = 0.0;
  double latency_rate = 0.0;
  double latency_s = 0.0;
  std::vector<OutageSpec> outages;
  RetryPolicy retry;  ///< policy the storage layer should pair with the plan
};

class FaultPlan {
 public:
  FaultPlan() = default;  ///< inert plan: never injects, no node is down
  explicit FaultPlan(FaultConfig config);

  /// Parse a DOOC_FAULTS-style spec into a config (the plan itself holds
  /// atomics and cannot be moved). Throws dooc::InvalidArgument on a
  /// malformed spec.
  static FaultConfig parse(const std::string& spec);
  /// Plan from the DOOC_FAULTS environment variable; nullptr when unset or
  /// empty (the common, zero-overhead case).
  static std::shared_ptr<FaultPlan> from_env();

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept;

  /// Draw the verdict for the next read / write issued against `node`.
  /// Advances that node's deterministic op counter.
  FaultDecision next_read(int node);
  FaultDecision next_write(int node);

  /// True while `node` is inside a scheduled or programmatic outage window.
  /// Does not advance any counter.
  [[nodiscard]] bool node_down(int node) const;

  /// Programmatic outage control (tests, chaos drivers). mark_down(node)
  /// overrides the schedule until mark_up(node).
  void mark_down(int node);
  void mark_up(int node);

  /// Ops served so far per node (the clock outage schedules run on).
  [[nodiscard]] std::uint64_t ops_seen(int node) const;

  /// Total injections handed out, per kind (cheap relaxed counters).
  [[nodiscard]] std::uint64_t injected(FaultKind k) const;

 private:
  struct NodeCursor {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<bool> forced_down{false};
  };

  FaultDecision decide(int node, bool is_read, std::uint64_t op_index);
  NodeCursor& cursor(int node);
  [[nodiscard]] const NodeCursor* cursor_if(int node) const;

  FaultConfig config_;
  /// Grown on first touch per node; pointers stay stable (deque-like
  /// ownership through unique_ptr) so cursors can be atomic.
  mutable std::mutex nodes_mutex_;
  std::vector<std::unique_ptr<NodeCursor>> nodes_;
  std::atomic<std::uint64_t> injected_[4] = {};
};

}  // namespace dooc::fault
