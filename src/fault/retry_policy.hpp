// Retry policy for transient storage failures: capped exponential backoff
// plus a per-request deadline.
//
// The policy itself is plain data and the backoff computation is a pure
// function, so tests drive it with a fake clock and assert the exact delay
// sequence. RetryBudget is the per-request cursor the I/O and fetch paths
// keep while a request is being retried; it takes `now` as a parameter
// instead of reading a clock so the same code runs under wall time (engine)
// and virtual time (DES, fake-clock tests).
#pragma once

#include <algorithm>
#include <cstdint>

namespace dooc::fault {

struct RetryPolicy {
  /// Total tries per request, including the first (1 = no retries).
  int max_attempts = 4;
  double base_backoff_s = 0.001;  ///< delay before the first retry
  double max_backoff_s = 0.100;   ///< cap for the exponential growth
  /// Give up when the request has been in flight this long, even with
  /// attempts remaining (0 = no deadline).
  double deadline_s = 10.0;
};

/// Backoff before retry number `retry` (1-based): base * 2^(retry-1),
/// capped. retry <= 0 yields 0.
[[nodiscard]] inline double backoff_delay_s(const RetryPolicy& p, int retry) noexcept {
  if (retry <= 0) return 0.0;
  double d = p.base_backoff_s;
  for (int i = 1; i < retry && d < p.max_backoff_s; ++i) d *= 2.0;
  return std::min(d, p.max_backoff_s);
}

/// Per-request retry cursor: counts attempts and enforces the deadline.
class RetryBudget {
 public:
  RetryBudget() = default;
  RetryBudget(RetryPolicy policy, double start_s) : policy_(policy), start_s_(start_s) {}

  /// Record a failed attempt at time `now_s`. Returns true when the policy
  /// allows another try; the caller should then wait next_backoff_s().
  [[nodiscard]] bool try_again(double now_s) noexcept {
    ++failures_;
    if (failures_ >= policy_.max_attempts) return false;
    if (policy_.deadline_s > 0.0 && now_s - start_s_ >= policy_.deadline_s) return false;
    return true;
  }

  /// Backoff to wait before the attempt after the most recent failure,
  /// clipped so the wait never overruns the deadline.
  [[nodiscard]] double next_backoff_s(double now_s) const noexcept {
    double d = backoff_delay_s(policy_, failures_);
    if (policy_.deadline_s > 0.0) {
      d = std::min(d, std::max(0.0, start_s_ + policy_.deadline_s - now_s));
    }
    return d;
  }

  [[nodiscard]] int failures() const noexcept { return failures_; }
  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  RetryPolicy policy_;
  double start_s_ = 0.0;
  int failures_ = 0;
};

}  // namespace dooc::fault
