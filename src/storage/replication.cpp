#include "storage/replication.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace dooc::storage::replication {

std::uint32_t HeatTracker::decayed(const Entry& e, std::uint64_t now_epoch) {
  const std::uint64_t elapsed = now_epoch - e.epoch;
  if (elapsed >= 32) return 0;
  return e.count >> elapsed;
}

std::uint32_t HeatTracker::record(const BlockKey& key) {
  const std::uint64_t epoch = accesses_ / decay_;
  ++accesses_;
  Entry& e = entries_[key];
  e.count = decayed(e, epoch);
  e.epoch = epoch;
  if (e.count < std::numeric_limits<std::uint32_t>::max()) ++e.count;
  return e.count;
}

std::uint32_t HeatTracker::peek(const BlockKey& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return decayed(it->second, accesses_ / decay_);
}

void HeatTracker::forget_array(const ArrayName& name) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.array == name) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dooc::storage::replication

namespace dooc::storage {

ReplicationConfig ReplicationConfig::parse(const std::string& spec) {
  ReplicationConfig cfg;
  if (spec.empty()) return cfg;
  const auto parse_onoff = [](const std::string& v) -> std::optional<bool> {
    if (v == "on" || v == "1" || v == "true") return true;
    if (v == "off" || v == "0" || v == "false") return false;
    return std::nullopt;
  };
  const auto parse_int = [](const std::string& key, const std::string& val, long lo, long hi) {
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(val.c_str(), &end, 10);
    if (end == val.c_str() || *end != '\0' || errno == ERANGE || n < lo || n > hi) {
      throw InvalidArgument("DOOC_REPLICATION: " + key + " wants an int in [" +
                            std::to_string(lo) + "," + std::to_string(hi) + "], got '" + val +
                            "'");
    }
    return n;
  };
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string tok =
        spec.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (tok.empty()) continue;
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      const auto mode = parse_onoff(tok);
      if (!first || !mode) {
        throw InvalidArgument("DOOC_REPLICATION: unknown token '" + tok +
                              "' (want on|off, hot_threshold=, max_replicas=, decay=)");
      }
      cfg.enabled = *mode;
    } else {
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "mode") {
        const auto mode = parse_onoff(val);
        if (!mode) throw InvalidArgument("DOOC_REPLICATION: bad mode '" + val + "'");
        cfg.enabled = *mode;
      } else if (key == "hot_threshold") {
        cfg.hot_threshold = static_cast<std::uint32_t>(parse_int(key, val, 1, 1 << 20));
      } else if (key == "max_replicas") {
        cfg.max_replicas = static_cast<int>(parse_int(key, val, 1, 4096));
      } else if (key == "decay") {
        cfg.decay = static_cast<std::uint32_t>(parse_int(key, val, 1, 1 << 30));
      } else {
        throw InvalidArgument("DOOC_REPLICATION: unknown key '" + key + "'");
      }
    }
    first = false;
  }
  return cfg;
}

ReplicationConfig ReplicationConfig::from_env() {
  const char* env = std::getenv("DOOC_REPLICATION");
  return env != nullptr ? parse(env) : ReplicationConfig{};
}

}  // namespace dooc::storage

namespace dooc::storage::replication {

namespace {
/// splitmix64 finalizer — full avalanche, so nearby ids decorrelate.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::vector<int> rank_holders(const BlockKey& key, int requester, std::vector<int> holders) {
  const std::uint64_t base =
      mix64(std::hash<std::string>()(key.array) ^ (key.block * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(requester) * 0xc2b2ae3d27d4eb4full));
  holders.erase(std::remove(holders.begin(), holders.end(), requester), holders.end());
  std::sort(holders.begin(), holders.end(), [base](int a, int b) {
    const std::uint64_t sa = mix64(base ^ static_cast<std::uint64_t>(a));
    const std::uint64_t sb = mix64(base ^ static_cast<std::uint64_t>(b));
    return sa != sb ? sa < sb : a < b;
  });
  return holders;
}

}  // namespace dooc::storage::replication
