// Per-node completion queue: the channel through which finished
// asynchronous storage operations reach the execution backend.
//
// Producers are fetcher / I/O threads (and the request path itself for
// already-resident data); the consumer is whoever registered the notifier —
// one engine run at a time. Making I/O *completion* the scheduling signal
// is what turns the execution core from poll-and-block into event-driven
// (paper §III-C: the local scheduler keeps ready tasks whose data are in
// memory; here the storage tells it the moment that becomes true).
//
// Lifecycle contract (engine shutdown with requests still in flight):
//  * the consumer calls open(notifier) before issuing async requests and
//    close() once it stops consuming;
//  * a push while the queue is closed is dropped on the spot — the
//    payload's destructor runs immediately, releasing any pins — so
//    producers may safely complete after the consumer has unwound;
//  * the notifier runs after every successful push, under a dedicated
//    notify lock that close() also takes: once close() returns, no
//    notifier invocation is running or will ever run again.
//
// Lock ordering: the data lock is released before the notify lock is
// taken, and a payload dropped by push()/close() may acquire the storage
// node's mutex (handle release) under the data lock — so the data lock
// orders *before* StorageNode::mutex_ and neither lock is ever taken with
// StorageNode::mutex_ held.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace dooc::storage {

template <typename T>
class CompletionQueue {
 public:
  using Notifier = std::function<void()>;

  /// Start accepting completions; `notifier` fires after each push.
  void open(Notifier notifier) {
    std::scoped_lock nl(notify_mutex_);
    std::scoped_lock dl(mutex_);
    open_ = true;
    notifier_ = std::move(notifier);
  }

  /// Stop accepting completions and drop whatever is queued. After this
  /// returns the notifier will never run again.
  void close() {
    {
      std::scoped_lock nl(notify_mutex_);
      notifier_ = nullptr;
    }
    std::deque<T> drop;  // destructs after the lock below is released
    std::scoped_lock dl(mutex_);
    open_ = false;
    drop.swap(items_);
  }

  /// Deliver one completion (dropped immediately if the queue is closed).
  void push(T item) {
    {
      std::scoped_lock dl(mutex_);
      if (!open_) return;  // consumer gone: release the payload right here
      items_.push_back(std::move(item));
    }
    std::scoped_lock nl(notify_mutex_);
    if (notifier_) notifier_();
  }

  /// Take the oldest completion; false when the queue is empty.
  bool pop(T& out) {
    std::scoped_lock dl(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  [[nodiscard]] std::size_t depth() const {
    std::scoped_lock dl(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::mutex notify_mutex_;
  std::deque<T> items_;
  bool open_ = false;
  Notifier notifier_;
};

}  // namespace dooc::storage
