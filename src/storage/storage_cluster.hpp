// Convenience owner of the whole distributed storage layer: one catalog
// shard and one storage node per virtual node, wired peer-to-peer
// ("complete peer-to-peer connections between them" — paper Fig. 2).
#pragma once

#include <memory>
#include <vector>

#include "dataflow/transport.hpp"
#include "storage/storage_node.hpp"

namespace dooc::storage {

class StorageCluster {
 public:
  /// `base` is cloned per node (each gets its own scratch subdirectory and
  /// a derived RNG seed).
  StorageCluster(int num_nodes, const StorageConfig& base, df::TransportStats* transport = nullptr);
  ~StorageCluster();

  StorageCluster(const StorageCluster&) = delete;
  StorageCluster& operator=(const StorageCluster&) = delete;

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] StorageNode& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] DistributedCatalog& catalog() noexcept { return *catalog_; }
  [[nodiscard]] df::TransportStats* transport() noexcept { return transport_; }
  /// The cluster's shared fault-injection plan: the one from the base
  /// config, else DOOC_FAULTS, else null (faults off). With a plan present
  /// the engine runs its fault-recovery policy instead of aborting on the
  /// first storage error.
  [[nodiscard]] const std::shared_ptr<fault::FaultPlan>& fault_plan() const noexcept {
    return fault_plan_;
  }
  /// The cluster's resolved codec policy: the one from the base config,
  /// else DOOC_CODEC, else off (decode of frames always works regardless).
  [[nodiscard]] const spmv::codec::CodecConfig& codec() const noexcept { return codec_; }
  /// The cluster's resolved replication policy: the one from the base
  /// config, else DOOC_REPLICATION, else off. Resolved once so the heat
  /// thresholds, replica cap and decay agree on every node.
  [[nodiscard]] const ReplicationConfig& replication() const noexcept { return replication_; }

  /// Register / retire a tenant (job) on every node's fair-share arbiter.
  void set_tenant(TenantId tenant, double weight, int priority = 0);
  void retire_tenant(TenantId tenant);

  /// Aggregate statistics over all nodes.
  [[nodiscard]] StorageStats total_stats();
  [[nodiscard]] std::uint64_t total_resident_bytes();

  /// Lost-block recovery: purge the block's in-memory state on every node
  /// and wipe its catalog entry so a resurrected producer may rewrite it.
  /// Returns false (and changes nothing durable) when some node still has
  /// the block busy — the data is not actually lost then.
  bool forget_block(const BlockKey& key);

 private:
  std::vector<std::unique_ptr<CatalogShard>> shards_;
  std::unique_ptr<DistributedCatalog> catalog_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::shared_ptr<fault::FaultPlan> fault_plan_;
  spmv::codec::CodecConfig codec_;
  ReplicationConfig replication_;
  df::TransportStats* transport_ = nullptr;
};

}  // namespace dooc::storage
