// Convenience owner of the whole distributed storage layer: one catalog
// shard and one storage node per virtual node, wired peer-to-peer
// ("complete peer-to-peer connections between them" — paper Fig. 2).
#pragma once

#include <memory>
#include <vector>

#include "dataflow/transport.hpp"
#include "storage/storage_node.hpp"

namespace dooc::storage {

class StorageCluster {
 public:
  /// `base` is cloned per node (each gets its own scratch subdirectory and
  /// a derived RNG seed).
  StorageCluster(int num_nodes, const StorageConfig& base, df::TransportStats* transport = nullptr);
  ~StorageCluster();

  StorageCluster(const StorageCluster&) = delete;
  StorageCluster& operator=(const StorageCluster&) = delete;

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] StorageNode& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] DistributedCatalog& catalog() noexcept { return *catalog_; }
  [[nodiscard]] df::TransportStats* transport() noexcept { return transport_; }

  /// Aggregate statistics over all nodes.
  [[nodiscard]] StorageStats total_stats();
  [[nodiscard]] std::uint64_t total_resident_bytes();

 private:
  std::vector<std::unique_ptr<CatalogShard>> shards_;
  std::unique_ptr<DistributedCatalog> catalog_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  df::TransportStats* transport_ = nullptr;
};

}  // namespace dooc::storage
