#include "storage/storage_filter.hpp"

namespace dooc::storage {

namespace {

DataBuffer encode_header(StorageOp op, const ArrayName& name) {
  BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(op));
  w.put_string(name);
  return w.take();
}

}  // namespace

DataBuffer encode_create(const ArrayName& name, std::uint64_t size, std::uint64_t block_size) {
  BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(StorageOp::kCreateArray));
  w.put_string(name);
  w.put<std::uint64_t>(size);
  w.put<std::uint64_t>(block_size);
  return w.take();
}

DataBuffer encode_write(const ArrayName& name, std::uint64_t offset,
                        std::span<const std::byte> payload) {
  BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(StorageOp::kWriteSeal));
  w.put_string(name);
  w.put<std::uint64_t>(offset);
  w.put<std::uint64_t>(payload.size());
  w.put_raw(payload.data(), payload.size());
  return w.take();
}

DataBuffer encode_read(const ArrayName& name, std::uint64_t offset, std::uint64_t length) {
  BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(StorageOp::kRead));
  w.put_string(name);
  w.put<std::uint64_t>(offset);
  w.put<std::uint64_t>(length);
  return w.take();
}

DataBuffer encode_prefetch(const ArrayName& name, std::uint64_t offset, std::uint64_t length) {
  BinaryWriter w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(StorageOp::kPrefetch));
  w.put_string(name);
  w.put<std::uint64_t>(offset);
  w.put<std::uint64_t>(length);
  return w.take();
}

DataBuffer encode_delete(const ArrayName& name) {
  return encode_header(StorageOp::kDeleteArray, name);
}

StorageReply decode_reply(const df::Message& message) {
  StorageReply reply;
  BinaryReader r(message.payload);
  reply.status = static_cast<StorageStatus>(r.get<std::uint32_t>());
  if (reply.status != StorageStatus::kOk) {
    reply.error = r.get_string();
    return reply;
  }
  const auto n = r.get<std::uint64_t>();
  DataBuffer data(n);
  if (n != 0) r.get_raw(data.data(), n);
  reply.data = std::move(data);
  return reply;
}

df::Message StorageServiceFilter::handle(const df::Message& request) {
  BinaryWriter reply;
  try {
    BinaryReader r(request.payload);
    const auto op = static_cast<StorageOp>(r.get<std::uint32_t>());
    const std::string name = r.get_string();
    switch (op) {
      case StorageOp::kCreateArray: {
        const auto size = r.get<std::uint64_t>();
        const auto block = r.get<std::uint64_t>();
        node_->create_array(name, size, block);
        reply.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kOk));
        reply.put<std::uint64_t>(0);
        break;
      }
      case StorageOp::kWriteSeal: {
        const auto offset = r.get<std::uint64_t>();
        const auto length = r.get<std::uint64_t>();
        auto handle = node_->request_write({name, offset, length}).get();
        r.get_raw(handle.bytes().data(), length);
        handle.release();
        reply.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kOk));
        reply.put<std::uint64_t>(0);
        break;
      }
      case StorageOp::kRead: {
        const auto offset = r.get<std::uint64_t>();
        const auto length = r.get<std::uint64_t>();
        auto handle = node_->request_read({name, offset, length}).get();
        reply.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kOk));
        reply.put<std::uint64_t>(length);
        reply.put_raw(handle.bytes().data(), length);
        break;
      }
      case StorageOp::kPrefetch: {
        const auto offset = r.get<std::uint64_t>();
        const auto length = r.get<std::uint64_t>();
        node_->prefetch({name, offset, length});
        reply.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kOk));
        reply.put<std::uint64_t>(0);
        break;
      }
      case StorageOp::kDeleteArray: {
        node_->delete_array(name);
        reply.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kOk));
        reply.put<std::uint64_t>(0);
        break;
      }
      default:
        throw InvalidArgument("unknown storage op");
    }
  } catch (const std::exception& e) {
    BinaryWriter error;
    error.put<std::uint32_t>(static_cast<std::uint32_t>(StorageStatus::kError));
    error.put_string(e.what());
    return df::Message(error.take(), request.tag);
  }
  return df::Message(reply.take(), request.tag);
}

void StorageServiceFilter::run(df::FilterContext& ctx) {
  auto& in = ctx.input("requests");
  auto& out = ctx.output("responses");
  while (auto request = in.receive()) {
    out.send(handle(*request));
  }
}

}  // namespace dooc::storage
