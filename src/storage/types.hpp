// Common vocabulary of the DOoC distributed storage layer.
//
// The storage subsystem (paper §III-B) exposes data as named, immutable,
// one-dimensional byte arrays structured in blocks. Filters request *read*
// or *write* access to an *interval* of an array; an interval must lie
// within a single block ("if one needs to access data that span across
// multiple blocks, it is required to use one interval per block").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/fair_share.hpp"
#include "spmv/codec.hpp"

namespace dooc::fault {
class FaultPlan;
}  // namespace dooc::fault

namespace dooc::storage {

using ArrayName = std::string;

/// Identifies one block of one array.
struct BlockKey {
  ArrayName array;
  std::uint64_t block = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
  friend auto operator<=>(const BlockKey&, const BlockKey&) = default;
};

/// A byte range of an array. Must not straddle a block boundary.
struct Interval {
  ArrayName array;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  [[nodiscard]] std::uint64_t end() const noexcept { return offset + length; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// How a node finds data it does not hold (paper: the global mapping is
/// partitioned, not replicated; a missing interval is asked from another
/// node).
enum class LookupProtocol {
  /// Ask the deterministic authority node, hash(array) mod N.
  HashOwner,
  /// Ask randomly selected peers until one knows, tracking visited nodes —
  /// the protocol described in the paper.
  RandomWalk,
};

/// Which reclaimable resident block to evict first when the memory budget
/// is exceeded. The paper uses LRU; Fifo/Random exist for the
/// eviction-policy ablation bench. TwoQ is the frequency-aware policy the
/// replication layer runs: blocks start probationary and are evicted
/// LRU-first; re-referenced or catalog-hot blocks sit in a protected
/// segment that only yields a victim when no probationary block is left —
/// so a one-pass scan cannot thrash the hot set.
enum class EvictionPolicy { Lru, Fifo, Random, TwoQ };

/// Policy knobs for hot-block dynamic replication (see
/// storage/replication.hpp for the mechanism: decayed frequency counters
/// at the authority shard, rendezvous replica selection, 2Q retention).
struct ReplicationConfig {
  bool enabled = false;
  /// Decayed accesses at the authority before a block counts as hot.
  std::uint32_t hot_threshold = 4;
  /// Cap on catalog-listed in-memory copies of a *durable* block. Fetches
  /// past the cap install transient (evict-first, unlisted). Soft under
  /// concurrency: racing fetchers may briefly overshoot by one.
  int max_replicas = 3;
  /// Heat half-life in recorded accesses (see replication::HeatTracker).
  std::uint32_t decay = 64;
  /// Local 2Q promotion point: cache hits after install before a block
  /// moves from the probationary to the protected segment. Not part of the
  /// env grammar — a policy constant, overridable programmatically.
  std::uint32_t promote_hits = 1;

  /// `DOOC_REPLICATION=on,hot_threshold=4,max_replicas=3,decay=64`.
  /// A bare leading `on`/`off` token sets `enabled`; everything else is
  /// `key=value`. Throws InvalidArgument on unknown keys or out-of-range
  /// values (hostile input must fail loudly, not half-configure).
  static ReplicationConfig parse(const std::string& spec);
  /// Parse $DOOC_REPLICATION, or all-defaults (off) when unset.
  static ReplicationConfig from_env();
};

struct StorageConfig {
  /// Root scratch directory; each node uses `<scratch_root>/node<i>/`.
  std::string scratch_root;
  /// Per-node DRAM budget for resident blocks, in bytes.
  std::uint64_t memory_budget = 256ull << 20;
  /// Default block size for arrays created without an explicit one and for
  /// files discovered by the startup scan.
  std::uint64_t default_block_size = 1ull << 20;
  /// Number of asynchronous I/O filters per node ("as many I/O filters as
  /// is necessary to efficiently use the parallelism of the I/O subsystem").
  int io_workers = 1;
  EvictionPolicy eviction = EvictionPolicy::Lru;
  LookupProtocol lookup = LookupProtocol::HashOwner;
  /// Optional read-bandwidth throttle (bytes/s, 0 = off). Lets local
  /// experiments emulate a slow device so I/O/compute overlap is visible.
  double throttle_read_bw = 0.0;
  /// Bound on the bytes of block loads/fetches in flight at once (0 = no
  /// bound). Demand reads and prefetches share this budget: excess fetches
  /// queue up (demand ahead of prefetch) and start as in-flight loads land,
  /// so an eager prefetch window cannot flood memory or the I/O filters.
  /// A single block larger than the budget is still allowed to fly alone.
  std::uint64_t max_inflight_load_bytes = 0;
  /// Fair-share arbitration of max_inflight_load_bytes across tenants
  /// (jobs): WDRR quantum, per-tenant share cap, aging override. The
  /// budget_bytes field is ignored — max_inflight_load_bytes is the
  /// budget. With a single tenant the arbitration degenerates to the
  /// legacy FIFO deferral exactly.
  FairShareConfig fair_share;
  /// Seed for the random-walk lookup and the Random eviction policy.
  std::uint64_t seed = 0x5eed;
  /// Shared fault-injection plan (cluster state — every node of a cluster
  /// points at the same plan). Null = no injection, no retries: the I/O
  /// filters surface the first error, exactly the pre-fault behaviour.
  /// StorageCluster fills this from DOOC_FAULTS when left null.
  std::shared_ptr<fault::FaultPlan> fault_plan;
  /// Block codec policy: per-block compression of matrix payloads on the
  /// durable/wire path, O_DIRECT block reads, and read-ahead depth.
  /// Programmatic config wins; nullopt resolves from DOOC_CODEC at node
  /// construction (mirrors fault_plan). Decoding of codec frames is always
  /// on regardless of mode, so mixed-configuration clusters interoperate.
  std::optional<spmv::codec::CodecConfig> codec;
  /// Hot-block dynamic replication policy. Programmatic config wins;
  /// nullopt resolves from DOOC_REPLICATION (mirrors fault_plan/codec —
  /// StorageCluster resolves once so every node agrees). When replication
  /// is enabled and `eviction` was left at the Lru default, the node
  /// upgrades itself to TwoQ so replicas survive one-pass scans.
  std::optional<ReplicationConfig> replication;
};

/// Monotonic counters kept by each storage node. All cheap relaxed atomics.
struct StorageStats {
  std::uint64_t disk_reads = 0;        ///< block loads from the scratch file
  std::uint64_t disk_read_bytes = 0;
  std::uint64_t disk_writes = 0;       ///< block stores to the scratch file
  std::uint64_t disk_write_bytes = 0;
  std::uint64_t remote_fetches = 0;    ///< blocks fetched from a peer node
  std::uint64_t remote_fetch_bytes = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t lookup_hops = 0;       ///< peer queries issued to locate data
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t prefetch_requests = 0;
  std::uint64_t decoded_blocks = 0;    ///< codec frames decoded on the fetch path
  std::uint64_t decoded_bytes = 0;     ///< raw bytes those decodes produced
  std::uint64_t replica_hits = 0;      ///< fetches served from a peer's in-memory replica
  std::uint64_t replica_misses = 0;    ///< hot-block fetches that still had to hit disk
  std::uint64_t replica_promotions = 0;  ///< blocks that crossed the hot threshold here
  std::uint64_t replica_bypass = 0;    ///< at-cap installs kept transient (unlisted)
  double disk_read_seconds = 0.0;      ///< time the I/O filters spent reading
  double disk_write_seconds = 0.0;
  double decode_seconds = 0.0;         ///< fetcher-thread time spent decoding
};

}  // namespace dooc::storage

template <>
struct std::hash<dooc::storage::BlockKey> {
  std::size_t operator()(const dooc::storage::BlockKey& k) const noexcept {
    return std::hash<std::string>()(k.array) * 1315423911u ^ std::hash<std::uint64_t>()(k.block);
  }
};
