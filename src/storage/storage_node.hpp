// One node's storage filter (paper §III-B).
//
// Responsibilities:
//  * serve read/write interval requests on immutable block-structured arrays
//    asynchronously (futures resolve when data is resident and sealed);
//  * keep a scratch directory as the node's out-of-core backing store,
//    loading blocks implicitly on miss and writing them only on explicit
//    flush requests, through asynchronous I/O filters (IoWorkerPool);
//  * account resident bytes against a memory budget and reclaim unused,
//    re-obtainable blocks (LRU by default);
//  * locate data it does not hold via the partitioned catalog (hash-owner
//    or random-walk protocol) and fetch sealed blocks from peer nodes,
//    counting the transfer as network traffic.
//
// Immutability contract: a block is written at most once (overlapping write
// intervals throw ImmutabilityViolation), becomes *sealed* when its last
// write handle is released, and is only readable once sealed. This is what
// lets DOoC skip coherency protocols entirely.
//
// Locking discipline: mutex_ orders before catalog-shard locks and before
// peer mutexes. Peer RPCs and shard methods that fire callbacks
// (note_holder / note_durable / await_block) are never called while holding
// mutex_; fetch work runs on dedicated fetcher threads that hold no locks
// while touching peers or disk.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/fair_share.hpp"

#include "common/buffer.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/transport.hpp"
#include "obs/metrics.hpp"
#include "storage/catalog.hpp"
#include "storage/completion_queue.hpp"
#include "storage/io_worker.hpp"
#include "storage/types.hpp"

namespace dooc::storage {

class StorageNode;
class ReadHandle;

/// Callback flavour of the read API: fires exactly once with either a valid
/// handle or the error that killed the load.
using ReadCallback = std::function<void(ReadHandle, std::exception_ptr)>;

namespace detail {

enum class BlockState { Loading, Writing, Resident };
struct Block;

}  // namespace detail

/// RAII read pin on an interval. The storage guarantees the bytes stay
/// resident until release() (paper: "for read operations, the storage
/// subsystem guarantees that the data are available until the interval is
/// released").
class ReadHandle {
 public:
  ReadHandle() = default;
  ReadHandle(ReadHandle&&) noexcept;
  ReadHandle& operator=(ReadHandle&&) noexcept;
  ReadHandle(const ReadHandle&) = delete;
  ReadHandle& operator=(const ReadHandle&) = delete;
  ~ReadHandle();

  [[nodiscard]] std::span<const std::byte> bytes() const;
  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    auto b = bytes();
    return {reinterpret_cast<const T*>(b.data()), b.size() / sizeof(T)};
  }
  [[nodiscard]] const Interval& interval() const noexcept { return interval_; }
  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  void release();

 private:
  friend class StorageNode;
  ReadHandle(StorageNode* node, std::shared_ptr<detail::Block> block, Interval iv)
      : node_(node), block_(std::move(block)), interval_(std::move(iv)) {}

  StorageNode* node_ = nullptr;
  std::shared_ptr<detail::Block> block_;
  Interval interval_;
};

/// RAII write pin on an interval of an unwritten block. Releasing the last
/// write handle of a block seals it, making it visible to readers.
class WriteHandle {
 public:
  WriteHandle() = default;
  WriteHandle(WriteHandle&&) noexcept;
  WriteHandle& operator=(WriteHandle&&) noexcept;
  WriteHandle(const WriteHandle&) = delete;
  WriteHandle& operator=(const WriteHandle&) = delete;
  ~WriteHandle();

  [[nodiscard]] std::span<std::byte> bytes();
  template <typename T>
  [[nodiscard]] std::span<T> as() {
    auto b = bytes();
    return {reinterpret_cast<T*>(b.data()), b.size() / sizeof(T)};
  }
  [[nodiscard]] const Interval& interval() const noexcept { return interval_; }
  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  void release();

 private:
  friend class StorageNode;
  WriteHandle(StorageNode* node, std::shared_ptr<detail::Block> block, Interval iv)
      : node_(node), block_(std::move(block)), interval_(std::move(iv)) {}

  StorageNode* node_ = nullptr;
  std::shared_ptr<detail::Block> block_;
  Interval interval_;
};

namespace detail {

/// One registered reader of a not-yet-available block, remembering how the
/// result should be delivered: a promise (future API), a callback, or a
/// tagged push into the node's completion queue.
struct ReadWaiter {
  Interval iv;
  std::promise<ReadHandle> promise;
  bool has_promise = false;
  ReadCallback callback;
  std::uint64_t tag = 0;
  bool via_queue = false;
  TenantId tenant = kDefaultTenant;  ///< job the read belongs to (obs/fair-share)
};

/// In-memory control block for one array block held by this node.
struct Block {
  BlockKey key;
  std::uint64_t bytes = 0;        ///< payload size (last block may be short)
  std::uint64_t block_start = 0;  ///< absolute array offset of this block
  DataBuffer data;                ///< allocated while Writing/Resident
  BlockState state = BlockState::Loading;
  bool sealed = false;
  bool durable = false;  ///< on disk at the array's home node
  int read_pins = 0;
  int write_pins = 0;
  std::uint64_t lru_tick = 0;  ///< last-use stamp for LRU
  std::uint64_t load_seq = 0;  ///< arrival stamp for FIFO
  /// Cache hits since install (2Q re-reference counter).
  std::uint32_t hits = 0;
  /// Protected segment of the 2Q policy: re-referenced locally or hot at
  /// the authority. Evicted only when no probationary victim exists.
  bool hot = false;
  /// At-cap replica bypass: this copy of a durable block is unlisted in
  /// the catalog (never note_holder'd) and is the first eviction victim.
  bool transient = false;
  /// Write intervals recorded for overlap (double-write) detection,
  /// as (offset-within-block, length) pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> written;
  /// Readers waiting for the block to become resident and sealed.
  std::vector<ReadWaiter> read_waiters;
  /// A fetch/load is already in flight or queued (request de-duplication).
  bool fetch_inflight = false;
  /// The fetch is parked in the deferred queue (in-flight-bytes budget).
  bool fetch_deferred = false;
  /// This block's load is charged against the in-flight-bytes budget and
  /// the charge must be released exactly once.
  bool budget_charged = false;
  /// Tenant the budget charge is billed to: the first requester to trigger
  /// the fetch (ride-along readers of a shared block pay nothing).
  TenantId fetch_tenant = kDefaultTenant;
  /// When the fetch was parked in the deferred queue (aging/starvation).
  std::uint64_t deferred_since_ns = 0;
  int fetch_attempts = 0;
};

}  // namespace detail

/// One finished asynchronous storage operation. Exactly one of
/// `read`/`write` is valid unless `error` is set; `tag` is the caller's
/// correlation value from read_async/write_async.
struct Completion {
  std::uint64_t tag = 0;
  ReadHandle read;
  WriteHandle write;
  std::exception_ptr error;
};

using StorageCompletionQueue = CompletionQueue<Completion>;

class StorageNode {
 public:
  StorageNode(int node_id, StorageConfig config, DistributedCatalog* catalog,
              df::TransportStats* transport);
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Wire peers (done once by StorageCluster before use). peers[i] is the
  /// storage node of virtual node i; peers[id()] == this.
  void set_peers(std::vector<StorageNode*> peers) { peers_ = std::move(peers); }

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const StorageConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::string& scratch_dir() const noexcept { return scratch_dir_; }
  /// Resolved codec policy (config_.codec, else DOOC_CODEC, else off).
  [[nodiscard]] const spmv::codec::CodecConfig& codec() const noexcept { return codec_; }
  /// Resolved replication policy (config_.replication, else
  /// DOOC_REPLICATION, else off).
  [[nodiscard]] const ReplicationConfig& replication() const noexcept { return replication_; }
  /// The node's I/O filter pool (buffer-pool / direct-read introspection).
  [[nodiscard]] IoWorkerPool& io() noexcept { return io_; }

  // ---- Array management -------------------------------------------------
  /// Create a fresh (unwritten) array homed on this node.
  void create_array(const ArrayName& name, std::uint64_t size, std::uint64_t block_size = 0);
  /// Register an existing raw file as an array homed on this node whose
  /// blocks are all durable (the file is read in place; it need not live in
  /// the scratch directory).
  void import_file(const ArrayName& name, const std::string& path, std::uint64_t block_size = 0);
  /// Register a file holding one codec frame as a single-block array of
  /// `raw_bytes` logical bytes (the frame's decoded size). The fetch path
  /// reads the frame and decodes it on a fetcher thread before install;
  /// readers only ever see the raw bytes.
  void import_encoded_file(const ArrayName& name, const std::string& path,
                           std::uint64_t raw_bytes);
  /// Scan the scratch directory and register every regular file found, as
  /// the paper's storage does on startup. Returns how many were registered.
  std::size_t scan_scratch();
  /// Remove an array everywhere: catalog entries, resident blocks on all
  /// nodes, and the backing file. Requires no outstanding pins.
  void delete_array(const ArrayName& name);

  [[nodiscard]] std::optional<ArrayMeta> array_meta(const ArrayName& name);

  // ---- Data access ------------------------------------------------------
  /// Request read access to an interval (within one block). The future
  /// resolves once the data is resident on this node and sealed.
  std::future<ReadHandle> request_read(const Interval& iv);
  /// Request write access to an interval of a block never written before.
  std::future<WriteHandle> request_write(const Interval& iv);
  /// Callback flavour of request_read: `cb(handle, error)` fires exactly
  /// once — inline on the calling thread when the data is already resident
  /// and sealed, otherwise on the thread that completes the load.
  void read_async(const Interval& iv, ReadCallback cb);
  /// Completion-queue flavour: the finished read lands in completions()
  /// carrying the caller's `tag`. Never delivered inline — resident blocks
  /// also round-trip through the queue, so the consumer drains one uniform
  /// stream of completion events. `tenant` attributes the load to a job for
  /// fair-share admission and trace/flow tagging.
  void read_async(const Interval& iv, std::uint64_t tag, TenantId tenant = kDefaultTenant);
  /// Queue flavour of request_write. Write acquisition is synchronous, so
  /// the completion is in the queue before this returns.
  void write_async(const Interval& iv, std::uint64_t tag);
  /// The node's completion queue (see CompletionQueue for the open/close
  /// shutdown contract).
  [[nodiscard]] StorageCompletionQueue& completions() noexcept { return completions_; }
  /// Hint that the interval will be read soon; starts the load/fetch
  /// without pinning.
  void prefetch(const Interval& iv, TenantId tenant = kDefaultTenant);
  /// True when the interval's block is resident and sealed on this node.
  [[nodiscard]] bool is_resident(const Interval& iv);
  /// Residency bitmap of an array on this node (one bool per block).
  [[nodiscard]] std::vector<bool> residency(const ArrayName& name);
  /// Write all sealed, non-durable blocks of `name` held on this node to
  /// the array's home file (blocking). This is the paper's explicit write.
  void flush_array(const ArrayName& name);

  // ---- Tenants (fair-share admission) -----------------------------------
  /// Register / update a tenant's fair-share weight and priority. Called by
  /// the jobs layer at submit; unknown tenants arbitrate at weight 1.0.
  void set_tenant(TenantId tenant, double weight, int priority = 0);
  /// Forget a tenant (job finished). Outstanding charges drain normally.
  void retire_tenant(TenantId tenant);

  // ---- Introspection ----------------------------------------------------
  [[nodiscard]] StorageStats stats();
  [[nodiscard]] std::uint64_t resident_bytes();
  /// Bytes of block loads currently charged against max_inflight_load_bytes.
  [[nodiscard]] std::uint64_t inflight_load_bytes();
  /// Same, but only the loads charged to one tenant.
  [[nodiscard]] std::uint64_t inflight_load_bytes(TenantId tenant);

  // ---- Peer RPCs (public so peer nodes can call them) --------------------
  /// Return a copy of a sealed block: from memory if resident, streamed
  /// straight from disk (without caching) if this is the home node and the
  /// block is durable. *bytes_out = 0 signals "don't have it".
  DataBuffer fetch_block(const BlockKey& key, int requester, std::uint64_t* bytes_out);
  /// Drop any local state for the array (used by delete_array).
  void drop_array_local(const ArrayName& name);
  /// Outcome of forget_block_local: the block was not here, was dropped, or
  /// could not be dropped because someone still pins or awaits it.
  enum class ForgetResult { Absent, Dropped, Busy };
  /// Purge any local (in-memory) state for one block so a resurrected
  /// producer may legally rewrite it — part of lost-block recovery. Refuses
  /// (Busy) when the block is pinned, has waiters, or is being fetched:
  /// then the data is not actually lost and recovery must not clobber it.
  ForgetResult forget_block_local(const BlockKey& key);
  /// Write a block's payload into the home file (this node must be home).
  void store_block_at_home(const ArrayMeta& meta, std::uint64_t block, DataBuffer data);

 private:
  using BlockPtr = std::shared_ptr<detail::Block>;
  static constexpr int kMaxFetchAttempts = 64;

  [[nodiscard]] std::string file_path_for(const ArrayName& name) const;
  void register_meta(const ArrayMeta& meta, bool all_durable);
  /// Resolve array metadata, consulting the catalog (and caching).
  ArrayMeta resolve_meta(const ArrayName& name);
  /// Validate the interval against the metadata; returns the block index.
  static std::uint64_t check_interval(const ArrayMeta& meta, const Interval& iv);

  /// Common tail of request_read/read_async: deliver immediately when the
  /// block is resident+sealed, otherwise register the waiter and make sure
  /// a load/fetch is in flight (demand reads jump the deferred queue).
  void enqueue_read(const Interval& iv, detail::ReadWaiter waiter);
  /// Fire one waiter's delivery channel. Never call with mutex_ held.
  void deliver(detail::ReadWaiter&& w, ReadHandle handle, std::exception_ptr error);

  /// Admit the block's load against the in-flight-bytes budget: start it on
  /// a fetcher thread or park it in the tenant's deferred queue (demand
  /// reads jump that queue). mutex_ held.
  void schedule_fetch(const ArrayMeta& meta, const BlockPtr& block, bool demand, TenantId tenant);
  /// Charge the budget and hand the block to a fetcher thread. mutex_ held.
  void start_fetch_locked(const ArrayMeta& meta, const BlockPtr& block);
  /// Release the block's budget charge (if any) and start deferred fetches
  /// that now fit. mutex_ held.
  void release_budget_locked(const BlockPtr& block);
  void drain_deferred_locked();
  /// Move a deferred block to the head of the queue (a demand read arrived
  /// for data that was only prefetch-priority so far). mutex_ held.
  void promote_deferred_locked(const BlockPtr& block);
  /// Decide where to obtain the block from and do it. Fetcher thread only.
  void fetch_job(const ArrayMeta& meta, const BlockPtr& block);
  /// Re-run the fetch decision after an awaited producer sealed the block.
  void retry_fetch(const ArrayMeta& meta, const BlockPtr& block);
  /// Install freshly obtained payload, seal, wake waiters, register holder.
  /// `hot` lands the block in the 2Q protected segment; `bypass` keeps the
  /// copy transient — unlisted in the catalog, first in line for eviction
  /// (a durable block already at its replica cap).
  void install_payload(const ArrayMeta& meta, const BlockPtr& block, DataBuffer data,
                       bool durable, bool hot = false, bool bypass = false);
  /// Decode a codec frame into the block's raw bytes. Fetcher thread only —
  /// decompression never runs on compute workers. Pass-through when `data`
  /// is not a frame. Throws CodecError (an IoError) on a corrupt frame, so
  /// the fetch retry/failover machinery treats it like any other bad read.
  DataBuffer decode_payload(const BlockPtr& block, DataBuffer data);
  /// Stage up to codec().read_ahead blocks following `block` so the decode
  /// of block k overlaps the read of block k+1. Never called with mutex_.
  void issue_read_ahead(const ArrayMeta& meta, std::uint64_t block, TenantId tenant);
  /// Fail every waiter on the block and forget it.
  void fail_block(const BlockPtr& block, std::exception_ptr error);

  /// Evict reclaimable blocks until `incoming` more bytes fit the budget.
  /// Must be called with mutex_ held; holder-drop notifications are queued
  /// and published later outside the lock.
  void reclaim_locked(std::uint64_t incoming);
  void publish_pending_drops();

  void unpin_read(const BlockPtr& block);
  void release_write(const ArrayName& array, const BlockPtr& block);

  friend class ReadHandle;
  friend class WriteHandle;

  int id_;
  StorageConfig config_;
  std::string scratch_dir_;
  DistributedCatalog* catalog_;
  df::TransportStats* transport_;
  /// Resolved before io_ so the pool can honour codec_.direct_io.
  spmv::codec::CodecConfig codec_;
  /// Resolved hot-block replication policy (see types.hpp).
  ReplicationConfig replication_;
  std::vector<StorageNode*> peers_;
  IoWorkerPool io_;
  ThreadPool fetchers_;

  std::mutex mutex_;
  std::unordered_map<BlockKey, BlockPtr> blocks_;
  std::unordered_map<ArrayName, ArrayMeta> meta_cache_;
  std::vector<BlockKey> pending_drops_;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t load_seq_ = 0;
  SplitMix64 rng_;
  std::uint64_t lookup_rng_state_;

  /// In-flight-bytes budget accounting (guarded by mutex_): the fair-share
  /// arbiter holds per-tenant charges; loads that do not fit park in their
  /// tenant's deferred queue until pick() grants them. inflight_load_bytes_
  /// mirrors the arbiter's total for cheap introspection.
  FairShare fair_;
  std::uint64_t inflight_load_bytes_ = 0;
  std::map<TenantId, std::deque<std::pair<ArrayMeta, BlockPtr>>> deferred_fetches_;
  /// True when some tenant other than `t` has a deferred load parked.
  [[nodiscard]] bool others_waiting_locked(TenantId t) const;

  StorageCompletionQueue completions_;

  std::mutex stats_mutex_;
  StorageStats stats_;

  // obs metrics, resolved once per node (relaxed atomics, always on —
  // same cost class as stats_ above).
  obs::Counter* m_cache_hit_;
  obs::Counter* m_cache_miss_;
  obs::Counter* m_evictions_;
  obs::Counter* m_prefetches_;
  obs::Counter* m_fetch_started_;
  obs::Counter* m_fetch_deduped_;
  obs::Counter* m_fetch_deferred_;
  obs::Counter* m_failover_;
  obs::Counter* m_decoded_;
  obs::Counter* m_replica_hit_;
  obs::Counter* m_replica_miss_;
  obs::Counter* m_replica_promote_;
  obs::Counter* m_replica_bypass_;
  obs::Gauge* m_inflight_gauge_;
  obs::Histogram* decode_latency_us_;
};

}  // namespace dooc::storage
