#include "storage/catalog.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dooc::storage {

void CatalogShard::register_array(ArrayMeta meta, bool all_durable, bool authoritative) {
  std::lock_guard lock(mutex_);
  DOOC_REQUIRE(arrays_.count(meta.name) == 0, "array '" + meta.name + "' already exists");
  DOOC_REQUIRE(meta.block_size > 0, "array '" + meta.name + "' needs a positive block size");
  ArrayEntry entry;
  if (authoritative) entry.durable.assign(meta.num_blocks(), all_durable);
  entry.meta = std::move(meta);
  arrays_.emplace(entry.meta.name, std::move(entry));
}

void CatalogShard::unregister_array(const ArrayName& name) {
  std::lock_guard lock(mutex_);
  arrays_.erase(name);
  if (heat_ != nullptr) heat_->forget_array(name);
  // Abandon awaiters for this array: the block will never appear.
  for (auto it = awaiters_.begin(); it != awaiters_.end();) {
    if (it->first.array == name) {
      it = awaiters_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<ArrayMeta> CatalogShard::find(const ArrayName& name) const {
  std::lock_guard lock(mutex_);
  auto it = arrays_.find(name);
  if (it == arrays_.end()) return std::nullopt;
  return it->second.meta;
}

std::vector<ArrayName> CatalogShard::list() const {
  std::lock_guard lock(mutex_);
  std::vector<ArrayName> names;
  names.reserve(arrays_.size());
  for (const auto& [name, entry] : arrays_) names.push_back(name);
  return names;
}

bool CatalogShard::obtainable_locked(const ArrayEntry& e, std::uint64_t block) const {
  if (block < e.durable.size() && e.durable[block]) return true;
  auto it = e.holders.find(block);
  return it != e.holders.end() && !it->second.empty();
}

void CatalogShard::note_holder(const BlockKey& key, int node) {
  std::vector<BlockCallback> fire;
  {
    std::lock_guard lock(mutex_);
    auto it = arrays_.find(key.array);
    if (it == arrays_.end()) return;  // array deleted concurrently
    it->second.holders[key.block].insert(node);
    auto aw = awaiters_.find(key);
    if (aw != awaiters_.end()) {
      fire = std::move(aw->second);
      awaiters_.erase(aw);
    }
  }
  for (auto& cb : fire) cb(key);
}

void CatalogShard::drop_holder(const BlockKey& key, int node) {
  std::lock_guard lock(mutex_);
  auto it = arrays_.find(key.array);
  if (it == arrays_.end()) return;
  auto h = it->second.holders.find(key.block);
  if (h == it->second.holders.end()) return;
  h->second.erase(node);
  if (h->second.empty()) it->second.holders.erase(h);
}

void CatalogShard::note_durable(const BlockKey& key) {
  std::vector<BlockCallback> fire;
  {
    std::lock_guard lock(mutex_);
    auto it = arrays_.find(key.array);
    if (it == arrays_.end()) return;
    auto& durable = it->second.durable;
    if (key.block < durable.size()) durable[key.block] = true;
    auto aw = awaiters_.find(key);
    if (aw != awaiters_.end()) {
      fire = std::move(aw->second);
      awaiters_.erase(aw);
    }
  }
  for (auto& cb : fire) cb(key);
}

void CatalogShard::reset_block(const BlockKey& key) {
  std::lock_guard lock(mutex_);
  auto it = arrays_.find(key.array);
  if (it == arrays_.end()) return;
  it->second.holders.erase(key.block);
  if (key.block < it->second.durable.size()) it->second.durable[key.block] = false;
  // Lost-block recovery also resets the block's heat: the resurrected
  // producer's output starts cold instead of inheriting pre-fault
  // popularity (and stale heat must not promote a block nobody holds).
  if (heat_ != nullptr) heat_->forget(key);
}

replication::AccessDecision CatalogShard::record_fetch(const BlockKey& key, int node,
                                                       const ReplicationConfig& cfg) {
  std::lock_guard lock(mutex_);
  if (heat_ == nullptr) heat_ = std::make_unique<replication::HeatTracker>(cfg.decay);
  replication::AccessDecision d;
  const std::uint32_t before = heat_->peek(key);
  d.heat = heat_->record(key);
  d.hot = d.heat >= cfg.hot_threshold;
  d.newly_hot = d.hot && before < cfg.hot_threshold;
  auto it = arrays_.find(key.array);
  if (it != arrays_.end()) {
    const auto& entry = it->second;
    const bool durable = key.block < entry.durable.size() && entry.durable[key.block];
    if (durable) {
      const auto h = entry.holders.find(key.block);
      std::size_t listed = h != entry.holders.end() ? h->second.size() : 0;
      // The fetcher re-registering itself is not a new replica.
      if (h != entry.holders.end() && h->second.count(node) != 0) --listed;
      d.replicate = listed < static_cast<std::size_t>(cfg.max_replicas);
    }
  }
  return d;
}

std::uint32_t CatalogShard::heat_of(const BlockKey& key) const {
  std::lock_guard lock(mutex_);
  return heat_ != nullptr ? heat_->peek(key) : 0;
}

BlockInfo CatalogShard::block_info(const BlockKey& key) const {
  std::lock_guard lock(mutex_);
  BlockInfo info;
  auto it = arrays_.find(key.array);
  if (it == arrays_.end()) return info;
  const auto& entry = it->second;
  if (key.block < entry.durable.size()) info.durable = entry.durable[key.block];
  auto h = entry.holders.find(key.block);
  if (h != entry.holders.end()) info.holders.assign(h->second.begin(), h->second.end());
  return info;
}

void CatalogShard::await_block(const BlockKey& key, BlockCallback cb) {
  bool fire_now = false;
  {
    std::lock_guard lock(mutex_);
    auto it = arrays_.find(key.array);
    if (it != arrays_.end() && obtainable_locked(it->second, key.block)) {
      fire_now = true;
    } else {
      awaiters_[key].push_back(std::move(cb));
    }
  }
  if (fire_now) cb(key);
}

DistributedCatalog::LookupResult DistributedCatalog::lookup(const ArrayName& name, int from_node,
                                                            LookupProtocol protocol,
                                                            std::uint64_t* rng_state) const {
  LookupResult result;
  const int n = num_shards();
  if (protocol == LookupProtocol::HashOwner) {
    const int owner = authority_of(name);
    result.hops = owner == from_node ? 0 : 1;
    result.meta = shards_[static_cast<std::size_t>(owner)]->find(name);
    return result;
  }
  // RandomWalk: ask randomly selected peers, never the same one twice
  // ("the storage keeps track of which interval it has requested").
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  SplitMix64 rng(rng_state != nullptr ? (*rng_state)++ : 0x9e3779b9);
  int remaining = n;
  // Always check ourselves first (free).
  visited[static_cast<std::size_t>(from_node)] = true;
  --remaining;
  if (auto meta = shards_[static_cast<std::size_t>(from_node)]->find(name)) {
    result.meta = std::move(meta);
    return result;
  }
  while (remaining > 0) {
    int pick;
    do {
      pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    } while (visited[static_cast<std::size_t>(pick)]);
    visited[static_cast<std::size_t>(pick)] = true;
    --remaining;
    ++result.hops;
    if (auto meta = shards_[static_cast<std::size_t>(pick)]->find(name)) {
      result.meta = std::move(meta);
      return result;
    }
  }
  return result;
}

}  // namespace dooc::storage
