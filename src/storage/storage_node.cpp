#include "storage/storage_node.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <optional>

#include "common/log.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"

namespace dooc::storage {

namespace fs = std::filesystem;
using detail::Block;
using detail::BlockState;

namespace {
/// Sanity cap on the declared decoded size of codec frames discovered by a
/// scratch-directory scan (nothing legitimate approaches this).
constexpr std::uint64_t kScanDecodeCap = 1ull << 40;

/// Values of the block_fetch span's "src" arg (docs/TRACE_SCHEMA.md):
/// where the fetch was ultimately served from.
constexpr std::uint64_t kFetchSrcHomeDisk = 0;  ///< durable file via home (local or RPC)
constexpr std::uint64_t kFetchSrcReplica = 1;   ///< a peer's in-memory copy
constexpr std::uint64_t kFetchSrcFailover = 2;  ///< durable file read around a dead home
constexpr std::uint64_t kFetchSrcAwait = 3;     ///< parked on the producer
}  // namespace

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

ReadHandle::ReadHandle(ReadHandle&& other) noexcept { *this = std::move(other); }

ReadHandle& ReadHandle::operator=(ReadHandle&& other) noexcept {
  release();
  node_ = other.node_;
  block_ = std::move(other.block_);
  interval_ = other.interval_;
  other.node_ = nullptr;
  other.block_.reset();
  return *this;
}

ReadHandle::~ReadHandle() { release(); }

void ReadHandle::release() {
  if (node_ != nullptr && block_) {
    node_->unpin_read(block_);
  }
  node_ = nullptr;
  block_.reset();
}

std::span<const std::byte> ReadHandle::bytes() const {
  DOOC_REQUIRE(node_ != nullptr && block_, "bytes() on a released read handle");
  const std::uint64_t in_block = interval_.offset - block_->block_start;
  return {block_->data.data() + in_block, interval_.length};
}

WriteHandle::WriteHandle(WriteHandle&& other) noexcept { *this = std::move(other); }

WriteHandle& WriteHandle::operator=(WriteHandle&& other) noexcept {
  release();
  node_ = other.node_;
  block_ = std::move(other.block_);
  interval_ = other.interval_;
  other.node_ = nullptr;
  other.block_.reset();
  return *this;
}

WriteHandle::~WriteHandle() { release(); }

void WriteHandle::release() {
  if (node_ != nullptr && block_) {
    node_->release_write(interval_.array, block_);
  }
  node_ = nullptr;
  block_.reset();
}

std::span<std::byte> WriteHandle::bytes() {
  DOOC_REQUIRE(node_ != nullptr && block_, "bytes() on a released write handle");
  const std::uint64_t in_block = interval_.offset - block_->block_start;
  return {block_->data.data() + in_block, interval_.length};
}

// ---------------------------------------------------------------------------
// StorageNode
// ---------------------------------------------------------------------------

StorageNode::StorageNode(int node_id, StorageConfig config, DistributedCatalog* catalog,
                         df::TransportStats* transport)
    : id_(node_id),
      config_(std::move(config)),
      catalog_(catalog),
      transport_(transport),
      codec_(config_.codec ? *config_.codec : spmv::codec::CodecConfig::from_env()),
      replication_(config_.replication ? *config_.replication
                                       : ReplicationConfig::from_env()),
      io_(config_.io_workers, config_.throttle_read_bw, node_id, config_.fault_plan,
          codec_.direct_io),
      fetchers_(static_cast<std::size_t>(config_.io_workers)),
      rng_(config_.seed ^ (0x9e37u * static_cast<std::uint64_t>(node_id + 1))),
      lookup_rng_state_(config_.seed + static_cast<std::uint64_t>(node_id) * 7919),
      m_cache_hit_(&obs::Metrics::instance().counter("storage.cache_hit", node_id)),
      m_cache_miss_(&obs::Metrics::instance().counter("storage.cache_miss", node_id)),
      m_evictions_(&obs::Metrics::instance().counter("storage.evictions", node_id)),
      m_prefetches_(&obs::Metrics::instance().counter("storage.prefetch_issued", node_id)),
      m_fetch_started_(&obs::Metrics::instance().counter("storage.fetch_started", node_id)),
      m_fetch_deduped_(&obs::Metrics::instance().counter("storage.fetch_deduped", node_id)),
      m_fetch_deferred_(&obs::Metrics::instance().counter("storage.fetch_deferred", node_id)),
      m_failover_(&obs::Metrics::instance().counter("storage.failover", node_id)),
      m_decoded_(&obs::Metrics::instance().counter("storage.blocks_decoded", node_id)),
      m_replica_hit_(&obs::Metrics::instance().counter("storage.replica_hit", node_id)),
      m_replica_miss_(&obs::Metrics::instance().counter("storage.replica_miss", node_id)),
      m_replica_promote_(&obs::Metrics::instance().counter("storage.replica_promote", node_id)),
      m_replica_bypass_(&obs::Metrics::instance().counter("storage.replica_bypass", node_id)),
      m_inflight_gauge_(&obs::Metrics::instance().gauge("storage.inflight_bytes", node_id)),
      decode_latency_us_(&obs::Metrics::instance().histogram("storage.decode_latency_us", node_id)) {
  DOOC_REQUIRE(!config_.scratch_root.empty(), "storage config needs a scratch root");
  // Replication replaces the default LRU with the scan-resistant 2Q policy
  // so hot replicas survive one-pass streaming workloads. An explicit
  // non-default eviction choice is respected.
  if (replication_.enabled && config_.eviction == EvictionPolicy::Lru) {
    config_.eviction = EvictionPolicy::TwoQ;
  }
  scratch_dir_ = config_.scratch_root + "/node" + std::to_string(node_id);
  fs::create_directories(scratch_dir_);
  FairShareConfig fair_cfg = config_.fair_share;
  fair_cfg.budget_bytes = config_.max_inflight_load_bytes;
  fair_.set_config(fair_cfg);
}

StorageNode::~StorageNode() = default;

std::string StorageNode::file_path_for(const ArrayName& name) const {
  return scratch_dir_ + "/" + name;
}

// ---- array management ------------------------------------------------------

void StorageNode::create_array(const ArrayName& name, std::uint64_t size,
                               std::uint64_t block_size) {
  DOOC_REQUIRE(!name.empty() && name.find('/') == std::string::npos,
               "array name must be a non-empty filename-safe string");
  DOOC_REQUIRE(size > 0, "array '" + name + "' must have a positive size");
  ArrayMeta meta;
  meta.name = name;
  meta.size = size;
  meta.block_size = block_size != 0 ? block_size : config_.default_block_size;
  meta.home_node = id_;
  meta.path = file_path_for(name);
  register_meta(meta, /*all_durable=*/false);
}

void StorageNode::import_file(const ArrayName& name, const std::string& path,
                              std::uint64_t block_size) {
  DOOC_REQUIRE(!name.empty() && name.find('/') == std::string::npos,
               "array name must be a non-empty filename-safe string");
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) throw IoError("import_file('" + path + "'): " + ec.message());
  DOOC_REQUIRE(size > 0, "cannot import empty file '" + path + "'");
  ArrayMeta meta;
  meta.name = name;
  meta.size = size;
  meta.block_size = block_size != 0 ? block_size : config_.default_block_size;
  meta.home_node = id_;
  meta.path = path;
  register_meta(meta, /*all_durable=*/true);
}

void StorageNode::import_encoded_file(const ArrayName& name, const std::string& path,
                                      std::uint64_t raw_bytes) {
  DOOC_REQUIRE(!name.empty() && name.find('/') == std::string::npos,
               "array name must be a non-empty filename-safe string");
  DOOC_REQUIRE(raw_bytes > 0, "encoded array '" + name + "' must have a positive decoded size");
  std::error_code ec;
  const auto stored = fs::file_size(path, ec);
  if (ec) throw IoError("import_encoded_file('" + path + "'): " + ec.message());
  DOOC_REQUIRE(stored > 0, "cannot import empty file '" + path + "'");
  ArrayMeta meta;
  meta.name = name;
  meta.size = raw_bytes;
  meta.block_size = raw_bytes;  // one block: the frame is the transfer unit
  meta.home_node = id_;
  meta.path = path;
  meta.stored_bytes = stored;
  register_meta(meta, /*all_durable=*/true);
}

void StorageNode::register_meta(const ArrayMeta& meta, bool all_durable) {
  catalog_->shard_for(meta.name).register_array(meta, all_durable, /*authoritative=*/true);
  const int authority = catalog_->authority_of(meta.name);
  if (authority != meta.home_node) {
    catalog_->shard(meta.home_node).register_array(meta, all_durable, /*authoritative=*/false);
  }
  std::lock_guard lock(mutex_);
  meta_cache_[meta.name] = meta;
}

std::size_t StorageNode::scan_scratch() {
  std::size_t registered = 0;
  for (const auto& entry : fs::directory_iterator(scratch_dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (catalog_->shard_for(name).find(name)) continue;  // already known
    if (entry.file_size() == 0) continue;
    // Sniff codec frames left by a previous run: the array's logical size is
    // the frame's declared decoded size, not the file size. Anything that is
    // not a well-formed frame registers as a raw file, exactly as before.
    std::uint64_t raw_bytes = 0;
    {
      std::array<std::byte, spmv::codec::kCodecHeaderBytes> head{};
      std::ifstream in(entry.path(), std::ios::binary);
      in.read(reinterpret_cast<char*>(head.data()), static_cast<std::streamsize>(head.size()));
      if (in.gcount() == static_cast<std::streamsize>(head.size())) {
        try {
          raw_bytes = spmv::codec::probe_frame(head, entry.file_size(), kScanDecodeCap);
        } catch (const spmv::codec::CodecError&) {
          raw_bytes = 0;
        }
      }
    }
    if (raw_bytes != 0) {
      import_encoded_file(name, entry.path().string(), raw_bytes);
    } else {
      import_file(name, entry.path().string());
    }
    ++registered;
  }
  return registered;
}

void StorageNode::delete_array(const ArrayName& name) {
  const ArrayMeta meta = resolve_meta(name);
  // Drop resident state everywhere first (asserts there are no pins).
  drop_array_local(name);
  for (StorageNode* peer : peers_) {
    if (peer != nullptr && peer != this) peer->drop_array_local(name);
  }
  catalog_->shard_for(name).unregister_array(name);
  if (catalog_->authority_of(name) != meta.home_node) {
    catalog_->shard(meta.home_node).unregister_array(name);
  }
  std::error_code ec;
  fs::remove(meta.path, ec);  // may not exist (never flushed) — fine
}

void StorageNode::drop_array_local(const ArrayName& name) {
  std::vector<BlockKey> dropped;
  {
    std::lock_guard lock(mutex_);
    meta_cache_.erase(name);
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      if (it->first.array == name) {
        DOOC_REQUIRE(it->second->read_pins == 0 && it->second->write_pins == 0,
                     "delete_array('" + name + "') with outstanding pins");
        if (it->second->data.size() != 0) resident_bytes_ -= it->second->bytes;
        dropped.push_back(it->first);
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& key : dropped) catalog_->shard_for(name).drop_holder(key, id_);
}

StorageNode::ForgetResult StorageNode::forget_block_local(const BlockKey& key) {
  {
    std::lock_guard lock(mutex_);
    auto it = blocks_.find(key);
    if (it == blocks_.end()) return ForgetResult::Absent;
    const BlockPtr& block = it->second;
    if (block->read_pins != 0 || block->write_pins != 0 || !block->read_waiters.empty() ||
        block->fetch_inflight) {
      return ForgetResult::Busy;
    }
    if (block->data.size() != 0) resident_bytes_ -= block->bytes;
    blocks_.erase(it);
  }
  catalog_->shard_for(key.array).drop_holder(key, id_);
  return ForgetResult::Dropped;
}

std::optional<ArrayMeta> StorageNode::array_meta(const ArrayName& name) {
  {
    std::lock_guard lock(mutex_);
    auto it = meta_cache_.find(name);
    if (it != meta_cache_.end()) return it->second;
  }
  auto result = catalog_->lookup(name, id_, config_.lookup, &lookup_rng_state_);
  {
    std::lock_guard lock(stats_mutex_);
    stats_.lookup_hops += static_cast<std::uint64_t>(result.hops);
  }
  if (result.meta) {
    std::lock_guard lock(mutex_);
    meta_cache_[name] = *result.meta;
  }
  return result.meta;
}

ArrayMeta StorageNode::resolve_meta(const ArrayName& name) {
  auto meta = array_meta(name);
  DOOC_REQUIRE(meta.has_value(), "unknown array '" + name + "'");
  return *meta;
}

std::uint64_t StorageNode::check_interval(const ArrayMeta& meta, const Interval& iv) {
  DOOC_REQUIRE(iv.length > 0, "empty interval on array '" + meta.name + "'");
  DOOC_REQUIRE(iv.end() <= meta.size,
               "interval [" + std::to_string(iv.offset) + ", " + std::to_string(iv.end()) +
                   ") exceeds array '" + meta.name + "' of size " + std::to_string(meta.size));
  const std::uint64_t first = iv.offset / meta.block_size;
  const std::uint64_t last = (iv.end() - 1) / meta.block_size;
  DOOC_REQUIRE(first == last,
               "interval spans blocks " + std::to_string(first) + ".." + std::to_string(last) +
                   " of array '" + meta.name + "'; use one interval per block");
  return first;
}

// ---- read path ---------------------------------------------------------------

std::future<ReadHandle> StorageNode::request_read(const Interval& iv) {
  detail::ReadWaiter w;
  w.iv = iv;
  w.has_promise = true;
  auto future = w.promise.get_future();
  enqueue_read(iv, std::move(w));
  return future;
}

void StorageNode::read_async(const Interval& iv, ReadCallback cb) {
  detail::ReadWaiter w;
  w.iv = iv;
  w.callback = std::move(cb);
  enqueue_read(iv, std::move(w));
}

void StorageNode::read_async(const Interval& iv, std::uint64_t tag, TenantId tenant) {
  detail::ReadWaiter w;
  w.iv = iv;
  w.tag = tag;
  w.via_queue = true;
  w.tenant = tenant;
  enqueue_read(iv, std::move(w));
}

void StorageNode::write_async(const Interval& iv, std::uint64_t tag) {
  Completion c;
  c.tag = tag;
  try {
    c.write = request_write(iv).get();  // write acquisition is synchronous
  } catch (...) {
    c.error = std::current_exception();
  }
  completions_.push(std::move(c));
}

void StorageNode::deliver(detail::ReadWaiter&& w, ReadHandle handle, std::exception_ptr error) {
  if (w.via_queue) {
    if (obs::trace_enabled() && error == nullptr) {
      // Completion-path delivery: the 't' point of the load flow the engine
      // opened at read_async issue. Inline (resident) deliveries emit an
      // orphan 't' with no matching 's' — viewers and the causal graph
      // both drop those.
      obs::emit_flow(obs::Phase::FlowStep, obs::intern("load"), obs::intern("deliver"), id_,
                     obs::current_thread_lane(), obs::TraceClock::now_ns(),
                     obs::causal::flow_id_load(w.iv.array, w.iv.offset), obs::intern("job"),
                     w.tenant);
    }
    Completion c;
    c.tag = w.tag;
    c.read = std::move(handle);
    c.error = error;
    completions_.push(std::move(c));
  } else if (w.callback) {
    w.callback(std::move(handle), error);
  } else if (error) {
    w.promise.set_exception(error);
  } else {
    w.promise.set_value(std::move(handle));
  }
}

void StorageNode::enqueue_read(const Interval& iv, detail::ReadWaiter waiter) {
  const ArrayMeta meta = resolve_meta(iv.array);
  const std::uint64_t b = check_interval(meta, iv);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.read_requests;
  }

  std::unique_lock lock(mutex_);
  const BlockKey key{iv.array, b};
  auto it = blocks_.find(key);
  const bool want_ahead = codec_.read_ahead > 0 && b + 1 < meta.num_blocks();
  if (it != blocks_.end() && it->second->state == BlockState::Resident && it->second->sealed) {
    m_cache_hit_->add();
    BlockPtr block = it->second;
    ++block->read_pins;
    block->lru_tick = ++tick_;
    // 2Q re-reference: a block read again after install graduates from the
    // probationary to the protected segment (and sheds any at-cap
    // transience — a copy that keeps getting hit has earned retention).
    if (config_.eviction == EvictionPolicy::TwoQ && ++block->hits >= replication_.promote_hits) {
      block->hot = true;
      block->transient = false;
    }
    const TenantId hit_tenant = waiter.tenant;
    lock.unlock();
    deliver(std::move(waiter), ReadHandle(this, std::move(block), iv), nullptr);
    // Keep the pipeline primed on hits too: a sequential scan stays depth-N
    // ahead instead of alternating hit/miss.
    if (want_ahead) issue_read_ahead(meta, b, hit_tenant);
    return;
  }
  m_cache_miss_->add();
  BlockPtr block;
  if (it != blocks_.end()) {
    block = it->second;
  } else {
    block = std::make_shared<Block>();
    block->key = key;
    block->bytes = meta.block_bytes(b);
    block->block_start = b * meta.block_size;
    block->state = BlockState::Loading;
    blocks_.emplace(key, block);
  }
  const TenantId tenant = waiter.tenant;
  block->read_waiters.push_back(std::move(waiter));
  if (block->state == BlockState::Loading) {
    if (!block->fetch_inflight) {
      block->fetch_inflight = true;
      schedule_fetch(meta, block, /*demand=*/true, tenant);
    } else {
      // Same block already being obtained: this request rides along.
      m_fetch_deduped_->add();
      if (block->fetch_deferred) promote_deferred_locked(block);
    }
  }
  lock.unlock();
  // Double-buffered read path: stage the next block(s) so the decode of
  // block k overlaps the disk read of block k+1.
  if (want_ahead) issue_read_ahead(meta, b, tenant);
}

void StorageNode::issue_read_ahead(const ArrayMeta& meta, std::uint64_t block, TenantId tenant) {
  const auto depth = static_cast<std::uint64_t>(codec_.read_ahead);
  for (std::uint64_t d = 1; d <= depth; ++d) {
    const std::uint64_t next = block + d;
    if (next >= meta.num_blocks()) break;
    prefetch({meta.name, next * meta.block_size, meta.block_bytes(next)}, tenant);
  }
}

void StorageNode::prefetch(const Interval& iv, TenantId tenant) {
  const ArrayMeta meta = resolve_meta(iv.array);
  const std::uint64_t b = check_interval(meta, iv);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.prefetch_requests;
  }
  m_prefetches_->add();
  if (obs::trace_enabled()) obs::emit_instant(obs::intern("storage"), obs::intern("prefetch"), id_, 0);
  std::unique_lock lock(mutex_);
  const BlockKey key{iv.array, b};
  auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    if (it->second->state == BlockState::Resident) it->second->lru_tick = ++tick_;
    if (it->second->state == BlockState::Loading) {
      if (!it->second->fetch_inflight) {
        it->second->fetch_inflight = true;
        schedule_fetch(meta, it->second, /*demand=*/false, tenant);
      } else {
        m_fetch_deduped_->add();
      }
    }
    return;
  }
  auto block = std::make_shared<Block>();
  block->key = key;
  block->bytes = meta.block_bytes(b);
  block->block_start = b * meta.block_size;
  block->state = BlockState::Loading;
  block->fetch_inflight = true;
  blocks_.emplace(key, block);
  schedule_fetch(meta, block, /*demand=*/false, tenant);
}

bool StorageNode::others_waiting_locked(TenantId t) const {
  for (const auto& [tenant, queue] : deferred_fetches_) {
    if (tenant != t && !queue.empty()) return true;
  }
  return false;
}

void StorageNode::schedule_fetch(const ArrayMeta& meta, const BlockPtr& block, bool demand,
                                 TenantId tenant) {
  block->fetch_tenant = tenant;
  const std::uint64_t budget = config_.max_inflight_load_bytes;
  if (budget != 0 && !fair_.try_admit(tenant, block->bytes, others_waiting_locked(tenant))) {
    // Over budget (or over this tenant's contended share cap): park the
    // fetch in the tenant's queue. Demand reads jump the line so a worker
    // waiting on this block is served before speculative prefetches; the
    // WDRR arbiter decides which tenant's head starts as budget frees up.
    // (When nothing is in flight even an oversized block proceeds — the
    // budget bounds concurrency, it never starves a load outright.)
    m_fetch_deferred_->add();
    block->fetch_deferred = true;
    block->deferred_since_ns = obs::TraceClock::now_ns();
    auto& queue = deferred_fetches_[tenant];
    if (demand) {
      queue.emplace_front(meta, block);
    } else {
      queue.emplace_back(meta, block);
    }
    return;
  }
  start_fetch_locked(meta, block);
}

void StorageNode::start_fetch_locked(const ArrayMeta& meta, const BlockPtr& block) {
  block->fetch_deferred = false;
  block->budget_charged = true;
  fair_.charge(block->fetch_tenant, block->bytes);
  inflight_load_bytes_ = fair_.inflight_total();
  m_fetch_started_->add();
  m_inflight_gauge_->set(static_cast<double>(inflight_load_bytes_));
  if (obs::trace_enabled()) {
    obs::emit_counter(obs::intern("storage"), obs::intern("inflight_bytes"), id_,
                      inflight_load_bytes_);
  }
  // Runs on a fetcher thread; holds no locks while touching peers/disk.
  fetchers_.submit([this, meta, block] { fetch_job(meta, block); });
}

void StorageNode::release_budget_locked(const BlockPtr& block) {
  if (!block->budget_charged) return;
  block->budget_charged = false;
  fair_.release(block->fetch_tenant, block->bytes);
  inflight_load_bytes_ = fair_.inflight_total();
  m_inflight_gauge_->set(static_cast<double>(inflight_load_bytes_));
  if (obs::trace_enabled()) {
    obs::emit_counter(obs::intern("storage"), obs::intern("inflight_bytes"), id_,
                      inflight_load_bytes_);
  }
  drain_deferred_locked();
}

void StorageNode::drain_deferred_locked() {
  while (true) {
    // Prune entries whose block was failed or deleted while parked, then
    // put each tenant's head up for arbitration.
    std::vector<FairShare::Head> heads;
    for (auto it = deferred_fetches_.begin(); it != deferred_fetches_.end();) {
      auto& queue = it->second;
      while (!queue.empty() && (queue.front().second->state != BlockState::Loading ||
                                !queue.front().second->fetch_inflight)) {
        queue.pop_front();
      }
      if (queue.empty()) {
        it = deferred_fetches_.erase(it);
        continue;
      }
      const BlockPtr& head = queue.front().second;
      heads.push_back({it->first, head->bytes, head->deferred_since_ns});
      ++it;
    }
    if (heads.empty()) return;
    const TenantId granted = fair_.pick(heads, obs::TraceClock::now_ns());
    if (granted == FairShare::kNone) return;
    auto& queue = deferred_fetches_[granted];
    const ArrayMeta m = std::move(queue.front().first);
    const BlockPtr b = std::move(queue.front().second);
    queue.pop_front();
    if (queue.empty()) deferred_fetches_.erase(granted);
    start_fetch_locked(m, b);
  }
}

void StorageNode::promote_deferred_locked(const BlockPtr& block) {
  auto it = deferred_fetches_.find(block->fetch_tenant);
  if (it == deferred_fetches_.end()) return;
  auto& queue = it->second;
  for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
    if (qit->second == block) {
      auto entry = std::move(*qit);
      queue.erase(qit);
      queue.push_front(std::move(entry));
      return;
    }
  }
}

void StorageNode::set_tenant(TenantId tenant, double weight, int priority) {
  std::lock_guard lock(mutex_);
  fair_.set_tenant(tenant, weight, priority);
}

void StorageNode::retire_tenant(TenantId tenant) {
  std::lock_guard lock(mutex_);
  fair_.retire(tenant);
  // Anything the tenant still had parked stays queued and drains under the
  // default weight; the arbiter's outstanding charges release as the
  // fetches land.
  drain_deferred_locked();
}

void StorageNode::fetch_job(const ArrayMeta& meta, const BlockPtr& block) {
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) {
    span.emplace("storage", "block_fetch", id_);
    span->arg("block", block->key.block).arg("bytes", block->bytes);
  }
  try {
    const BlockKey key = block->key;
    CatalogShard& shard = catalog_->shard_for(key.array);
    const BlockInfo info = shard.block_info(key);
    const fault::FaultPlan* plan = config_.fault_plan.get();

    // Replication: record this fetch in the authority's decayed frequency
    // counters and learn whether the block is hot and whether our copy may
    // register as another replica (durable blocks cap at max_replicas).
    replication::AccessDecision decision;
    if (replication_.enabled) {
      decision = shard.record_fetch(key, id_, replication_);
      if (decision.newly_hot) {
        m_replica_promote_->add();
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.replica_promotions;
        }
        if (obs::trace_enabled()) {
          obs::emit_instant(obs::intern("replication"), obs::intern("promote"), id_,
                            static_cast<int>(key.block));
        }
      }
    }
    const bool hot = replication_.enabled && decision.hot;
    const bool bypass = replication_.enabled && !decision.replicate;

    // 1) A peer holds a sealed in-memory copy — fetch it over the "wire".
    // This is the generalized PR 5 failover walk: with replication on the
    // candidate holders are ranked by rendezvous hash over
    // (block, holder, requester), so a hot block's readers spread across
    // its replica set instead of all hammering the lowest-numbered holder.
    std::vector<int> holders = info.holders;
    if (replication_.enabled) {
      holders = replication::rank_holders(key, id_, std::move(holders));
    }
    for (int holder : holders) {
      if (holder == id_) continue;
      if (plan != nullptr && plan->node_down(holder)) continue;  // unreachable
      StorageNode* peer = peers_[static_cast<std::size_t>(holder)];
      std::uint64_t got = 0;
      DataBuffer data = peer->fetch_block(key, id_, &got);
      if (got != 0) {
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.remote_fetches;
          stats_.remote_fetch_bytes += got;
          if (replication_.enabled) ++stats_.replica_hits;
        }
        if (replication_.enabled) m_replica_hit_->add();
        if (span) span->arg("src", kFetchSrcReplica);
        install_payload(meta, block, std::move(data), info.durable, hot, bypass);
        return;
      }
      // Holder evicted concurrently; fall through to other options.
    }
    // A hot block that no in-memory holder could serve is a replica miss:
    // the read falls through to the (throttled) durable tier.
    if (hot && info.durable) {
      m_replica_miss_->add();
      std::lock_guard lock(stats_mutex_);
      ++stats_.replica_misses;
    }

    // 2) The block is durable at its home node. When the array is stored
    // encoded the file holds one codec frame: read its (smaller) stored
    // size and decode on this fetcher thread before install.
    const std::uint64_t durable_bytes =
        meta.stored_bytes != 0 ? meta.stored_bytes : block->bytes;
    if (info.durable) {
      if (meta.home_node == id_) {
        if (span) span->arg("src", kFetchSrcHomeDisk);
        DataBuffer data =
            io_.read(meta.path, key.block * meta.block_size, durable_bytes).get();
        install_payload(meta, block, std::move(data), /*durable=*/true, hot, bypass);
      } else if (plan != nullptr && plan->node_down(meta.home_node)) {
        // Failover: the home node is down but its scratch file survives on
        // the shared filesystem (the paper's GPFS tier outlives any one
        // storage process). Read the durable block straight from the
        // scratch-directory source through our own I/O filters.
        m_failover_->add();
        if (obs::trace_enabled()) {
          obs::emit_instant(obs::intern("fault"), obs::intern("failover"), id_, 0);
        }
        if (span) span->arg("src", kFetchSrcFailover);
        DataBuffer data =
            io_.read(meta.path, key.block * meta.block_size, durable_bytes).get();
        install_payload(meta, block, std::move(data), /*durable=*/true, hot, bypass);
      } else {
        if (span) span->arg("src", kFetchSrcHomeDisk);
        StorageNode* home = peers_[static_cast<std::size_t>(meta.home_node)];
        std::uint64_t got = 0;
        DataBuffer data = home->fetch_block(key, id_, &got);
        if (got == 0) throw IoError("home node could not produce block of '" + key.array + "'");
        {
          std::lock_guard lock(stats_mutex_);
          ++stats_.remote_fetches;
          stats_.remote_fetch_bytes += got;
        }
        install_payload(meta, block, std::move(data), /*durable=*/true, hot, bypass);
      }
      return;
    }
    if (span) span->arg("src", kFetchSrcAwait);

    // 3) Nobody has produced the block yet: wait for a holder to appear.
    // Release the in-flight budget while parked — waiting on a producer can
    // take arbitrarily long and must not starve actual loads (or deadlock
    // two nodes waiting on each other's outputs).
    {
      std::lock_guard lock(mutex_);
      release_budget_locked(block);
    }
    if (++block->fetch_attempts > kMaxFetchAttempts) {
      throw IoError("giving up fetching block " + std::to_string(key.block) + " of '" +
                    key.array + "' after repeated attempts");
    }
    catalog_->shard_for(key.array).await_block(key, [this, meta, block](const BlockKey&) {
      // Fires on the sealing thread (outside every lock); bounce back onto
      // a fetcher thread to retry the whole decision.
      fetchers_.submit([this, meta, block] { retry_fetch(meta, block); });
    });
  } catch (...) {
    fail_block(block, std::current_exception());
  }
}

void StorageNode::retry_fetch(const ArrayMeta& meta, const BlockPtr& block) {
  // Re-admit against the budget: the charge was dropped when the fetch
  // parked on the producer.
  std::lock_guard lock(mutex_);
  if (block->state != BlockState::Loading || !block->fetch_inflight) return;
  if (block->fetch_deferred || block->budget_charged) return;  // already queued/flying
  schedule_fetch(meta, block, /*demand=*/!block->read_waiters.empty(), block->fetch_tenant);
}

DataBuffer StorageNode::decode_payload(const BlockPtr& block, DataBuffer data) {
  if (!spmv::codec::is_encoded(data.span())) return data;
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) {
    span.emplace("storage", "decode", id_);
    span->arg("block", block->key.block)
        .arg("stored_bytes", data.size())
        .arg("bytes", block->bytes);
  }
  const std::uint64_t t0 = obs::TraceClock::now_ns();
  DataBuffer raw = spmv::codec::decode_block(data.span(), block->bytes);
  const std::uint64_t elapsed = obs::TraceClock::now_ns() - t0;
  m_decoded_->add();
  decode_latency_us_->add(static_cast<double>(elapsed) * 1e-3);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.decoded_blocks;
    stats_.decoded_bytes += raw.size();
    stats_.decode_seconds += static_cast<double>(elapsed) * 1e-9;
  }
  return raw;
}

void StorageNode::install_payload(const ArrayMeta& meta, const BlockPtr& block, DataBuffer data,
                                  bool durable, bool hot, bool bypass) {
  // Transparent interop: the payload may be a codec frame (stored-encoded
  // array, or a peer streaming its durable frame). The in-memory cache only
  // ever holds raw bytes, so decode here — still on the fetcher thread,
  // never on a compute worker.
  if (meta.stored_bytes != 0 || data.size() != block->bytes) {
    data = decode_payload(block, std::move(data));
  }
  DOOC_CHECK(data.size() == block->bytes, "payload size mismatch installing block");
  std::vector<detail::ReadWaiter> waiters;
  {
    std::lock_guard lock(mutex_);
    release_budget_locked(block);
    if (block->state != BlockState::Loading) return;  // raced with delete
    reclaim_locked(block->bytes);
    block->data = std::move(data);
    block->state = BlockState::Resident;
    block->sealed = true;
    block->durable = durable;
    block->fetch_inflight = false;
    block->load_seq = ++load_seq_;
    block->lru_tick = ++tick_;
    // Catalog-hot blocks land directly in the 2Q protected segment; at-cap
    // copies of durable blocks stay transient (unlisted, evicted first).
    // Bypass only ever applies to durable blocks, so an unlisted copy can
    // never be the last one in existence.
    block->hot = hot;
    block->transient = bypass && durable;
    resident_bytes_ += block->bytes;
    waiters = std::move(block->read_waiters);
    block->read_waiters.clear();
    block->read_pins += static_cast<int>(waiters.size());
  }
  for (auto& w : waiters) {
    const Interval iv = w.iv;
    deliver(std::move(w), ReadHandle(this, block, iv), nullptr);
  }
  if (bypass && durable) {
    m_replica_bypass_->add();
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.replica_bypass;
    }
    if (obs::trace_enabled()) {
      obs::emit_instant(obs::intern("replication"), obs::intern("bypass"), id_,
                        static_cast<int>(block->key.block));
    }
    return;  // transient copy: do not register as a replica holder
  }
  // Outside mutex_: note_holder may fire awaiter callbacks synchronously.
  catalog_->shard_for(meta.name).note_holder(block->key, id_);
}

void StorageNode::fail_block(const BlockPtr& block, std::exception_ptr error) {
  std::vector<detail::ReadWaiter> waiters;
  {
    std::lock_guard lock(mutex_);
    release_budget_locked(block);
    waiters = std::move(block->read_waiters);
    block->read_waiters.clear();
    block->fetch_inflight = false;
    blocks_.erase(block->key);
  }
  for (auto& w : waiters) {
    deliver(std::move(w), ReadHandle(), error);
  }
  DOOC_LOG(Warn, "storage[" + std::to_string(id_) + "]")
      << "fetch of block " << block->key.block << " of '" << block->key.array << "' failed";
}

DataBuffer StorageNode::fetch_block(const BlockKey& key, int requester, std::uint64_t* bytes_out) {
  *bytes_out = 0;
  // A node inside an outage window is unreachable: it answers every peer
  // RPC with "don't have it", and requesters fail over to other holders or
  // to the scratch-directory source.
  if (config_.fault_plan && config_.fault_plan->node_down(id_)) return {};
  DataBuffer copy;
  std::uint64_t size = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = blocks_.find(key);
    if (it != blocks_.end() && it->second->state == BlockState::Resident && it->second->sealed) {
      copy = it->second->data.clone();
      size = it->second->bytes;
      it->second->lru_tick = ++tick_;
    }
  }
  if (size == 0) {
    // Not resident: if we are the home node and the block is durable,
    // stream it straight from disk without caching (the paper's I/O nodes
    // stream to requesting compute nodes). A stored-encoded array streams
    // its codec frame as-is — the requester decodes on its own fetcher
    // thread, and the wire carries the compressed bytes.
    auto meta = array_meta(key.array);
    if (meta && meta->home_node == id_) {
      const BlockInfo info = catalog_->shard_for(key.array).block_info(key);
      if (info.durable) {
        const std::uint64_t want =
            meta->stored_bytes != 0 ? meta->stored_bytes : meta->block_bytes(key.block);
        copy = io_.read(meta->path, key.block * meta->block_size, want).get();
        size = want;
      }
    }
  }
  if (size != 0 && transport_ != nullptr && requester != id_) {
    transport_->record(id_, requester, size);
  }
  *bytes_out = size;
  return copy;
}

// ---- write path --------------------------------------------------------------

std::future<WriteHandle> StorageNode::request_write(const Interval& iv) {
  const ArrayMeta meta = resolve_meta(iv.array);
  const std::uint64_t b = check_interval(meta, iv);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.write_requests;
  }
  std::promise<WriteHandle> promise;
  auto future = promise.get_future();

  std::lock_guard lock(mutex_);
  const BlockKey key{iv.array, b};
  auto it = blocks_.find(key);
  BlockPtr block;
  if (it == blocks_.end()) {
    block = std::make_shared<Block>();
    block->key = key;
    block->bytes = meta.block_bytes(b);
    block->block_start = b * meta.block_size;
    block->state = BlockState::Writing;
    reclaim_locked(block->bytes);
    block->data = DataBuffer(block->bytes);
    std::fill(block->data.span().begin(), block->data.span().end(), std::byte{0});
    resident_bytes_ += block->bytes;
    blocks_.emplace(key, block);
  } else {
    block = it->second;
    if (block->state != BlockState::Writing || block->sealed) {
      throw ImmutabilityViolation("array '" + iv.array + "' block " + std::to_string(b) +
                                  " was already written (write-once violation)");
    }
  }
  // Reject overlapping writes: each memory location is written only once.
  const std::uint64_t in_block_off = iv.offset - block->block_start;
  for (const auto& [off, len] : block->written) {
    const bool disjoint = in_block_off + iv.length <= off || off + len <= in_block_off;
    if (!disjoint) {
      throw ImmutabilityViolation("overlapping write to array '" + iv.array + "' block " +
                                  std::to_string(b) + " (write-once violation)");
    }
  }
  block->written.emplace_back(in_block_off, iv.length);
  ++block->write_pins;
  promise.set_value(WriteHandle(this, block, iv));
  return future;
}

void StorageNode::release_write(const ArrayName& array, const BlockPtr& block) {
  bool sealed_now = false;
  std::vector<detail::ReadWaiter> waiters;
  {
    std::lock_guard lock(mutex_);
    DOOC_CHECK(block->write_pins > 0, "write handle released twice");
    if (--block->write_pins == 0) {
      block->sealed = true;
      block->state = BlockState::Resident;
      block->lru_tick = ++tick_;
      block->load_seq = ++load_seq_;
      sealed_now = true;
      waiters = std::move(block->read_waiters);
      block->read_waiters.clear();
      for (std::size_t i = 0; i < waiters.size(); ++i) ++block->read_pins;
    }
  }
  for (auto& w : waiters) {
    const Interval iv = w.iv;
    deliver(std::move(w), ReadHandle(this, block, iv), nullptr);
  }
  if (sealed_now) {
    // Outside mutex_: may fire awaiter callbacks synchronously.
    catalog_->shard_for(array).note_holder(block->key, id_);
  }
}

void StorageNode::unpin_read(const BlockPtr& block) {
  std::lock_guard lock(mutex_);
  DOOC_CHECK(block->read_pins > 0, "read handle released twice");
  --block->read_pins;
  block->lru_tick = ++tick_;
}

// ---- residency & flush --------------------------------------------------------

bool StorageNode::is_resident(const Interval& iv) {
  const ArrayMeta meta = resolve_meta(iv.array);
  const std::uint64_t b = check_interval(meta, iv);
  std::lock_guard lock(mutex_);
  auto it = blocks_.find(BlockKey{iv.array, b});
  return it != blocks_.end() && it->second->state == BlockState::Resident && it->second->sealed;
}

std::vector<bool> StorageNode::residency(const ArrayName& name) {
  const ArrayMeta meta = resolve_meta(name);
  std::vector<bool> out(meta.num_blocks(), false);
  std::lock_guard lock(mutex_);
  for (std::uint64_t b = 0; b < out.size(); ++b) {
    auto it = blocks_.find(BlockKey{name, b});
    out[b] = it != blocks_.end() && it->second->state == BlockState::Resident &&
             it->second->sealed;
  }
  return out;
}

void StorageNode::flush_array(const ArrayName& name) {
  const ArrayMeta meta = resolve_meta(name);
  // Snapshot the sealed, non-durable blocks we hold.
  std::vector<BlockPtr> dirty;
  {
    std::lock_guard lock(mutex_);
    for (auto& [key, block] : blocks_) {
      if (key.array == name && block->sealed && !block->durable) dirty.push_back(block);
    }
  }
  std::vector<std::future<void>> writes;
  for (const auto& block : dirty) {
    if (meta.home_node == id_) {
      writes.push_back(io_.write(meta.path, block->key.block * meta.block_size, block->data));
    } else {
      StorageNode* home = peers_[static_cast<std::size_t>(meta.home_node)];
      DataBuffer wire = block->data.clone();
      if (transport_ != nullptr) transport_->record(id_, meta.home_node, wire.size());
      home->store_block_at_home(meta, block->key.block, std::move(wire));
    }
  }
  for (auto& w : writes) w.get();
  for (const auto& block : dirty) {
    {
      std::lock_guard lock(mutex_);
      block->durable = true;
    }
    catalog_->shard_for(name).note_durable(block->key);
  }
}

void StorageNode::store_block_at_home(const ArrayMeta& meta, std::uint64_t block,
                                      DataBuffer data) {
  DOOC_REQUIRE(meta.home_node == id_, "store_block_at_home on a non-home node");
  io_.write(meta.path, block * meta.block_size, std::move(data)).get();
}

// ---- reclamation ---------------------------------------------------------------

void StorageNode::reclaim_locked(std::uint64_t incoming) {
  if (resident_bytes_ + incoming <= config_.memory_budget) return;
  // Gather reclaimable blocks: sealed, unpinned, re-obtainable from disk.
  // (The paper: "the storage reclaims blocks that are stored on the disk of
  // any node and which are not currently used, according to LRU".)
  // 2Q victim classes: transient at-cap copies go first, then the
  // probationary segment (never re-referenced, not hot), and the protected
  // segment only yields when nothing else is reclaimable. LRU within each
  // class. This is what keeps hot replicas resident through one-pass scans.
  const auto twoq_class = [](const Block& b) { return b.transient ? 0 : b.hot ? 2 : 1; };
  while (resident_bytes_ + incoming > config_.memory_budget) {
    BlockPtr victim;
    for (auto& [key, block] : blocks_) {
      if (block->state != BlockState::Resident || !block->sealed || !block->durable) continue;
      if (block->read_pins != 0 || block->write_pins != 0) continue;
      if (!block->read_waiters.empty() || block->fetch_inflight) continue;
      if (block->data.size() == 0) continue;
      if (!victim) {
        victim = block;
        continue;
      }
      switch (config_.eviction) {
        case EvictionPolicy::Lru:
          if (block->lru_tick < victim->lru_tick) victim = block;
          break;
        case EvictionPolicy::Fifo:
          if (block->load_seq < victim->load_seq) victim = block;
          break;
        case EvictionPolicy::Random:
          if (rng_.next_below(2) == 0) victim = block;
          break;
        case EvictionPolicy::TwoQ: {
          const int bc = twoq_class(*block);
          const int vc = twoq_class(*victim);
          if (bc < vc || (bc == vc && block->lru_tick < victim->lru_tick)) victim = block;
          break;
        }
      }
    }
    if (!victim) {
      DOOC_LOG(Debug, "storage[" + std::to_string(id_) + "]")
          << "memory budget exceeded but nothing is reclaimable ("
          << resident_bytes_ + incoming << " > " << config_.memory_budget << ")";
      return;  // allow overshoot rather than deadlocking
    }
    resident_bytes_ -= victim->bytes;
    {
      std::lock_guard slock(stats_mutex_);
      ++stats_.evictions;
      stats_.evicted_bytes += victim->bytes;
    }
    m_evictions_->add();
    if (obs::trace_enabled()) {
      obs::emit_instant(obs::intern("storage"), obs::intern("evict"), id_, 0);
    }
    pending_drops_.push_back(victim->key);
    blocks_.erase(victim->key);
  }
}

void StorageNode::publish_pending_drops() {
  std::vector<BlockKey> drops;
  {
    std::lock_guard lock(mutex_);
    drops.swap(pending_drops_);
  }
  for (const auto& key : drops) catalog_->shard_for(key.array).drop_holder(key, id_);
}

// ---- introspection --------------------------------------------------------------

StorageStats StorageNode::stats() {
  publish_pending_drops();
  StorageStats out;
  {
    std::lock_guard lock(stats_mutex_);
    out = stats_;
  }
  // The I/O filter pool is the single source of truth for disk traffic.
  out.disk_reads = io_.reads();
  out.disk_read_bytes = io_.read_bytes();
  out.disk_writes = io_.writes();
  out.disk_write_bytes = io_.write_bytes();
  out.disk_read_seconds = io_.read_seconds();
  out.disk_write_seconds = io_.write_seconds();
  return out;
}

std::uint64_t StorageNode::resident_bytes() {
  std::lock_guard lock(mutex_);
  return resident_bytes_;
}

std::uint64_t StorageNode::inflight_load_bytes(TenantId tenant) {
  std::lock_guard lock(mutex_);
  return fair_.inflight(tenant);
}

std::uint64_t StorageNode::inflight_load_bytes() {
  std::lock_guard lock(mutex_);
  return inflight_load_bytes_;
}

}  // namespace dooc::storage
