#include "storage/storage_cluster.hpp"

#include "common/error.hpp"
#include "fault/fault_plan.hpp"

namespace dooc::storage {

StorageCluster::StorageCluster(int num_nodes, const StorageConfig& base,
                               df::TransportStats* transport)
    : transport_(transport) {
  DOOC_REQUIRE(num_nodes > 0, "storage cluster needs at least one node");
  shards_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) shards_.push_back(std::make_unique<CatalogShard>());
  std::vector<CatalogShard*> shard_ptrs;
  shard_ptrs.reserve(shards_.size());
  for (auto& s : shards_) shard_ptrs.push_back(s.get());
  catalog_ = std::make_unique<DistributedCatalog>(std::move(shard_ptrs));

  // One shared plan per cluster (it is cluster state). Programmatic config
  // wins; otherwise DOOC_FAULTS activates injection for the whole run.
  fault_plan_ = base.fault_plan != nullptr ? base.fault_plan : fault::FaultPlan::from_env();
  // Same resolution for the codec policy: programmatic config, else
  // DOOC_CODEC, else off. Resolved once so every node agrees.
  codec_ = base.codec ? *base.codec : spmv::codec::CodecConfig::from_env();
  // And for the replication policy: every node must agree on the heat
  // thresholds, replica cap and decay, or the catalog's decisions would
  // mean different things to different fetchers.
  replication_ = base.replication ? *base.replication : ReplicationConfig::from_env();

  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    StorageConfig cfg = base;
    cfg.seed = base.seed + static_cast<std::uint64_t>(i) * 1000003;
    cfg.fault_plan = fault_plan_;
    cfg.codec = codec_;
    cfg.replication = replication_;
    nodes_.push_back(std::make_unique<StorageNode>(i, cfg, catalog_.get(), transport));
  }
  std::vector<StorageNode*> peers;
  peers.reserve(nodes_.size());
  for (auto& n : nodes_) peers.push_back(n.get());
  for (auto& n : nodes_) n->set_peers(peers);
}

StorageCluster::~StorageCluster() = default;

void StorageCluster::set_tenant(TenantId tenant, double weight, int priority) {
  for (auto& n : nodes_) n->set_tenant(tenant, weight, priority);
}

void StorageCluster::retire_tenant(TenantId tenant) {
  for (auto& n : nodes_) n->retire_tenant(tenant);
}

StorageStats StorageCluster::total_stats() {
  StorageStats total;
  for (auto& n : nodes_) {
    const StorageStats s = n->stats();
    total.disk_reads += s.disk_reads;
    total.disk_read_bytes += s.disk_read_bytes;
    total.disk_writes += s.disk_writes;
    total.disk_write_bytes += s.disk_write_bytes;
    total.remote_fetches += s.remote_fetches;
    total.remote_fetch_bytes += s.remote_fetch_bytes;
    total.evictions += s.evictions;
    total.evicted_bytes += s.evicted_bytes;
    total.lookup_hops += s.lookup_hops;
    total.read_requests += s.read_requests;
    total.write_requests += s.write_requests;
    total.prefetch_requests += s.prefetch_requests;
    total.decoded_blocks += s.decoded_blocks;
    total.decoded_bytes += s.decoded_bytes;
    total.replica_hits += s.replica_hits;
    total.replica_misses += s.replica_misses;
    total.replica_promotions += s.replica_promotions;
    total.replica_bypass += s.replica_bypass;
    total.disk_read_seconds += s.disk_read_seconds;
    total.disk_write_seconds += s.disk_write_seconds;
    total.decode_seconds += s.decode_seconds;
  }
  return total;
}

std::uint64_t StorageCluster::total_resident_bytes() {
  std::uint64_t total = 0;
  for (auto& n : nodes_) total += n->resident_bytes();
  return total;
}

bool StorageCluster::forget_block(const BlockKey& key) {
  // Refuse if any node still has the block busy (pinned / awaited / in
  // flight): then the data is not actually lost and must not be clobbered.
  for (auto& n : nodes_) {
    if (n->forget_block_local(key) == StorageNode::ForgetResult::Busy) return false;
  }
  catalog_->shard_for(key.array).reset_block(key);
  return true;
}

}  // namespace dooc::storage
