// Aligned, reusable read buffers for the I/O filters.
//
// Every block load used to allocate (and zero) a fresh vector; on the
// storage hot path that memset is a second pass over every byte read — a
// hidden half of the "stream-read double copy". BufferPool hands out
// page-aligned allocations padded to the alignment (so O_DIRECT preads can
// land in them directly) wrapped as ordinary DataBuffers: when the last
// handle drops, the allocation returns to a bounded per-size-class free
// list instead of the allocator. Steady-state block reads therefore reuse
// the same few buffers with zero allocation and zero pre-touch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/buffer.hpp"

namespace dooc::storage {

class BufferPool {
 public:
  struct Config {
    /// Allocation alignment and padding quantum; must be a power of two and
    /// >= 512 for O_DIRECT on any mainstream filesystem.
    std::size_t alignment = 4096;
    /// Retained free buffers per size class; excess frees go back to the
    /// allocator so one burst cannot pin memory forever.
    std::size_t max_retained = 8;
  };

  struct Stats {
    std::uint64_t allocations = 0;  ///< fresh aligned allocations
    std::uint64_t reuses = 0;       ///< acquisitions served from the free list
    std::uint64_t retained = 0;     ///< buffers currently parked in free lists
    std::uint64_t outstanding = 0;  ///< buffers currently lent out
  };

  BufferPool();  ///< default Config
  explicit BufferPool(Config cfg);

  /// A DataBuffer of exactly `size` bytes whose backing allocation is
  /// aligned to cfg.alignment and padded to a multiple of it — writing up
  /// to padded_capacity(size) bytes through data() is in bounds, which is
  /// what lets an O_DIRECT pread of the rounded-up length land in place.
  /// The memory is NOT zeroed. Thread-safe.
  [[nodiscard]] DataBuffer acquire(std::size_t size);

  /// Usable capacity behind a buffer returned by acquire(size).
  [[nodiscard]] std::size_t padded_capacity(std::size_t size) const noexcept;

  [[nodiscard]] std::size_t alignment() const noexcept;
  [[nodiscard]] Stats stats() const;

 private:
  struct State;
  /// Shared so in-flight buffers can outlive the pool: their deleters hold
  /// the state and simply free once the pool itself is gone.
  std::shared_ptr<State> state_;
};

}  // namespace dooc::storage
