// Hot-block dynamic replication policy (ROADMAP item: data diffusion).
//
// The paper's global mapping is partitioned, never replicated: every
// consumer of a hot immutable block forwards to its single home node, a
// read-throughput cap that worsens as the multi-tenant runtime packs more
// jobs onto the same storage nodes. Because blocks are write-once, copies
// need no coherency protocol — any sealed copy is the block. This module
// holds the *policy* pieces, pure arithmetic shared by the real storage
// layer and the DES so both replay the same decisions deterministically:
//
//  * ReplicationConfig — the DOOC_REPLICATION grammar
//    (`on,hot_threshold=4,max_replicas=3,decay=64`);
//  * HeatTracker — decayed per-block access-frequency counters. Decay is
//    driven by the tracker's own access count (every `decay` recorded
//    accesses each counter older than the current epoch halves once per
//    elapsed epoch), never by wall-clock time, so a replayed access
//    sequence yields bitwise-identical heat;
//  * rank_holders — deterministic replica selection: rendezvous hashing
//    over (block, holder, requester) spreads a hot block's readers across
//    its replica set instead of hammering the lowest-numbered holder.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/types.hpp"

namespace dooc::storage::replication {

/// What the authority shard decided about one recorded access.
struct AccessDecision {
  std::uint32_t heat = 0;   ///< decayed access count after this access
  bool hot = false;         ///< heat >= hot_threshold
  bool newly_hot = false;   ///< this access crossed the threshold
  /// False when the block is durable and already at max_replicas listed
  /// holders: the fetcher should keep its copy *transient* (evict-first,
  /// unlisted) instead of registering another replica. Non-durable sealed
  /// blocks always register — they may be the only copy in existence and
  /// await_block() signalling depends on note_holder().
  bool replicate = true;
};

/// Deterministic decayed access-frequency counters, keyed by block.
/// Not thread-safe — callers hold their own lock (the catalog shard's
/// mutex in the real engine; the DES is single-threaded).
class HeatTracker {
 public:
  explicit HeatTracker(std::uint32_t decay) : decay_(decay == 0 ? 1 : decay) {}

  /// Record one access and return the block's new decayed count.
  std::uint32_t record(const BlockKey& key);
  /// Current decayed count without recording an access.
  [[nodiscard]] std::uint32_t peek(const BlockKey& key) const;
  void forget(const BlockKey& key) { entries_.erase(key); }
  void forget_array(const ArrayName& name);
  [[nodiscard]] std::uint32_t decay() const noexcept { return decay_; }

 private:
  struct Entry {
    std::uint32_t count = 0;
    std::uint64_t epoch = 0;  ///< accesses_/decay_ when last touched
  };
  /// Halve `count` once per epoch elapsed since it was last touched.
  [[nodiscard]] static std::uint32_t decayed(const Entry& e, std::uint64_t now_epoch);

  std::uint32_t decay_;
  std::uint64_t accesses_ = 0;
  std::unordered_map<BlockKey, Entry> entries_;
};

// ReplicationConfig itself lives in storage/types.hpp (StorageConfig holds
// one by value, and this header needs BlockKey from there).

/// Order candidate holders for a fetch by rendezvous hash over
/// (block, holder, requester): a pure function, so every node computes the
/// same spread and a hot block's readers fan out across its replica set.
/// `requester` participates so different requesters prefer different
/// holders. Holders equal to `requester` are dropped.
[[nodiscard]] std::vector<int> rank_holders(const BlockKey& key, int requester,
                                            std::vector<int> holders);

}  // namespace dooc::storage::replication
