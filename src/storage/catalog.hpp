// The partitioned global mapping of the storage layer.
//
// "The global mapping (of which data is stored where) is not replicated on
// each node but instead partitioned" (paper §III-B). Every array has one
// *authority shard* — the catalog partition living on node
// hash(name) mod N — which records the array's metadata, which node's
// scratch file holds each durable block, and which nodes currently hold a
// sealed in-memory copy. Peers that miss locally consult the authority
// (HashOwner protocol) or walk random peers until one knows (RandomWalk,
// the protocol the paper describes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "storage/replication.hpp"
#include "storage/types.hpp"

namespace dooc::storage {

/// Metadata for one array. Immutable once registered.
struct ArrayMeta {
  ArrayName name;
  std::uint64_t size = 0;        ///< total bytes (raw/decoded — task sizing never changes)
  std::uint64_t block_size = 0;  ///< bytes per block (last block may be short)
  int home_node = 0;             ///< node whose scratch file backs this array
  std::string path;              ///< backing file path at the home node
  /// When nonzero the backing file holds a codec frame of this many bytes
  /// that decodes to exactly `size` bytes (single-block arrays only — the
  /// frame is the transfer unit). 0 = the file holds the raw bytes.
  std::uint64_t stored_bytes = 0;

  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return block_size == 0 ? 0 : (size + block_size - 1) / block_size;
  }
  [[nodiscard]] std::uint64_t block_bytes(std::uint64_t block) const noexcept {
    const std::uint64_t begin = block * block_size;
    return begin >= size ? 0 : std::min(block_size, size - begin);
  }
};

/// What the authority knows about one block.
struct BlockInfo {
  bool durable = false;       ///< on disk in the home node's scratch file
  std::vector<int> holders;   ///< nodes with a sealed in-memory copy
};

/// One catalog partition. Thread-safe; callbacks registered via
/// await_block() are invoked *outside* the shard lock.
class CatalogShard {
 public:
  using BlockCallback = std::function<void(const BlockKey&)>;

  /// Register a new array. `all_durable` marks every block as already on
  /// disk (imported/scanned files) as opposed to none (fresh arrays).
  /// Non-authoritative registrations ("aliases", kept at the home node so
  /// the RandomWalk protocol can find arrays there too) carry metadata only
  /// and never answer block_info queries.
  void register_array(ArrayMeta meta, bool all_durable, bool authoritative = true);

  void unregister_array(const ArrayName& name);

  [[nodiscard]] std::optional<ArrayMeta> find(const ArrayName& name) const;
  [[nodiscard]] std::vector<ArrayName> list() const;

  /// Record that `node` holds a sealed in-memory copy of the block.
  /// Fires any await_block() callbacks registered for it.
  void note_holder(const BlockKey& key, int node);
  /// The copy on `node` went away (eviction or shutdown).
  void drop_holder(const BlockKey& key, int node);
  /// The block is now on disk at the home node. Fires awaiters.
  void note_durable(const BlockKey& key);
  /// Lost-block recovery: erase everything known about the block — holders
  /// and the durable bit — so a resurrected producer may rewrite it. The
  /// next await_block() parks until the re-run seals it again.
  void reset_block(const BlockKey& key);

  [[nodiscard]] BlockInfo block_info(const BlockKey& key) const;

  /// Record one fetch of the block by `node` in the authority's decayed
  /// frequency counters and return the replication decision: the block's
  /// heat, whether it is (newly) hot, and whether the fetcher should
  /// register its copy as a replica or keep it transient (durable block
  /// already at `cfg.max_replicas` listed holders). Only called by nodes
  /// with replication enabled; the shard lazily creates its tracker from
  /// `cfg.decay` (cluster-wide config, so every caller agrees).
  replication::AccessDecision record_fetch(const BlockKey& key, int node,
                                           const ReplicationConfig& cfg);
  /// Current decayed heat of a block (introspection/tests).
  [[nodiscard]] std::uint32_t heat_of(const BlockKey& key) const;

  /// Register interest in a block that no one has produced yet. The
  /// callback fires (once) as soon as a holder appears or the block turns
  /// durable. If the block is already obtainable the callback fires
  /// immediately from the calling thread.
  void await_block(const BlockKey& key, BlockCallback cb);

 private:
  struct ArrayEntry {
    ArrayMeta meta;
    std::vector<bool> durable;                    // per block
    std::map<std::uint64_t, std::set<int>> holders;  // block -> nodes
  };

  [[nodiscard]] bool obtainable_locked(const ArrayEntry& e, std::uint64_t block) const;

  mutable std::mutex mutex_;
  std::map<ArrayName, ArrayEntry> arrays_;
  std::map<BlockKey, std::vector<BlockCallback>> awaiters_;
  /// Decayed access-frequency counters for replication (lazily created on
  /// the first record_fetch; null while replication is off everywhere).
  std::unique_ptr<replication::HeatTracker> heat_;
};

/// Routes catalog operations to the right shard and implements the two
/// lookup protocols. Shards are owned by the StorageCluster (one per node);
/// DistributedCatalog is a thin, shared view.
class DistributedCatalog {
 public:
  DistributedCatalog(std::vector<CatalogShard*> shards) : shards_(std::move(shards)) {}

  [[nodiscard]] int authority_of(const ArrayName& name) const noexcept {
    return static_cast<int>(std::hash<std::string>()(name) % shards_.size());
  }

  [[nodiscard]] CatalogShard& shard_for(const ArrayName& name) const {
    return *shards_[static_cast<std::size_t>(authority_of(name))];
  }

  [[nodiscard]] int num_shards() const noexcept { return static_cast<int>(shards_.size()); }
  [[nodiscard]] CatalogShard& shard(int node) const { return *shards_[static_cast<std::size_t>(node)]; }

  /// Find array metadata using the given protocol, starting from
  /// `from_node`. Returns the metadata plus the number of peer queries
  /// ("hops") the lookup needed; nullopt if no node knows the array.
  struct LookupResult {
    std::optional<ArrayMeta> meta;
    int hops = 0;
  };
  [[nodiscard]] LookupResult lookup(const ArrayName& name, int from_node,
                                    LookupProtocol protocol, std::uint64_t* rng_state) const;

 private:
  std::vector<CatalogShard*> shards_;
};

}  // namespace dooc::storage
