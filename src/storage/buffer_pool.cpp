#include "storage/buffer_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace dooc::storage {

struct BufferPool::State {
  Config cfg;
  std::mutex mu;
  /// Free lists keyed by padded capacity; all entries are aligned blocks of
  /// exactly that many bytes.
  std::map<std::size_t, std::vector<void*>> free;
  Stats stats;

  ~State() {
    for (auto& [cap, list] : free) {
      for (void* p : list) std::free(p);
    }
  }
};

BufferPool::BufferPool() : BufferPool(Config{}) {}

BufferPool::BufferPool(Config cfg) : state_(std::make_shared<State>()) {
  DOOC_REQUIRE(cfg.alignment >= 512 && (cfg.alignment & (cfg.alignment - 1)) == 0,
               "buffer pool alignment must be a power of two >= 512");
  state_->cfg = cfg;
}

std::size_t BufferPool::padded_capacity(std::size_t size) const noexcept {
  const std::size_t a = state_->cfg.alignment;
  return (std::max<std::size_t>(size, 1) + a - 1) / a * a;
}

std::size_t BufferPool::alignment() const noexcept { return state_->cfg.alignment; }

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard lock(state_->mu);
  return state_->stats;
}

DataBuffer BufferPool::acquire(std::size_t size) {
  const std::size_t capacity = padded_capacity(size);
  std::shared_ptr<State> state = state_;
  void* mem = nullptr;
  {
    std::lock_guard lock(state->mu);
    auto it = state->free.find(capacity);
    if (it != state->free.end() && !it->second.empty()) {
      mem = it->second.back();
      it->second.pop_back();
      --state->stats.retained;
      ++state->stats.reuses;
    }
  }
  if (mem == nullptr) {
    if (::posix_memalign(&mem, state->cfg.alignment, capacity) != 0) {
      throw IoError("buffer pool: aligned allocation of " + std::to_string(capacity) +
                    " bytes failed");
    }
    std::lock_guard lock(state->mu);
    ++state->stats.allocations;
  }
  {
    std::lock_guard lock(state->mu);
    ++state->stats.outstanding;
  }
  auto deleter = [state, capacity](std::byte* p) {
    std::lock_guard lock(state->mu);
    --state->stats.outstanding;
    auto& list = state->free[capacity];
    if (list.size() < state->cfg.max_retained) {
      list.push_back(p);
      ++state->stats.retained;
    } else {
      std::free(p);
    }
  };
  return DataBuffer::adopt(std::shared_ptr<std::byte>(static_cast<std::byte*>(mem), deleter),
                           size);
}

}  // namespace dooc::storage
