#include "storage/io_worker.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dooc::storage {

namespace {

class ScopedFd {
 public:
  /// Adopt an already-open descriptor.
  explicit ScopedFd(int fd) noexcept : fd_(fd) {}
  ScopedFd(const std::string& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {
    if (fd_ < 0) {
      throw IoError("open('" + path + "') failed: " + std::strerror(errno));
    }
  }
  ~ScopedFd() {
    if (fd_ >= 0) ::close(fd_);
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }

  /// Drop O_DIRECT from an already-open descriptor (mid-read fallback when
  /// the filesystem rejects a direct transfer with EINVAL).
  void clear_direct() noexcept {
#ifdef O_DIRECT
    const int flags = ::fcntl(fd_, F_GETFL);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_DIRECT);
#endif
  }

 private:
  int fd_;
};

/// Open for reading, trying O_DIRECT first when requested. Returns whether
/// the descriptor ended up direct; any O_DIRECT refusal (EINVAL on weird
/// filesystems, ENOTSUP) silently degrades to a buffered descriptor.
ScopedFd open_read(const std::string& path, bool want_direct, bool& is_direct) {
  is_direct = false;
#ifdef O_DIRECT
  if (want_direct) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECT);
    if (fd >= 0) {
      is_direct = true;
      return ScopedFd(fd);
    }
  }
#else
  (void)want_direct;
#endif
  return ScopedFd(path, O_RDONLY);
}

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double now_seconds() { return static_cast<double>(now_nanos()) * 1e-9; }

}  // namespace

IoWorkerPool::IoWorkerPool(int num_workers, double throttle_read_bw, int node,
                           std::shared_ptr<fault::FaultPlan> fault, bool direct_io)
    : throttle_read_bw_(throttle_read_bw),
      node_(node),
      direct_io_(direct_io),
      fault_(std::move(fault)),
      read_latency_us_(&obs::Metrics::instance().histogram("io.read_latency_us", node)),
      write_latency_us_(&obs::Metrics::instance().histogram("io.write_latency_us", node)),
      m_retries_(&obs::Metrics::instance().counter("io.retries", node)) {
  DOOC_REQUIRE(num_workers > 0, "need at least one I/O worker");
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoWorkerPool::~IoWorkerPool() {
  jobs_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<DataBuffer> IoWorkerPool::read(std::string path, std::uint64_t offset,
                                           std::uint64_t length) {
  Job job;
  job.is_read = true;
  job.path = std::move(path);
  job.offset = offset;
  job.length = length;
  auto fut = job.read_done.get_future();
  const bool ok = jobs_.push(std::move(job));
  DOOC_CHECK(ok, "I/O pool already shut down");
  return fut;
}

std::future<void> IoWorkerPool::write(std::string path, std::uint64_t offset, DataBuffer data) {
  Job job;
  job.is_read = false;
  job.path = std::move(path);
  job.offset = offset;
  job.data = std::move(data);
  auto fut = job.write_done.get_future();
  const bool ok = jobs_.push(std::move(job));
  DOOC_CHECK(ok, "I/O pool already shut down");
  return fut;
}

void IoWorkerPool::worker_loop() {
  while (auto job = jobs_.pop()) {
    if (job->is_read) {
      try {
        do_read(*job);
      } catch (...) {
        job->read_done.set_exception(std::current_exception());
      }
    } else {
      try {
        do_write(*job);
      } catch (...) {
        job->write_done.set_exception(std::current_exception());
      }
    }
  }
}

void IoWorkerPool::fault_sleep(const char* why, double seconds) {
  if (seconds <= 0.0) return;
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) span.emplace("fault", why, node_);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void IoWorkerPool::do_read(Job& job) {
  if (!fault_) {
    job.read_done.set_value(read_attempt(job, {}));
    return;
  }
  // Fault-tolerant path: retry transient failures — injected or real — with
  // capped exponential backoff until the policy (attempts or deadline) is
  // exhausted, then surface a typed StorageError.
  fault::RetryBudget budget(fault_->config().retry, now_seconds());
  for (;;) {
    try {
      job.read_done.set_value(read_attempt(job, fault_->next_read(node_)));
      return;
    } catch (const IoError& e) {
      if (!budget.try_again(now_seconds())) {
        throw StorageError("read of '" + job.path + "' failed permanently after " +
                           std::to_string(budget.failures()) + " attempt(s): " + e.what());
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      m_retries_->add();
      fault_sleep("retry_backoff", budget.next_backoff_s(now_seconds()));
    }
  }
}

DataBuffer IoWorkerPool::read_attempt(Job& job, const fault::FaultDecision& verdict) {
  using Action = fault::FaultDecision::Action;
  if (verdict.action == Action::Fail) {
    throw IoError("injected transient read error on '" + job.path + "'");
  }
  if (verdict.action == Action::Delay) fault_sleep("latency_spike", verdict.delay_s);
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) {
    span.emplace("io", "disk_read", node_);
    span->arg("bytes", job.length);
  }
  const std::uint64_t t0 = now_nanos();
  const std::uint64_t align = pool_.alignment();
  // O_DIRECT needs an aligned file offset; the aligned buffer and padded
  // length come from the pool. Unaligned offsets read buffered.
  bool direct = false;
  ScopedFd fd = open_read(job.path, direct_io_ && job.offset % align == 0, direct);
  // A short read truncates the transfer partway, as a flaky device would.
  const std::uint64_t want =
      verdict.action == Action::ShortRead ? job.length - (job.length + 1) / 2 : job.length;
  // Pooled buffer: aligned, padded to the alignment quantum, not zeroed —
  // the pread is the only pass over these bytes.
  DataBuffer buffer = pool_.acquire(job.length);
  std::uint64_t done = 0;
  while (done < want) {
    // Direct transfers must be whole aligned units; at EOF the kernel
    // returns the short tail like any other read. The rounded-up count is
    // capped at the pooled capacity: a device honoring a finer O_DIRECT
    // granularity (e.g. 512) can leave `done` unaligned to the pool
    // quantum, where the naive round-up would land past the buffer.
    std::uint64_t ask = want - done;
    if (direct && verdict.action != Action::ShortRead) {
      ask = std::min<std::uint64_t>((want - done + align - 1) / align * align,
                                    pool_.padded_capacity(job.length) - done);
    }
    const ssize_t n =
        ::pread(fd.get(), buffer.data() + done, ask, static_cast<off_t>(job.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (direct && errno == EINVAL) {
        // The filesystem accepted O_DIRECT at open but refused the
        // transfer geometry: degrade this descriptor to buffered.
        fd.clear_direct();
        direct = false;
        continue;
      }
      throw IoError("pread('" + job.path + "') failed: " + std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("pread('" + job.path + "'): short read (file smaller than catalog size?)");
    }
    done += static_cast<std::uint64_t>(n);
  }
  // A direct read of the padded tail may overshoot `want` (never the
  // padded capacity); the buffer's logical size stays job.length.
  if (direct) direct_reads_.fetch_add(1, std::memory_order_relaxed);
  if (done < job.length) {
    throw IoError("injected short read on '" + job.path + "' (" + std::to_string(done) + "/" +
                  std::to_string(job.length) + " bytes)");
  }
  const std::uint64_t t1 = now_nanos();
  if (throttle_read_bw_ > 0.0) {
    const double want_seconds = static_cast<double>(job.length) / throttle_read_bw_;
    const double spent = static_cast<double>(t1 - t0) * 1e-9;
    if (want_seconds > spent) {
      std::this_thread::sleep_for(std::chrono::duration<double>(want_seconds - spent));
    }
  }
  const std::uint64_t elapsed = now_nanos() - t0;
  read_nanos_.fetch_add(elapsed, std::memory_order_relaxed);
  reads_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(job.length, std::memory_order_relaxed);
  read_latency_us_->add(static_cast<double>(elapsed) * 1e-3);
  return buffer;
}

void IoWorkerPool::do_write(Job& job) {
  if (!fault_) {
    write_attempt(job, {});
    job.write_done.set_value();
    return;
  }
  fault::RetryBudget budget(fault_->config().retry, now_seconds());
  for (;;) {
    try {
      write_attempt(job, fault_->next_write(node_));
      job.write_done.set_value();
      return;
    } catch (const IoError& e) {
      if (!budget.try_again(now_seconds())) {
        throw StorageError("write of '" + job.path + "' failed permanently after " +
                           std::to_string(budget.failures()) + " attempt(s): " + e.what());
      }
      retries_.fetch_add(1, std::memory_order_relaxed);
      m_retries_->add();
      fault_sleep("retry_backoff", budget.next_backoff_s(now_seconds()));
    }
  }
}

void IoWorkerPool::write_attempt(Job& job, const fault::FaultDecision& verdict) {
  using Action = fault::FaultDecision::Action;
  if (verdict.action == Action::Fail) {
    throw IoError("injected transient write error on '" + job.path + "'");
  }
  if (verdict.action == Action::Delay) fault_sleep("latency_spike", verdict.delay_s);
  std::optional<obs::Span> span;
  if (obs::trace_enabled()) {
    span.emplace("io", "disk_write", node_);
    span->arg("bytes", job.data.size());
  }
  const std::uint64_t t0 = now_nanos();
  ScopedFd fd(job.path, O_WRONLY | O_CREAT);
  std::uint64_t done = 0;
  const std::uint64_t total = job.data.size();
  while (done < total) {
    const ssize_t n = ::pwrite(fd.get(), job.data.data() + done, total - done,
                               static_cast<off_t>(job.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pwrite('" + job.path + "') failed: " + std::strerror(errno));
    }
    done += static_cast<std::uint64_t>(n);
  }
  const std::uint64_t elapsed = now_nanos() - t0;
  write_nanos_.fetch_add(elapsed, std::memory_order_relaxed);
  writes_.fetch_add(1, std::memory_order_relaxed);
  write_bytes_.fetch_add(total, std::memory_order_relaxed);
  write_latency_us_->add(static_cast<double>(elapsed) * 1e-3);
}

}  // namespace dooc::storage
