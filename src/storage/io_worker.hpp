// The asynchronous I/O filter of the paper: "Interactions with the
// filesystem (both read and write) are performed by a separate I/O filter
// ... allows the interactions with the file system to be completely
// asynchronous. There should be as many I/O filters as is necessary to
// efficiently use the parallelism contained in the I/O subsystem."
//
// IoWorkerPool runs N worker threads draining a job queue of block-granular
// pread/pwrite operations against per-array scratch files.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "common/queue.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "storage/buffer_pool.hpp"
#include "storage/types.hpp"

namespace dooc::storage {

class IoWorkerPool {
 public:
  /// `throttle_read_bw` (bytes/s; 0 = off) inserts sleeps to emulate a slow
  /// device on fast local filesystems. `node` scopes the pool's obs metrics
  /// and trace events to a virtual node (-1 = unscoped). With a `fault`
  /// plan the pool becomes both the injection site (the plan's read/write
  /// verdicts fire here) and the retry site: transient failures — injected
  /// or real — are retried per the plan's RetryPolicy (capped exponential
  /// backoff + per-request deadline) and only exhaustion surfaces, as a
  /// typed StorageError. With `direct_io` reads are attempted O_DIRECT
  /// (aligned offsets only), falling back to buffered pread when the
  /// filesystem refuses — never an error the caller sees.
  explicit IoWorkerPool(int num_workers, double throttle_read_bw = 0.0, int node = -1,
                        std::shared_ptr<fault::FaultPlan> fault = nullptr,
                        bool direct_io = false);
  ~IoWorkerPool();

  IoWorkerPool(const IoWorkerPool&) = delete;
  IoWorkerPool& operator=(const IoWorkerPool&) = delete;

  /// Asynchronously read [offset, offset+length) of `path` into a pooled
  /// aligned buffer (reused across reads; never zero-filled first). The
  /// future throws IoError on failure (missing file, short read).
  std::future<DataBuffer> read(std::string path, std::uint64_t offset, std::uint64_t length);

  /// Asynchronously write `data` at [offset, offset+data.size()) of `path`,
  /// creating the file (and growing it) as needed.
  std::future<void> write(std::string path, std::uint64_t offset, DataBuffer data);

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t read_bytes() const noexcept { return read_bytes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t write_bytes() const noexcept { return write_bytes_.load(std::memory_order_relaxed); }
  /// Cumulative seconds worker threads spent inside filesystem calls.
  [[nodiscard]] double read_seconds() const noexcept { return as_seconds(read_nanos_); }
  [[nodiscard]] double write_seconds() const noexcept { return as_seconds(write_nanos_); }
  /// Transient failures retried away (never surfaced to callers).
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_.load(std::memory_order_relaxed); }
  /// Reads that completed through an O_DIRECT descriptor.
  [[nodiscard]] std::uint64_t direct_reads() const noexcept { return direct_reads_.load(std::memory_order_relaxed); }
  /// The shared aligned read-buffer pool (stats inspection for tests).
  [[nodiscard]] BufferPool& buffer_pool() noexcept { return pool_; }

 private:
  struct Job {
    bool is_read = false;
    std::string path;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;  // reads only
    DataBuffer data;           // writes only
    std::promise<DataBuffer> read_done;
    std::promise<void> write_done;
  };

  void worker_loop();
  void do_read(Job& job);
  void do_write(Job& job);
  /// One physical attempt, with the plan's verdict applied first.
  DataBuffer read_attempt(Job& job, const fault::FaultDecision& verdict);
  void write_attempt(Job& job, const fault::FaultDecision& verdict);
  /// Sleep out a backoff/latency window under a "fault"-category span so
  /// the causal graph can blame the time on the injected fault.
  void fault_sleep(const char* why, double seconds);

  static double as_seconds(const std::atomic<std::uint64_t>& nanos) noexcept {
    return static_cast<double>(nanos.load(std::memory_order_relaxed)) * 1e-9;
  }

  BlockingQueue<Job> jobs_;
  std::vector<std::thread> workers_;
  double throttle_read_bw_;
  int node_;
  bool direct_io_;
  BufferPool pool_;
  std::shared_ptr<fault::FaultPlan> fault_;
  /// Resolved once; obs::Histogram is internally synchronized.
  obs::Histogram* read_latency_us_;
  obs::Histogram* write_latency_us_;
  obs::Counter* m_retries_;
  std::atomic<std::uint64_t> reads_{0}, read_bytes_{0}, writes_{0}, write_bytes_{0};
  std::atomic<std::uint64_t> read_nanos_{0}, write_nanos_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> direct_reads_{0};
};

}  // namespace dooc::storage
