// The storage subsystem as a dataflow filter.
//
// Paper §III-B: "the implementation in DataCutter is achieved by making the
// storage subsystem a specific filter and all filters that need to interact
// with the storage have a bidirectional link to it. This allows all the
// interactions with the storage layer to be asynchronous."
//
// The library's hot paths use StorageNode's native handle API directly (the
// engine threads are the compute filters), but this adapter exposes the
// same operations over filter streams for applications written purely in
// the filter-stream model: a StorageServiceFilter instance serves
// serialized requests arriving on its "requests" port and answers on
// "responses". Requests carry a caller-chosen tag echoed in the response,
// so a client can pipeline many asynchronous requests — the paper's
// asynchrony at the message level.
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "dataflow/filter.hpp"
#include "storage/storage_node.hpp"

namespace dooc::storage {

enum class StorageOp : std::uint32_t {
  kCreateArray = 1,  ///< name, size, block_size
  kWriteSeal = 2,    ///< name, offset, payload — write one interval and seal
  kRead = 3,         ///< name, offset, length — reply carries the bytes
  kPrefetch = 4,     ///< name, offset, length — fire and forget (still acked)
  kDeleteArray = 5,  ///< name
};

enum class StorageStatus : std::uint32_t { kOk = 0, kError = 1 };

/// Build a request message payload.
DataBuffer encode_create(const ArrayName& name, std::uint64_t size, std::uint64_t block_size);
DataBuffer encode_write(const ArrayName& name, std::uint64_t offset,
                        std::span<const std::byte> payload);
DataBuffer encode_read(const ArrayName& name, std::uint64_t offset, std::uint64_t length);
DataBuffer encode_prefetch(const ArrayName& name, std::uint64_t offset, std::uint64_t length);
DataBuffer encode_delete(const ArrayName& name);

/// Decoded response: status, optional error text, optional data bytes.
struct StorageReply {
  StorageStatus status = StorageStatus::kOk;
  std::string error;
  DataBuffer data;  ///< read results

  [[nodiscard]] bool ok() const noexcept { return status == StorageStatus::kOk; }
};
StorageReply decode_reply(const df::Message& message);

/// The storage filter: owns no data itself, serves one StorageNode.
/// Ports: input "requests", output "responses" (tag echoed).
class StorageServiceFilter final : public df::Filter {
 public:
  explicit StorageServiceFilter(StorageNode* node) : node_(node) {}

  void run(df::FilterContext& ctx) override;

 private:
  df::Message handle(const df::Message& request);

  StorageNode* node_;
};

}  // namespace dooc::storage
