// The filter abstraction: the unit of computation in the filter-stream
// programming model. Application developers "write the filter functions and
// determine the filter and stream layout" (paper §III-A); everything else —
// placement, replication, flow control, node-boundary copies — is handled
// by the runtime.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/options.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/stream.hpp"

namespace dooc::df {

/// Everything a running filter instance may touch. Handed to init/run/
/// finalize; owned by the runtime.
class FilterContext {
 public:
  FilterContext(std::string filter_name, NodeId node, int replica, int num_replicas,
                ThreadPool* pool, const Options* options)
      : filter_name_(std::move(filter_name)),
        node_(node),
        replica_(replica),
        num_replicas_(num_replicas),
        pool_(pool),
        options_(options) {}

  [[nodiscard]] const std::string& filter_name() const noexcept { return filter_name_; }
  /// Virtual node this instance is placed on.
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  /// Index of this transparent copy within its filter group.
  [[nodiscard]] int replica() const noexcept { return replica_; }
  [[nodiscard]] int num_replicas() const noexcept { return num_replicas_; }

  /// Node-local worker pool for intra-filter parallelism.
  [[nodiscard]] ThreadPool& pool() const {
    DOOC_CHECK(pool_ != nullptr, "filter context has no thread pool");
    return *pool_;
  }

  [[nodiscard]] const Options& options() const noexcept { return *options_; }

  [[nodiscard]] bool has_input(const std::string& port) const { return inputs_.count(port) != 0; }
  [[nodiscard]] bool has_output(const std::string& port) const { return outputs_.count(port) != 0; }

  StreamReader& input(const std::string& port) {
    auto it = inputs_.find(port);
    DOOC_REQUIRE(it != inputs_.end(), "unknown input port '" + port + "' on filter " + filter_name_);
    return it->second;
  }

  StreamWriter& output(const std::string& port) {
    auto it = outputs_.find(port);
    DOOC_REQUIRE(it != outputs_.end(), "unknown output port '" + port + "' on filter " + filter_name_);
    return it->second;
  }

  /// Close every output port (the runtime calls this after run() returns,
  /// so end-of-stream propagates even when a filter forgets).
  void close_outputs() {
    for (auto& [name, writer] : outputs_) writer.close();
  }

  // Wiring — used by the runtime while instantiating a layout.
  void attach_input(const std::string& port, StreamReader reader) { inputs_[port] = std::move(reader); }
  void attach_output(const std::string& port, StreamWriter writer) { outputs_[port] = std::move(writer); }

 private:
  std::string filter_name_;
  NodeId node_;
  int replica_;
  int num_replicas_;
  ThreadPool* pool_;
  const Options* options_;
  std::map<std::string, StreamReader> inputs_;
  std::map<std::string, StreamWriter> outputs_;
};

/// Base class of all filters. A filter instance runs on its own thread:
/// init() once, then run() — which typically loops receiving from input
/// ports until end-of-stream — then finalize().
class Filter {
 public:
  virtual ~Filter() = default;

  virtual void init(FilterContext& /*ctx*/) {}
  virtual void run(FilterContext& ctx) = 0;
  virtual void finalize(FilterContext& /*ctx*/) {}
};

using FilterFactory = std::function<std::unique_ptr<Filter>()>;

/// Convenience adaptor: a filter defined by a single callable.
class LambdaFilter final : public Filter {
 public:
  explicit LambdaFilter(std::function<void(FilterContext&)> body) : body_(std::move(body)) {}
  void run(FilterContext& ctx) override { body_(ctx); }

 private:
  std::function<void(FilterContext&)> body_;
};

}  // namespace dooc::df
