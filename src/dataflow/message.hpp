// A message is what travels on a stream: an untyped data buffer plus a small
// application tag. DataCutter deliberately keeps stream payloads untyped so
// the runtime never pays per-element marshalling costs (paper §III-A).
#pragma once

#include <cstdint>

#include "common/buffer.hpp"

namespace dooc::df {

struct Message {
  DataBuffer payload;
  /// Free-form application tag (e.g. block id, iteration number).
  std::uint64_t tag = 0;

  Message() = default;
  explicit Message(DataBuffer buf, std::uint64_t t = 0) : payload(std::move(buf)), tag(t) {}
};

}  // namespace dooc::df
