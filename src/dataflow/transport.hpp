// Virtual-node identity and the node-boundary policy.
//
// The reproduction runs every "node" of the distributed system inside one
// process (no MPI is available in this environment), but distributed-memory
// semantics are preserved: whenever a message crosses a virtual-node
// boundary its payload is deep-copied, so no two nodes ever alias mutable
// memory. The transport also accounts bytes/messages so experiments can
// report network traffic exactly as a wire transport would.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "dataflow/message.hpp"

namespace dooc::df {

using NodeId = int;

/// Per-edge traffic counters, aggregated per (source node, target node).
class TransportStats {
 public:
  explicit TransportStats(int num_nodes)
      : num_nodes_(num_nodes), cells_(static_cast<std::size_t>(num_nodes) * num_nodes) {}

  void record(NodeId from, NodeId to, std::size_t bytes) noexcept {
    auto& c = cell(from, to);
    c.messages.fetch_add(1, std::memory_order_relaxed);
    c.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bytes(NodeId from, NodeId to) const noexcept {
    return cell(from, to).bytes.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages(NodeId from, NodeId to) const noexcept {
    return cell(from, to).messages.load(std::memory_order_relaxed);
  }

  /// Total bytes that crossed any node boundary (excludes node-local sends).
  [[nodiscard]] std::uint64_t cross_node_bytes() const noexcept {
    std::uint64_t total = 0;
    for (NodeId i = 0; i < num_nodes_; ++i)
      for (NodeId j = 0; j < num_nodes_; ++j)
        if (i != j) total += bytes(i, j);
    return total;
  }

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

  /// Plain-value copy of the counter matrix with per-direction aggregates.
  /// Snapshots subtract, so a bench can report the traffic of one phase
  /// (deploy vs. run, iteration k) instead of cumulative totals only.
  struct Snapshot {
    struct Edge {
      std::uint64_t messages = 0;
      std::uint64_t bytes = 0;
    };
    int num_nodes = 0;
    std::vector<Edge> edges;  ///< edges[from * num_nodes + to]

    [[nodiscard]] const Edge& edge(NodeId from, NodeId to) const {
      return edges[static_cast<std::size_t>(from) * num_nodes + to];
    }
    /// Bytes `node` pushed across a boundary (node-local sends excluded).
    [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const noexcept {
      std::uint64_t total = 0;
      for (NodeId to = 0; to < num_nodes; ++to)
        if (to != node) total += edge(node, to).bytes;
      return total;
    }
    /// Bytes delivered to `node` from other nodes.
    [[nodiscard]] std::uint64_t bytes_received(NodeId node) const noexcept {
      std::uint64_t total = 0;
      for (NodeId from = 0; from < num_nodes; ++from)
        if (from != node) total += edge(from, node).bytes;
      return total;
    }
    [[nodiscard]] std::uint64_t cross_node_bytes() const noexcept {
      std::uint64_t total = 0;
      for (NodeId i = 0; i < num_nodes; ++i) total += bytes_sent(i);
      return total;
    }
    [[nodiscard]] std::uint64_t cross_node_messages() const noexcept {
      std::uint64_t total = 0;
      for (NodeId i = 0; i < num_nodes; ++i)
        for (NodeId j = 0; j < num_nodes; ++j)
          if (i != j) total += edge(i, j).messages;
      return total;
    }

    /// Traffic since `earlier` (counters are monotone between resets).
    [[nodiscard]] Snapshot delta(const Snapshot& earlier) const {
      Snapshot d = *this;
      if (earlier.num_nodes != num_nodes) return d;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        d.edges[i].messages -= earlier.edges[i].messages;
        d.edges[i].bytes -= earlier.edges[i].bytes;
      }
      return d;
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.num_nodes = num_nodes_;
    s.edges.resize(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      s.edges[i].messages = cells_[i].messages.load(std::memory_order_relaxed);
      s.edges[i].bytes = cells_[i].bytes.load(std::memory_order_relaxed);
    }
    return s;
  }

  /// Zero every counter (benches isolating a phase). Counters are relaxed
  /// atomics; concurrent record() calls may straddle the reset.
  void reset() noexcept {
    for (auto& c : cells_) {
      c.messages.store(0, std::memory_order_relaxed);
      c.bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  Cell& cell(NodeId from, NodeId to) noexcept {
    return cells_[static_cast<std::size_t>(from) * num_nodes_ + to];
  }
  const Cell& cell(NodeId from, NodeId to) const noexcept {
    return cells_[static_cast<std::size_t>(from) * num_nodes_ + to];
  }

  int num_nodes_;
  std::vector<Cell> cells_;
};

/// Apply the node-boundary policy to a message about to be delivered from
/// `from` to `to`: clone across boundaries, pass through locally.
inline Message cross_boundary(Message m, NodeId from, NodeId to, TransportStats* stats) {
  if (from != to) {
    if (stats != nullptr) stats->record(from, to, m.payload.size());
    m.payload = m.payload.clone();
  }
  return m;
}

}  // namespace dooc::df
