// Virtual-node identity and the node-boundary policy.
//
// The reproduction runs every "node" of the distributed system inside one
// process (no MPI is available in this environment), but distributed-memory
// semantics are preserved: whenever a message crosses a virtual-node
// boundary its payload is deep-copied, so no two nodes ever alias mutable
// memory. The transport also accounts bytes/messages so experiments can
// report network traffic exactly as a wire transport would.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "dataflow/message.hpp"

namespace dooc::df {

using NodeId = int;

/// Per-edge traffic counters, aggregated per (source node, target node).
class TransportStats {
 public:
  explicit TransportStats(int num_nodes)
      : num_nodes_(num_nodes), cells_(static_cast<std::size_t>(num_nodes) * num_nodes) {}

  void record(NodeId from, NodeId to, std::size_t bytes) noexcept {
    auto& c = cell(from, to);
    c.messages.fetch_add(1, std::memory_order_relaxed);
    c.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bytes(NodeId from, NodeId to) const noexcept {
    return cell(from, to).bytes.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messages(NodeId from, NodeId to) const noexcept {
    return cell(from, to).messages.load(std::memory_order_relaxed);
  }

  /// Total bytes that crossed any node boundary (excludes node-local sends).
  [[nodiscard]] std::uint64_t cross_node_bytes() const noexcept {
    std::uint64_t total = 0;
    for (NodeId i = 0; i < num_nodes_; ++i)
      for (NodeId j = 0; j < num_nodes_; ++j)
        if (i != j) total += bytes(i, j);
    return total;
  }

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  Cell& cell(NodeId from, NodeId to) noexcept {
    return cells_[static_cast<std::size_t>(from) * num_nodes_ + to];
  }
  const Cell& cell(NodeId from, NodeId to) const noexcept {
    return cells_[static_cast<std::size_t>(from) * num_nodes_ + to];
  }

  int num_nodes_;
  std::vector<Cell> cells_;
};

/// Apply the node-boundary policy to a message about to be delivered from
/// `from` to `to`: clone across boundaries, pass through locally.
inline Message cross_boundary(Message m, NodeId from, NodeId to, TransportStats* stats) {
  if (from != to) {
    if (stats != nullptr) stats->record(from, to, m.payload.size());
    m.payload = m.payload.clone();
  }
  return m;
}

}  // namespace dooc::df
