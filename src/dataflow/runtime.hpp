// The dataflow runtime: instantiates a Layout across virtual nodes, runs
// every filter instance on its own thread, propagates end-of-stream and
// exceptions, and exposes traffic statistics afterwards.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/layout.hpp"
#include "dataflow/stream.hpp"

namespace dooc::df {

class Runtime {
 public:
  /// `threads_per_node` sizes each virtual node's compute pool (the
  /// parallelism a local scheduler can split tasks across).
  explicit Runtime(int num_nodes, Options options = {}, int threads_per_node = 1);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute the layout to completion. Throws the first filter exception.
  void run(const Layout& layout);

  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] TransportStats& transport() noexcept { return transport_; }
  [[nodiscard]] ThreadPool& node_pool(NodeId node);

  /// Stream statistics gathered during the last run(), keyed by stream name.
  struct StreamStats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const std::map<std::string, StreamStats>& stream_stats() const noexcept {
    return stream_stats_;
  }

 private:
  int num_nodes_;
  Options options_;
  TransportStats transport_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::map<std::string, StreamStats> stream_stats_;
};

}  // namespace dooc::df
