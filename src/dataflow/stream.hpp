// Streams: unidirectional, flow-controlled message channels between filters.
//
// A stream connects a producer filter group to a consumer filter group.
// When either group is replicated ("transparent copies" of a stateless
// filter, paper §III-A) the stream acts as a demand-driven distributor:
// every message is delivered to exactly one consumer replica. End-of-stream
// is reached once every producer endpoint has closed and the queue drained.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/queue.hpp"
#include "dataflow/message.hpp"
#include "dataflow/transport.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dooc::df {

class Stream {
 public:
  Stream(std::string name, std::size_t capacity, TransportStats* stats)
      : name_(std::move(name)),
        queue_(capacity),
        stats_(stats),
        m_stall_ns_(&obs::Metrics::instance().counter("stream." + name_ + ".credit_stall_ns")),
        m_stalls_(&obs::Metrics::instance().counter("stream." + name_ + ".credit_stalls")),
        m_stall_us_(&obs::Metrics::instance().histogram("stream.credit_stall_us")) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void register_producer() noexcept { producers_.fetch_add(1, std::memory_order_relaxed); }

  /// A producer endpoint will send no more messages. When the last one
  /// closes, the stream is closed (pending messages still drain).
  void producer_done() {
    if (producers_.fetch_sub(1, std::memory_order_acq_rel) == 1) queue_.close();
  }

  /// Blocking send. Returns false if the stream was force-closed. A push
  /// against a full queue is a credit stall (the producer has exhausted the
  /// stream's credit window) and is timed into the obs metrics/trace.
  bool push(Message m, NodeId from) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(m.payload.size(), std::memory_order_relaxed);
    if (!queue_.full()) return queue_.push(Entry{std::move(m), from});
    // Likely-stall slow path. The fullness hint is racy, but a false
    // positive only costs two clock reads and records a ~0-length stall.
    const std::uint64_t t0 = obs::TraceClock::now_ns();
    std::optional<obs::Span> span;
    if (obs::trace_enabled()) {
      span.emplace("stream", "credit-stall", static_cast<std::int32_t>(from));
      span->arg("bytes", m.payload.size());
    }
    const bool ok = queue_.push(Entry{std::move(m), from});
    const std::uint64_t stalled = obs::TraceClock::now_ns() - t0;
    m_stall_ns_->add(stalled);
    m_stalls_->add();
    m_stall_us_->add(static_cast<double>(stalled) * 1e-3);
    return ok;
  }

  /// Blocking receive on behalf of a consumer living on node `to`.
  /// nullopt signals end-of-stream. Payloads are cloned (and traffic
  /// counted) when the producing and consuming nodes differ.
  std::optional<Message> pop(NodeId to) {
    auto entry = queue_.pop();
    if (!entry) return std::nullopt;
    return cross_boundary(std::move(entry->message), entry->from, to, stats_);
  }

  /// Non-blocking variant of pop().
  std::optional<Message> try_pop(NodeId to) {
    auto entry = queue_.try_pop();
    if (!entry) return std::nullopt;
    return cross_boundary(std::move(entry->message), entry->from, to, stats_);
  }

  [[nodiscard]] std::uint64_t total_messages() const noexcept { return messages_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  /// Cumulative time producers spent blocked on stream credit.
  [[nodiscard]] std::uint64_t credit_stall_ns() const noexcept { return m_stall_ns_->get(); }

 private:
  struct Entry {
    Message message;
    NodeId from;
  };

  std::string name_;
  BlockingQueue<Entry> queue_;
  TransportStats* stats_;
  std::atomic<int> producers_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  obs::Counter* m_stall_ns_;
  obs::Counter* m_stalls_;
  obs::Histogram* m_stall_us_;
};

/// Producer endpoint bound to one filter instance.
class StreamWriter {
 public:
  StreamWriter() = default;
  StreamWriter(std::shared_ptr<Stream> stream, NodeId node) : stream_(std::move(stream)), node_(node) {
    stream_->register_producer();
  }

  StreamWriter(StreamWriter&& other) noexcept { *this = std::move(other); }
  StreamWriter& operator=(StreamWriter&& other) noexcept {
    close();
    stream_ = std::move(other.stream_);
    node_ = other.node_;
    closed_ = other.closed_;
    other.stream_.reset();
    return *this;
  }
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  ~StreamWriter() { close(); }

  bool send(Message m) { return stream_ && stream_->push(std::move(m), node_); }
  bool send(DataBuffer payload, std::uint64_t tag = 0) { return send(Message(std::move(payload), tag)); }

  /// Idempotent; the runtime also closes any writer the filter left open.
  void close() {
    if (stream_ && !closed_) {
      closed_ = true;
      stream_->producer_done();
    }
  }

  [[nodiscard]] bool valid() const noexcept { return stream_ != nullptr; }

 private:
  std::shared_ptr<Stream> stream_;
  NodeId node_ = 0;
  bool closed_ = false;
};

/// Consumer endpoint bound to one filter instance.
class StreamReader {
 public:
  StreamReader() = default;
  StreamReader(std::shared_ptr<Stream> stream, NodeId node) : stream_(std::move(stream)), node_(node) {}

  /// Blocking receive; nullopt at end-of-stream.
  std::optional<Message> receive() { return stream_ ? stream_->pop(node_) : std::nullopt; }
  std::optional<Message> try_receive() { return stream_ ? stream_->try_pop(node_) : std::nullopt; }

  [[nodiscard]] bool valid() const noexcept { return stream_ != nullptr; }

 private:
  std::shared_ptr<Stream> stream_;
  NodeId node_ = 0;
};

}  // namespace dooc::df
