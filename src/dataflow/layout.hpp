// A layout is the "filter ontology" of the paper: the set of application
// filters, their replication/placement, and the streams connecting them.
// It is pure description; the Runtime instantiates and executes it.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "dataflow/filter.hpp"

namespace dooc::df {

struct FilterDecl {
  std::string name;
  FilterFactory factory;
  /// One replica per entry, placed on the given virtual node. A stateless
  /// filter declared with several entries becomes a transparent copy group.
  std::vector<NodeId> placement;
};

struct StreamDecl {
  std::string name;  // derived "<from>.<port>-><to>.<port>" if empty
  std::string from_filter;
  std::string from_port;
  std::string to_filter;
  std::string to_port;
  std::size_t capacity = 16;
};

class Layout {
 public:
  /// Declare a filter group. `placement` lists one virtual node per replica.
  Layout& add_filter(std::string name, FilterFactory factory,
                     std::vector<NodeId> placement = {0}) {
    DOOC_REQUIRE(!placement.empty(), "filter '" + name + "' needs at least one replica");
    DOOC_REQUIRE(find_filter(name) == nullptr, "duplicate filter name '" + name + "'");
    filters_.push_back(FilterDecl{std::move(name), std::move(factory), std::move(placement)});
    return *this;
  }

  /// Connect an output port to an input port with a bounded stream.
  Layout& connect(const std::string& from_filter, const std::string& from_port,
                  const std::string& to_filter, const std::string& to_port,
                  std::size_t capacity = 16) {
    DOOC_REQUIRE(find_filter(from_filter) != nullptr, "unknown producer filter '" + from_filter + "'");
    DOOC_REQUIRE(find_filter(to_filter) != nullptr, "unknown consumer filter '" + to_filter + "'");
    StreamDecl s;
    s.name = from_filter + "." + from_port + "->" + to_filter + "." + to_port;
    s.from_filter = from_filter;
    s.from_port = from_port;
    s.to_filter = to_filter;
    s.to_port = to_port;
    s.capacity = capacity;
    streams_.push_back(std::move(s));
    return *this;
  }

  [[nodiscard]] const std::vector<FilterDecl>& filters() const noexcept { return filters_; }
  [[nodiscard]] const std::vector<StreamDecl>& streams() const noexcept { return streams_; }

  [[nodiscard]] const FilterDecl* find_filter(const std::string& name) const noexcept {
    for (const auto& f : filters_)
      if (f.name == name) return &f;
    return nullptr;
  }

  /// Highest node id referenced by any placement (for runtime sizing).
  [[nodiscard]] NodeId max_node() const noexcept {
    NodeId m = 0;
    for (const auto& f : filters_)
      for (NodeId n : f.placement) m = std::max(m, n);
    return m;
  }

 private:
  std::vector<FilterDecl> filters_;
  std::vector<StreamDecl> streams_;
};

}  // namespace dooc::df
