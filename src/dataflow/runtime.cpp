#include "dataflow/runtime.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "common/log.hpp"

namespace dooc::df {

Runtime::Runtime(int num_nodes, Options options, int threads_per_node)
    : num_nodes_(num_nodes), options_(std::move(options)), transport_(num_nodes) {
  DOOC_REQUIRE(num_nodes > 0, "runtime needs at least one node");
  DOOC_REQUIRE(threads_per_node > 0, "each node needs at least one compute thread");
  pools_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    pools_.push_back(std::make_unique<ThreadPool>(static_cast<std::size_t>(threads_per_node)));
  }
}

Runtime::~Runtime() = default;

ThreadPool& Runtime::node_pool(NodeId node) {
  DOOC_REQUIRE(node >= 0 && node < num_nodes_, "node id out of range");
  return *pools_[static_cast<std::size_t>(node)];
}

void Runtime::run(const Layout& layout) {
  DOOC_REQUIRE(layout.max_node() < num_nodes_,
               "layout places a filter on a node the runtime does not have");

  // Instantiate streams.
  std::map<std::string, std::shared_ptr<Stream>> streams;
  for (const auto& decl : layout.streams()) {
    DOOC_REQUIRE(streams.count(decl.name) == 0, "duplicate stream '" + decl.name + "'");
    streams[decl.name] = std::make_shared<Stream>(decl.name, decl.capacity, &transport_);
  }

  // Instantiate filter replicas with their contexts.
  struct Instance {
    std::unique_ptr<Filter> filter;
    std::unique_ptr<FilterContext> ctx;
  };
  std::vector<Instance> instances;
  for (const auto& decl : layout.filters()) {
    const int num_replicas = static_cast<int>(decl.placement.size());
    for (int r = 0; r < num_replicas; ++r) {
      const NodeId node = decl.placement[static_cast<std::size_t>(r)];
      Instance inst;
      inst.filter = decl.factory();
      DOOC_CHECK(inst.filter != nullptr, "filter factory returned null for '" + decl.name + "'");
      inst.ctx = std::make_unique<FilterContext>(decl.name, node, r, num_replicas,
                                                 pools_[static_cast<std::size_t>(node)].get(),
                                                 &options_);
      // Wire the ports this replica participates in.
      for (const auto& sd : layout.streams()) {
        auto stream = streams.at(sd.name);
        if (sd.from_filter == decl.name) {
          inst.ctx->attach_output(sd.from_port, StreamWriter(stream, node));
        }
        if (sd.to_filter == decl.name) {
          inst.ctx->attach_input(sd.to_port, StreamReader(stream, node));
        }
      }
      instances.push_back(std::move(inst));
    }
  }

  // Run every instance on its own thread, DataCutter-style.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(instances.size());
  for (auto& inst : instances) {
    threads.emplace_back([&inst, &error_mutex, &first_error] {
      try {
        inst.filter->init(*inst.ctx);
        inst.filter->run(*inst.ctx);
        inst.ctx->close_outputs();
        inst.filter->finalize(*inst.ctx);
      } catch (...) {
        // Close outputs so downstream filters unblock and drain.
        inst.ctx->close_outputs();
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Collect stream statistics for post-mortem inspection.
  stream_stats_.clear();
  for (const auto& [name, stream] : streams) {
    stream_stats_[name] = StreamStats{stream->total_messages(), stream->total_bytes()};
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dooc::df
