// Harmonic-oscillator single-particle basis for the Configuration
// Interaction (CI) model of §II.
//
// A single-particle state carries the HO quantum numbers (n, l, j, m_j):
// n radial, l orbital, j = l ± 1/2 total angular momentum (stored as 2j to
// stay integral), and projection m_j (stored as 2m_j). Its energy quanta
// are N = 2n + l; shell N holds (N+1)(N+2) states per nucleon species.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dooc::ci {

/// An HO orbital (n, l, j); expands into 2j+1 m-states.
struct Orbital {
  int n = 0;
  int l = 0;
  int twoj = 1;  ///< 2j (odd)

  [[nodiscard]] int quanta() const noexcept { return 2 * n + l; }
  [[nodiscard]] int parity() const noexcept { return l % 2 == 0 ? +1 : -1; }
  [[nodiscard]] int degeneracy() const noexcept { return twoj + 1; }
  [[nodiscard]] std::string label() const;  // "0p3/2" style
};

/// A single-particle m-state.
struct SpState {
  int orbital_index = 0;  ///< into the basis' orbital list
  int n = 0;
  int l = 0;
  int twoj = 1;
  int twomj = 1;  ///< 2 m_j, odd, |twomj| <= twoj

  [[nodiscard]] int quanta() const noexcept { return 2 * n + l; }
  [[nodiscard]] int parity() const noexcept { return l % 2 == 0 ? +1 : -1; }
};

/// All orbitals/states with quanta N <= max_shell, ordered by (N, l, 2j,
/// 2m_j) — a fixed, reproducible ordering that the Slater-determinant
/// machinery relies on.
class HoBasis {
 public:
  explicit HoBasis(int max_shell);

  [[nodiscard]] int max_shell() const noexcept { return max_shell_; }
  [[nodiscard]] const std::vector<Orbital>& orbitals() const noexcept { return orbitals_; }
  [[nodiscard]] const std::vector<SpState>& states() const noexcept { return states_; }
  [[nodiscard]] std::size_t num_states() const noexcept { return states_.size(); }

  /// States in shell N: (N+1)(N+2) per species.
  [[nodiscard]] static int states_in_shell(int shell) noexcept {
    return (shell + 1) * (shell + 2);
  }
  /// States with quanta <= shell: sum of the above.
  [[nodiscard]] static int states_up_to_shell(int shell) noexcept;

 private:
  int max_shell_;
  std::vector<Orbital> orbitals_;
  std::vector<SpState> states_;
};

/// Minimal total HO quanta of `particles` identical fermions filling the
/// lowest shells (the N0 used by the Nmax truncation).
[[nodiscard]] int minimal_quanta(int particles);

}  // namespace dooc::ci
