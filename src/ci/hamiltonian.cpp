#include "ci/hamiltonian.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dooc::ci {

namespace {

/// Occupancy view of one determinant with O(1) membership tests.
struct Occupancy {
  std::vector<char> proton;  // indexed by sp-state
  std::vector<char> neutron;
  int quanta = 0;

  Occupancy(const HoBasis& basis, const Determinant& det)
      : proton(basis.num_states(), 0), neutron(basis.num_states(), 0) {
    for (auto s : det.proton_states) {
      proton[s] = 1;
      quanta += basis.states()[s].quanta();
    }
    for (auto s : det.neutron_states) {
      neutron[s] = 1;
      quanta += basis.states()[s].quanta();
    }
  }
};

std::uint64_t det_hash(const Determinant& d) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  for (auto s : d.proton_states) mix(s + 1);
  mix(0xffff);
  for (auto s : d.neutron_states) mix(s + 1);
  return h;
}

struct DetHasher {
  std::size_t operator()(const Determinant& d) const { return det_hash(d); }
};

/// Pre-indexed move tables for one basis: same-species target pairs grouped
/// by total 2m, and all states grouped by 2m (for singles).
struct MoveTables {
  const HoBasis& basis;
  // singles: states sharing the same 2m value.
  std::unordered_map<int, std::vector<std::uint16_t>> by_m;
  // pairs (s1 < s2) keyed by 2m sum.
  std::unordered_map<int, std::vector<std::pair<std::uint16_t, std::uint16_t>>> pairs_by_m;

  explicit MoveTables(const HoBasis& b) : basis(b) {
    const auto& states = b.states();
    for (std::uint16_t s = 0; s < states.size(); ++s) {
      by_m[states[s].twomj].push_back(s);
    }
    for (std::uint16_t s1 = 0; s1 < states.size(); ++s1) {
      for (std::uint16_t s2 = s1 + 1; s2 < states.size(); ++s2) {
        pairs_by_m[states[s1].twomj + states[s2].twomj].emplace_back(s1, s2);
      }
    }
  }
};

/// Apply a same-species replacement, returning the new sorted occupation.
std::vector<std::uint16_t> replace(const std::vector<std::uint16_t>& occ,
                                   std::initializer_list<std::uint16_t> remove,
                                   std::initializer_list<std::uint16_t> add) {
  std::vector<std::uint16_t> out;
  out.reserve(occ.size());
  for (auto s : occ) {
    if (std::find(remove.begin(), remove.end(), s) == remove.end()) out.push_back(s);
  }
  out.insert(out.end(), add.begin(), add.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Enumerate every determinant connected to `det` by a 2-body interaction
/// (≤ 2 single-particle differences) within the basis constraints; the
/// diagonal is NOT included. Each connected determinant is visited once.
template <typename Sink>
void for_each_connected(const HoBasis& basis, const MoveTables& moves, const NucleusConfig& config,
                        const Determinant& det, Sink&& sink) {
  const int max_total = config.n0() + config.nmax;
  const Occupancy occ(basis, det);
  const auto& states = basis.states();

  auto q_of = [&](std::uint16_t s) { return states[s].quanta(); };

  // ---- species-local singles: a -> b with m_b == m_a, Δq even ----------
  auto singles = [&](const std::vector<std::uint16_t>& from, const std::vector<char>& occupied,
                     bool is_proton) {
    for (auto a : from) {
      const auto it = moves.by_m.find(states[a].twomj);
      if (it == moves.by_m.end()) continue;
      for (auto b : it->second) {
        if (occupied[b] || ((q_of(b) - q_of(a)) % 2) != 0) continue;
        if (occ.quanta - q_of(a) + q_of(b) > max_total) continue;
        Determinant next;
        if (is_proton) {
          next.proton_states = replace(det.proton_states, {a}, {b});
          next.neutron_states = det.neutron_states;
        } else {
          next.proton_states = det.proton_states;
          next.neutron_states = replace(det.neutron_states, {a}, {b});
        }
        sink(std::move(next));
      }
    }
  };
  singles(det.proton_states, occ.proton, true);
  singles(det.neutron_states, occ.neutron, false);

  // ---- species-local doubles: {a1,a2} -> {b1,b2}, Σm equal, Δq even -----
  auto doubles = [&](const std::vector<std::uint16_t>& from, const std::vector<char>& occupied,
                     bool is_proton) {
    for (std::size_t i = 0; i < from.size(); ++i) {
      for (std::size_t j = i + 1; j < from.size(); ++j) {
        const auto a1 = from[i];
        const auto a2 = from[j];
        const int msum = states[a1].twomj + states[a2].twomj;
        const int qrem = q_of(a1) + q_of(a2);
        const auto it = moves.pairs_by_m.find(msum);
        if (it == moves.pairs_by_m.end()) continue;
        for (const auto& [b1, b2] : it->second) {
          if (occupied[b1] || occupied[b2]) continue;
          const int qadd = q_of(b1) + q_of(b2);
          if (((qadd - qrem) % 2) != 0) continue;
          if (occ.quanta - qrem + qadd > max_total) continue;
          Determinant next;
          if (is_proton) {
            next.proton_states = replace(from, {a1, a2}, {b1, b2});
            next.neutron_states = det.neutron_states;
          } else {
            next.proton_states = det.proton_states;
            next.neutron_states = replace(from, {a1, a2}, {b1, b2});
          }
          sink(std::move(next));
        }
      }
    }
  };
  doubles(det.proton_states, occ.proton, true);
  doubles(det.neutron_states, occ.neutron, false);

  // ---- cross-species doubles: proton a1->b1, neutron a2->b2 -------------
  // Constraint: Δm_p + Δm_n = 0 and total Δq even, budget respected.
  for (auto a1 : det.proton_states) {
    // Enumerate proton replacements with ANY Δm, then match neutrons.
    for (std::uint16_t b1 = 0; b1 < states.size(); ++b1) {
      if (occ.proton[b1] || b1 == a1) continue;
      const int dm = states[b1].twomj - states[a1].twomj;
      const int dqp = q_of(b1) - q_of(a1);
      for (auto a2 : det.neutron_states) {
        const int want_m = states[a2].twomj - dm;
        const auto it = moves.by_m.find(want_m);
        if (it == moves.by_m.end()) continue;
        for (auto b2 : it->second) {
          if (occ.neutron[b2]) continue;
          const int dq = dqp + q_of(b2) - q_of(a2);
          if ((dq % 2) != 0) continue;
          if (occ.quanta + dq > max_total) continue;
          Determinant next;
          next.proton_states = replace(det.proton_states, {a1}, {b1});
          next.neutron_states = replace(det.neutron_states, {a2}, {b2});
          sink(std::move(next));
        }
      }
    }
  }
}

/// Deterministic symmetric pseudo-random coupling between two determinants.
double coupling_value(const Determinant& a, const Determinant& b) {
  const std::uint64_t ha = det_hash(a);
  const std::uint64_t hb = det_hash(b);
  SplitMix64 rng((ha ^ hb) + (ha + hb) * 0x9e3779b97f4a7c15ull);
  return (rng.next_double() - 0.5) * 0.2;
}

double diagonal_value(const HoBasis& basis, const Determinant& d) {
  // HO single-particle energies (N + 3/2 each, in units of ħΩ) plus a small
  // deterministic shift so degenerate configurations split.
  const double e = static_cast<double>(determinant_quanta(basis, d)) +
                   1.5 * static_cast<double>(d.proton_states.size() + d.neutron_states.size());
  SplitMix64 rng(det_hash(d));
  return e + 0.05 * (rng.next_double() - 0.5);
}

}  // namespace

spmv::CsrMatrix build_hamiltonian(const NucleusConfig& config, std::uint64_t enumeration_limit,
                                  std::uint64_t value_seed) {
  (void)value_seed;  // values are derived from determinant hashes
  const HoBasis basis(config.max_shell());
  const MoveTables moves(basis);
  const auto dets = enumerate_basis(config, enumeration_limit);
  const std::uint64_t n = dets.size();

  std::unordered_map<Determinant, std::uint32_t, DetHasher> index;
  index.reserve(n * 2);
  for (std::uint32_t i = 0; i < n; ++i) index.emplace(dets[i], i);

  spmv::CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.reserve(n + 1);
  m.row_ptr.push_back(0);
  std::vector<std::pair<std::uint32_t, double>> row;
  for (std::uint32_t i = 0; i < n; ++i) {
    row.clear();
    row.emplace_back(i, diagonal_value(basis, dets[i]));
    for_each_connected(basis, moves, config, dets[i], [&](Determinant next) {
      const auto it = index.find(next);
      DOOC_CHECK(it != index.end(), "connected determinant missing from the basis");
      row.emplace_back(it->second, coupling_value(dets[i], next));
    });
    std::sort(row.begin(), row.end());
    for (const auto& [col, val] : row) {
      m.col_idx.push_back(col);
      m.values.push_back(val);
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

HamiltonianStats hamiltonian_pattern_stats(const NucleusConfig& config,
                                           std::uint64_t enumeration_limit) {
  const HoBasis basis(config.max_shell());
  const MoveTables moves(basis);
  const auto dets = enumerate_basis(config, enumeration_limit);
  HamiltonianStats stats;
  stats.dimension = dets.size();
  for (const auto& det : dets) {
    std::uint64_t row = 1;  // diagonal
    for_each_connected(basis, moves, config, det, [&](Determinant&&) { ++row; });
    stats.nnz += row;
  }
  stats.avg_row_nnz =
      stats.dimension == 0 ? 0.0
                           : static_cast<double>(stats.nnz) / static_cast<double>(stats.dimension);
  return stats;
}

std::uint64_t row_connectivity(const HoBasis& basis, const NucleusConfig& config,
                               const Determinant& det) {
  const MoveTables moves(basis);
  std::uint64_t count = 1;
  for_each_connected(basis, moves, config, det, [&](Determinant&&) { ++count; });
  return count;
}

namespace {

/// Heuristically construct one valid determinant: random low-shell filling,
/// then zero-cost same-orbital m swaps to repair M_j, then parity repair.
Determinant find_valid_determinant(const NucleusConfig& config, SplitMix64& rng) {
  const HoBasis basis(config.max_shell());
  const auto& states = basis.states();
  const int max_total = config.n0() + config.nmax;
  const int want_parity = (config.n0() + config.nmax) % 2;

  for (int attempt = 0; attempt < 4096; ++attempt) {
    auto pick_species = [&](int count) {
      std::vector<std::uint16_t> occ;
      std::vector<char> used(states.size(), 0);
      // Bias toward low shells: consider the first L states where L grows
      // with the attempt number, so early attempts are near the ground state.
      const std::size_t window =
          std::min(states.size(), static_cast<std::size_t>(4 * count + attempt % 32));
      int guard = 0;
      while (static_cast<int>(occ.size()) < count && guard++ < 4096) {
        const auto s = static_cast<std::uint16_t>(rng.next_below(window));
        if (!used[s]) {
          used[s] = 1;
          occ.push_back(s);
        }
      }
      std::sort(occ.begin(), occ.end());
      return occ;
    };
    Determinant det;
    det.proton_states = pick_species(config.protons);
    det.neutron_states = pick_species(config.neutrons);
    if (static_cast<int>(det.proton_states.size()) != config.protons ||
        static_cast<int>(det.neutron_states.size()) != config.neutrons) {
      continue;
    }
    if (determinant_quanta(basis, det) > max_total) continue;

    // Repair M with zero-quanta same-orbital swaps.
    for (int step = 0; step < 512; ++step) {
      const int dm = config.two_mj - determinant_twom(basis, det);
      if (dm == 0) break;
      bool moved = false;
      auto try_repair = [&](std::vector<std::uint16_t>& occ, const std::vector<char>& /*unused*/) {
        std::vector<char> used(states.size(), 0);
        for (auto s : occ) used[s] = 1;
        for (auto& s : occ) {
          const auto& st = states[s];
          for (std::uint16_t t = 0; t < states.size(); ++t) {
            if (used[t]) continue;
            const auto& tt = states[t];
            if (tt.orbital_index != st.orbital_index) continue;
            const int step_dm = tt.twomj - st.twomj;
            if ((dm > 0 && step_dm > 0 && step_dm <= dm) ||
                (dm < 0 && step_dm < 0 && step_dm >= dm)) {
              s = t;
              moved = true;
              return;
            }
          }
        }
      };
      try_repair(det.proton_states, {});
      if (!moved) try_repair(det.neutron_states, {});
      if (moved) {
        std::sort(det.proton_states.begin(), det.proton_states.end());
        std::sort(det.neutron_states.begin(), det.neutron_states.end());
      } else {
        break;
      }
    }
    if (determinant_twom(basis, det) != config.two_mj) continue;

    // Repair parity with an m-preserving single promotion of odd Δq.
    if (determinant_quanta(basis, det) % 2 != want_parity) {
      bool fixed = false;
      std::vector<char> usedp(states.size(), 0), usedn(states.size(), 0);
      for (auto s : det.proton_states) usedp[s] = 1;
      for (auto s : det.neutron_states) usedn[s] = 1;
      auto fix = [&](std::vector<std::uint16_t>& occ, std::vector<char>& used) {
        for (auto& s : occ) {
          for (std::uint16_t t = 0; t < states.size(); ++t) {
            if (used[t] || states[t].twomj != states[s].twomj) continue;
            const int dq = states[t].quanta() - states[s].quanta();
            if (dq % 2 == 0) continue;
            const int new_total = determinant_quanta(basis, det) + dq;
            if (new_total > max_total || new_total < 0) continue;
            used[s] = 0;
            used[t] = 1;
            s = t;
            fixed = true;
            return;
          }
        }
      };
      fix(det.proton_states, usedp);
      if (!fixed) fix(det.neutron_states, usedn);
      std::sort(det.proton_states.begin(), det.proton_states.end());
      std::sort(det.neutron_states.begin(), det.neutron_states.end());
      if (!fixed) continue;
    }
    if (determinant_quanta(basis, det) % 2 != want_parity ||
        determinant_quanta(basis, det) > max_total ||
        determinant_twom(basis, det) != config.two_mj) {
      continue;
    }
    return det;
  }
  throw InternalError("could not construct a valid determinant for the nucleus");
}

}  // namespace

ConnectivityEstimate estimate_connectivity(const NucleusConfig& config, int samples,
                                           std::uint64_t seed) {
  DOOC_REQUIRE(samples > 0, "need a positive sample count");
  const HoBasis basis(config.max_shell());
  const MoveTables moves(basis);
  SplitMix64 rng(seed);
  Determinant current = find_valid_determinant(config, rng);

  // A uniform random walk over the connectivity graph has stationary
  // distribution proportional to the degree, so naive averaging would
  // overestimate the mean degree. Correct with importance weights 1/deg:
  //   <deg>_uniform ≈ n / Σ (1/deg_i)   (harmonic-mean estimator).
  double inv_degree_sum = 0.0;
  int counted = 0;
  for (int i = 0; i < samples; ++i) {
    std::vector<Determinant> neighbours;
    for_each_connected(basis, moves, config, current,
                       [&](Determinant next) { neighbours.push_back(std::move(next)); });
    if (!neighbours.empty()) {
      inv_degree_sum += 1.0 / static_cast<double>(neighbours.size());
      ++counted;
      current = neighbours[rng.next_below(neighbours.size())];
    }
  }
  ConnectivityEstimate est;
  est.samples = samples;
  const double avg_degree = counted > 0 ? static_cast<double>(counted) / inv_degree_sum : 0.0;
  est.avg_row_nnz = avg_degree + 1.0;  // + diagonal
  est.estimated_nnz =
      static_cast<std::uint64_t>(est.avg_row_nnz * static_cast<double>(basis_dimension(config)));
  return est;
}

}  // namespace dooc::ci
