#include "ci/ho_basis.hpp"

#include "common/error.hpp"

namespace dooc::ci {

std::string Orbital::label() const {
  static const char* spect = "spdfghiklmnoq";
  std::string s = std::to_string(n);
  s += l < 13 ? spect[l] : '?';
  s += std::to_string(twoj);
  s += "/2";
  return s;
}

HoBasis::HoBasis(int max_shell) : max_shell_(max_shell) {
  DOOC_REQUIRE(max_shell >= 0 && max_shell <= 24, "HO shell cutoff out of supported range");
  for (int shell = 0; shell <= max_shell; ++shell) {
    // l runs down from N in steps of 2 (n = (N - l) / 2).
    for (int l = shell % 2; l <= shell; l += 2) {
      const int n = (shell - l) / 2;
      for (int twoj = std::abs(2 * l - 1); twoj <= 2 * l + 1; twoj += 2) {
        orbitals_.push_back(Orbital{n, l, twoj});
        const int orbital_index = static_cast<int>(orbitals_.size()) - 1;
        for (int twomj = -twoj; twomj <= twoj; twomj += 2) {
          states_.push_back(SpState{orbital_index, n, l, twoj, twomj});
        }
      }
    }
  }
}

int HoBasis::states_up_to_shell(int shell) noexcept {
  int total = 0;
  for (int s = 0; s <= shell; ++s) total += states_in_shell(s);
  return total;
}

int minimal_quanta(int particles) {
  DOOC_REQUIRE(particles >= 0, "negative particle count");
  int remaining = particles;
  int quanta = 0;
  for (int shell = 0; remaining > 0; ++shell) {
    const int capacity = HoBasis::states_in_shell(shell);
    const int put = std::min(remaining, capacity);
    quanta += put * shell;
    remaining -= put;
  }
  return quanta;
}

}  // namespace dooc::ci
