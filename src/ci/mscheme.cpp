#include "ci/mscheme.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"

namespace dooc::ci {

int NucleusConfig::max_shell() const {
  // One particle can absorb the whole Nmax excitation on top of the highest
  // shell occupied in the lowest filling.
  int highest_filled = 0;
  int remaining = std::max(protons, neutrons);
  for (int shell = 0; remaining > 0; ++shell) {
    remaining -= std::min(remaining, HoBasis::states_in_shell(shell));
    highest_filled = shell;
  }
  return highest_filled + nmax;
}

std::size_t SpeciesCount::index(int k, int q, int m_off) const noexcept {
  return (static_cast<std::size_t>(k) * static_cast<std::size_t>(max_quanta_ + 1) +
          static_cast<std::size_t>(q)) *
             static_cast<std::size_t>(2 * m_bound_ + 1) +
         static_cast<std::size_t>(m_off);
}

SpeciesCount::SpeciesCount(const HoBasis& basis, int particles, int max_quanta)
    : particles_(particles), max_quanta_(max_quanta) {
  DOOC_REQUIRE(particles >= 0, "negative particle count");
  // Bound on |total 2m|: the `particles` largest |2m_j| values available.
  std::vector<int> mags;
  mags.reserve(basis.num_states());
  for (const auto& s : basis.states()) mags.push_back(std::abs(s.twomj));
  std::sort(mags.rbegin(), mags.rend());
  int bound = 0;
  for (int i = 0; i < particles && i < static_cast<int>(mags.size()); ++i) bound += mags[i];
  m_bound_ = std::max(bound, 1);

  table_.assign(static_cast<std::size_t>(particles + 1) *
                    static_cast<std::size_t>(max_quanta + 1) *
                    static_cast<std::size_t>(2 * m_bound_ + 1),
                0);
  table_[index(0, 0, m_bound_)] = 1;

  // 0/1-knapsack over single-particle states.
  for (const auto& s : basis.states()) {
    const int q = s.quanta();
    if (q > max_quanta) continue;
    const int m = s.twomj;
    for (int k = particles; k >= 1; --k) {
      for (int quanta = max_quanta; quanta >= q; --quanta) {
        const int mlo = std::max(-m_bound_, -m_bound_ + m);
        const int mhi = std::min(m_bound_, m_bound_ + m);
        for (int twom = mlo; twom <= mhi; ++twom) {
          const std::uint64_t add = table_[index(k - 1, quanta - q, twom - m + m_bound_)];
          if (add != 0) table_[index(k, quanta, twom + m_bound_)] += add;
        }
      }
    }
  }
}

std::uint64_t SpeciesCount::ways(int k, int quanta, int twom) const {
  if (k < 0 || k > particles_ || quanta < 0 || quanta > max_quanta_ ||
      std::abs(twom) > m_bound_) {
    return 0;
  }
  return table_[index(k, quanta, twom + m_bound_)];
}

std::uint64_t basis_dimension(const NucleusConfig& config) {
  const int n0 = config.n0();
  const int max_total = n0 + config.nmax;
  const int want_parity = (n0 + config.nmax) % 2;  // parity of allowed N_tot
  const HoBasis basis(config.max_shell());
  const SpeciesCount protons(basis, config.protons, max_total);
  const SpeciesCount neutrons(basis, config.neutrons, max_total);

  std::uint64_t total = 0;
  for (int ntot = max_total; ntot >= n0; --ntot) {
    if (ntot % 2 != want_parity) continue;
    for (int qp = 0; qp <= ntot; ++qp) {
      const int qn = ntot - qp;
      // Sum over proton/neutron 2m split: Σ_mp Wp(Z, qp, mp) Wn(N, qn, M-mp).
      for (int mp = -protons.m_bound(); mp <= protons.m_bound(); ++mp) {
        const std::uint64_t wp = protons.ways(config.protons, qp, mp);
        if (wp == 0) continue;
        const std::uint64_t wn = neutrons.ways(config.neutrons, qn, config.two_mj - mp);
        total += wp * wn;
      }
    }
  }
  return total;
}

int determinant_quanta(const HoBasis& basis, const Determinant& det) {
  int q = 0;
  for (auto s : det.proton_states) q += basis.states()[s].quanta();
  for (auto s : det.neutron_states) q += basis.states()[s].quanta();
  return q;
}

int determinant_twom(const HoBasis& basis, const Determinant& det) {
  int m = 0;
  for (auto s : det.proton_states) m += basis.states()[s].twomj;
  for (auto s : det.neutron_states) m += basis.states()[s].twomj;
  return m;
}

namespace {

/// Enumerate all k-subsets of states with quanta <= max_quanta, pruning on
/// remaining-capacity bounds; calls sink(occupation, quanta, twom).
void enumerate_species(const HoBasis& basis, int particles, int max_quanta,
                       const std::function<void(const std::vector<std::uint16_t>&, int, int)>& sink) {
  std::vector<std::uint16_t> chosen;
  chosen.reserve(static_cast<std::size_t>(particles));
  const auto& states = basis.states();
  const int total_states = static_cast<int>(states.size());

  // Suffix minimum quanta for pruning: picking `need` more from s..end.
  // min quanta of the `need` smallest-quanta states in the suffix — states
  // are shell-ordered, so the first `need` states of the suffix minimize it.
  auto min_suffix_quanta = [&](int s, int need) {
    int q = 0;
    for (int i = 0; i < need; ++i) {
      if (s + i >= total_states) return 1 << 30;
      q += states[static_cast<std::size_t>(s + i)].quanta();
    }
    return q;
  };

  std::function<void(int, int, int)> rec = [&](int next, int quanta, int twom) {
    const int need = particles - static_cast<int>(chosen.size());
    if (need == 0) {
      sink(chosen, quanta, twom);
      return;
    }
    for (int s = next; s <= total_states - need; ++s) {
      const int q = states[static_cast<std::size_t>(s)].quanta();
      if (quanta + q + min_suffix_quanta(s + 1, need - 1) > max_quanta) {
        // States are ordered by shell: if even the cheapest completion from
        // here exceeds the cutoff, later starts only get worse.
        if (quanta + q > max_quanta) break;
        continue;
      }
      chosen.push_back(static_cast<std::uint16_t>(s));
      rec(s + 1, quanta + q, twom + states[static_cast<std::size_t>(s)].twomj);
      chosen.pop_back();
    }
  };
  rec(0, 0, 0);
}

}  // namespace

std::vector<Determinant> enumerate_basis(const NucleusConfig& config, std::uint64_t limit) {
  const std::uint64_t dim = basis_dimension(config);
  DOOC_REQUIRE(dim <= limit, "basis dimension " + std::to_string(dim) +
                                 " exceeds the enumeration limit " + std::to_string(limit));
  const int n0 = config.n0();
  const int max_total = n0 + config.nmax;
  const int want_parity = (n0 + config.nmax) % 2;
  const HoBasis basis(config.max_shell());

  // Enumerate proton configurations once, bucketed by (quanta, twom).
  struct SpeciesConfigs {
    std::vector<std::vector<std::uint16_t>> occ;
    std::vector<int> quanta;
    std::vector<int> twom;
  };
  SpeciesConfigs ps;
  enumerate_species(basis, config.protons, max_total,
                    [&](const std::vector<std::uint16_t>& occ, int q, int m) {
                      ps.occ.push_back(occ);
                      ps.quanta.push_back(q);
                      ps.twom.push_back(m);
                    });

  std::vector<Determinant> out;
  out.reserve(dim);
  enumerate_species(basis, config.neutrons, max_total,
                    [&](const std::vector<std::uint16_t>& nocc, int nq, int nm) {
                      for (std::size_t i = 0; i < ps.occ.size(); ++i) {
                        const int ntot = ps.quanta[i] + nq;
                        if (ntot > max_total || ntot % 2 != want_parity) continue;
                        if (ps.twom[i] + nm != config.two_mj) continue;
                        Determinant d;
                        d.proton_states = ps.occ[i];
                        d.neutron_states = nocc;
                        out.push_back(std::move(d));
                      }
                    });
  DOOC_CHECK(out.size() == dim, "enumeration disagrees with the counting DP");
  return out;
}

}  // namespace dooc::ci
