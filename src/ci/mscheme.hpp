// M-scheme many-body basis for CI nuclear-structure calculations (§II).
//
// A many-body basis state is a Slater determinant of single-particle HO
// states: Z proton states and N neutron states, subject to
//   * total magnetic projection  Σ m_j = M_j,
//   * Nmax truncation: total quanta N_tot ≤ N0 + Nmax, where N0 is the
//     minimal total quanta for that nucleus, and
//   * the parity selected by Nmax ((-1)^{N_tot} = (-1)^{N0 + Nmax}).
//
// The basis dimension D (Table I's headline column) is computed *exactly*
// with a two-species knapsack DP over single-particle states — no
// enumeration — so D for paper-scale cases (D ~ 1e9) costs milliseconds.
// Small systems can additionally be enumerated explicitly for the
// Hamiltonian construction and for cross-checking the DP.
#pragma once

#include <cstdint>
#include <vector>

#include "ci/ho_basis.hpp"

namespace dooc::ci {

struct NucleusConfig {
  int protons = 0;
  int neutrons = 0;
  int nmax = 0;
  int two_mj = 0;  ///< 2 * M_j (integer for even A, odd for odd A)

  [[nodiscard]] int particles() const noexcept { return protons + neutrons; }
  /// Minimal total quanta N0 (protons + neutrons fill lowest shells).
  [[nodiscard]] int n0() const { return minimal_quanta(protons) + minimal_quanta(neutrons); }
  /// Highest single-particle shell any determinant can touch.
  [[nodiscard]] int max_shell() const;
};

/// A Slater determinant: sorted occupied state indices per species
/// (indices into HoBasis::states()).
struct Determinant {
  std::vector<std::uint16_t> proton_states;
  std::vector<std::uint16_t> neutron_states;

  friend bool operator==(const Determinant&, const Determinant&) = default;
};

/// Per-species occupation-count table: ways[k][q][m_offset] = number of
/// ways to pick k states with total quanta q and total 2m = m_offset - off.
class SpeciesCount {
 public:
  SpeciesCount(const HoBasis& basis, int particles, int max_quanta);

  [[nodiscard]] std::uint64_t ways(int k, int quanta, int twom) const;
  [[nodiscard]] int max_quanta() const noexcept { return max_quanta_; }
  [[nodiscard]] int m_bound() const noexcept { return m_bound_; }

 private:
  int particles_;
  int max_quanta_;
  int m_bound_;  ///< counts stored for twom in [-m_bound, m_bound]
  // Flattened [k][q][m + m_bound].
  std::vector<std::uint64_t> table_;
  [[nodiscard]] std::size_t index(int k, int q, int m_off) const noexcept;
};

/// Exact M-scheme dimension D for the nucleus — the DP route.
[[nodiscard]] std::uint64_t basis_dimension(const NucleusConfig& config);

/// Explicit enumeration (small systems only; throws if D would exceed
/// `limit`). Determinant order is deterministic.
[[nodiscard]] std::vector<Determinant> enumerate_basis(const NucleusConfig& config,
                                                       std::uint64_t limit = 2'000'000);

/// Total quanta of a determinant.
[[nodiscard]] int determinant_quanta(const HoBasis& basis, const Determinant& det);
/// Total 2*M_j of a determinant.
[[nodiscard]] int determinant_twom(const HoBasis& basis, const Determinant& det);

}  // namespace dooc::ci
