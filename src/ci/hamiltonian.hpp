// The CI Hamiltonian in the M-scheme basis.
//
// With a 2-body interaction, H_ij is non-zero only when determinants i and
// j differ in at most two single-particle states (§II). This module builds
// that sparsity pattern exactly for enumerable bases, fills it with a
// symmetric synthetic interaction (HO energies on the diagonal, a smooth
// deterministic pseudo-random 2-body coupling off it), and estimates
// row connectivity for paper-scale bases by sampling determinants with a
// move-based random walk.
#pragma once

#include <cstdint>

#include "ci/mscheme.hpp"
#include "spmv/csr.hpp"

namespace dooc::ci {

struct HamiltonianStats {
  std::uint64_t dimension = 0;
  std::uint64_t nnz = 0;
  double avg_row_nnz = 0.0;
};

/// Build the exact sparse Hamiltonian of an enumerable basis.
/// Throws if the basis exceeds `enumeration_limit`.
[[nodiscard]] spmv::CsrMatrix build_hamiltonian(const NucleusConfig& config,
                                                std::uint64_t enumeration_limit = 200'000,
                                                std::uint64_t value_seed = 0xC1);

/// Exact sparsity statistics without storing values (cheaper than
/// build_hamiltonian for pattern-only studies).
[[nodiscard]] HamiltonianStats hamiltonian_pattern_stats(const NucleusConfig& config,
                                                         std::uint64_t enumeration_limit = 200'000);

/// Estimate the average row connectivity (non-zeros per row) of the
/// Hamiltonian by a random walk over determinants: from a valid start, take
/// `samples` accepted single/double-excitation moves and average the exact
/// per-determinant connectivity along the way. Estimated
/// nnz ≈ D * avg connectivity. Documented bias: the walk oversamples
/// high-connectivity determinants slightly; adequate for the
/// order-of-magnitude nnz column of Table I.
struct ConnectivityEstimate {
  double avg_row_nnz = 0.0;
  std::uint64_t estimated_nnz = 0;
  int samples = 0;
};
[[nodiscard]] ConnectivityEstimate estimate_connectivity(const NucleusConfig& config, int samples,
                                                         std::uint64_t seed);

/// Exact number of non-zeros connected to one determinant (its row count,
/// including the diagonal).
[[nodiscard]] std::uint64_t row_connectivity(const HoBasis& basis, const NucleusConfig& config,
                                             const Determinant& det);

}  // namespace dooc::ci
