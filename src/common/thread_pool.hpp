// Fixed-size worker pool used by compute filters to split a task across the
// parallelism available on a (virtual) node — the paper's local scheduler
// "decomposes the tasks to expose more parallelism when necessary".
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace dooc {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a job; the future resolves when it finishes (or rethrows).
  std::future<void> submit(std::function<void()> job);

  /// Run `body(i)` for i in [0, count) across the pool and wait. `body`
  /// must be safe to call concurrently for distinct indices.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Split [0, n) into contiguous chunks, one per worker, run and wait.
  /// `body(begin, end)` receives a half-open range.
  void parallel_ranges(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Job {
    std::function<void()> run;
    std::promise<void> done;
  };

  void worker_loop();

  BlockingQueue<Job> jobs_;
  std::vector<std::thread> workers_;
};

}  // namespace dooc
