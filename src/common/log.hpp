// Minimal thread-safe leveled logger.
//
// DOoC components log through this sink; tests silence it, benches keep it
// at Warn. The logger stamps each record with elapsed wall time and the
// emitting thread so filter/scheduler interleavings can be inspected.
#pragma once

#include <sstream>
#include <string>

namespace dooc {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log configuration. Cheap to query from hot paths.
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;
  static bool enabled(LogLevel level) noexcept { return level >= Log::level(); }

  /// Emit one record. `where` identifies the component ("storage[3]", ...).
  static void write(LogLevel level, const std::string& where, const std::string& message);
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::string where;
  std::ostringstream os;
  LogLine(LogLevel l, std::string w) : level(l), where(std::move(w)) {}
  ~LogLine() { Log::write(level, where, os.str()); }
};
}  // namespace detail

}  // namespace dooc

#define DOOC_LOG(lvl, where)                               \
  if (!::dooc::Log::enabled(::dooc::LogLevel::lvl)) {      \
  } else                                                   \
    ::dooc::detail::LogLine(::dooc::LogLevel::lvl, (where)).os
