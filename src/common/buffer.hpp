// Untyped, reference-counted data buffers.
//
// DataCutter moves data along streams in *untyped data-buffers* "in order to
// minimize various system overheads" (paper §III-A). DataBuffer is that
// primitive: a contiguous byte extent with shared ownership, cheap to pass
// between filters on the same node and explicitly copied when it crosses a
// virtual-node boundary (to preserve distributed-memory semantics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace dooc {

/// Shared, untyped byte buffer. Copying a DataBuffer aliases the payload;
/// use clone() to make an actual deep copy (done by the transport at
/// virtual-node boundaries).
class DataBuffer {
 public:
  DataBuffer() = default;

  /// Allocate a zero-initialized buffer of `size` bytes.
  explicit DataBuffer(std::size_t size) {
    auto vec = std::make_shared<std::vector<std::byte>>(size);
    size_ = size;
    bytes_ = std::shared_ptr<std::byte>(vec, vec->data());
  }

  /// Adopt externally-owned memory (e.g. an aligned allocation from a
  /// buffer pool whose deleter returns it to the pool). `mem` must cover at
  /// least `size` bytes and stays alive as long as any aliasing handle.
  static DataBuffer adopt(std::shared_ptr<std::byte> mem, std::size_t size) {
    DataBuffer b;
    b.bytes_ = std::move(mem);
    b.size_ = size;
    return b;
  }

  /// Wrap a copy of the given extent.
  static DataBuffer copy_of(const void* data, std::size_t size) {
    DataBuffer b(size);
    if (size != 0) std::memcpy(b.data(), data, size);
    return b;
  }

  /// Deep copy (new allocation, same contents).
  [[nodiscard]] DataBuffer clone() const {
    if (!bytes_) return {};
    return copy_of(data(), size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] std::byte* data() noexcept { return bytes_.get(); }
  [[nodiscard]] const std::byte* data() const noexcept { return bytes_.get(); }

  [[nodiscard]] std::span<std::byte> span() noexcept { return {data(), size()}; }
  [[nodiscard]] std::span<const std::byte> span() const noexcept { return {data(), size()}; }

  /// Reinterpret the payload as an array of trivially-copyable T.
  template <typename T>
  [[nodiscard]] std::span<T> as() {
    static_assert(std::is_trivially_copyable_v<T>);
    DOOC_REQUIRE(size() % sizeof(T) == 0, "buffer size not a multiple of element size");
    return {reinterpret_cast<T*>(data()), size() / sizeof(T)};
  }

  template <typename T>
  [[nodiscard]] std::span<const T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    DOOC_REQUIRE(size() % sizeof(T) == 0, "buffer size not a multiple of element size");
    return {reinterpret_cast<const T*>(data()), size() / sizeof(T)};
  }

  /// Number of DataBuffer handles sharing this payload (diagnostics only).
  [[nodiscard]] long use_count() const noexcept { return bytes_.use_count(); }

  friend bool operator==(const DataBuffer& a, const DataBuffer& b) noexcept {
    return a.bytes_ == b.bytes_;
  }

 private:
  std::shared_ptr<std::byte> bytes_;  ///< aliasing pointer to the first byte
  std::size_t size_ = 0;
};

}  // namespace dooc
