#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dooc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  DOOC_REQUIRE(num_threads > 0, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  jobs_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  Job j;
  j.run = std::move(job);
  std::future<void> fut = j.done.get_future();
  const bool pushed = jobs_.push(std::move(j));
  DOOC_REQUIRE(pushed, "submit on a shut-down thread pool");
  return fut;
}

void ThreadPool::worker_loop() {
  while (auto job = jobs_.pop()) {
    try {
      job->run();
      job->done.set_value();
    } catch (...) {
      job->done.set_exception(std::current_exception());
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&body, i] { body(i); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::parallel_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace dooc
