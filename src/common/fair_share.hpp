// Weighted-deficit-round-robin arbitration of a shared byte budget across
// tenants (jobs). The storage layer uses it to split the
// max_inflight_load_bytes admission budget into per-job accounted shares;
// the DES reuses it under virtual time so multiplexed scheduling replays
// identically.
//
// Three mechanisms compose:
//  * WDRR deficits: each round a queued tenant earns quantum*weight bytes
//    of credit; its head load starts once the credit covers it — so over
//    time tenants receive budget in proportion to their weights.
//  * A per-tenant share cap (share_cap * budget) that applies only while
//    another tenant is waiting: the starvation guard — one huge job cannot
//    monopolize the inflight budget when others have parked loads.
//  * An aging override: a head parked longer than starvation_ns jumps the
//    deficit order entirely (subject only to the global budget), so strict
//    priorities and skewed weights can never starve a tenant outright.
//
// Pure logic, no threads, no clock: callers pass now_ns (wall clock in the
// real storage node, virtual ns in the DES, a fake in tests) and hold
// their own lock. The single-tenant behaviour is bit-for-bit the legacy
// admission rule: admit unless (something in flight AND the load would
// exceed the budget); an oversized load flies alone rather than starving.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dooc {

/// Tenant identity: a job id. 0 is the default tenant (legacy single-run
/// callers that never mention jobs).
using TenantId = std::uint32_t;
constexpr TenantId kDefaultTenant = 0;

struct FairShareConfig {
  /// Shared byte budget (0 = unlimited: every admit succeeds).
  std::uint64_t budget_bytes = 0;
  /// WDRR credit a weight-1.0 tenant earns per arbitration round.
  std::uint64_t quantum_bytes = 256ull << 10;
  /// Fraction of the budget one tenant may hold in flight while another
  /// tenant is waiting (the starvation guard). Clamped to (0, 1].
  double share_cap = 0.5;
  /// A queued head older than this bypasses deficit/cap order (aging).
  std::uint64_t starvation_ns = 250'000'000;
};

class FairShare {
 public:
  static constexpr TenantId kNone = static_cast<TenantId>(-1);

  FairShare() = default;
  explicit FairShare(FairShareConfig cfg) : cfg_(cfg) {}

  void set_config(const FairShareConfig& cfg) { cfg_ = cfg; }
  [[nodiscard]] const FairShareConfig& config() const noexcept { return cfg_; }

  /// Register / update a tenant's weight (relative budget share) and
  /// priority (higher arbitrates first). Unknown tenants behave as
  /// weight 1.0, priority 0.
  void set_tenant(TenantId t, double weight, int priority = 0);
  /// Forget a tenant's weight/deficit. Outstanding charges keep draining
  /// through release() — retiring never leaks budget.
  void retire(TenantId t);

  /// May a new load of `bytes` for `t` start right now, ahead of any queue?
  /// Pure check — the caller charges separately on success.
  /// `others_waiting`: some other tenant has loads parked, which arms the
  /// per-tenant share cap.
  [[nodiscard]] bool try_admit(TenantId t, std::uint64_t bytes, bool others_waiting) const;

  /// One parked queue head per tenant, competing for the next grant.
  struct Head {
    TenantId tenant = kDefaultTenant;
    std::uint64_t bytes = 0;
    std::uint64_t waiting_since_ns = 0;
  };
  /// Arbitrate: which head may start now? kNone when the budget has no
  /// room (or `heads` is empty). A granted tenant's deficit is debited and
  /// the round-robin cursor advances; the caller must then charge() the
  /// granted bytes before the next pick().
  TenantId pick(const std::vector<Head>& heads, std::uint64_t now_ns);

  /// Account `bytes` of in-flight load to `t`.
  void charge(TenantId t, std::uint64_t bytes);
  /// Return `bytes` of budget charged to `t`.
  void release(TenantId t, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t inflight(TenantId t) const;
  [[nodiscard]] std::uint64_t inflight_total() const noexcept { return inflight_total_; }
  /// The per-tenant cap in bytes while contended.
  [[nodiscard]] std::uint64_t cap_bytes() const;
  /// How often the aging override fired (observability).
  [[nodiscard]] std::uint64_t starvation_overrides() const noexcept {
    return starvation_overrides_;
  }

 private:
  struct Account {
    double weight = 1.0;
    int priority = 0;
    std::uint64_t inflight = 0;
    std::uint64_t deficit = 0;
    bool retired = false;  ///< erase once the last charge releases
  };

  Account& account(TenantId t) { return accounts_[t]; }
  [[nodiscard]] const Account* find(TenantId t) const;
  /// Global budget check: room left, or nothing at all in flight (an
  /// oversized load flies alone rather than starving).
  [[nodiscard]] bool fits_budget(std::uint64_t bytes) const;
  /// Share-cap check for a contended grant.
  [[nodiscard]] bool under_cap(TenantId t, std::uint64_t bytes) const;

  FairShareConfig cfg_;
  std::unordered_map<TenantId, Account> accounts_;
  std::uint64_t inflight_total_ = 0;
  TenantId rr_cursor_ = kNone;  ///< last granted tenant (round-robin resume)
  std::uint64_t starvation_overrides_ = 0;
};

}  // namespace dooc
