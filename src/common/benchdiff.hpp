// Diff two bench_util JsonReport artifacts (BENCH_*.json): match records
// by their string-field identity, compute per-metric deltas, and decide —
// against a configurable threshold — whether the change is a regression.
// This is the gate that stops bench numbers from being write-only: CI runs
// a bench, diffs against a checked-in baseline, and fails on regression.
//
// Which direction is "worse" comes from name heuristics (seconds/time →
// lower is better, gflops/bandwidth/overlap → higher is better), each
// overridable per metric from the command line; metrics with no known
// direction are reported but never gate.
#pragma once

#include <string>
#include <vector>

namespace dooc::bench {

enum class Direction { LowerBetter, HigherBetter, Unknown };

struct DiffOptions {
  double threshold_pct = 10.0;  ///< worse by more than this → regression
  std::vector<std::string> lower_better;   ///< metric-name overrides
  std::vector<std::string> higher_better;
  std::vector<std::string> ignore;         ///< metrics to skip entirely
};

struct MetricDelta {
  std::string record;  ///< identity of the record ("k=v k=v" string fields)
  std::string metric;
  double before = 0.0;
  double after = 0.0;
  double change_pct = 0.0;  ///< (after - before) / |before| * 100
  Direction direction = Direction::Unknown;
  bool regression = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;
  std::vector<std::string> notes;  ///< unmatched records, schema drift, ...
  bool regression = false;

  [[nodiscard]] std::size_t regressions() const {
    std::size_t n = 0;
    for (const auto& d : deltas) n += d.regression ? 1 : 0;
    return n;
  }
};

/// Heuristic direction for a metric name, before overrides.
Direction classify_metric(const std::string& name);

/// Diff two JsonReport documents given as JSON text. Throws
/// std::runtime_error on unparseable input or a document with no
/// "records" array.
DiffResult diff_reports(const std::string& before_json, const std::string& after_json,
                        const DiffOptions& options = {});

/// Same, reading both files. Throws on I/O errors.
DiffResult diff_report_files(const std::string& before_path, const std::string& after_path,
                             const DiffOptions& options = {});

/// Human-readable table of the result.
std::string format_diff(const DiffResult& result, double threshold_pct);

}  // namespace dooc::bench
