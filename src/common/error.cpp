#include "common/error.hpp"

#include <sstream>

namespace dooc::detail {

void throw_check_failed(const char* kind, const char* expr, const char* file,
                        int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace dooc::detail
