// Streaming statistics and human-readable unit formatting, used by the
// instrumentation in the storage layer, the schedulers and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dooc {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) { *this = other; return; }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
    mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Rebuild from previously exported moments (telemetry frames, offline
  /// trace reconstruction). The inverse of reading count/mean/m2/sum/min/max.
  [[nodiscard]] static RunningStats from_parts(std::uint64_t n, double mean, double m2,
                                               double sum, double min, double max) noexcept {
    RunningStats s;
    s.n_ = n;
    if (n != 0) {
      s.mean_ = mean;
      s.m2_ = m2;
      s.sum_ = sum;
      s.min_ = min;
      s.max_ = max;
    }
    return s;
  }

  /// Second central moment sum (the Welford accumulator) — exported so a
  /// histogram can round-trip through a wire frame or a trace file.
  [[nodiscard]] double m2() const noexcept { return m2_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary histogram (log2 buckets) for latency/size distributions.
class Log2Histogram {
 public:
  void add(double x) noexcept {
    stats_.add(x);
    int bucket = 0;
    if (x >= 1.0) bucket = std::min<int>(kBuckets - 1, 1 + static_cast<int>(std::log2(x)));
    ++counts_[static_cast<std::size_t>(bucket)];
  }

  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept { return counts_[i]; }
  static constexpr int kBuckets = 64;

  /// Approximate p-quantile (p in [0,1]) by linear interpolation inside the
  /// bucket where the cumulative count crosses p, clamped to the exact
  /// observed [min, max]. Bucket b covers [2^(b-1), 2^b); bucket 0 is [0,1).
  [[nodiscard]] double quantile(double p) const noexcept {
    const std::uint64_t n = stats_.count();
    if (n == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(n);
    double cumulative = 0.0;
    for (int b = 0; b < kBuckets; ++b) {
      const auto c = static_cast<double>(counts_[static_cast<std::size_t>(b)]);
      if (c == 0.0) continue;
      if (cumulative + c >= target) {
        const double lo = b == 0 ? 0.0 : std::exp2(b - 1);
        const double hi = std::exp2(b);
        const double frac = c > 0.0 ? (target - cumulative) / c : 0.0;
        return std::clamp(lo + frac * (hi - lo), stats_.min(), stats_.max());
      }
      cumulative += c;
    }
    return stats_.max();
  }

  /// Combine two histograms (associative, like RunningStats::merge).
  void merge(const Log2Histogram& other) noexcept {
    stats_.merge(other.stats_);
    for (int b = 0; b < kBuckets; ++b) {
      counts_[static_cast<std::size_t>(b)] += other.counts_[static_cast<std::size_t>(b)];
    }
  }

  /// Rebuild from exported stats + bucket counts (telemetry frames, offline
  /// trace reconstruction). Buckets past `counts.size()` stay zero.
  [[nodiscard]] static Log2Histogram from_parts(const RunningStats& stats,
                                                const std::vector<std::uint64_t>& counts) noexcept {
    Log2Histogram h;
    h.stats_ = stats;
    const std::size_t n = std::min<std::size_t>(counts.size(), kBuckets);
    for (std::size_t b = 0; b < n; ++b) h.counts_[b] = counts[b];
    return h;
  }

 private:
  RunningStats stats_;
  std::uint64_t counts_[kBuckets] = {};
};

/// "1.56 TB", "18.7 GB/s" style formatting used by the bench tables.
std::string format_bytes(double bytes);
std::string format_bandwidth(double bytes_per_second);
std::string format_count(double count);  // 12.8 G, 4.66e7, ...
std::string format_duration(double seconds);

}  // namespace dooc
