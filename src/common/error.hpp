// Error handling primitives for the DOoC library.
//
// The library reports unrecoverable contract violations and environmental
// failures via exceptions derived from dooc::Error. Hot paths use the
// DOOC_CHECK / DOOC_REQUIRE macros which cost a predicted-taken branch.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dooc {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad interval, double release, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// The environment failed us (filesystem error, short read, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An internal invariant does not hold; indicates a bug in the library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// A storage request failed permanently: the retry/failover policy was
/// exhausted (transient I/O errors kept recurring, or every node that could
/// serve the data is down). Distinct from IoError — which reports a single
/// environmental failure — so the executor can route it into fault recovery
/// instead of aborting.
class StorageError : public Error {
 public:
  explicit StorageError(const std::string& what) : Error(what) {}
};

/// Immutability violation: a write-once block was written twice, or read
/// before being sealed. Kept distinct so tests can assert on it.
class ImmutabilityViolation : public Error {
 public:
  explicit ImmutabilityViolation(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& msg);
}  // namespace detail

}  // namespace dooc

/// Validate a user-facing precondition; throws dooc::InvalidArgument.
#define DOOC_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::dooc::detail::throw_check_failed("precondition", #expr, __FILE__,    \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)

/// Validate an internal invariant; throws dooc::InternalError.
#define DOOC_CHECK(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) [[unlikely]] {                                              \
      ::dooc::detail::throw_check_failed("invariant", #expr, __FILE__,       \
                                         __LINE__, (msg));                   \
    }                                                                        \
  } while (0)
