#include "common/stats.hpp"

#include <array>
#include <cstdio>

namespace dooc {

namespace {
std::string scaled(double value, double base, const std::array<const char*, 7>& units,
                   const char* suffix) {
  std::size_t u = 0;
  double v = value;
  while (std::abs(v) >= base && u + 1 < units.size()) {
    v /= base;
    ++u;
  }
  char out[64];
  std::snprintf(out, sizeof(out), "%.2f %s%s", v, units[u], suffix);
  return out;
}
}  // namespace

std::string format_bytes(double bytes) {
  return scaled(bytes, 1024.0, {"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}, "");
}

std::string format_bandwidth(double bytes_per_second) {
  // The paper quotes decimal GB/s (20 GB/s peak); match that convention.
  return scaled(bytes_per_second, 1000.0, {"B", "KB", "MB", "GB", "TB", "PB", "EB"}, "/s");
}

std::string format_count(double count) {
  return scaled(count, 1000.0, {"", "K", "M", "G", "T", "P", "E"}, "");
}

std::string format_duration(double seconds) {
  char out[64];
  if (seconds < 1e-6) {
    std::snprintf(out, sizeof(out), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(out, sizeof(out), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(out, sizeof(out), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(out, sizeof(out), "%.1f s", seconds);
  } else {
    std::snprintf(out, sizeof(out), "%.1f min", seconds / 60.0);
  }
  return out;
}

}  // namespace dooc
