// Deterministic, splittable random number generation. Every stochastic
// component (matrix generators, random-walk lookup, failure injection)
// derives its stream from an explicit seed so experiments replay bit-exact.
#pragma once

#include <cstdint>

namespace dooc {

/// SplitMix64 — tiny, fast, good-enough generator for workload synthesis.
/// Not for cryptography.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping is fine here: the bias
    // is < 2^-64 * bound which is irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derive an independent child stream (for per-block generators).
  [[nodiscard]] SplitMix64 split(std::uint64_t salt) noexcept {
    return SplitMix64(next() ^ (salt * 0x9e3779b97f4a7c15ULL) ^ 0xd1b54a32d192ed03ULL);
  }

 private:
  std::uint64_t state_;
};

}  // namespace dooc
