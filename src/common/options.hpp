// Flat key-value options bag with typed accessors. Used to configure the
// runtime, the storage layer and the bench harnesses from a single place
// (and from example-program command lines) without a config-file dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dooc {

class Options {
 public:
  Options() = default;

  void set(const std::string& key, std::string value) { values_[key] = std::move(value); }
  void set_int(const std::string& key, std::int64_t value) { values_[key] = std::to_string(value); }
  void set_double(const std::string& key, double value) { values_[key] = std::to_string(value); }
  void set_bool(const std::string& key, bool value) { values_[key] = value ? "true" : "false"; }

  [[nodiscard]] bool contains(const std::string& key) const { return values_.count(key) != 0; }

  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Parse "--key=value" / "--flag" style arguments; anything not starting
  /// with "--" is collected as a positional argument, in order.
  static Options from_args(int argc, char** argv);

  [[nodiscard]] const std::map<std::string, std::string>& raw() const { return values_; }
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dooc
