#include "common/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/json.hpp"

namespace dooc::bench {

namespace {

bool contains_token(const std::string& name, const char* token) {
  return name.find(token) != std::string::npos;
}

/// Identity of a record = its string-valued fields, in order ("matrix=x
/// format=sell"). Numeric fields are the measurements being diffed.
std::string record_identity(const json::Value& rec) {
  std::string id;
  for (const auto& [k, v] : rec.object) {
    if (!v.is_string()) continue;
    if (!id.empty()) id += ' ';
    id += k + "=" + v.str;
  }
  return id;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open '" + path + "'");
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

bool listed(const std::vector<std::string>& names, const std::string& metric) {
  return std::find(names.begin(), names.end(), metric) != names.end();
}

}  // namespace

Direction classify_metric(const std::string& name) {
  // Time-like and cost-like → lower is better.
  for (const char* t : {"seconds", "_time", "time_", "makespan", "_us", "_ms", "_ns",
                        "latency", "imbalance", "miss", "evict", "stall", "wait", "bytes_read",
                        "dropped"}) {
    if (contains_token(name, t)) return Direction::LowerBetter;
  }
  // A bare seconds suffix ("wall_s", "critical_s").
  if (name.size() >= 2 && name.compare(name.size() - 2, 2, "_s") == 0) {
    return Direction::LowerBetter;
  }
  // Throughput-like → higher is better.
  for (const char* t : {"gflops", "flops", "bandwidth", "_bw", "bw_", "throughput", "rate",
                        "overlap", "hit", "speedup"}) {
    if (contains_token(name, t)) return Direction::HigherBetter;
  }
  return Direction::Unknown;
}

DiffResult diff_reports(const std::string& before_json, const std::string& after_json,
                        const DiffOptions& options) {
  const json::Value before = json::parse(before_json);
  const json::Value after = json::parse(after_json);
  const json::Value* brecs = before.find("records");
  const json::Value* arecs = after.find("records");
  if (brecs == nullptr || !brecs->is_array() || arecs == nullptr || !arecs->is_array()) {
    throw std::runtime_error("not a JsonReport: missing \"records\" array");
  }

  DiffResult result;

  const json::Value* bver = before.find("schema_version");
  const json::Value* aver = after.find("schema_version");
  const double bv = bver != nullptr && bver->is_number() ? bver->number : 0.0;
  const double av = aver != nullptr && aver->is_number() ? aver->number : 0.0;
  if (bv != av) {
    result.notes.push_back("schema_version differs: before=" + std::to_string(bv) +
                           " after=" + std::to_string(av));
  }

  // Index the baseline's records; first occurrence wins on duplicate ids.
  std::map<std::string, const json::Value*> baseline;
  for (const auto& rec : brecs->array) {
    if (rec.is_object()) baseline.emplace(record_identity(rec), &rec);
  }

  std::map<std::string, bool> matched;
  for (const auto& rec : arecs->array) {
    if (!rec.is_object()) continue;
    const std::string id = record_identity(rec);
    const auto bit = baseline.find(id);
    if (bit == baseline.end()) {
      result.notes.push_back("record only in after: " + (id.empty() ? "(unnamed)" : id));
      continue;
    }
    matched[id] = true;
    for (const auto& [metric, av_val] : rec.object) {
      if (!av_val.is_number() || listed(options.ignore, metric)) continue;
      const json::Value* bv_val = bit->second->find(metric);
      if (bv_val == nullptr || !bv_val->is_number()) {
        result.notes.push_back("metric only in after: " + id + " " + metric);
        continue;
      }
      MetricDelta d;
      d.record = id;
      d.metric = metric;
      d.before = bv_val->number;
      d.after = av_val.number;
      d.change_pct = d.before != 0.0
                         ? (d.after - d.before) / std::fabs(d.before) * 100.0
                         : (d.after != 0.0 ? 100.0 : 0.0);
      d.direction = listed(options.lower_better, metric)    ? Direction::LowerBetter
                    : listed(options.higher_better, metric) ? Direction::HigherBetter
                                                            : classify_metric(metric);
      const double worse_pct = d.direction == Direction::LowerBetter    ? d.change_pct
                               : d.direction == Direction::HigherBetter ? -d.change_pct
                                                                        : 0.0;
      d.regression = d.direction != Direction::Unknown && worse_pct > options.threshold_pct;
      result.regression = result.regression || d.regression;
      result.deltas.push_back(std::move(d));
    }
  }
  for (const auto& [id, rec] : baseline) {
    if (matched.count(id) == 0) {
      result.notes.push_back("record only in before: " + (id.empty() ? "(unnamed)" : id));
    }
  }
  return result;
}

DiffResult diff_report_files(const std::string& before_path, const std::string& after_path,
                             const DiffOptions& options) {
  return diff_reports(read_file(before_path), read_file(after_path), options);
}

std::string format_diff(const DiffResult& result, double threshold_pct) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%-40s %-24s %14s %14s %9s %s\n", "record", "metric", "before",
                "after", "change", "verdict");
  out += buf;
  for (const auto& d : result.deltas) {
    const char* verdict = d.regression                           ? "REGRESSION"
                          : d.direction == Direction::Unknown    ? "-"
                                                                 : "ok";
    std::snprintf(buf, sizeof(buf), "%-40s %-24s %14.6g %14.6g %+8.2f%% %s\n", d.record.c_str(),
                  d.metric.c_str(), d.before, d.after, d.change_pct, verdict);
    out += buf;
  }
  for (const auto& note : result.notes) out += "note: " + note + "\n";
  std::snprintf(buf, sizeof(buf), "%zu metric(s) compared, %zu regression(s) past %.1f%%\n",
                result.deltas.size(), result.regressions(), threshold_pct);
  out += buf;
  return out;
}

}  // namespace dooc::bench
