#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace dooc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void Log::set_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel Log::level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Log::write(LogLevel level, const std::string& where, const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%9.4f %s %s] %s\n", elapsed_seconds(), level_name(level), where.c_str(), message.c_str());
}

}  // namespace dooc
