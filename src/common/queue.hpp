// Blocking MPMC queue — the mailbox primitive underneath streams and the
// in-process transport. Supports bounded capacity (credit-based flow
// control on streams) and cooperative shutdown via close().
#pragma once

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>

namespace dooc {

template <typename T>
class BlockingQueue {
 public:
  /// `capacity` bounds the number of queued items; push blocks when full.
  explicit BlockingQueue(std::size_t capacity = std::numeric_limits<std::size_t>::max())
      : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue, blocking while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue without blocking. Returns false when full or closed.
  bool try_push(T item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Dequeue, blocking while empty. Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Dequeue without blocking.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After close(), pushes fail and pops drain the remaining items then
  /// return nullopt. Idempotent.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Instantaneous fullness hint (racy by nature): true when a push would
  /// currently block. Used to route slow-path instrumentation.
  [[nodiscard]] bool full() const {
    std::lock_guard lock(mutex_);
    return items_.size() >= capacity_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace dooc
