// Little binary serialization layer used by the dataflow transport and the
// on-disk CSR format. Values are written in native (little-endian) layout;
// the on-disk format header records endianness so readers can refuse
// foreign files rather than silently misread them.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace dooc {

/// Append-only binary writer producing a DataBuffer.
class BinaryWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }

  template <typename T>
  void put_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put<std::uint64_t>(values.size());
    const auto* p = reinterpret_cast<const std::byte*>(values.data());
    out_.insert(out_.end(), p, p + values.size_bytes());
  }

  void put_raw(const void* data, std::size_t size) {
    const auto* p = reinterpret_cast<const std::byte*>(data);
    out_.insert(out_.end(), p, p + size);
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

  /// Move the accumulated bytes into a DataBuffer. The writer is reset.
  [[nodiscard]] DataBuffer take() {
    DataBuffer b = DataBuffer::copy_of(out_.data(), out_.size());
    out_.clear();
    return b;
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return out_; }

 private:
  std::vector<std::byte> out_;
};

/// Sequential binary reader over a borrowed byte extent. Throws IoError on
/// truncation so malformed messages/files fail loudly.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : bytes_(bytes) {}
  explicit BinaryReader(const DataBuffer& buffer) : bytes_(buffer.span()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = get<std::uint64_t>();
    need(n * sizeof(T));
    std::vector<T> values(n);
    if (n != 0) std::memcpy(values.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return values;
  }

  void get_raw(void* out, std::size_t size) {
    need(size);
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw IoError("binary reader: truncated input");
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace dooc
