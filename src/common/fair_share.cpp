#include "common/fair_share.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace dooc {

void FairShare::set_tenant(TenantId t, double weight, int priority) {
  DOOC_REQUIRE(weight > 0.0, "fair-share weight must be positive");
  Account& a = account(t);
  a.weight = weight;
  a.priority = priority;
}

void FairShare::retire(TenantId t) {
  auto it = accounts_.find(t);
  if (it == accounts_.end()) return;
  if (it->second.inflight == 0) {
    accounts_.erase(it);
  } else {
    // Charges still draining: reset the scheduling state only; release()
    // removes the account once the last charge returns.
    it->second.weight = 1.0;
    it->second.priority = 0;
    it->second.deficit = 0;
    it->second.retired = true;
  }
}

const FairShare::Account* FairShare::find(TenantId t) const {
  auto it = accounts_.find(t);
  return it == accounts_.end() ? nullptr : &it->second;
}

bool FairShare::fits_budget(std::uint64_t bytes) const {
  if (cfg_.budget_bytes == 0) return true;
  if (inflight_total_ == 0) return true;
  return inflight_total_ + bytes <= cfg_.budget_bytes;
}

std::uint64_t FairShare::cap_bytes() const {
  const double frac = std::clamp(cfg_.share_cap, 0.0, 1.0);
  return static_cast<std::uint64_t>(frac * static_cast<double>(cfg_.budget_bytes));
}

bool FairShare::under_cap(TenantId t, std::uint64_t bytes) const {
  const Account* a = find(t);
  const std::uint64_t held = a == nullptr ? 0 : a->inflight;
  // A tenant with nothing in flight may always start one load, even one
  // bigger than its cap — the cap bounds hoarding, it never starves.
  if (held == 0) return true;
  return held + bytes <= cap_bytes();
}

bool FairShare::try_admit(TenantId t, std::uint64_t bytes, bool others_waiting) const {
  if (cfg_.budget_bytes == 0) return true;
  if (!fits_budget(bytes)) return false;
  if (others_waiting && !under_cap(t, bytes)) return false;
  return true;
}

TenantId FairShare::pick(const std::vector<Head>& heads, std::uint64_t now_ns) {
  if (heads.empty()) return kNone;

  // Aging override first, across every priority tier: the longest-waiting
  // starved head gets the next budget room, full stop. If even that head
  // does not fit, nothing may jump it.
  const Head* starved = nullptr;
  for (const Head& h : heads) {
    if (now_ns - h.waiting_since_ns < cfg_.starvation_ns) continue;
    if (starved == nullptr || h.waiting_since_ns < starved->waiting_since_ns) starved = &h;
  }
  if (starved != nullptr) {
    if (!fits_budget(starved->bytes)) return kNone;
    ++starvation_overrides_;
    account(starved->tenant).deficit = 0;
    rr_cursor_ = starved->tenant;
    return starved->tenant;
  }

  // Strict priority: only the highest tier present competes; lower tiers
  // wait (the aging override above is their guarantee of progress).
  int top = account(heads.front().tenant).priority;
  for (const Head& h : heads) top = std::max(top, account(h.tenant).priority);
  std::vector<const Head*> tier;
  tier.reserve(heads.size());
  for (const Head& h : heads) {
    if (account(h.tenant).priority == top) tier.push_back(&h);
  }
  std::sort(tier.begin(), tier.end(),
            [](const Head* a, const Head* b) { return a->tenant < b->tenant; });

  // Round-robin start: the tenant after the last grant.
  std::size_t start = 0;
  for (std::size_t i = 0; i < tier.size(); ++i) {
    if (tier[i]->tenant > rr_cursor_ || rr_cursor_ == kNone) {
      start = i;
      break;
    }
  }

  const bool contended = tier.size() > 1 || heads.size() > 1;
  // Deficits grow each round, so once every head's deficit covers its
  // bytes and still nothing starts, the blocker is budget/cap — give up.
  while (true) {
    bool all_credited = true;
    for (std::size_t k = 0; k < tier.size(); ++k) {
      const Head& h = *tier[(start + k) % tier.size()];
      Account& a = account(h.tenant);
      if (a.deficit < h.bytes) {
        a.deficit += static_cast<std::uint64_t>(
            static_cast<double>(cfg_.quantum_bytes) * a.weight);
        all_credited = false;
      }
      if (a.deficit < h.bytes) continue;
      if (!fits_budget(h.bytes)) continue;
      if (contended && !under_cap(h.tenant, h.bytes)) continue;
      a.deficit -= h.bytes;
      rr_cursor_ = h.tenant;
      return h.tenant;
    }
    if (all_credited) return kNone;
  }
}

void FairShare::charge(TenantId t, std::uint64_t bytes) {
  account(t).inflight += bytes;
  inflight_total_ += bytes;
}

void FairShare::release(TenantId t, std::uint64_t bytes) {
  auto it = accounts_.find(t);
  DOOC_CHECK(it != accounts_.end() && it->second.inflight >= bytes,
             "fair-share release without matching charge");
  it->second.inflight -= bytes;
  DOOC_CHECK(inflight_total_ >= bytes, "fair-share total underflow");
  inflight_total_ -= bytes;
  if (it->second.retired && it->second.inflight == 0) accounts_.erase(it);
}

std::uint64_t FairShare::inflight(TenantId t) const {
  const Account* a = find(t);
  return a == nullptr ? 0 : a->inflight;
}

}  // namespace dooc
