// Minimal header-only JSON value model + recursive-descent parser. Just
// enough for tooling that reads our own artifacts (BENCH_*.json reports,
// trace metadata): objects keep insertion order, numbers are doubles,
// malformed input throws std::runtime_error with a byte position. Not a
// general-purpose library — no unicode surrogate handling, no
// serialization (writers build strings directly).
#pragma once

#include <cctype>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dooc::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  ///< insertion order

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) + ": " + why);
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const auto code = static_cast<unsigned>(
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  Value value() {
    ws();
    Value v;
    switch (peek()) {
      case '{': {
        v.kind = Value::Kind::Object;
        ++pos_;
        ws();
        if (peek() == '}') { ++pos_; return v; }
        while (true) {
          ws();
          std::string key = string();
          ws();
          expect(':');
          v.object.emplace_back(std::move(key), value());
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = Value::Kind::Array;
        ++pos_;
        ws();
        if (peek() == ']') { ++pos_; return v; }
        while (true) {
          v.array.push_back(value());
          ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = Value::Kind::String;
        v.str = string();
        return v;
      case 't':
        if (!literal("true")) fail("bad literal");
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) fail("bad literal");
        v.kind = Value::Kind::Bool;
        return v;
      case 'n':
        if (!literal("null")) fail("bad literal");
        return v;
      default:
        v.kind = Value::Kind::Number;
        v.number = number();
        return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline Value parse(std::string_view text) { return detail::Parser(text).parse(); }

}  // namespace dooc::json
