// Wall-clock stopwatch for the real execution backend. The discrete-event
// simulator keeps its own virtual clock (see simcluster/event_queue.hpp).
#pragma once

#include <chrono>

namespace dooc {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dooc
