// Wall-clock stopwatch for the real execution backend, reading the same
// steady TraceClock as the obs trace layer so stopwatch numbers and trace
// timestamps are directly comparable. The discrete-event simulator keeps
// its own virtual clock (see simcluster).
#pragma once

#include <cstdint>

#include "obs/clock.hpp"

namespace dooc {

class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::TraceClock::now_ns()) {}

  void restart() { start_ns_ = obs::TraceClock::now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return obs::TraceClock::now_ns() - start_ns_;
  }

  [[nodiscard]] double seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace dooc
