#include "common/options.hpp"

#include <cstdlib>

namespace dooc {

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

Options Options::from_args(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      opts.set_bool(arg, true);
    } else {
      opts.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  return opts;
}

}  // namespace dooc
