// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the classic
// zlib polynomial, table-driven and constexpr-initialized. Shared by the
// dooc::net frame layer and the spmv block codec so a payload checksummed
// on one side of the wire verifies identically on the other.
// crc32("123456789") == 0xCBF43926.
//
// Slice-by-8: eight derived tables let the hot loop fold 8 input bytes per
// iteration instead of one, which matters because the block codec CRCs
// every frame twice (body + decoded payload) on the storage fetch path.
// Little-endian only, like every other dooc byte layout (wire frames and
// block formats carry an endian probe and reject foreign byte order).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace dooc::common {

namespace detail {
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}
inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    make_crc32_tables();
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> bytes) noexcept {
  const auto& t = detail::kCrc32Tables;
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
          t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    crc = t[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dooc::common
