// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).
//
// Lanczos projects the huge sparse operator onto a k-dimensional Krylov
// subspace; the small projected problem T is tridiagonal with the Lanczos
// alphas on the diagonal and betas off it. Its eigenvalues approximate the
// extremal eigenvalues of the original operator; the *last components* of
// its eigenvectors give the standard residual bound |beta_k * s_k|.
#pragma once

#include <vector>

namespace dooc::solver {

struct TridiagEigen {
  std::vector<double> values;  ///< ascending eigenvalues
  /// Row-major eigenvector matrix Z (k×k): column j is the eigenvector of
  /// values[j]; Z[(k-1)*k + j] is its last component.
  std::vector<double> vectors;
  int k = 0;

  [[nodiscard]] double last_component(int j) const { return vectors[(k - 1) * k + j]; }
};

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `alpha` (size k) and off-diagonal `beta` (size k-1, beta[i] couples
/// rows i and i+1). Throws on convergence failure (pathological input).
[[nodiscard]] TridiagEigen tridiag_eigen(const std::vector<double>& alpha,
                                         const std::vector<double>& beta);

/// Eigenvalues only (same algorithm, no eigenvector accumulation).
[[nodiscard]] std::vector<double> tridiag_eigenvalues(const std::vector<double>& alpha,
                                                      const std::vector<double>& beta);

}  // namespace dooc::solver
