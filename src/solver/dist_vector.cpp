#include "solver/dist_vector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dooc::solver {

template <typename Fn>
void DistVectorOps::for_each_part(const std::string& base, int index, Fn&& fn) {
  for (int u = 0; u < grid_.k(); ++u) {
    const std::string name = part_name(base, index, u);
    const int node = owner_(u, u);
    const std::uint64_t bytes = grid_.part_size(u) * sizeof(double);
    fn(u, node, name, bytes);
  }
}

void DistVectorOps::create(const std::string& base, int index,
                           const std::function<double(std::uint64_t)>& value) {
  for_each_part(base, index, [&](int u, int node, const std::string& name, std::uint64_t bytes) {
    auto& store = cluster_.node(node);
    store.create_array(name, bytes, bytes);
    auto handle = store.request_write({name, 0, bytes}).get();
    auto span = handle.as<double>();
    const std::uint64_t base_index = grid_.part_begin(u);
    for (std::uint64_t i = 0; i < span.size(); ++i) span[i] = value(base_index + i);
  });
}

void DistVectorOps::create_from(const std::string& base, int index,
                                const std::vector<double>& data) {
  DOOC_REQUIRE(data.size() == grid_.n(), "dense source size mismatch");
  create(base, index, [&](std::uint64_t i) { return data[i]; });
}

std::vector<double> DistVectorOps::gather(const std::string& base, int index) {
  std::vector<double> out(grid_.n());
  for_each_part(base, index, [&](int u, int node, const std::string& name, std::uint64_t bytes) {
    auto handle = cluster_.node(node).request_read({name, 0, bytes}).get();
    auto span = handle.as<double>();
    std::copy(span.begin(), span.end(),
              out.begin() + static_cast<std::ptrdiff_t>(grid_.part_begin(u)));
  });
  return out;
}

double DistVectorOps::dot(const std::string& base_a, int ia, const std::string& base_b, int ib) {
  double total = 0.0;
  for_each_part(base_a, ia, [&](int u, int node, const std::string& name, std::uint64_t bytes) {
    auto ha = cluster_.node(node).request_read({name, 0, bytes}).get();
    auto hb = cluster_.node(node).request_read({part_name(base_b, ib, u), 0, bytes}).get();
    auto sa = ha.as<double>();
    auto sb = hb.as<double>();
    for (std::size_t i = 0; i < sa.size(); ++i) total += sa[i] * sb[i];
  });
  return total;
}

double DistVectorOps::norm2(const std::string& base, int index) {
  return std::sqrt(dot(base, index, base, index));
}

void DistVectorOps::axpy_into(std::vector<double>& y_dense, double c, const std::string& base,
                              int index) {
  DOOC_REQUIRE(y_dense.size() == grid_.n(), "dense operand size mismatch");
  for_each_part(base, index, [&](int u, int node, const std::string& name, std::uint64_t bytes) {
    auto handle = cluster_.node(node).request_read({name, 0, bytes}).get();
    auto span = handle.as<double>();
    double* y = y_dense.data() + grid_.part_begin(u);
    for (std::size_t i = 0; i < span.size(); ++i) y[i] += c * span[i];
  });
}

double DistVectorOps::dot_dense(const std::vector<double>& y_dense, const std::string& base,
                                int index) {
  DOOC_REQUIRE(y_dense.size() == grid_.n(), "dense operand size mismatch");
  double total = 0.0;
  for_each_part(base, index, [&](int u, int node, const std::string& name, std::uint64_t bytes) {
    auto handle = cluster_.node(node).request_read({name, 0, bytes}).get();
    auto span = handle.as<double>();
    const double* y = y_dense.data() + grid_.part_begin(u);
    for (std::size_t i = 0; i < span.size(); ++i) total += y[i] * span[i];
  });
  return total;
}

void DistVectorOps::flush(const std::string& base, int index) {
  for_each_part(base, index, [&](int /*u*/, int node, const std::string& name, std::uint64_t) {
    cluster_.node(node).flush_array(name);
  });
}

void DistVectorOps::remove(const std::string& base, int index) {
  for_each_part(base, index, [&](int /*u*/, int node, const std::string& name, std::uint64_t) {
    cluster_.node(node).delete_array(name);
  });
}

bool DistVectorOps::exists(const std::string& base, int index) {
  bool all = true;
  for_each_part(base, index, [&](int /*u*/, int node, const std::string& name, std::uint64_t) {
    if (!cluster_.node(node).array_meta(name).has_value()) all = false;
  });
  return all;
}

}  // namespace dooc::solver
