// Distributed vector helpers for the iterative solvers.
//
// A distributed vector is a family of K single-block arrays (one per grid
// row partition) living in the DOoC storage layer. Solvers use these
// helpers for the BLAS-1 work between out-of-core SpMV steps: reading
// parts (which may stream back from scratch files — Lanczos basis vectors
// are flushed and LRU-evicted, making the reorthogonalization itself an
// out-of-core computation), creating new immutable iterates, and the dot
// products / norms that drive convergence.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "spmv/block_grid.hpp"

namespace dooc::solver {

class DistVectorOps {
 public:
  DistVectorOps(storage::StorageCluster& cluster, const spmv::BlockGrid& grid,
                spmv::BlockOwner owner)
      : cluster_(cluster), grid_(grid), owner_(std::move(owner)) {}

  /// Name of part u of vector (base, index).
  [[nodiscard]] static std::string part_name(const std::string& base, int index, int part) {
    return spmv::BlockGrid::vector_name(base, index, part);
  }

  /// Create vector (base, index) from a functor of the global element index.
  void create(const std::string& base, int index,
              const std::function<double(std::uint64_t)>& value);
  /// Create vector (base, index) from a dense source.
  void create_from(const std::string& base, int index, const std::vector<double>& data);

  /// Gather the whole vector to the caller.
  [[nodiscard]] std::vector<double> gather(const std::string& base, int index);

  /// dot((base_a, ia), (base_b, ib)) — parts are read where they live.
  [[nodiscard]] double dot(const std::string& base_a, int ia, const std::string& base_b, int ib);
  [[nodiscard]] double norm2(const std::string& base, int index);

  /// y_dense -= c * (base, index): stream the stored vector into a dense
  /// working copy (this is the reorthogonalization axpy).
  void axpy_into(std::vector<double>& y_dense, double c, const std::string& base, int index);
  /// dot between a dense working vector and a stored one.
  [[nodiscard]] double dot_dense(const std::vector<double>& y_dense, const std::string& base,
                                 int index);

  /// Flush every part to its home scratch file (making it evictable — this
  /// is what lets a long Lanczos basis exceed memory).
  void flush(const std::string& base, int index);
  /// Delete every part.
  void remove(const std::string& base, int index);
  /// True when every part exists in the catalog.
  [[nodiscard]] bool exists(const std::string& base, int index);

  [[nodiscard]] const spmv::BlockGrid& grid() const noexcept { return grid_; }

 private:
  template <typename Fn>
  void for_each_part(const std::string& base, int index, Fn&& fn);

  storage::StorageCluster& cluster_;
  spmv::BlockGrid grid_;
  spmv::BlockOwner owner_;
};

}  // namespace dooc::solver
