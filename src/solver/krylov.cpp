#include "solver/krylov.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "spmv/kernels.hpp"

namespace dooc::solver {

namespace {

spmv::BlockOwner owner_of(const spmv::DeployedMatrix& matrix) {
  // Vector parts live with the diagonal blocks (as in create_distributed_vector).
  return [&matrix](int u, int v) { return matrix.owner_of(u, v); };
}

}  // namespace

void SpmvStepper::step(int j) {
  IteratedSpmvConfig config;
  config.iterations = 1;
  config.first_iteration = j + 1;
  config.mode = mode_;
  config.inter_iteration_sync = false;  // single step; the solver is the barrier
  config.vector_base = base_;
  IteratedSpmv spmv(cluster_, matrix_, config);
  spmv.run(engine_);
  spmv.cleanup_intermediates();  // partials & aggregates; keeps (base, j+1)
}

// ---------------------------------------------------------------------------
// Lanczos
// ---------------------------------------------------------------------------

Lanczos::Lanczos(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
                 sched::Engine& engine, LanczosOptions options)
    : cluster_(cluster),
      matrix_(matrix),
      engine_(engine),
      options_(std::move(options)),
      vecs_(cluster, matrix.grid, owner_of(matrix)),
      stepper_(cluster, matrix, engine, options_.base) {
  DOOC_REQUIRE(options_.max_iterations >= 1, "need at least one Lanczos iteration");
  DOOC_REQUIRE(options_.num_eigenvalues >= 1, "need at least one wanted eigenvalue");
}

LanczosResult Lanczos::run() {
  const std::string& base = options_.base;
  const std::uint64_t n = matrix_.grid.n();

  // v_0: random normalized start vector.
  {
    SplitMix64 rng(options_.seed);
    std::vector<double> v0(n);
    for (auto& x : v0) x = rng.next_double() - 0.5;
    spmv::scale(v0, 1.0 / spmv::norm2(v0));
    vecs_.create_from(base, 0, v0);
    if (options_.flush_basis) vecs_.flush(base, 0);
  }

  LanczosResult result;
  for (int j = 0; j < options_.max_iterations; ++j) {
    // w = A v_j (out-of-core distributed SpMV).
    stepper_.step(j);
    std::vector<double> w = vecs_.gather(base, j + 1);
    vecs_.remove(base, j + 1);  // replaced below by the normalized v_{j+1}

    // Three-term recurrence.
    const double alpha = vecs_.dot_dense(w, base, j);
    result.alpha.push_back(alpha);
    vecs_.axpy_into(w, -alpha, base, j);
    if (j > 0) vecs_.axpy_into(w, -result.beta[static_cast<std::size_t>(j) - 1], base, j - 1);

    if (options_.full_reorthogonalization) {
      // Classical Gram-Schmidt sweep against the whole stored basis; basis
      // vectors stream back from scratch files when evicted.
      for (int i = 0; i <= j; ++i) {
        const double c = vecs_.dot_dense(w, base, i);
        if (c != 0.0) vecs_.axpy_into(w, -c, base, i);
      }
    }

    const double beta = spmv::norm2(w);

    // Ritz values and residual bounds from the projected tridiagonal T_j.
    const TridiagEigen eig = tridiag_eigen(result.alpha, result.beta);
    const int wanted = std::min<int>(options_.num_eigenvalues, eig.k);
    result.eigenvalues.assign(eig.values.begin(), eig.values.begin() + wanted);
    result.residuals.clear();
    bool all_converged = eig.k >= options_.num_eigenvalues;
    for (int i = 0; i < wanted; ++i) {
      const double res = std::abs(beta * eig.last_component(i));
      result.residuals.push_back(res);
      if (res > options_.tolerance) all_converged = false;
    }
    result.iterations = j + 1;

    if (all_converged || beta < 1e-14 || j + 1 == options_.max_iterations) {
      result.converged = all_converged || beta < 1e-14;
      break;
    }

    // v_{j+1} = w / beta.
    spmv::scale(w, 1.0 / beta);
    result.beta.push_back(beta);
    vecs_.create_from(base, j + 1, w);
    if (options_.flush_basis) vecs_.flush(base, j + 1);
  }
  return result;
}

std::vector<std::vector<double>> Lanczos::compute_eigenvectors(const LanczosResult& result,
                                                               int count) {
  DOOC_REQUIRE(result.iterations >= 1, "run() must precede compute_eigenvectors()");
  const TridiagEigen eig = tridiag_eigen(result.alpha, result.beta);
  const int wanted = std::min<int>(count, eig.k);
  const std::uint64_t n = matrix_.grid.n();
  std::vector<std::vector<double>> ritz(static_cast<std::size_t>(wanted),
                                        std::vector<double>(n, 0.0));
  // y_i = sum_j V_j * s_{j,i}: stream each basis vector once.
  const int basis = static_cast<int>(result.alpha.size());
  for (int j = 0; j < basis; ++j) {
    const std::vector<double> vj = vecs_.gather(options_.base, j);
    for (int i = 0; i < wanted; ++i) {
      const double s = eig.vectors[static_cast<std::size_t>(j) * eig.k + i];
      double* y = ritz[static_cast<std::size_t>(i)].data();
      for (std::uint64_t e = 0; e < n; ++e) y[e] += s * vj[e];
    }
  }
  return ritz;
}

// ---------------------------------------------------------------------------
// Conjugate gradient
// ---------------------------------------------------------------------------

CgResult conjugate_gradient(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
                            sched::Engine& engine, const std::vector<double>& b,
                            const CgOptions& options) {
  const std::uint64_t n = matrix.grid.n();
  DOOC_REQUIRE(b.size() == n, "right-hand side has wrong dimension");
  DistVectorOps vecs(cluster, matrix.grid, [&matrix](int u, int v) { return matrix.owner_of(u, v); });
  SpmvStepper stepper(cluster, matrix, engine, options.base);

  CgResult result;
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> p = r;
  double rho = spmv::dot(r, r);
  const double b_norm = spmv::norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  for (int j = 0; j < options.max_iterations; ++j) {
    vecs.create_from(options.base, j, p);
    stepper.step(j);
    const std::vector<double> q = vecs.gather(options.base, j + 1);  // q = A p
    vecs.remove(options.base, j);
    vecs.remove(options.base, j + 1);

    const double pq = spmv::dot(p, q);
    DOOC_REQUIRE(pq > 0, "matrix is not positive definite along the search direction");
    const double alpha = rho / pq;
    spmv::axpy(alpha, p, result.x);
    spmv::axpy(-alpha, q, r);
    const double rho_next = spmv::dot(r, r);
    const double rel = std::sqrt(rho_next) / b_norm;
    result.residual_history.push_back(rel);
    result.iterations = j + 1;
    if (rel < options.tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rho_next / rho;
    rho = rho_next;
    for (std::uint64_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return result;
}

// ---------------------------------------------------------------------------
// Power iteration
// ---------------------------------------------------------------------------

PowerIterationResult power_iteration(storage::StorageCluster& cluster,
                                     const spmv::DeployedMatrix& matrix, sched::Engine& engine,
                                     int max_iterations, double tolerance, std::uint64_t seed,
                                     const std::string& base) {
  const std::uint64_t n = matrix.grid.n();
  DistVectorOps vecs(cluster, matrix.grid, [&matrix](int u, int v) { return matrix.owner_of(u, v); });
  SpmvStepper stepper(cluster, matrix, engine, base);

  SplitMix64 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double() - 0.5;
  double norm = spmv::norm2(v);
  spmv::scale(v, 1.0 / norm);

  PowerIterationResult result;
  double lambda_prev = 0.0;
  for (int j = 0; j < max_iterations; ++j) {
    vecs.create_from(base, j, v);
    stepper.step(j);
    std::vector<double> av = vecs.gather(base, j + 1);
    vecs.remove(base, j);
    vecs.remove(base, j + 1);

    const double lambda = spmv::dot(v, av);  // Rayleigh quotient
    norm = spmv::norm2(av);
    DOOC_REQUIRE(norm > 0, "matrix annihilated the iterate");
    v = std::move(av);
    spmv::scale(v, 1.0 / norm);
    result.iterations = j + 1;
    result.eigenvalue = lambda;
    if (j > 0 && std::abs(lambda - lambda_prev) < tolerance * std::abs(lambda)) {
      result.converged = true;
      break;
    }
    lambda_prev = lambda;
  }
  result.eigenvector = std::move(v);
  return result;
}

}  // namespace dooc::solver
