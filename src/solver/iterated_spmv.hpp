// The paper's use case (§IV): iterated sparse matrix-vector multiplication
// y = A x over a K×K block grid, expressed as a DAG of multiply / sum tasks
// for the DOoC scheduler.
//
// Per iteration i (Fig. 3): K² multiplies  x^i_{u,v} = A_{u,v} * x^{i-1}_v
// followed by K reductions  x^i_u = Σ_v x^i_{u,v}.
//
// Two strategies reproduce the paper's two experiments:
//  * Simple (Table III): partials go straight to the reducer on the node
//    hosting A_{u,0}, with a global synchronization after the SpMV phase
//    and another after the reduction phase.
//  * Interleaved (Table IV): the post-SpMV synchronization is removed (so
//    reductions interleave with multiplies), and each node first aggregates
//    its own partials for a row before communicating ("the reduction is
//    first performed locally by each node").
// An optional inter-iteration synchronization models the reorthogonalization
// barrier of a real Lanczos iteration; switching it off reproduces the
// fully-asynchronous Gantt chart of Fig. 5(b).
#pragma once

#include <memory>
#include <string>

#include "sched/engine.hpp"
#include "solver/array_creator.hpp"
#include "spmv/block_grid.hpp"

namespace dooc::solver {

enum class ReductionMode {
  Simple,       ///< Table III: direct reduction + post-SpMV global sync
  Interleaved,  ///< Table IV: local aggregation, no post-SpMV sync
};

struct IteratedSpmvConfig {
  int iterations = 2;
  ReductionMode mode = ReductionMode::Interleaved;
  /// Barrier between iterations (the Lanczos reorthogonalization point).
  bool inter_iteration_sync = true;
  /// Base name of the distributed vector; iteration `first_iteration - 1`
  /// parts (vector_name(base, first_iteration - 1, u)) must exist before
  /// run().
  std::string vector_base = "x";
  /// Index of the first iteration this graph performs (defaults to 1, i.e.
  /// the input is iteration 0). Lets solvers chain single-step graphs:
  /// Lanczos step j runs {first_iteration = j+1, iterations = 1}.
  int first_iteration = 1;
  /// Kernel-layer knobs for the task bodies: block format dispatch,
  /// partitioning mode and the serial cutover. Blocks are sniffed per
  /// magic word, so a graph built with this config runs against either
  /// CSR or SELL-C-σ deployments.
  spmv::KernelConfig kernels;
};

class IteratedSpmv {
 public:
  /// Builds the task graph against the real storage layer. The initial
  /// vector arrays must already exist; intermediate and result arrays are
  /// created here.
  IteratedSpmv(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
               IteratedSpmvConfig config);

  /// Graph-only variant: arrays are created through `creator` (e.g. a
  /// VirtualArrayCreator for the testbed simulator). gather_result() and
  /// cleanup_intermediates() are unavailable in this mode.
  IteratedSpmv(ArrayCreator& creator, const spmv::DeployedMatrix& matrix,
               IteratedSpmvConfig config);

  [[nodiscard]] sched::TaskGraph& graph() noexcept { return graph_; }
  [[nodiscard]] const IteratedSpmvConfig& config() const noexcept { return config_; }

  /// Execute on the real backend and return the engine report.
  sched::Report run(sched::Engine& engine) { return engine.run(graph_); }

  /// Result vector of the final iteration, gathered to the caller.
  [[nodiscard]] std::vector<double> gather_result();

  /// Delete every intermediate array this driver created (partials,
  /// aggregates, sync tokens and non-final iterates).
  void cleanup_intermediates();

  /// The emitted command list, Fig. 3 style ("x_{0,0}^1 = A_{0,0} * x_0^0").
  [[nodiscard]] std::string command_list() const;
  /// The derived dependencies, Fig. 4 style ("x_0^1 <- x_{0,0}^1 (A_{0,0})").
  [[nodiscard]] std::string dependency_list() const;

  /// Total floating-point work of one iteration (2 flops per non-zero plus
  /// the reduction adds).
  [[nodiscard]] double flops_per_iteration() const noexcept { return flops_per_iteration_; }

 private:
  void build();
  void create_vector_array(const std::string& name, int home_node, std::uint64_t bytes);

  storage::StorageCluster* cluster_ = nullptr;  ///< null in graph-only mode
  std::unique_ptr<StorageArrayCreator> owned_creator_;
  ArrayCreator* creator_ = nullptr;
  const spmv::DeployedMatrix& matrix_;
  IteratedSpmvConfig config_;
  sched::TaskGraph graph_;
  std::vector<std::string> created_arrays_;
  double flops_per_iteration_ = 0.0;
};

}  // namespace dooc::solver
