#include "solver/tridiag.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dooc::solver {

namespace {

double hypot_stable(double a, double b) { return std::hypot(a, b); }

/// Implicit QL with Wilkinson shift. d: diagonal (modified in place to the
/// eigenvalues), e: sub-diagonal (e[0..n-2] used, destroyed), z: nullptr or
/// an n×n row-major matrix accumulating the similarity transforms.
void tqli(std::vector<double>& d, std::vector<double>& e, std::vector<double>* z) {
  const int n = static_cast<int>(d.size());
  if (n == 0) return;
  e.resize(static_cast<std::size_t>(n), 0.0);  // pad the trailing slot
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        DOOC_CHECK(++iter <= 50, "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot_stable(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        bool underflow = false;
        for (int i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot_stable(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            // Recover from an underflow in the rotation chain.
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (int row = 0; row < n; ++row) {
              const std::size_t a = static_cast<std::size_t>(row) * n + i;
              f = (*z)[a + 1];
              (*z)[a + 1] = s * (*z)[a] + c * f;
              (*z)[a] = c * (*z)[a] - s * f;
            }
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

/// Sort eigenvalues ascending, permuting eigenvector columns alongside.
void sort_eigen(std::vector<double>& d, std::vector<double>* z) {
  const int n = static_cast<int>(d.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) { return d[a] < d[b]; });
  std::vector<double> ds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ds[static_cast<std::size_t>(i)] = d[order[static_cast<std::size_t>(i)]];
  d = std::move(ds);
  if (z != nullptr) {
    std::vector<double> zs(z->size());
    for (int row = 0; row < n; ++row) {
      for (int col = 0; col < n; ++col) {
        zs[static_cast<std::size_t>(row) * n + col] =
            (*z)[static_cast<std::size_t>(row) * n + order[static_cast<std::size_t>(col)]];
      }
    }
    *z = std::move(zs);
  }
}

}  // namespace

TridiagEigen tridiag_eigen(const std::vector<double>& alpha, const std::vector<double>& beta) {
  DOOC_REQUIRE(beta.size() + 1 == alpha.size() || (alpha.empty() && beta.empty()),
               "beta must have one fewer entry than alpha");
  TridiagEigen out;
  out.k = static_cast<int>(alpha.size());
  out.values = alpha;
  std::vector<double> e = beta;
  out.vectors.assign(static_cast<std::size_t>(out.k) * out.k, 0.0);
  for (int i = 0; i < out.k; ++i) out.vectors[static_cast<std::size_t>(i) * out.k + i] = 1.0;
  tqli(out.values, e, &out.vectors);
  sort_eigen(out.values, &out.vectors);
  return out;
}

std::vector<double> tridiag_eigenvalues(const std::vector<double>& alpha,
                                        const std::vector<double>& beta) {
  DOOC_REQUIRE(beta.size() + 1 == alpha.size() || (alpha.empty() && beta.empty()),
               "beta must have one fewer entry than alpha");
  std::vector<double> d = alpha;
  std::vector<double> e = beta;
  tqli(d, e, nullptr);
  sort_eigen(d, nullptr);
  return d;
}

}  // namespace dooc::solver
