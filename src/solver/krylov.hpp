// Krylov-subspace solvers on top of the out-of-core SpMV machinery.
//
// The paper's motivation is the Lanczos eigensolver inside MFDn (§II): its
// cost is dominated by iterated SpMV plus the orthonormalization of the
// Lanczos basis. The paper's prototype "does not implement the full Lanczos
// algorithm"; this module does — it is the paper's announced next step
// ("developing more linear algebra kernels will lower the bar for the
// application scientists").
//
//  * Lanczos: k-step with optional full reorthogonalization. The basis
//    vectors live in DOoC arrays, are flushed to scratch files and evicted
//    under memory pressure, so the reorthogonalization sweep itself runs
//    out of core. Eigenvalues of the projected tridiagonal system come from
//    solver/tridiag.hpp, with the standard |beta_k s_k| residual bound.
//  * ConjugateGradient: SPD linear solves, one out-of-core SpMV per step.
//  * PowerIteration: dominant eigenpair, the simplest iterated-SpMV client.
//
// Every matvec is an IteratedSpmv single-step graph executed by the real
// engine, so the hierarchical scheduler, prefetching, and the storage
// layer's LRU behaviour are exercised exactly as in the paper's runs.
#pragma once

#include "sched/engine.hpp"
#include "solver/dist_vector.hpp"
#include "solver/iterated_spmv.hpp"
#include "solver/tridiag.hpp"

namespace dooc::solver {

/// Runs y_{j+1} = A y_j steps over the distributed storage: reads vector
/// (base, j), writes (base, j+1), cleaning up the partial/sync arrays each
/// step. The matrix stays cached across steps per the storage layer's LRU.
class SpmvStepper {
 public:
  SpmvStepper(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
              sched::Engine& engine, std::string base,
              ReductionMode mode = ReductionMode::Interleaved)
      : cluster_(cluster), matrix_(matrix), engine_(engine), base_(std::move(base)), mode_(mode) {}

  /// Perform step j; afterwards (base, j+1) exists and is sealed.
  void step(int j);

  [[nodiscard]] const std::string& base() const noexcept { return base_; }

 private:
  storage::StorageCluster& cluster_;
  const spmv::DeployedMatrix& matrix_;
  sched::Engine& engine_;
  std::string base_;
  ReductionMode mode_;
};

// ---------------------------------------------------------------------------
// Lanczos
// ---------------------------------------------------------------------------

struct LanczosOptions {
  int max_iterations = 100;
  int num_eigenvalues = 5;  ///< lowest eigenvalues wanted
  double tolerance = 1e-8;  ///< residual bound |beta_k s_k| per eigenpair
  /// Re-orthogonalize w against the whole stored basis every step (MFDn
  /// does; without it Lanczos loses orthogonality and produces ghosts).
  bool full_reorthogonalization = true;
  /// Flush basis vectors to scratch files so they are LRU-evictable.
  bool flush_basis = true;
  std::uint64_t seed = 7;
  std::string base = "lz";  ///< array-name prefix for the basis
};

struct LanczosResult {
  std::vector<double> eigenvalues;  ///< lowest `num_eigenvalues` Ritz values
  std::vector<double> residuals;    ///< matching |beta_k s_k| bounds
  std::vector<double> alpha;        ///< tridiagonal diagonal
  std::vector<double> beta;         ///< tridiagonal off-diagonal
  int iterations = 0;
  bool converged = false;
};

class Lanczos {
 public:
  Lanczos(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
          sched::Engine& engine, LanczosOptions options);

  LanczosResult run();

  /// Ritz vectors of the lowest eigenpairs from the stored basis
  /// (streams every basis vector once; call after run()).
  [[nodiscard]] std::vector<std::vector<double>> compute_eigenvectors(
      const LanczosResult& result, int count);

 private:
  storage::StorageCluster& cluster_;
  const spmv::DeployedMatrix& matrix_;
  sched::Engine& engine_;
  LanczosOptions options_;
  DistVectorOps vecs_;
  SpmvStepper stepper_;
};

// ---------------------------------------------------------------------------
// Conjugate gradient
// ---------------------------------------------------------------------------

struct CgOptions {
  int max_iterations = 200;
  double tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::string base = "cgp";  ///< array-name prefix for direction vectors
};

struct CgResult {
  std::vector<double> x;
  std::vector<double> residual_history;  ///< ||r||/||b|| per iteration
  int iterations = 0;
  bool converged = false;
};

/// Solve A x = b (A symmetric positive definite) with out-of-core matvecs.
CgResult conjugate_gradient(storage::StorageCluster& cluster,
                            const spmv::DeployedMatrix& matrix, sched::Engine& engine,
                            const std::vector<double>& b, const CgOptions& options = {});

// ---------------------------------------------------------------------------
// Power iteration
// ---------------------------------------------------------------------------

struct PowerIterationResult {
  double eigenvalue = 0.0;  ///< dominant eigenvalue (Rayleigh quotient)
  std::vector<double> eigenvector;
  int iterations = 0;
  bool converged = false;
};

PowerIterationResult power_iteration(storage::StorageCluster& cluster,
                                     const spmv::DeployedMatrix& matrix, sched::Engine& engine,
                                     int max_iterations = 100, double tolerance = 1e-10,
                                     std::uint64_t seed = 11, const std::string& base = "pw");

}  // namespace dooc::solver
