// Indirection for array creation so the iterated-SpMV graph builder can
// target either the real distributed storage layer (functional runs) or a
// virtual catalog (the discrete-event testbed simulator, where paper-scale
// arrays never physically exist).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "storage/storage_cluster.hpp"

namespace dooc::solver {

class ArrayCreator {
 public:
  virtual ~ArrayCreator() = default;
  /// Create a single-block array of `bytes` homed on `home_node`.
  virtual void create(const std::string& name, std::uint64_t bytes, int home_node) = 0;
};

/// Creates arrays in the real storage layer.
class StorageArrayCreator final : public ArrayCreator {
 public:
  explicit StorageArrayCreator(storage::StorageCluster& cluster) : cluster_(cluster) {}
  void create(const std::string& name, std::uint64_t bytes, int home_node) override {
    cluster_.node(home_node).create_array(name, bytes, bytes);
  }

 private:
  storage::StorageCluster& cluster_;
};

/// Records array metadata only — used by the simulator.
struct VirtualArray {
  std::uint64_t bytes = 0;
  int home_node = 0;
  bool durable = false;  ///< pre-exists on "disk" (matrix blocks, x0)
  /// On-disk size when the file holds a codec frame (0 = stored raw). A
  /// modeled read moves this many bytes over the filesystem, then charges
  /// a decode latency before the array turns resident (SimResources::
  /// decode_rate) — the DES mirror of the storage layer's stored_bytes.
  std::uint64_t stored_bytes = 0;
};

class VirtualArrayCreator final : public ArrayCreator {
 public:
  void create(const std::string& name, std::uint64_t bytes, int home_node) override {
    arrays_[name] = VirtualArray{bytes, home_node, false};
  }
  /// Register a pre-existing (durable) array, e.g. a sub-matrix file.
  /// `stored_bytes` nonzero marks it stored as a codec frame of that size.
  void add_durable(const std::string& name, std::uint64_t bytes, int home_node,
                   std::uint64_t stored_bytes = 0) {
    arrays_[name] = VirtualArray{bytes, home_node, true, stored_bytes};
  }
  [[nodiscard]] const std::map<std::string, VirtualArray>& arrays() const noexcept {
    return arrays_;
  }

 private:
  std::map<std::string, VirtualArray> arrays_;
};

}  // namespace dooc::solver
