#include "solver/iterated_spmv.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "spmv/kernels.hpp"

namespace dooc::solver {

using sched::Task;
using sched::TaskContext;
using spmv::BlockGrid;
using storage::Interval;

namespace {

std::string aggregate_name(const std::string& base, int iteration, int u, int node) {
  return base + "a" + std::to_string(iteration) + "_" + std::to_string(u) + "_" +
         std::to_string(node);
}

std::string sync_name(const std::string& base, int iteration, bool after_spmv) {
  return base + (after_spmv ? "syncm" : "sync") + std::to_string(iteration);
}

/// Display form used in traces: x_{u,v}^i etc., matching the paper's figures.
std::string mult_display(int i, int u, int v) {
  return "x_{" + std::to_string(u) + "," + std::to_string(v) + "}^" + std::to_string(i);
}
std::string reduce_display(int i, int u) {
  return "x_" + std::to_string(u) + "^" + std::to_string(i);
}

}  // namespace

IteratedSpmv::IteratedSpmv(storage::StorageCluster& cluster, const spmv::DeployedMatrix& matrix,
                           IteratedSpmvConfig config)
    : cluster_(&cluster),
      owned_creator_(std::make_unique<StorageArrayCreator>(cluster)),
      creator_(owned_creator_.get()),
      matrix_(matrix),
      config_(std::move(config)) {
  DOOC_REQUIRE(config_.iterations >= 1, "need at least one iteration");
  build();
}

IteratedSpmv::IteratedSpmv(ArrayCreator& creator, const spmv::DeployedMatrix& matrix,
                           IteratedSpmvConfig config)
    : creator_(&creator), matrix_(matrix), config_(std::move(config)) {
  DOOC_REQUIRE(config_.iterations >= 1, "need at least one iteration");
  build();
}

void IteratedSpmv::create_vector_array(const std::string& name, int home_node,
                                       std::uint64_t bytes) {
  creator_->create(name, bytes, home_node);
  created_arrays_.push_back(name);
}

void IteratedSpmv::build() {
  const BlockGrid& grid = matrix_.grid;
  const int k = grid.k();
  const std::string& base = config_.vector_base;

  flops_per_iteration_ = 2.0 * static_cast<double>(matrix_.total_nnz());
  for (int u = 0; u < k; ++u) {
    flops_per_iteration_ += static_cast<double>(k) * static_cast<double>(grid.part_size(u));
  }

  DOOC_REQUIRE(config_.first_iteration >= 1, "first_iteration must be >= 1");
  const int first = config_.first_iteration;
  const int last = first + config_.iterations - 1;
  for (int i = first; i <= last; ++i) {
    // ---- K² multiplies -------------------------------------------------
    for (int u = 0; u < k; ++u) {
      for (int v = 0; v < k; ++v) {
        const std::uint64_t out_bytes = grid.part_size(u) * sizeof(double);
        const std::uint64_t in_bytes = grid.part_size(v) * sizeof(double);
        const std::string partial = BlockGrid::partial_name(base, i, u, v);
        create_vector_array(partial, matrix_.owner_of(u, v), out_bytes);

        Task t;
        t.name = mult_display(i, u, v);
        t.kind = "multiply";
        t.inputs.push_back(Interval{matrix_.name_of(u, v), 0, matrix_.bytes_of(u, v)});
        t.inputs.push_back(Interval{BlockGrid::vector_name(base, i - 1, v), 0, in_bytes});
        if (config_.inter_iteration_sync && i > first) {
          t.inputs.push_back(Interval{sync_name(base, i - 1, false), 0, 1});
        }
        t.outputs.push_back(Interval{partial, 0, out_bytes});
        t.est_flops = 2.0 * static_cast<double>(matrix_.nnz_of(u, v));
        t.group = i;
        t.seq = static_cast<std::int64_t>(v) * k + u;
        t.preferred_node = matrix_.owner_of(u, v);
        t.work = [kcfg = config_.kernels](TaskContext& ctx) {
          const auto x = ctx.input(1).as<double>();
          auto y = ctx.output(0).as<double>();
          spmv::multiply_any(ctx.input(0).bytes(), x, y, ctx.pool(), kcfg);
        };
        graph_.add(std::move(t));
      }
    }

    // ---- optional global synchronization after the SpMV phase ----------
    if (config_.mode == ReductionMode::Simple) {
      const std::string token = sync_name(base, i, true);
      create_vector_array(token, 0, 1);
      Task t;
      t.name = "syncm^" + std::to_string(i);
      t.kind = "sync";
      for (int u = 0; u < k; ++u) {
        for (int v = 0; v < k; ++v) {
          t.inputs.push_back(Interval{BlockGrid::partial_name(base, i, u, v), 0,
                                      grid.part_size(u) * sizeof(double)});
        }
      }
      t.outputs.push_back(Interval{token, 0, 1});
      t.group = i;
      t.seq = static_cast<std::int64_t>(k) * k;
      t.preferred_node = 0;
      t.work = [](TaskContext& ctx) { ctx.output(0).bytes()[0] = std::byte{1}; };
      graph_.add(std::move(t));
    }

    // ---- reductions -----------------------------------------------------
    for (int u = 0; u < k; ++u) {
      const std::uint64_t out_bytes = grid.part_size(u) * sizeof(double);
      std::vector<Interval> reduce_inputs;

      if (config_.mode == ReductionMode::Interleaved) {
        // Group this row's partials by the node that produced them and
        // aggregate locally where a node produced more than one.
        std::map<int, std::vector<int>> by_node;  // node -> columns v
        for (int v = 0; v < k; ++v) by_node[matrix_.owner_of(u, v)].push_back(v);
        for (const auto& [node, columns] : by_node) {
          if (columns.size() == 1) {
            reduce_inputs.push_back(
                Interval{BlockGrid::partial_name(base, i, u, columns[0]), 0, out_bytes});
            continue;
          }
          const std::string agg = aggregate_name(base, i, u, node);
          create_vector_array(agg, node, out_bytes);
          Task t;
          t.name = "xagg_{" + std::to_string(u) + "}^" + std::to_string(i) + "@" +
                   std::to_string(node);
          t.kind = "aggregate";
          for (int v : columns) {
            t.inputs.push_back(Interval{BlockGrid::partial_name(base, i, u, v), 0, out_bytes});
          }
          t.outputs.push_back(Interval{agg, 0, out_bytes});
          t.est_flops = static_cast<double>((columns.size() - 1)) *
                        static_cast<double>(grid.part_size(u));
          t.group = i;
          t.seq = static_cast<std::int64_t>(k) * k + u;
          t.preferred_node = node;
          const auto n_in = columns.size();
          t.work = [n_in](TaskContext& ctx) {
            auto out = ctx.output(0).as<double>();
            std::vector<std::span<const double>> parts;
            parts.reserve(n_in);
            for (std::size_t p = 0; p < n_in; ++p) parts.push_back(ctx.input(p).as<double>());
            spmv::sum_vectors(parts, out, ctx.pool());
          };
          graph_.add(std::move(t));
          reduce_inputs.push_back(Interval{agg, 0, out_bytes});
        }
      } else {
        for (int v = 0; v < k; ++v) {
          reduce_inputs.push_back(
              Interval{BlockGrid::partial_name(base, i, u, v), 0, out_bytes});
        }
      }

      const std::string result = BlockGrid::vector_name(base, i, u);
      create_vector_array(result, matrix_.owner_of(u, 0), out_bytes);
      Task t;
      t.name = reduce_display(i, u);
      t.kind = "sum";
      const std::size_t data_inputs = reduce_inputs.size();
      t.inputs = std::move(reduce_inputs);
      if (config_.mode == ReductionMode::Simple) {
        t.inputs.push_back(Interval{sync_name(base, i, true), 0, 1});
      }
      t.outputs.push_back(Interval{result, 0, out_bytes});
      t.est_flops =
          static_cast<double>(data_inputs - 1) * static_cast<double>(grid.part_size(u));
      t.group = i;
      t.seq = static_cast<std::int64_t>(k) * k + k + u;
      // Paper: "partial results are reduced on the first processor of each
      // row" — the node hosting A_{u,0}.
      t.preferred_node = matrix_.owner_of(u, 0);
      t.work = [data_inputs](TaskContext& ctx) {
        auto out = ctx.output(0).as<double>();
        std::vector<std::span<const double>> parts;
        parts.reserve(data_inputs);
        for (std::size_t p = 0; p < data_inputs; ++p) parts.push_back(ctx.input(p).as<double>());
        spmv::sum_vectors(parts, out, ctx.pool());
      };
      graph_.add(std::move(t));
    }

    // ---- inter-iteration synchronization (reorthogonalization point) ----
    if (config_.inter_iteration_sync && i < last) {
      const std::string token = sync_name(base, i, false);
      create_vector_array(token, 0, 1);
      Task t;
      t.name = "sync^" + std::to_string(i);
      t.kind = "sync";
      for (int u = 0; u < k; ++u) {
        t.inputs.push_back(Interval{BlockGrid::vector_name(base, i, u), 0,
                                    grid.part_size(u) * sizeof(double)});
      }
      t.outputs.push_back(Interval{token, 0, 1});
      t.group = i;
      t.seq = static_cast<std::int64_t>(k) * k + 2 * k;
      t.preferred_node = 0;
      t.work = [](TaskContext& ctx) { ctx.output(0).bytes()[0] = std::byte{1}; };
      graph_.add(std::move(t));
    }
  }

  graph_.build();
}

std::vector<double> IteratedSpmv::gather_result() {
  DOOC_REQUIRE(cluster_ != nullptr, "gather_result() requires the storage-backed mode");
  return spmv::gather_vector(*cluster_, matrix_.grid, config_.vector_base,
                             config_.first_iteration + config_.iterations - 1);
}

void IteratedSpmv::cleanup_intermediates() {
  DOOC_REQUIRE(cluster_ != nullptr, "cleanup_intermediates() requires the storage-backed mode");
  for (const auto& name : created_arrays_) {
    // Keep the final iterates; delete everything else.
    bool is_final = false;
    const int last = config_.first_iteration + config_.iterations - 1;
    for (int u = 0; u < matrix_.grid.k(); ++u) {
      if (name == BlockGrid::vector_name(config_.vector_base, last, u)) {
        is_final = true;
        break;
      }
    }
    if (!is_final) cluster_->node(0).delete_array(name);
  }
  created_arrays_.clear();
}

std::string IteratedSpmv::command_list() const {
  std::ostringstream os;
  const int k = matrix_.grid.k();
  DOOC_REQUIRE(config_.first_iteration >= 1, "first_iteration must be >= 1");
  const int first = config_.first_iteration;
  const int last = first + config_.iterations - 1;
  for (int i = first; i <= last; ++i) {
    for (int u = 0; u < k; ++u) {
      for (int v = 0; v < k; ++v) {
        os << mult_display(i, u, v) << " = A_{" << u << "," << v << "} * x_" << v << "^"
           << (i - 1) << "\n";
      }
    }
    for (int u = 0; u < k; ++u) {
      os << reduce_display(i, u) << " =";
      for (int v = 0; v < k; ++v) {
        os << (v == 0 ? " " : " + ") << mult_display(i, u, v);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string IteratedSpmv::dependency_list() const {
  std::ostringstream os;
  for (sched::TaskId t : graph_.topo_order()) {
    const Task& task = graph_.task(t);
    if (task.kind == "sync") continue;  // barriers are not Fig. 4 content
    os << task.name;
    if (task.kind == "multiply") {
      // Mention the matrix block the operation needs, as Fig. 4 does.
      const auto& a = task.inputs[0].array;
      os << " (" << a << ")";
    }
    os << " <-";
    bool any = false;
    for (sched::TaskId p : graph_.predecessors(t)) {
      if (graph_.task(p).kind == "sync") continue;
      os << (any ? ", " : " ") << graph_.task(p).name;
      any = true;
    }
    if (!any) os << " (initial data)";
    os << "\n";
  }
  return os.str();
}

}  // namespace dooc::solver
