#include "net/protocol.hpp"

#include "common/serialize.hpp"
#include "spmv/wire.hpp"

namespace dooc::net {

namespace {

/// Frame payloads are untrusted; every count/length read off the wire is
/// checked against the bytes actually present *with overflow-latching
/// arithmetic* before anything is allocated or copied. BinaryReader's own
/// truncation checks throw IoError; rewrap as FrameError so transport
/// callers see one typed failure mode.
constexpr std::uint64_t kMaxListElements = 1u << 20;

[[noreturn]] void malformed(const std::string& what) {
  throw FrameError("malformed message: " + what);
}

/// A count field must describe data that can actually fit in the payload:
/// count * min_elem_bytes (overflow-checked) must not exceed what remains.
void check_count(std::uint64_t count, std::uint64_t min_elem_bytes, const BinaryReader& r,
                 const char* what) {
  if (count > kMaxListElements) malformed(std::string(what) + ": count too large");
  std::uint64_t total = 0;
  if (!spmv::wire::checked_mul(count, min_elem_bytes, total) || total > r.remaining()) {
    malformed(std::string(what) + ": count exceeds payload");
  }
}

std::string get_name(BinaryReader& r, const char* what) {
  const auto len = r.get<std::uint64_t>();
  if (len > r.remaining()) malformed(std::string(what) + ": string length exceeds payload");
  std::string s(len, '\0');
  if (len != 0) r.get_raw(s.data(), len);
  return s;
}

DataBuffer get_blob(BinaryReader& r, const char* what) {
  const auto len = r.get<std::uint64_t>();
  if (len > r.remaining()) malformed(std::string(what) + ": blob length exceeds payload");
  DataBuffer b(static_cast<std::size_t>(len));
  if (len != 0) r.get_raw(b.data(), len);
  return b;
}

void put_blob(BinaryWriter& w, const DataBuffer& b) {
  w.put<std::uint64_t>(b.size());
  w.put_raw(b.data(), b.size());
}

template <typename Fn>
auto decode_guarded(const DataBuffer& payload, const char* what, Fn&& fn) {
  try {
    BinaryReader r(payload);
    return fn(r);
  } catch (const FrameError&) {
    throw;
  } catch (const IoError& e) {
    throw FrameError("malformed " + std::string(what) + ": " + e.what());
  }
}

}  // namespace

DataBuffer HelloMsg::encode() const {
  BinaryWriter w;
  w.put<std::int32_t>(node);
  w.put<std::uint64_t>(os_pid);
  return w.take();
}

HelloMsg HelloMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "hello", [](BinaryReader& r) {
    HelloMsg m;
    m.node = r.get<std::int32_t>();
    m.os_pid = r.get<std::uint64_t>();
    return m;
  });
}

DataBuffer PutBlockMsg::encode() const {
  BinaryWriter w;
  w.put_string(name);
  w.put<std::uint8_t>(durable_elsewhere ? 1 : 0);
  put_blob(w, bytes);
  return w.take();
}

PutBlockMsg PutBlockMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "put-block", [](BinaryReader& r) {
    PutBlockMsg m;
    m.name = get_name(r, "put-block name");
    m.durable_elsewhere = r.get<std::uint8_t>() != 0;
    m.bytes = get_blob(r, "put-block bytes");
    return m;
  });
}

DataBuffer FetchReqMsg::encode() const {
  BinaryWriter w;
  w.put_string(name);
  return w.take();
}

FetchReqMsg FetchReqMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "fetch-req", [](BinaryReader& r) {
    FetchReqMsg m;
    m.name = get_name(r, "fetch-req name");
    return m;
  });
}

DataBuffer FetchOkMsg::encode() const {
  BinaryWriter w;
  w.put_string(name);
  put_blob(w, bytes);
  return w.take();
}

FetchOkMsg FetchOkMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "fetch-ok", [](BinaryReader& r) {
    FetchOkMsg m;
    m.name = get_name(r, "fetch-ok name");
    m.bytes = get_blob(r, "fetch-ok bytes");
    return m;
  });
}

DataBuffer FetchFailMsg::encode() const {
  BinaryWriter w;
  w.put_string(name);
  w.put_string(error);
  return w.take();
}

FetchFailMsg FetchFailMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "fetch-fail", [](BinaryReader& r) {
    FetchFailMsg m;
    m.name = get_name(r, "fetch-fail name");
    m.error = get_name(r, "fetch-fail error");
    return m;
  });
}

DataBuffer ExecTaskMsg::encode() const {
  BinaryWriter w;
  w.put_string(name);
  w.put_string(kind);
  w.put<std::uint64_t>(serial_nnz_threshold);
  w.put<std::uint64_t>(inputs.size());
  for (const auto& in : inputs) {
    w.put_string(in.array);
    w.put<std::uint64_t>(in.bytes);
    w.put<std::int32_t>(in.home);
  }
  w.put<std::uint64_t>(outputs.size());
  for (const auto& out : outputs) {
    w.put_string(out.array);
    w.put<std::uint64_t>(out.bytes);
  }
  return w.take();
}

ExecTaskMsg ExecTaskMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "exec-task", [](BinaryReader& r) {
    ExecTaskMsg m;
    m.name = get_name(r, "exec-task name");
    m.kind = get_name(r, "exec-task kind");
    m.serial_nnz_threshold = r.get<std::uint64_t>();

    const auto n_in = r.get<std::uint64_t>();
    // Each input needs at least a name length + bytes + home = 20 bytes.
    check_count(n_in, 20, r, "exec-task inputs");
    m.inputs.reserve(static_cast<std::size_t>(n_in));
    for (std::uint64_t i = 0; i < n_in; ++i) {
      TaskInput in;
      in.array = get_name(r, "exec-task input name");
      in.bytes = r.get<std::uint64_t>();
      in.home = r.get<std::int32_t>();
      m.inputs.push_back(std::move(in));
    }

    const auto n_out = r.get<std::uint64_t>();
    check_count(n_out, 16, r, "exec-task outputs");
    m.outputs.reserve(static_cast<std::size_t>(n_out));
    for (std::uint64_t i = 0; i < n_out; ++i) {
      TaskOutput out;
      out.array = get_name(r, "exec-task output name");
      out.bytes = r.get<std::uint64_t>();
      m.outputs.push_back(std::move(out));
    }
    return m;
  });
}

DataBuffer TaskDoneMsg::encode() const {
  BinaryWriter w;
  w.put<std::uint8_t>(ok ? 1 : 0);
  w.put_string(error);
  w.put<std::uint64_t>(fetched_bytes);
  w.put<std::uint64_t>(durable_fallbacks);
  w.put<double>(exec_seconds);
  return w.take();
}

TaskDoneMsg TaskDoneMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "task-done", [](BinaryReader& r) {
    TaskDoneMsg m;
    m.ok = r.get<std::uint8_t>() != 0;
    m.error = get_name(r, "task-done error");
    m.fetched_bytes = r.get<std::uint64_t>();
    m.durable_fallbacks = r.get<std::uint64_t>();
    m.exec_seconds = r.get<double>();
    return m;
  });
}

DataBuffer NodeReportMsg::encode() const {
  BinaryWriter w;
  w.put<std::uint64_t>(os_pid);
  w.put<std::uint64_t>(tasks_executed);
  w.put<std::uint64_t>(blocks_stored);
  w.put<std::uint64_t>(bytes_stored);
  w.put<std::uint64_t>(fetches_served);
  w.put<std::uint64_t>(fetch_bytes_out);
  w.put<std::uint64_t>(replica_serves);
  w.put<std::uint64_t>(fetches_issued);
  w.put<std::uint64_t>(fetch_bytes_in);
  w.put<std::uint64_t>(durable_fallbacks);
  w.put<std::uint64_t>(frames_sent);
  w.put<std::uint64_t>(frames_received);
  w.put<std::uint64_t>(bytes_sent);
  w.put<std::uint64_t>(bytes_received);
  w.put<double>(fetch_p50_s);
  w.put<double>(fetch_p99_s);
  w.put<double>(fetch_max_s);
  w.put_string(trace_path);
  return w.take();
}

NodeReportMsg NodeReportMsg::decode(const DataBuffer& payload) {
  return decode_guarded(payload, "report", [](BinaryReader& r) {
    NodeReportMsg m;
    m.os_pid = r.get<std::uint64_t>();
    m.tasks_executed = r.get<std::uint64_t>();
    m.blocks_stored = r.get<std::uint64_t>();
    m.bytes_stored = r.get<std::uint64_t>();
    m.fetches_served = r.get<std::uint64_t>();
    m.fetch_bytes_out = r.get<std::uint64_t>();
    m.replica_serves = r.get<std::uint64_t>();
    m.fetches_issued = r.get<std::uint64_t>();
    m.fetch_bytes_in = r.get<std::uint64_t>();
    m.durable_fallbacks = r.get<std::uint64_t>();
    m.frames_sent = r.get<std::uint64_t>();
    m.frames_received = r.get<std::uint64_t>();
    m.bytes_sent = r.get<std::uint64_t>();
    m.bytes_received = r.get<std::uint64_t>();
    m.fetch_p50_s = r.get<double>();
    m.fetch_p99_s = r.get<double>();
    m.fetch_max_s = r.get<double>();
    m.trace_path = get_name(r, "report trace path");
    return m;
  });
}

}  // namespace dooc::net
