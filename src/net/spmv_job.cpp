#include "net/spmv_job.hpp"

#include "sched/engine.hpp"
#include "solver/array_creator.hpp"
#include "spmv/codec.hpp"
#include "spmv/generator.hpp"
#include "storage/storage_cluster.hpp"

namespace dooc::net {

double spmv_x0_value(std::uint64_t i) {
  return 1.0 + 0.001 * static_cast<double>(i % 1024);
}

SpmvJob::SpmvJob(SpmvJobConfig config) : config_(config) {
  DOOC_REQUIRE(config_.grid_k >= 1 && config_.num_nodes >= 1, "bad spmv job shape");
  global_ = spmv::generate_uniform_gap(config_.n, config_.n, config_.gap_d, config_.seed);
  // Keep iterates bounded across iterations (same trick the integration
  // tests use) so parity comparisons are not swamped by overflow.
  for (double& v : global_.values) v *= 0.05;

  const int k = config_.grid_k;
  matrix_.grid = spmv::BlockGrid(config_.n, k);
  matrix_.prefix = "A";
  matrix_.owner.resize(static_cast<std::size_t>(k) * k);
  matrix_.nnz.resize(static_cast<std::size_t>(k) * k);
  matrix_.bytes.resize(static_cast<std::size_t>(k) * k);
  block_bytes_.resize(static_cast<std::size_t>(k) * k);
  for (int u = 0; u < k; ++u) {
    for (int v = 0; v < k; ++v) {
      const auto idx = static_cast<std::size_t>(u) * k + v;
      const spmv::CsrMatrix block =
          spmv::extract_block(global_, matrix_.grid.part_begin(u), matrix_.grid.part_size(u),
                              matrix_.grid.part_begin(v), matrix_.grid.part_size(v));
      spmv::serialize_csr(block, block_bytes_[idx]);
      matrix_.owner[idx] = owner_of(u, v);
      matrix_.nnz[idx] = block.nnz();
      matrix_.bytes[idx] = block_bytes_[idx].size();
    }
  }
}

void SpmvJob::deploy(Coordinator& coord) const {
  const int k = config_.grid_k;
  // With the coordinator's own codec on (DOOC_CODEC), matrix blocks travel
  // as codec frames: less deploy traffic, and the receiving daemon keeps
  // the frame for its durable copy while decoding once for memory. Daemons
  // decode regardless of their own mode, so a raw-configured cluster
  // accepts compressed deploys (and vice versa).
  const spmv::codec::CodecConfig codec_cfg = spmv::codec::CodecConfig::from_env();
  for (int u = 0; u < k; ++u) {
    for (int v = 0; v < k; ++v) {
      const auto idx = static_cast<std::size_t>(u) * k + v;
      const std::string name = matrix_.name_of(u, v);
      DataBuffer bytes = DataBuffer::copy_of(block_bytes_[idx].data(), block_bytes_[idx].size());
      if (codec_cfg.enabled()) {
        if (auto frame = spmv::codec::encode_block(bytes.span(), codec_cfg)) {
          bytes = std::move(*frame);
        }
      }
      DOOC_REQUIRE(coord.put_block(matrix_.owner[idx], name, std::move(bytes)),
                   "deploy: node " + std::to_string(matrix_.owner[idx]) + " is not connected");
    }
  }
  for (int u = 0; u < k; ++u) {
    const std::uint64_t size = matrix_.grid.part_size(u);
    DataBuffer part(size * sizeof(double));
    auto span = part.as<double>();
    for (std::uint64_t i = 0; i < size; ++i) {
      span[i] = spmv_x0_value(matrix_.grid.part_begin(u) + i);
    }
    const std::string name = spmv::BlockGrid::vector_name("x", 0, u);
    DOOC_REQUIRE(coord.put_block(owner_of(u, u), name, std::move(part)),
                 "deploy: x0 home node is not connected");
  }
}

std::unique_ptr<solver::IteratedSpmv> SpmvJob::build_graph() const {
  // The creator only matters during graph construction (virtual catalog);
  // preferred nodes come from the DeployedMatrix owners.
  solver::VirtualArrayCreator creator;
  solver::IteratedSpmvConfig scfg;
  scfg.iterations = config_.iterations;
  scfg.mode = config_.mode;
  scfg.inter_iteration_sync = config_.inter_iteration_sync;
  return std::make_unique<solver::IteratedSpmv>(creator, matrix_, scfg);
}

std::vector<double> SpmvJob::gather(Coordinator& coord) const {
  std::vector<double> out;
  out.reserve(config_.n);
  for (int u = 0; u < config_.grid_k; ++u) {
    const std::string name =
        spmv::BlockGrid::vector_name("x", config_.iterations, u);
    const DataBuffer part = coord.fetch_block(name);
    const auto span = part.as<const double>();
    out.insert(out.end(), span.begin(), span.end());
  }
  return out;
}

std::vector<double> SpmvJob::reference(const std::string& scratch_dir) const {
  storage::StorageConfig scfg;
  scfg.scratch_root = scratch_dir;
  storage::StorageCluster cluster(config_.num_nodes, scfg);
  const spmv::BlockOwner owner = [this](int u, int v) { return owner_of(u, v); };
  const spmv::DeployedMatrix deployed =
      spmv::deploy_matrix(cluster, global_, config_.grid_k, owner);
  spmv::create_distributed_vector(cluster, deployed.grid, owner, "x", 0, spmv_x0_value);

  solver::IteratedSpmvConfig cfg;
  cfg.iterations = config_.iterations;
  cfg.mode = config_.mode;
  cfg.inter_iteration_sync = config_.inter_iteration_sync;
  solver::IteratedSpmv driver(cluster, deployed, cfg);
  sched::Engine engine(cluster, {});
  driver.run(engine);
  return driver.gather_result();
}

}  // namespace dooc::net
