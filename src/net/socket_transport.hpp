// Socket-backed Transport: TCP and Unix-domain stream sockets behind a
// non-blocking poll() event loop.
//
// One background thread owns all file descriptors: it accepts new
// connections, reads whatever the kernel has (feeding FrameAssembler, so
// partial reads and coalesced frames are handled uniformly), and flushes
// per-peer outbound queues as sockets become writable. send() never
// touches a socket — it encodes the frame, appends it to the peer's
// queue and wakes the loop through a self-pipe; when a peer's queued
// bytes exceed the budget the sender blocks until the loop drains it
// (backpressure) or the send timeout expires.
//
// Connections handshake before they carry traffic: the dialing side's
// first frame is Hello{node, pid}; the acceptor registers the peer id and
// answers HelloAck. Both sides surface PeerUp afterwards. A dropped
// connection — including one that dies mid-frame — surfaces as PeerDown
// with the reason, and fails senders blocked on that peer.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/manifest.hpp"
#include "net/transport.hpp"

namespace dooc::net {

struct SocketTransportConfig {
  NodeId self = 0;
  /// Backpressure budget: queued-but-unflushed bytes per peer before
  /// send() blocks.
  std::uint64_t max_outbound_bytes_per_peer = 64ull << 20;
  /// How long send() may block on a full peer queue before throwing
  /// TransportError (0 = wait forever).
  int send_timeout_ms = 30000;
  /// Reject inbound frames with a larger payload length prefix.
  std::uint32_t max_frame_payload = kMaxFramePayload;
};

class SocketTransport final : public Transport {
 public:
  /// Daemon endpoint: bind + listen on `addr` (unix path is unlinked
  /// first), then serve. Throws TransportError when the address is taken.
  [[nodiscard]] static std::unique_ptr<SocketTransport> listen(const NodeAddress& addr,
                                                               SocketTransportConfig config);
  /// Dial-only endpoint (the coordinator/launcher).
  [[nodiscard]] static std::unique_ptr<SocketTransport> client(SocketTransportConfig config);

  ~SocketTransport() override;

  /// Dial `addr`, retrying with backoff while the peer is not up yet
  /// (connection refused / socket file missing), then handshake. Returns
  /// true once the peer is Ready; false when `deadline_ms` elapses first.
  bool connect_peer(NodeId id, const NodeAddress& addr, int deadline_ms = 10000);

  [[nodiscard]] NodeId self() const noexcept override { return config_.self; }
  bool send(NodeId to, Channel channel, std::uint64_t tag, DataBuffer payload) override;
  bool recv(RecvEvent& out, int timeout_ms) override;
  [[nodiscard]] std::vector<NodeId> peers() const override;
  [[nodiscard]] bool peer_up(NodeId id) const override;
  [[nodiscard]] TransportCounters counters() const override;
  void close() override;

 private:
  explicit SocketTransport(SocketTransportConfig config);
  void start_loop();
  void loop();
  void wake_loop();
  // All of the below require mutex_ held.
  struct Conn;
  void handle_readable(Conn& c);
  void handle_writable(Conn& c);
  void handle_frame(Conn& c, Frame f);
  void drop_conn(int fd, const std::string& reason);
  void queue_bytes(Conn& c, std::vector<std::byte> bytes);
  void emit(RecvEvent ev);

  SocketTransportConfig config_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::string unix_path_;  ///< unlinked on close

  mutable std::mutex mutex_;
  std::condition_variable recv_cv_;   ///< inbound queue gained an event
  std::condition_variable drain_cv_;  ///< outbound drained / conn died / handshake done
  std::map<int, std::unique_ptr<Conn>> conns_;  ///< keyed by fd
  std::deque<RecvEvent> inbound_;
  TransportCounters counters_;
  bool closing_ = false;

  std::thread loop_thread_;
};

}  // namespace dooc::net
