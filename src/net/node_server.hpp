// NodeServer: the body of one doocd process — one storage/executor node of
// the cluster, behind a Transport.
//
// The recv loop owns the protocol: PutBlock stores deployed blocks
// (durable write-through), FetchReq serves blocks to peers, ExecTask
// enqueues work for the executor thread, ReportReq answers with the
// node's counters, Shutdown ends the loop. The executor thread resolves
// each task's inputs (local store -> remote fetch from the input's home ->
// durable-file fallback when the home is gone), binds the task kind to the
// same deterministic spmv kernels the in-process engine calls, stores the
// outputs durably, and acks with TaskDone.
//
// Remote fetches are promise-based: the executor registers a pending
// request keyed by frame tag, the recv loop fulfills it on FetchOk /
// FetchFail — and fails it when the home peer goes down, which is what
// converts a mid-run node death into a durable-file fallback instead of a
// hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "common/thread_pool.hpp"
#include "net/block_store.hpp"
#include "net/manifest.hpp"
#include "net/protocol.hpp"
#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "obs/telemetry.hpp"

namespace dooc::net {

struct NodeServerConfig {
  NodeId node = 0;
  /// Shared durable directory (empty disables write-through + fallback).
  std::string durable_dir;
  /// Threads in the kernel pool (results are bitwise independent of this;
  /// see spmv/kernels.hpp).
  int exec_threads = 1;
  /// How long the executor waits for one remote fetch before falling back
  /// to the durable file.
  int fetch_timeout_ms = 10000;
  /// Codec policy for this node's BlockStore (durable write path).
  /// nullopt resolves from the DOOC_CODEC environment variable — which is
  /// how the launcher configures each daemon; decode of incoming frames
  /// always works regardless, so mixed-config clusters interoperate.
  std::optional<spmv::codec::CodecConfig> codec;
  /// Live telemetry policy. nullopt resolves from DOOC_TELEMETRY (again
  /// the launcher's hook). When enabled, the recv loop streams one
  /// TelemetryFrame per interval to the coordinator.
  std::optional<obs::telemetry::TelemetryConfig> telemetry;
};

class NodeServer {
 public:
  NodeServer(std::unique_ptr<Transport> transport, NodeServerConfig config);
  ~NodeServer();

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Serve until a Shutdown frame, stop(), or transport close. Blocking.
  void run();

  /// Ask run() to return (signal handlers set this via an atomic).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] BlockStore& store() noexcept { return store_; }
  [[nodiscard]] Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] NodeReportMsg report() const;

 private:
  struct PendingFetch {
    NodeId home = 0;
    std::promise<DataBuffer> promise;
  };

  void handle_frame(const RecvEvent& ev);
  void handle_peer_down(const RecvEvent& ev);
  /// Build this node's TelemetryFrame (runtime scalars + full registry
  /// snapshot) — also what the frame the recv loop streams contains.
  [[nodiscard]] obs::telemetry::TelemetryFrame telemetry_frame();
  void maybe_send_telemetry();
  void exec_loop();
  void exec_task(std::uint64_t task_id, const ExecTaskMsg& msg);
  /// Resolve one input; throws Error when every source fails.
  DataBuffer acquire_input(const TaskInput& in, std::uint64_t& fetched_bytes,
                           std::uint64_t& durable_fallbacks);
  DataBuffer fetch_remote(const TaskInput& in);

  std::unique_ptr<Transport> transport_;
  NodeServerConfig config_;
  BlockStore store_;
  ThreadPool pool_;
  std::atomic<bool> stop_{false};

  std::mutex exec_mutex_;
  std::condition_variable exec_cv_;
  std::deque<std::pair<std::uint64_t, ExecTaskMsg>> exec_queue_;
  bool exec_stop_ = false;
  std::thread exec_thread_;

  std::mutex fetch_mutex_;
  std::map<std::uint64_t, std::shared_ptr<PendingFetch>> pending_fetches_;
  std::atomic<std::uint64_t> next_fetch_tag_{1};

  obs::telemetry::TelemetryConfig telemetry_;
  std::uint64_t telemetry_seq_ = 0;
  std::chrono::steady_clock::time_point next_telemetry_{};

  // Report counters (recv loop + executor touch them; all atomics).
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_running_{0};
  std::atomic<std::uint64_t> fetches_served_{0};
  std::atomic<std::uint64_t> fetch_bytes_out_{0};
  std::atomic<std::uint64_t> replica_serves_{0};
  std::atomic<std::uint64_t> fetches_issued_{0};
  std::atomic<std::uint64_t> fetch_bytes_in_{0};
  std::atomic<std::uint64_t> durable_fallbacks_{0};
  mutable std::mutex fetch_hist_mutex_;
  std::vector<double> fetch_seconds_;  ///< per-fetch round-trip samples
};

/// The daemon's transport: listen on `manifest.nodes[node]`, then dial
/// every lower-id peer (the mesh convention: exactly one connection per
/// worker pair; the coordinator dials everyone). Throws TransportError
/// when a peer cannot be reached before the deadline.
[[nodiscard]] std::unique_ptr<SocketTransport> make_node_transport(
    const Manifest& manifest, NodeId node, SocketTransportConfig config,
    int connect_deadline_ms = 10000);

}  // namespace dooc::net
