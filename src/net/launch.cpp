#include "net/launch.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace dooc::net {

namespace {

using Clock = std::chrono::steady_clock;
constexpr const char* kWhere = "net.launch";

bool executable(const std::string& path) { return ::access(path.c_str(), X_OK) == 0; }

std::string exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string path(buf);
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::string ClusterLauncher::find_doocd() {
  if (const char* env = std::getenv("DOOC_DOOCD"); env != nullptr && executable(env)) {
    return env;
  }
  const std::string dir = exe_dir();
  if (!dir.empty()) {
    for (const std::string& candidate : {dir + "/doocd", dir + "/../tools/doocd"}) {
      if (executable(candidate)) return candidate;
    }
  }
  throw Error("cannot find the doocd binary (set DOOC_DOOCD or build the tools targets)");
}

ClusterLauncher::ClusterLauncher(LaunchConfig config) : config_(std::move(config)) {}

ClusterLauncher::~ClusterLauncher() {
  if (!children_.empty()) terminate_all();
}

void ClusterLauncher::spawn_all() {
  DOOC_REQUIRE(children_.empty(), "cluster already spawned");
  const std::string doocd =
      config_.doocd_path.empty() ? find_doocd() : config_.doocd_path;
  if (!executable(doocd)) throw Error("doocd binary is not executable: '" + doocd + "'");
  config_.manifest.write_file(config_.manifest_path);

  for (NodeId node = 0; node < config_.manifest.num_nodes(); ++node) {
    std::vector<std::string> args = {
        doocd,
        "--manifest=" + config_.manifest_path,
        "--node=" + std::to_string(node),
        "--exec-threads=" + std::to_string(config_.exec_threads),
        "--log-level=" + config_.log_level,
    };
    if (!config_.durable_dir.empty()) args.push_back("--durable-dir=" + config_.durable_dir);
    if (config_.metrics_base_port > 0) {
      args.push_back("--metrics-port=" + std::to_string(config_.metrics_base_port + node));
    }

    const pid_t child = ::fork();
    if (child < 0) {
      terminate_all();
      throw Error("fork() failed spawning node " + std::to_string(node));
    }
    if (child == 0) {
      if (config_.trace_dir.empty()) {
        ::unsetenv("DOOC_TRACE");
      } else {
        const std::string trace = config_.trace_dir + "/node" + std::to_string(node) + ".json";
        ::setenv("DOOC_TRACE", trace.c_str(), 1);
      }
      // Per-daemon codec policy (empty = inherit the launcher's env; pass
      // "off" to force raw daemons under a compressed coordinator).
      if (!config_.codec_spec.empty()) {
        ::setenv("DOOC_CODEC", config_.codec_spec.c_str(), 1);
      }
      // Per-daemon telemetry policy, same contract as DOOC_CODEC.
      if (!config_.telemetry_spec.empty()) {
        ::setenv("DOOC_TELEMETRY", config_.telemetry_spec.c_str(), 1);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(doocd.c_str(), argv.data());
      // Only reached when exec fails.
      ::_exit(127);
    }
    children_[node] = child;
    DOOC_LOG(Info, kWhere) << "node " << node << " -> pid " << child;
  }
}

pid_t ClusterLauncher::pid(NodeId node) const {
  auto it = children_.find(node);
  return it == children_.end() ? -1 : it->second;
}

bool ClusterLauncher::kill_node(NodeId node) {
  auto it = children_.find(node);
  if (it == children_.end()) return false;
  DOOC_LOG(Warn, kWhere) << "SIGKILL node " << node << " (pid " << it->second << ")";
  ::kill(it->second, SIGKILL);
  ::waitpid(it->second, nullptr, 0);
  children_.erase(it);
  return true;
}

bool ClusterLauncher::stop_node(NodeId node) {
  auto it = children_.find(node);
  if (it == children_.end()) return false;
  DOOC_LOG(Warn, kWhere) << "SIGSTOP node " << node << " (pid " << it->second << ")";
  return ::kill(it->second, SIGSTOP) == 0;
}

bool ClusterLauncher::resume_node(NodeId node) {
  auto it = children_.find(node);
  if (it == children_.end()) return false;
  DOOC_LOG(Info, kWhere) << "SIGCONT node " << node << " (pid " << it->second << ")";
  return ::kill(it->second, SIGCONT) == 0;
}

void ClusterLauncher::terminate_all(int grace_ms) {
  for (const auto& [node, child] : children_) ::kill(child, SIGTERM);
  const auto deadline = Clock::now() + std::chrono::milliseconds(grace_ms);
  while (!children_.empty() && Clock::now() < deadline) {
    for (auto it = children_.begin(); it != children_.end();) {
      if (::waitpid(it->second, nullptr, WNOHANG) == it->second) {
        it = children_.erase(it);
      } else {
        ++it;
      }
    }
    if (!children_.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (const auto& [node, child] : children_) {
    DOOC_LOG(Warn, kWhere) << "node " << node << " ignored SIGTERM; killing pid " << child;
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
  }
  children_.clear();
}

int ClusterLauncher::wait_all(int timeout_ms) {
  int failures = 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!children_.empty() && Clock::now() < deadline) {
    for (auto it = children_.begin(); it != children_.end();) {
      int status = 0;
      if (::waitpid(it->second, &status, WNOHANG) == it->second) {
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!clean) {
          DOOC_LOG(Warn, kWhere) << "node " << it->first << " exited abnormally (status "
                                 << status << ")";
          failures += 1;
        }
        it = children_.erase(it);
      } else {
        ++it;
      }
    }
    if (!children_.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (const auto& [node, child] : children_) {
    DOOC_LOG(Warn, kWhere) << "node " << node << " still running at deadline; killing";
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    failures += 1;
  }
  children_.clear();
  return failures;
}

}  // namespace dooc::net
