// In-process Transport backend: the pre-wire virtual-node discipline
// (deep-copy at every node boundary, per-node mailbox) behind the same
// Transport interface as the socket backend. Lets the coordinator,
// NodeServer and the test suite run a whole "cluster" inside one process
// with zero sockets — and lets tests simulate a node death determin-
// istically by closing one endpoint.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace dooc::net {

class InProcTransport;

/// The shared "network": a registry of endpoints keyed by node id.
/// Endpoints created from one hub can reach each other; closing an
/// endpoint delivers PeerDown to every other endpoint, exactly like a
/// dropped connection.
class InProcHub {
 public:
  InProcHub();
  ~InProcHub();

  InProcHub(const InProcHub&) = delete;
  InProcHub& operator=(const InProcHub&) = delete;

  /// Create (and register) the endpoint for `id`. Every already-registered
  /// endpoint immediately sees PeerUp for it and vice versa — the in-proc
  /// "handshake".
  [[nodiscard]] std::unique_ptr<InProcTransport> make_endpoint(NodeId id);

 private:
  friend class InProcTransport;
  struct State;
  std::shared_ptr<State> state_;
};

class InProcTransport final : public Transport {
 public:
  ~InProcTransport() override;

  [[nodiscard]] NodeId self() const noexcept override { return self_; }
  bool send(NodeId to, Channel channel, std::uint64_t tag, DataBuffer payload) override;
  bool recv(RecvEvent& out, int timeout_ms) override;
  [[nodiscard]] std::vector<NodeId> peers() const override;
  [[nodiscard]] bool peer_up(NodeId id) const override;
  [[nodiscard]] TransportCounters counters() const override;
  void close() override;

 private:
  friend class InProcHub;
  InProcTransport(std::shared_ptr<InProcHub::State> state, NodeId self);

  std::shared_ptr<InProcHub::State> state_;
  NodeId self_;
  mutable std::mutex counters_mutex_;
  TransportCounters counters_;
};

}  // namespace dooc::net
