#include "net/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <tuple>

#include "common/log.hpp"
#include "obs/clock.hpp"
#include "spmv/kernel_config.hpp"
#include "storage/replication.hpp"

namespace dooc::net {

namespace {

using Clock = std::chrono::steady_clock;
constexpr const char* kWhere = "net.coord";

}  // namespace

Coordinator::Coordinator(Transport& transport, CoordinatorConfig config)
    : transport_(transport), config_(config), store_(config.durable_dir) {
  if (config_.serial_nnz_threshold == 0) {
    config_.serial_nnz_threshold = spmv::KernelConfig{}.serial_nnz_threshold;
  }
  telemetry_ =
      config_.telemetry ? *config_.telemetry : obs::telemetry::TelemetryConfig::from_env();
  if (telemetry_.enabled) {
    hub_ = std::make_unique<obs::telemetry::TelemetryHub>(telemetry_.history);
    watchdog_ = std::make_unique<obs::telemetry::Watchdog>(telemetry_);
  }
}

void Coordinator::register_array(const std::string& name, NodeId home, std::uint64_t bytes) {
  arrays_[name] = ArrayInfo{home, bytes};
}

bool Coordinator::put_block(NodeId home, const std::string& name, DataBuffer bytes,
                            bool durable_elsewhere) {
  const std::uint64_t size = bytes.size();
  const PutBlockMsg msg{name, durable_elsewhere, std::move(bytes)};
  if (!transport_.send(home, Channel::PutBlock, 0, msg.encode())) return false;
  register_array(name, home, size);
  return true;
}

NodeId Coordinator::home_of(const std::string& name) const {
  auto it = arrays_.find(name);
  DOOC_REQUIRE(it != arrays_.end(), "unknown array '" + name + "'");
  return it->second.home;
}

void Coordinator::refresh_alive() {
  alive_.clear();
  for (const NodeId id : transport_.peers()) {
    if (id >= 0 && id < config_.num_nodes && dead_.count(id) == 0) alive_.insert(id);
  }
}

bool Coordinator::pump(RecvEvent& ev, int timeout_ms) {
  poll_watchdog();
  if (!transport_.recv(ev, timeout_ms)) {
    poll_watchdog();  // suspicion must advance during total silence too
    return false;
  }
  if (ev.kind == RecvEvent::Kind::PeerUp) {
    if (ev.peer >= 0 && ev.peer < config_.num_nodes && dead_.count(ev.peer) == 0) {
      alive_.insert(ev.peer);
    }
  } else if (ev.kind == RecvEvent::Kind::PeerDown) {
    DOOC_LOG(Warn, kWhere) << "node " << ev.peer << " down: " << ev.error;
    alive_.erase(ev.peer);
    dead_.insert(ev.peer);
  } else if (ev.kind == RecvEvent::Kind::Frame && ev.channel == Channel::Telemetry) {
    if (hub_) {
      try {
        hub_->add(obs::telemetry::TelemetryFrame::decode(ev.payload),
                  obs::TraceClock::now_ns());
      } catch (const Error& e) {
        DOOC_LOG(Warn, kWhere) << "bad telemetry frame from node " << ev.peer << ": "
                               << e.what();
      }
    }
    // Returned as-is: every caller filters on the channel it waits for.
  }
  return true;
}

void Coordinator::poll_watchdog() {
  if (!watchdog_) return;
  const std::uint64_t now = obs::TraceClock::now_ns();
  if (now < next_watchdog_ns_) return;
  next_watchdog_ns_ = now + telemetry_.interval_ns();
  std::vector<obs::telemetry::HealthEvent> events;
  {
    std::lock_guard lock(health_mutex_);
    events = watchdog_->poll(*hub_, now);
    for (const auto& hev : events) health_.push_back(hev);
  }
  for (const auto& hev : events) {
    obs::telemetry::emit_health_event(hev);
    if (hev.kind == obs::telemetry::HealthKind::Recovered) {
      DOOC_LOG(Info, kWhere) << "health: " << hev.to_text();
    } else {
      DOOC_LOG(Warn, kWhere) << "health: " << hev.to_text();
    }
  }
}

std::vector<obs::telemetry::HealthEvent> Coordinator::health_events() const {
  std::lock_guard lock(health_mutex_);
  return health_;
}

std::set<NodeId> Coordinator::suspected_nodes() const {
  std::lock_guard lock(health_mutex_);
  if (!watchdog_) return {};
  return watchdog_->suspected();
}

std::string Coordinator::telemetry_prometheus() const {
  if (!hub_) return {};
  obs::MetricsSnapshot agg = hub_->aggregate();
  {
    std::lock_guard lock(health_mutex_);
    for (const auto& hev : health_) {
      auto& e = agg.entries[obs::MetricsSnapshot::Key{
          std::string("health.") + obs::telemetry::health_kind_name(hev.kind), hev.node}];
      e.kind = obs::MetricKind::Counter;
      e.count += 1;
    }
  }
  return agg.to_prometheus();
}

NodeId Coordinator::assign_node(
    const sched::Task& task, const std::map<NodeId, std::set<sched::TaskId>>& inflight) const {
  if (task.preferred_node >= 0 && alive_.count(task.preferred_node) != 0) {
    return task.preferred_node;
  }
  // Preferred node dead (or unset): least-loaded survivor, lowest id on a
  // tie — deterministic given the same completion history.
  NodeId best = kCoordinatorId;
  std::size_t best_load = 0;
  for (const NodeId id : alive_) {
    const auto it = inflight.find(id);
    const std::size_t load = it == inflight.end() ? 0 : it->second.size();
    if (best == kCoordinatorId || load < best_load) {
      best = id;
      best_load = load;
    }
  }
  return best;
}

RunResult Coordinator::run(const sched::TaskGraph& graph) {
  DOOC_REQUIRE(graph.built(), "coordinator needs a built graph");
  const auto t0 = Clock::now();
  RunResult result;
  result.tasks_total = graph.size();
  refresh_alive();

  struct TaskState {
    std::size_t pending_preds = 0;
    NodeId running_on = kCoordinatorId;  ///< kCoordinatorId = not in flight
    int retries = 0;
    bool done = false;
  };
  std::vector<TaskState> state(graph.size());

  // Deterministic dispatch order: iteration group, then position within
  // the iteration, then insertion id.
  const auto order = [&](sched::TaskId a, sched::TaskId b) {
    const sched::Task& ta = graph.task(a);
    const sched::Task& tb = graph.task(b);
    return std::tie(ta.group, ta.seq, a) < std::tie(tb.group, tb.seq, b);
  };
  std::set<sched::TaskId, decltype(order)> ready(order);
  for (sched::TaskId id = 0; id < graph.size(); ++id) {
    state[id].pending_preds = graph.predecessors(id).size();
    if (state[id].pending_preds == 0) ready.insert(id);
  }

  std::map<NodeId, std::set<sched::TaskId>> inflight;
  std::uint64_t done_count = 0;

  const auto fail = [&](std::string why) {
    result.ok = false;
    result.error = std::move(why);
    result.tasks_executed = done_count;
    result.makespan_s = std::chrono::duration<double>(Clock::now() - t0).count();
    result.dead_nodes.assign(dead_.begin(), dead_.end());
    return result;
  };

  const auto requeue_node = [&](NodeId node) {
    auto it = inflight.find(node);
    if (it == inflight.end()) return;
    for (const sched::TaskId id : it->second) {
      state[id].running_on = kCoordinatorId;
      ready.insert(id);
      result.requeued_after_death += 1;
      DOOC_LOG(Warn, kWhere) << "re-queueing task '" << graph.task(id).name << "' from dead node "
                             << node;
    }
    inflight.erase(it);
    // Blocks homed on the dead node survive only as durable files.
    for (auto& [name, info] : arrays_) {
      if (info.home == node) info.home = kDurableOnly;
    }
  };

  const auto dispatch = [&]() -> std::optional<RunResult> {
    std::vector<sched::TaskId> started;
    for (const sched::TaskId id : ready) {
      const sched::Task& task = graph.task(id);
      const NodeId node = assign_node(task, inflight);
      if (node == kCoordinatorId) return fail("no live worker nodes remain");
      if (inflight[node].size() >= static_cast<std::size_t>(config_.max_inflight_per_node)) {
        continue;  // node saturated; later ready tasks may fit elsewhere
      }
      ExecTaskMsg msg;
      msg.name = task.name;
      msg.kind = task.kind;
      msg.serial_nnz_threshold = config_.serial_nnz_threshold;
      for (const storage::Interval& iv : task.inputs) {
        auto it = arrays_.find(iv.array);
        DOOC_REQUIRE(it != arrays_.end(), "task input '" + iv.array + "' has no known home");
        msg.inputs.push_back(TaskInput{iv.array, iv.length, it->second.home});
      }
      for (const storage::Interval& iv : task.outputs) {
        msg.outputs.push_back(TaskOutput{iv.array, iv.length});
      }
      if (!transport_.send(node, Channel::ExecTask, id, msg.encode())) {
        // Raced with a death the event loop has not surfaced yet; the
        // PeerDown event will trigger the re-queue sweep.
        DOOC_LOG(Warn, kWhere) << "dispatch to node " << node << " failed (peer gone)";
        alive_.erase(node);
        dead_.insert(node);
        requeue_node(node);
        continue;
      }
      state[id].running_on = node;
      inflight[node].insert(id);
      started.push_back(id);
    }
    for (const sched::TaskId id : started) ready.erase(id);
    return std::nullopt;
  };

  auto idle_deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
  while (done_count < graph.size()) {
    if (auto failed = dispatch()) return *failed;
    RecvEvent ev;
    if (!pump(ev, 100)) {
      if (Clock::now() >= idle_deadline) {
        return fail("cluster stalled: no events for " + std::to_string(config_.idle_timeout_ms) +
                    "ms with " + std::to_string(done_count) + "/" +
                    std::to_string(graph.size()) + " tasks done");
      }
      continue;
    }
    idle_deadline = Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);

    if (ev.kind == RecvEvent::Kind::PeerDown) {
      requeue_node(ev.peer);
      continue;
    }
    if (ev.kind != RecvEvent::Kind::Frame || ev.channel != Channel::TaskDone) continue;

    const auto id = static_cast<sched::TaskId>(ev.tag);
    if (id >= graph.size() || state[id].done) continue;  // stale duplicate
    const TaskDoneMsg done = TaskDoneMsg::decode(ev.payload);
    if (state[id].running_on == ev.peer) {
      inflight[ev.peer].erase(id);
      state[id].running_on = kCoordinatorId;
    }
    if (!done.ok) {
      state[id].retries += 1;
      if (state[id].retries > config_.max_task_retries) {
        return fail("task '" + graph.task(id).name + "' failed " +
                    std::to_string(state[id].retries) + " times: " + done.error);
      }
      result.retries += 1;
      DOOC_LOG(Warn, kWhere) << "retrying task '" << graph.task(id).name << "': " << done.error;
      ready.insert(id);
      continue;
    }

    state[id].done = true;
    done_count += 1;
    // The node that executed the task now homes its outputs.
    for (const storage::Interval& iv : graph.task(id).outputs) {
      arrays_[iv.array] = ArrayInfo{ev.peer, iv.length};
    }
    for (const sched::TaskId succ : graph.successors(id)) {
      if (--state[succ].pending_preds == 0) ready.insert(succ);
    }
    if (progress_hook) progress_hook(done_count);
  }

  result.ok = true;
  result.tasks_executed = done_count;
  result.makespan_s = std::chrono::duration<double>(Clock::now() - t0).count();
  result.dead_nodes.assign(dead_.begin(), dead_.end());
  result.health_events = health_events();
  const std::set<NodeId> suspects = suspected_nodes();
  result.suspected_nodes.assign(suspects.begin(), suspects.end());
  return result;
}

std::optional<DataBuffer> Coordinator::fetch_from(NodeId peer, const std::string& name) {
  const std::uint64_t tag = next_tag_++;
  const FetchReqMsg req{name};
  if (!transport_.send(peer, Channel::FetchReq, tag, req.encode())) return std::nullopt;
  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.fetch_timeout_ms);
  RecvEvent ev;
  while (Clock::now() < deadline) {
    if (!pump(ev, 100)) continue;
    if (ev.kind == RecvEvent::Kind::PeerDown && ev.peer == peer) break;
    if (ev.kind != RecvEvent::Kind::Frame || ev.tag != tag) continue;
    if (ev.channel == Channel::FetchOk) return FetchOkMsg::decode(ev.payload).bytes;
    if (ev.channel == Channel::FetchFail) break;
  }
  return std::nullopt;
}

DataBuffer Coordinator::fetch_block(const std::string& name) {
  auto it = arrays_.find(name);
  DOOC_REQUIRE(it != arrays_.end(), "fetch of unknown array '" + name + "'");
  const NodeId home = it->second.home;
  if (home >= 0 && alive_.count(home) != 0) {
    if (auto bytes = fetch_from(home, name)) return std::move(*bytes);
  }
  // Home gone (or fetch failed): sweep the other live workers — a node
  // that read the block keeps a cached replica (NodeServer caches every
  // remote fetch) and its FetchReq handler serves from that cache. Order
  // is rendezvous-ranked so repeated gathers spread across holders.
  std::vector<int> peers;
  peers.reserve(alive_.size());
  for (const NodeId id : alive_) {
    if (id != home) peers.push_back(id);
  }
  const storage::BlockKey key{name, 0};
  for (const int peer : storage::replication::rank_holders(key, home, std::move(peers))) {
    if (auto bytes = fetch_from(peer, name)) {
      ++replica_fetches_;
      return std::move(*bytes);
    }
  }
  // The durable copy is the block of record.
  return store_.load_durable(name);
}

std::map<NodeId, NodeReportMsg> Coordinator::collect_reports() {
  refresh_alive();
  std::map<std::uint64_t, NodeId> outstanding;
  for (const NodeId id : alive_) {
    const std::uint64_t tag = next_tag_++;
    if (transport_.send(id, Channel::ReportReq, tag, DataBuffer{})) outstanding[tag] = id;
  }
  std::map<NodeId, NodeReportMsg> reports;
  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.report_timeout_ms);
  RecvEvent ev;
  while (!outstanding.empty() && Clock::now() < deadline) {
    if (!pump(ev, 100)) continue;
    if (ev.kind == RecvEvent::Kind::PeerDown) {
      for (auto it = outstanding.begin(); it != outstanding.end();) {
        it = it->second == ev.peer ? outstanding.erase(it) : std::next(it);
      }
      continue;
    }
    if (ev.kind != RecvEvent::Kind::Frame || ev.channel != Channel::ReportRep) continue;
    auto it = outstanding.find(ev.tag);
    if (it == outstanding.end()) continue;
    reports[it->second] = NodeReportMsg::decode(ev.payload);
    outstanding.erase(it);
  }
  return reports;
}

void Coordinator::shutdown_cluster() {
  refresh_alive();
  for (const NodeId id : alive_) {
    (void)transport_.send(id, Channel::Shutdown, 0, DataBuffer{});
  }
}

}  // namespace dooc::net
