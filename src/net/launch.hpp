// ClusterLauncher: fork/exec an N-process doocd cluster on one machine.
//
// The launcher writes the manifest, spawns one doocd per node (each
// listening on its manifest address, Unix sockets by default), and owns
// their lifecycle: kill_node() delivers SIGKILL for fault drills (the
// fault layer's node-outage events now mean a real dead process),
// terminate_all() does SIGTERM -> grace -> SIGKILL teardown, wait_all()
// reaps. Per-process tracing is wired through the DOOC_TRACE environment
// variable so each daemon exports its own Chrome trace tagged with its
// real pid.
#pragma once

#include <sys/types.h>

#include <map>
#include <string>

#include "net/manifest.hpp"
#include "net/wire.hpp"

namespace dooc::net {

struct LaunchConfig {
  Manifest manifest;
  std::string manifest_path;  ///< where the manifest file is written
  std::string durable_dir;
  /// doocd binary; empty = find_doocd() (env DOOC_DOOCD, then next to
  /// /proc/self/exe, then ../tools/doocd relative to it).
  std::string doocd_path;
  /// Per-node trace output dir; empty disables tracing in the daemons.
  std::string trace_dir;
  /// DOOC_CODEC spec exported to every daemon (e.g. "adaptive" or
  /// "on,min_ratio=1.2"). Empty inherits the launcher's environment; the
  /// launcher process itself keeps its own DOOC_CODEC either way, so a
  /// mixed-configuration cluster (compressed daemons, raw coordinator) is
  /// one flag away.
  std::string codec_spec;
  /// DOOC_TELEMETRY spec exported to every daemon (e.g. "on,interval=100").
  /// Empty inherits the launcher's environment.
  std::string telemetry_spec;
  /// When > 0, node n gets "--metrics-port=<base+n>": each daemon serves
  /// its own Prometheus scrape endpoint alongside the coordinator's.
  int metrics_base_port = 0;
  int exec_threads = 1;
  std::string log_level = "warn";
};

class ClusterLauncher {
 public:
  explicit ClusterLauncher(LaunchConfig config);
  ~ClusterLauncher();  ///< terminate_all() if anything is still running

  ClusterLauncher(const ClusterLauncher&) = delete;
  ClusterLauncher& operator=(const ClusterLauncher&) = delete;

  /// Write the manifest and fork/exec every node. Throws Error when the
  /// daemon binary cannot be found or a fork fails.
  void spawn_all();

  [[nodiscard]] pid_t pid(NodeId node) const;
  [[nodiscard]] int num_nodes() const noexcept { return config_.manifest.num_nodes(); }

  /// SIGKILL one node (the fault drill). Returns false when the node is
  /// not running.
  bool kill_node(NodeId node);

  /// SIGSTOP one node without reaping it (the straggler drill: the
  /// process is frozen, its sockets stay open, so no PeerDown fires — only
  /// the telemetry watchdog can notice). Returns false when not running.
  bool stop_node(NodeId node);
  /// SIGCONT a stop_node()ed node.
  bool resume_node(NodeId node);

  /// SIGTERM everyone, wait up to `grace_ms`, SIGKILL the rest, reap all.
  void terminate_all(int grace_ms = 2000);

  /// Reap every child, waiting up to `timeout_ms` for them to exit on
  /// their own (after a Shutdown round). Returns the number of children
  /// that exited with a non-zero status; children still alive at the
  /// deadline are SIGKILLed and counted as failures.
  int wait_all(int timeout_ms);

  [[nodiscard]] static std::string find_doocd();

 private:
  LaunchConfig config_;
  std::map<NodeId, pid_t> children_;  ///< running children only
};

}  // namespace dooc::net
