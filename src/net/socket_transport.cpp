#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

#include "net/protocol.hpp"

namespace dooc::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr NodeId kUnknownPeer = INT32_MIN;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw TransportError(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
}

void set_cloexec(int fd) { (void)::fcntl(fd, F_SETFD, FD_CLOEXEC); }

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_un make_unix_sockaddr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

sockaddr_in make_tcp_sockaddr(const std::string& host, int port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    throw TransportError("tcp address must be a dotted IPv4 host, got '" + host + "'");
  }
  return sa;
}

}  // namespace

/// One live connection. Accepted connections stay anonymous (peer ==
/// kUnknownPeer) until their Hello frame; dialed connections know the peer
/// id up front and become ready on HelloAck.
struct SocketTransport::Conn {
  int fd = -1;
  NodeId peer = kUnknownPeer;
  std::uint64_t peer_pid = 0;
  bool dialed = false;  ///< we sent Hello, expect HelloAck
  bool ready = false;   ///< handshake complete; carries traffic
  FrameAssembler assembler;
  std::deque<std::vector<std::byte>> outbound;  ///< encoded frames
  std::size_t out_offset = 0;                   ///< sent bytes of outbound.front()
  std::uint64_t outbound_bytes = 0;
};

SocketTransport::SocketTransport(SocketTransportConfig config) : config_(config) {
  if (::pipe(wake_pipe_) != 0) {
    throw TransportError(std::string("pipe(): ") + std::strerror(errno));
  }
  for (const int fd : wake_pipe_) {
    set_nonblocking(fd);
    set_cloexec(fd);
  }
}

std::unique_ptr<SocketTransport> SocketTransport::listen(const NodeAddress& addr,
                                                         SocketTransportConfig config) {
  std::unique_ptr<SocketTransport> t(new SocketTransport(config));
  const int domain = addr.kind == NodeAddress::Kind::Unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(std::string("socket(): ") + std::strerror(errno));
  set_cloexec(fd);
  if (addr.kind == NodeAddress::Kind::Unix) {
    (void)::unlink(addr.path.c_str());  // stale socket from a crashed run
    const sockaddr_un sa = make_unix_sockaddr(addr.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw TransportError("bind(" + addr.to_string() + "): " + err);
    }
    t->unix_path_ = addr.path;
  } else {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in sa = make_tcp_sockaddr(addr.host, addr.port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw TransportError("bind(" + addr.to_string() + "): " + err);
    }
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw TransportError("listen(" + addr.to_string() + "): " + err);
  }
  set_nonblocking(fd);
  t->listen_fd_ = fd;
  t->start_loop();
  return t;
}

std::unique_ptr<SocketTransport> SocketTransport::client(SocketTransportConfig config) {
  std::unique_ptr<SocketTransport> t(new SocketTransport(config));
  t->start_loop();
  return t;
}

SocketTransport::~SocketTransport() { close(); }

void SocketTransport::start_loop() {
  loop_thread_ = std::thread([this] { loop(); });
}

void SocketTransport::wake_loop() {
  const char b = 'w';
  (void)!::write(wake_pipe_[1], &b, 1);  // EAGAIN fine: loop wakes anyway
}

bool SocketTransport::connect_peer(NodeId id, const NodeAddress& addr, int deadline_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  int fd = -1;
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      if (closing_) return false;
    }
    fd = ::socket(addr.kind == NodeAddress::Kind::Unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw TransportError(std::string("socket(): ") + std::strerror(errno));
    set_cloexec(fd);
    int rc;
    if (addr.kind == NodeAddress::Kind::Unix) {
      const sockaddr_un sa = make_unix_sockaddr(addr.path);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    } else {
      const sockaddr_in sa = make_tcp_sockaddr(addr.host, addr.port);
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
    }
    if (rc == 0) break;
    ::close(fd);
    fd = -1;
    // The peer may simply not have bound yet (daemons start concurrently).
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  set_nonblocking(fd);
  if (addr.kind == NodeAddress::Kind::Tcp) set_nodelay(fd);

  {
    std::lock_guard lock(mutex_);
    if (closing_) {
      ::close(fd);
      return false;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->peer = id;
    conn->dialed = true;
    const HelloMsg hello{config_.self, static_cast<std::uint64_t>(::getpid())};
    const DataBuffer payload = hello.encode();
    queue_bytes(*conn, encode_frame(Channel::Hello, config_.self, id, 0, payload.span()));
    conns_.emplace(fd, std::move(conn));
  }
  wake_loop();

  // Wait until the loop thread sees HelloAck (ready) or drops the conn.
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = conns_.find(fd);
    if (it == conns_.end() || closing_) return false;
    if (it->second->ready) return true;
    if (drain_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      it = conns_.find(fd);
      if (it != conns_.end() && it->second->ready) return true;
      drop_conn(fd, "handshake timeout");
      return false;
    }
  }
}

bool SocketTransport::send(NodeId to, Channel channel, std::uint64_t tag, DataBuffer payload) {
  std::unique_lock lock(mutex_);
  if (closing_) throw TransportError("send after close()");

  const auto find_ready = [&]() -> Conn* {
    for (auto& [fd, conn] : conns_) {
      if (conn->ready && conn->peer == to) return conn.get();
    }
    return nullptr;
  };
  Conn* c = find_ready();
  if (c == nullptr) return false;

  // Backpressure: block while this peer's queue is over budget. The frame
  // being sent is not counted, so one frame larger than the whole budget
  // still goes through (serialized with everything else).
  const auto deadline = Clock::now() + std::chrono::milliseconds(config_.send_timeout_ms);
  while (c->outbound_bytes >= config_.max_outbound_bytes_per_peer) {
    const bool forever = config_.send_timeout_ms <= 0;
    if (forever) {
      drain_cv_.wait(lock);
    } else if (drain_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw TransportError("send to node " + std::to_string(to) + " timed out after " +
                           std::to_string(config_.send_timeout_ms) + "ms (" +
                           std::to_string(c->outbound_bytes) + " bytes queued)");
    }
    if (closing_) throw TransportError("send after close()");
    c = find_ready();
    if (c == nullptr) return false;  // peer died while we waited
  }

  queue_bytes(*c, encode_frame(channel, config_.self, to, tag, payload.span()));
  counters_.frames_sent += 1;
  counters_.bytes_sent += payload.size();
  lock.unlock();
  wake_loop();
  return true;
}

bool SocketTransport::recv(RecvEvent& out, int timeout_ms) {
  std::unique_lock lock(mutex_);
  const auto ready = [&] { return !inbound_.empty() || closing_; };
  if (timeout_ms < 0) {
    recv_cv_.wait(lock, ready);
  } else if (!recv_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
    return false;
  }
  if (inbound_.empty()) return false;  // closing and drained
  out = std::move(inbound_.front());
  inbound_.pop_front();
  if (out.kind == RecvEvent::Kind::Frame) {
    counters_.frames_received += 1;
    counters_.bytes_received += out.payload.size();
  }
  return true;
}

std::vector<NodeId> SocketTransport::peers() const {
  std::lock_guard lock(mutex_);
  std::vector<NodeId> out;
  for (const auto& [fd, conn] : conns_) {
    if (conn->ready) out.push_back(conn->peer);
  }
  return out;
}

bool SocketTransport::peer_up(NodeId id) const {
  std::lock_guard lock(mutex_);
  for (const auto& [fd, conn] : conns_) {
    if (conn->ready && conn->peer == id) return true;
  }
  return false;
}

TransportCounters SocketTransport::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void SocketTransport::close() {
  {
    // Flush queued outbound frames (bounded) before tearing the loop down —
    // otherwise a Shutdown frame queued just before close() can be lost and
    // the peer never learns it should exit.
    std::unique_lock lock(mutex_);
    if (closing_) return;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    drain_cv_.wait_until(lock, deadline, [this] {
      for (const auto& [fd, conn] : conns_) {
        if (conn->outbound_bytes != 0) return false;
      }
      return true;
    });
    closing_ = true;
    recv_cv_.notify_all();
    drain_cv_.notify_all();
  }
  wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();
  std::lock_guard lock(mutex_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) (void)::unlink(unix_path_.c_str());
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void SocketTransport::queue_bytes(Conn& c, std::vector<std::byte> bytes) {
  c.outbound_bytes += bytes.size();
  c.outbound.push_back(std::move(bytes));
}

void SocketTransport::emit(RecvEvent ev) {
  inbound_.push_back(std::move(ev));
  recv_cv_.notify_one();
}

void SocketTransport::drop_conn(int fd, const std::string& reason) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.ready && c.peer != kUnknownPeer) {
    RecvEvent down;
    down.kind = RecvEvent::Kind::PeerDown;
    down.peer = c.peer;
    down.error = reason;
    emit(std::move(down));
  }
  ::close(c.fd);
  conns_.erase(it);
  // Unblock senders queued on this peer and connect_peer() waiters.
  drain_cv_.notify_all();
}

void SocketTransport::handle_frame(Conn& c, Frame f) {
  switch (f.channel()) {
    case Channel::Hello: {
      if (c.dialed || c.ready) throw FrameError("unexpected Hello on established connection");
      const HelloMsg hello = HelloMsg::decode(f.payload);
      c.peer = hello.node;
      c.peer_pid = hello.os_pid;
      c.ready = true;
      const HelloMsg ack{config_.self, static_cast<std::uint64_t>(::getpid())};
      const DataBuffer payload = ack.encode();
      queue_bytes(c, encode_frame(Channel::HelloAck, config_.self, c.peer, 0, payload.span()));
      RecvEvent up;
      up.kind = RecvEvent::Kind::PeerUp;
      up.peer = c.peer;
      up.peer_pid = c.peer_pid;
      emit(std::move(up));
      drain_cv_.notify_all();
      return;
    }
    case Channel::HelloAck: {
      if (!c.dialed || c.ready) throw FrameError("unexpected HelloAck");
      const HelloMsg ack = HelloMsg::decode(f.payload);
      if (ack.node != c.peer) {
        throw FrameError("handshake mismatch: dialed node " + std::to_string(c.peer) +
                         ", peer claims to be node " + std::to_string(ack.node));
      }
      c.peer_pid = ack.os_pid;
      c.ready = true;
      RecvEvent up;
      up.kind = RecvEvent::Kind::PeerUp;
      up.peer = c.peer;
      up.peer_pid = c.peer_pid;
      emit(std::move(up));
      drain_cv_.notify_all();  // connect_peer() is waiting on ready
      return;
    }
    default: {
      if (!c.ready) throw FrameError("frame before handshake");
      RecvEvent ev;
      ev.kind = RecvEvent::Kind::Frame;
      ev.peer = c.peer;
      ev.channel = f.channel();
      ev.tag = f.header.tag;
      ev.payload = std::move(f.payload);
      emit(std::move(ev));
      return;
    }
  }
}

void SocketTransport::handle_readable(Conn& c) {
  std::byte buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      // Throws FrameError on a corrupt stream; caller drops the conn.
      c.assembler.feed(std::span<const std::byte>(buf, static_cast<std::size_t>(n)));
      Frame f;
      while (c.assembler.next(f)) handle_frame(c, std::move(f));
      if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained
      continue;
    }
    if (n == 0) {
      const bool mid_frame = c.assembler.in_frame();
      throw FrameError(mid_frame ? "connection closed mid-frame" : "peer closed connection");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    throw FrameError(std::string("recv(): ") + std::strerror(errno));
  }
}

void SocketTransport::handle_writable(Conn& c) {
  while (!c.outbound.empty()) {
    const std::vector<std::byte>& front = c.outbound.front();
    const ssize_t n = ::send(c.fd, front.data() + c.out_offset, front.size() - c.out_offset,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      throw FrameError(std::string("send(): ") + std::strerror(errno));
    }
    c.out_offset += static_cast<std::size_t>(n);
    c.outbound_bytes -= static_cast<std::uint64_t>(n);
    if (c.out_offset == front.size()) {
      c.outbound.pop_front();
      c.out_offset = 0;
    }
  }
  drain_cv_.notify_all();  // budget freed; wake blocked senders
}

void SocketTransport::loop() {
  std::vector<pollfd> fds;
  std::vector<int> conn_fds;
  for (;;) {
    fds.clear();
    conn_fds.clear();
    {
      std::lock_guard lock(mutex_);
      if (closing_) return;
      fds.push_back({wake_pipe_[0], POLLIN, 0});
      if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
      for (const auto& [fd, conn] : conns_) {
        short events = POLLIN;
        if (!conn->outbound.empty()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
        conn_fds.push_back(fd);
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) return;  // unrecoverable; close() follows
    if (rc <= 0) continue;

    std::lock_guard lock(mutex_);
    if (closing_) return;
    std::size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char scratch[256];
      while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
      }
    }
    ++idx;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          set_nonblocking(cfd);
          set_cloexec(cfd);
          auto conn = std::make_unique<Conn>();
          conn->fd = cfd;
          conns_.emplace(cfd, std::move(conn));
        }
      }
      ++idx;
    }
    for (std::size_t i = 0; i < conn_fds.size(); ++i, ++idx) {
      const int fd = conn_fds[i];
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // dropped earlier this pass
      const short revents = fds[idx].revents;
      try {
        if (revents & POLLIN) handle_readable(*it->second);
        it = conns_.find(fd);
        if (it == conns_.end()) continue;
        if (revents & POLLOUT) handle_writable(*it->second);
        it = conns_.find(fd);
        if (it == conns_.end()) continue;
        if ((revents & (POLLERR | POLLHUP)) && !(revents & POLLIN)) {
          const bool mid_frame = it->second->assembler.in_frame();
          drop_conn(fd, mid_frame ? "connection reset mid-frame" : "connection reset");
        }
      } catch (const FrameError& e) {
        drop_conn(fd, e.what());
      }
    }
  }
}

}  // namespace dooc::net
