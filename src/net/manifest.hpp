// Cluster manifest: one line per worker node saying where it listens.
//
//   # dooc cluster manifest
//   node 0 unix:/tmp/dooc/n0.sock
//   node 1 unix:/tmp/dooc/n1.sock
//   node 2 tcp:127.0.0.1:7400
//
// Node ids must be dense 0..N-1. `doocd --manifest=F --node=I` hosts node
// I and dials its peers; the launcher writes the manifest before spawning.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace dooc::net {

struct NodeAddress {
  enum class Kind : std::uint8_t { Unix, Tcp };
  Kind kind = Kind::Unix;
  std::string path;  ///< Unix: socket path
  std::string host;  ///< Tcp: host/IP
  int port = 0;      ///< Tcp

  [[nodiscard]] std::string to_string() const;
  /// Parse "unix:/path" or "tcp:host:port"; throws InvalidArgument.
  [[nodiscard]] static NodeAddress parse(const std::string& spec);
};

struct Manifest {
  std::vector<NodeAddress> nodes;  ///< index == node id

  [[nodiscard]] int num_nodes() const noexcept { return static_cast<int>(nodes.size()); }

  [[nodiscard]] std::string to_text() const;
  void write_file(const std::string& path) const;

  [[nodiscard]] static Manifest parse(const std::string& text);
  [[nodiscard]] static Manifest parse_file(const std::string& path);

  /// N unix-socket nodes under `dir` (n<i>.sock) — the launcher default.
  [[nodiscard]] static Manifest local_unix(const std::string& dir, int num_nodes);
  /// N tcp nodes on 127.0.0.1, ports base..base+N-1.
  [[nodiscard]] static Manifest local_tcp(int base_port, int num_nodes);
};

}  // namespace dooc::net
