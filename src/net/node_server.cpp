#include "net/node_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spmv/kernels.hpp"

namespace dooc::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string where_tag(NodeId node) { return "net.node[" + std::to_string(node) + "]"; }

double quantile_of(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

}  // namespace

NodeServer::NodeServer(std::unique_ptr<Transport> transport, NodeServerConfig config)
    : transport_(std::move(transport)),
      config_(config),
      store_(config.durable_dir),
      pool_(static_cast<std::size_t>(std::max(1, config.exec_threads))) {
  store_.set_codec(config.codec ? *config.codec : spmv::codec::CodecConfig::from_env());
  telemetry_ = config.telemetry ? *config.telemetry : obs::telemetry::TelemetryConfig::from_env();
  exec_thread_ = std::thread([this] { exec_loop(); });
}

NodeServer::~NodeServer() {
  {
    std::lock_guard lock(exec_mutex_);
    exec_stop_ = true;
    exec_cv_.notify_all();
  }
  if (exec_thread_.joinable()) exec_thread_.join();
}

void NodeServer::run() {
  DOOC_LOG(Info, where_tag(config_.node))
      << "serving (pid " << ::getpid() << ", durable '" << config_.durable_dir << "')";
  if (telemetry_.enabled) next_telemetry_ = Clock::now();
  RecvEvent ev;
  while (!stop_.load(std::memory_order_relaxed)) {
    maybe_send_telemetry();
    if (!transport_->recv(ev, 100)) continue;
    switch (ev.kind) {
      case RecvEvent::Kind::PeerUp:
        DOOC_LOG(Debug, where_tag(config_.node)) << "peer " << ev.peer << " up";
        break;
      case RecvEvent::Kind::PeerDown:
        handle_peer_down(ev);
        break;
      case RecvEvent::Kind::Frame:
        if (ev.channel == Channel::Shutdown) {
          DOOC_LOG(Info, where_tag(config_.node)) << "shutdown requested";
          return;
        }
        handle_frame(ev);
        break;
    }
  }
}

void NodeServer::handle_peer_down(const RecvEvent& ev) {
  // A clean EOF is normal teardown (a peer got its Shutdown first); only
  // truncated/reset connections deserve a warning.
  if (ev.error == "peer closed connection") {
    DOOC_LOG(Info, where_tag(config_.node)) << "peer " << ev.peer << " down: " << ev.error;
  } else {
    DOOC_LOG(Warn, where_tag(config_.node)) << "peer " << ev.peer << " down: " << ev.error;
  }
  // Fail every fetch waiting on that peer so the executor falls back to
  // the durable copy instead of waiting out the full timeout.
  std::lock_guard lock(fetch_mutex_);
  for (auto it = pending_fetches_.begin(); it != pending_fetches_.end();) {
    if (it->second->home == ev.peer) {
      it->second->promise.set_exception(std::make_exception_ptr(
          TransportError("home node " + std::to_string(ev.peer) + " went down: " + ev.error)));
      it = pending_fetches_.erase(it);
    } else {
      ++it;
    }
  }
}

void NodeServer::handle_frame(const RecvEvent& ev) {
  switch (ev.channel) {
    case Channel::PutBlock: {
      const PutBlockMsg msg = PutBlockMsg::decode(ev.payload);
      store_.put(msg.name, msg.bytes, /*durable=*/!msg.durable_elsewhere);
      return;
    }
    case Channel::FetchReq: {
      const FetchReqMsg msg = FetchReqMsg::decode(ev.payload);
      DataBuffer bytes;
      bool from_cache = false;
      bool ok = store_.get(msg.name, bytes, &from_cache);
      if (!ok && store_.durable_exists(msg.name)) {
        try {
          bytes = store_.load_durable(msg.name);
          ok = true;
        } catch (const IoError&) {
          ok = false;
        }
      }
      if (ok) {
        fetches_served_.fetch_add(1, std::memory_order_relaxed);
        fetch_bytes_out_.fetch_add(bytes.size(), std::memory_order_relaxed);
        if (from_cache) replica_serves_.fetch_add(1, std::memory_order_relaxed);
        const FetchOkMsg rep{msg.name, std::move(bytes)};
        transport_->send(ev.peer, Channel::FetchOk, ev.tag, rep.encode());
      } else {
        const FetchFailMsg rep{msg.name, "block not stored on node " +
                                             std::to_string(config_.node)};
        transport_->send(ev.peer, Channel::FetchFail, ev.tag, rep.encode());
      }
      return;
    }
    case Channel::FetchOk: {
      const FetchOkMsg msg = FetchOkMsg::decode(ev.payload);
      std::lock_guard lock(fetch_mutex_);
      auto it = pending_fetches_.find(ev.tag);
      if (it == pending_fetches_.end()) return;  // fetch already timed out
      it->second->promise.set_value(msg.bytes);
      pending_fetches_.erase(it);
      return;
    }
    case Channel::FetchFail: {
      const FetchFailMsg msg = FetchFailMsg::decode(ev.payload);
      std::lock_guard lock(fetch_mutex_);
      auto it = pending_fetches_.find(ev.tag);
      if (it == pending_fetches_.end()) return;
      it->second->promise.set_exception(
          std::make_exception_ptr(IoError("fetch '" + msg.name + "' failed: " + msg.error)));
      pending_fetches_.erase(it);
      return;
    }
    case Channel::ExecTask: {
      ExecTaskMsg msg = ExecTaskMsg::decode(ev.payload);
      std::lock_guard lock(exec_mutex_);
      exec_queue_.emplace_back(ev.tag, std::move(msg));
      exec_cv_.notify_one();
      return;
    }
    case Channel::ReportReq: {
      transport_->send(ev.peer, Channel::ReportRep, ev.tag, report().encode());
      return;
    }
    default:
      DOOC_LOG(Warn, where_tag(config_.node))
          << "ignoring unexpected " << channel_name(ev.channel) << " frame from " << ev.peer;
      return;
  }
}

obs::telemetry::TelemetryFrame NodeServer::telemetry_frame() {
  obs::telemetry::TelemetryFrame f;
  f.node = config_.node;
  f.seq = telemetry_seq_;
  f.ts_ns = obs::TraceClock::now_ns();
  f.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(exec_mutex_);
    f.queue_depth = exec_queue_.size();
  }
  f.tasks_inflight = f.queue_depth + tasks_running_.load(std::memory_order_relaxed);
  f.faults = durable_fallbacks_.load(std::memory_order_relaxed);
  f.trace_dropped = obs::TraceSession::instance().dropped();
  // The full registry snapshot rides along: per-daemon it is naturally
  // node-scoped (this process only ever registers its own node id), so the
  // coordinator's aggregate keeps the per-node structure.
  f.metrics = obs::Metrics::instance().snapshot();
  const auto hit = f.metrics.entries.find(
      obs::MetricsSnapshot::Key{"storage.cache_hit", config_.node});
  if (hit != f.metrics.entries.end()) f.cache_hits = hit->second.count;
  const auto miss = f.metrics.entries.find(
      obs::MetricsSnapshot::Key{"storage.cache_miss", config_.node});
  if (miss != f.metrics.entries.end()) f.cache_misses = miss->second.count;
  return f;
}

void NodeServer::maybe_send_telemetry() {
  if (!telemetry_.enabled) return;
  const auto now = Clock::now();
  if (now < next_telemetry_) return;
  next_telemetry_ = now + std::chrono::milliseconds(telemetry_.interval_ms);
  const obs::telemetry::TelemetryFrame f = telemetry_frame();
  ++telemetry_seq_;
  // Best-effort: a coordinator that is gone (or not yet connected) just
  // drops the frame — telemetry must never wedge the serving loop.
  (void)transport_->send(kCoordinatorId, Channel::Telemetry, f.seq, f.encode());
}

void NodeServer::exec_loop() {
  for (;;) {
    std::pair<std::uint64_t, ExecTaskMsg> item;
    {
      std::unique_lock lock(exec_mutex_);
      exec_cv_.wait(lock, [&] { return exec_stop_ || !exec_queue_.empty(); });
      if (exec_queue_.empty()) return;  // stop and drained
      item = std::move(exec_queue_.front());
      exec_queue_.pop_front();
    }
    exec_task(item.first, item.second);
  }
}

DataBuffer NodeServer::fetch_remote(const TaskInput& in) {
  const std::uint64_t tag = next_fetch_tag_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<PendingFetch>();
  pending->home = in.home;
  std::future<DataBuffer> future = pending->promise.get_future();
  {
    std::lock_guard lock(fetch_mutex_);
    pending_fetches_.emplace(tag, pending);
  }
  const auto t0 = Clock::now();
  const FetchReqMsg req{in.array};
  if (!transport_->send(in.home, Channel::FetchReq, tag, req.encode())) {
    std::lock_guard lock(fetch_mutex_);
    pending_fetches_.erase(tag);
    throw TransportError("home node " + std::to_string(in.home) + " is not connected");
  }
  fetches_issued_.fetch_add(1, std::memory_order_relaxed);
  if (future.wait_for(std::chrono::milliseconds(config_.fetch_timeout_ms)) !=
      std::future_status::ready) {
    std::lock_guard lock(fetch_mutex_);
    pending_fetches_.erase(tag);
    throw TransportError("fetch '" + in.array + "' from node " + std::to_string(in.home) +
                         " timed out");
  }
  DataBuffer bytes = future.get();  // rethrows FetchFail / PeerDown
  const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  fetch_bytes_in_.fetch_add(bytes.size(), std::memory_order_relaxed);
  {
    std::lock_guard lock(fetch_hist_mutex_);
    fetch_seconds_.push_back(seconds);
  }
  obs::Metrics::instance().histogram("net.fetch_seconds", config_.node).add(seconds);
  return bytes;
}

DataBuffer NodeServer::acquire_input(const TaskInput& in, std::uint64_t& fetched_bytes,
                                     std::uint64_t& durable_fallbacks) {
  DataBuffer bytes;
  if (store_.get(in.array, bytes)) return bytes;

  // Remote fetches and durable reads may hand back a codec frame (peers
  // serve their durable copy verbatim, so the wire carries the compressed
  // bytes); decode before caching or use. The declared input size bounds
  // the allocation — ratio-bomb defense on the network path.
  const std::uint64_t decode_cap = in.bytes != 0 ? in.bytes : kMaxFramePayload;

  std::string remote_error;
  if (in.home != kDurableOnly && in.home != config_.node && transport_->peer_up(in.home)) {
    try {
      bytes = fetch_remote(in);
      fetched_bytes += bytes.size();  // wire (possibly compressed) bytes
      bytes = spmv::codec::decode_if_encoded(bytes, decode_cap);
      // Cache: later tasks reading the same block stay node-local, which
      // also keeps cross-node traffic deterministic for the bench gate.
      store_.put_cached(in.array, bytes);
      return bytes;
    } catch (const Error& e) {
      remote_error = e.what();
    }
  }

  try {
    bytes = spmv::codec::decode_if_encoded(store_.load_durable(in.array), decode_cap);
  } catch (const IoError& e) {
    throw IoError("input '" + in.array + "' unavailable: " +
                  (remote_error.empty() ? std::string("home node ") + std::to_string(in.home) +
                                              " unreachable"
                                        : remote_error) +
                  "; durable fallback failed: " + e.what());
  }
  durable_fallbacks += 1;
  durable_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  store_.put_cached(in.array, bytes);
  return bytes;
}

void NodeServer::exec_task(std::uint64_t task_id, const ExecTaskMsg& msg) {
  TaskDoneMsg done;
  const auto t0 = Clock::now();
  tasks_running_.fetch_add(1, std::memory_order_relaxed);
  try {
    std::optional<obs::Span> span;
    if (obs::trace_enabled()) span.emplace("task", msg.name, config_.node);

    std::vector<DataBuffer> inputs;
    inputs.reserve(msg.inputs.size());
    for (const TaskInput& in : msg.inputs) {
      inputs.push_back(acquire_input(in, done.fetched_bytes, done.durable_fallbacks));
    }

    spmv::KernelConfig kcfg;
    kcfg.serial_nnz_threshold = msg.serial_nnz_threshold;

    std::vector<DataBuffer> outputs;
    for (const TaskOutput& out : msg.outputs) {
      outputs.emplace_back(static_cast<std::size_t>(out.bytes));
    }

    if (msg.kind == "multiply") {
      DOOC_REQUIRE(inputs.size() >= 2 && outputs.size() == 1, "multiply wants 2 inputs, 1 output");
      spmv::multiply_any(inputs[0].span(), inputs[1].as<const double>(),
                         outputs[0].as<double>(), pool_, kcfg);
    } else if (msg.kind == "sum" || msg.kind == "aggregate") {
      DOOC_REQUIRE(outputs.size() == 1, "sum wants 1 output");
      // Sum the inputs shaped like the output, in input order (extra
      // inputs are ordering-only sync tokens).
      std::vector<std::span<const double>> parts;
      for (const DataBuffer& in : inputs) {
        if (in.size() == outputs[0].size()) parts.push_back(in.as<const double>());
      }
      DOOC_REQUIRE(!parts.empty(), "sum has no vector-shaped inputs");
      spmv::sum_vectors(std::span<const std::span<const double>>(parts), outputs[0].as<double>(),
                        pool_);
    } else if (msg.kind == "sync") {
      for (DataBuffer& out : outputs) std::fill(out.span().begin(), out.span().end(), std::byte{0});
    } else {
      throw InvalidArgument("task '" + msg.name + "': unknown kind '" + msg.kind + "'");
    }

    // Durable write-through *before* the ack: once the coordinator sees
    // TaskDone, these outputs survive this process dying.
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      store_.put(msg.outputs[i].array, std::move(outputs[i]), /*durable=*/true);
    }
    done.ok = true;
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    done.ok = false;
    done.error = e.what();
    DOOC_LOG(Error, where_tag(config_.node)) << "task '" << msg.name << "' failed: " << e.what();
  }
  tasks_running_.fetch_sub(1, std::memory_order_relaxed);
  done.exec_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  // Microseconds keep the log2 buckets fine-grained where task durations
  // actually land; the telemetry watchdog's p99-vs-median straggler test
  // reads this per-node distribution out of the frame snapshot.
  obs::Metrics::instance().histogram("net.exec_us", config_.node).add(done.exec_seconds * 1e6);
  transport_->send(kCoordinatorId, Channel::TaskDone, task_id, done.encode());
}

NodeReportMsg NodeServer::report() const {
  NodeReportMsg rep;
  rep.os_pid = static_cast<std::uint64_t>(::getpid());
  rep.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  const BlockStore::Counters sc = store_.counters();
  rep.blocks_stored = sc.blocks_stored;
  rep.bytes_stored = sc.bytes_stored;
  rep.fetches_served = fetches_served_.load(std::memory_order_relaxed);
  rep.fetch_bytes_out = fetch_bytes_out_.load(std::memory_order_relaxed);
  rep.replica_serves = replica_serves_.load(std::memory_order_relaxed);
  rep.fetches_issued = fetches_issued_.load(std::memory_order_relaxed);
  rep.fetch_bytes_in = fetch_bytes_in_.load(std::memory_order_relaxed);
  rep.durable_fallbacks = durable_fallbacks_.load(std::memory_order_relaxed);
  const TransportCounters tc = transport_->counters();
  rep.frames_sent = tc.frames_sent;
  rep.frames_received = tc.frames_received;
  rep.bytes_sent = tc.bytes_sent;
  rep.bytes_received = tc.bytes_received;
  {
    std::lock_guard lock(fetch_hist_mutex_);
    rep.fetch_p50_s = quantile_of(fetch_seconds_, 0.50);
    rep.fetch_p99_s = quantile_of(fetch_seconds_, 0.99);
    rep.fetch_max_s = fetch_seconds_.empty()
                          ? 0.0
                          : *std::max_element(fetch_seconds_.begin(), fetch_seconds_.end());
  }
  rep.trace_path = obs::TraceSession::instance().path();
  return rep;
}

std::unique_ptr<SocketTransport> make_node_transport(const Manifest& manifest, NodeId node,
                                                     SocketTransportConfig config,
                                                     int connect_deadline_ms) {
  DOOC_REQUIRE(node >= 0 && node < manifest.num_nodes(), "node id outside manifest");
  config.self = node;
  auto transport = SocketTransport::listen(manifest.nodes[node], config);
  for (NodeId peer = 0; peer < node; ++peer) {
    if (!transport->connect_peer(peer, manifest.nodes[peer], connect_deadline_ms)) {
      throw TransportError("node " + std::to_string(node) + " cannot reach peer " +
                           std::to_string(peer) + " at " + manifest.nodes[peer].to_string());
    }
  }
  return transport;
}

}  // namespace dooc::net
