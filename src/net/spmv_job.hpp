// End-to-end iterated-SpMV workload over the wire backend: generate the
// paper's uniform-gap matrix, cut it into the K×K grid, ship every block
// and x0 part to its home node, build the same task graph the in-process
// engine executes (graph-only IteratedSpmv over a VirtualArrayCreator),
// run it through the Coordinator, and gather the final iterate.
//
// The whole pipeline is deterministic in SpmvJobConfig: the same config
// run through the single-process sched::Engine (reference()) yields
// bitwise-identical result vectors — the parity property bench_net_smoke
// and the kill-a-node failover path both assert.
#pragma once

#include <memory>
#include <vector>

#include "net/coordinator.hpp"
#include "solver/iterated_spmv.hpp"
#include "spmv/block_grid.hpp"

namespace dooc::net {

struct SpmvJobConfig {
  std::uint64_t n = 2048;  ///< global matrix dimension
  int grid_k = 4;          ///< K×K block grid
  int iterations = 3;
  int num_nodes = 4;
  double gap_d = 4.0;  ///< uniform-gap parameter (§V)
  std::uint64_t seed = 0xD00C;
  bool inter_iteration_sync = true;
  solver::ReductionMode mode = solver::ReductionMode::Interleaved;
};

/// x0 seed values, shared by the wire and reference paths.
[[nodiscard]] double spmv_x0_value(std::uint64_t i);

class SpmvJob {
 public:
  /// Generates the matrix and cuts + serializes every grid block (block
  /// (u, v) is owned by node v mod num_nodes — column strips, Fig. 5).
  explicit SpmvJob(SpmvJobConfig config);

  [[nodiscard]] const SpmvJobConfig& config() const noexcept { return config_; }
  [[nodiscard]] const spmv::DeployedMatrix& matrix() const noexcept { return matrix_; }

  /// Ship matrix blocks + x0 parts to their home nodes via PutBlock and
  /// register their homes with the coordinator.
  void deploy(Coordinator& coord) const;

  /// Build the task graph (graph-only mode; returns the owning driver —
  /// the graph lives inside it).
  [[nodiscard]] std::unique_ptr<solver::IteratedSpmv> build_graph() const;

  /// Pull the final iterate back through the coordinator.
  [[nodiscard]] std::vector<double> gather(Coordinator& coord) const;

  /// The same workload through the single-process engine: deploy into a
  /// real StorageCluster under `scratch_dir`, run sched::Engine, gather.
  /// The bitwise parity reference.
  [[nodiscard]] std::vector<double> reference(const std::string& scratch_dir) const;

  /// Column-strip ownership: node i owns A_{*,i} (mod N); `u` is unused
  /// but kept for BlockOwner signature compatibility.
  [[nodiscard]] int owner_of([[maybe_unused]] int u, int v) const noexcept {
    return v % config_.num_nodes;
  }

 private:
  SpmvJobConfig config_;
  spmv::CsrMatrix global_;
  spmv::DeployedMatrix matrix_;
  std::vector<std::vector<std::byte>> block_bytes_;  ///< [u * k + v]
};

}  // namespace dooc::net
