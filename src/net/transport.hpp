// The dooc::net Transport abstraction: framed message passing between
// cluster peers, extracted from the in-process deep-copy mailbox discipline
// (dataflow/transport.hpp) so a byte-oriented wire backend drops in behind
// the same contract.
//
// Contract (both backends):
//  * A payload handed to send() is never aliased by the receiver — the
//    socket backend serializes it onto the wire, the in-process backend
//    deep-copies it (exactly the old cross_boundary rule).
//  * send() applies backpressure: when a peer's outbound queue is over
//    budget the call blocks until the queue drains, the peer dies, or the
//    configured timeout expires (TransportError).
//  * Peer lifecycle is part of the event stream: recv() yields PeerUp
//    after a successful handshake and PeerDown when a connection drops,
//    including mid-frame (the event carries the reason).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace dooc::net {

/// The transport could not deliver: send timeout with a full peer queue,
/// handshake failure, or use after close(). Peer death is *not* an
/// exception — it arrives as a PeerDown event.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// What recv() yields: a frame from a peer, or a peer lifecycle edge.
struct RecvEvent {
  enum class Kind : std::uint8_t { Frame, PeerUp, PeerDown };
  Kind kind = Kind::Frame;
  NodeId peer = 0;           ///< frame source / peer that came up or down
  std::uint64_t peer_pid = 0;///< PeerUp: the peer's os pid (0 if unknown)
  Channel channel = Channel::Hello;
  std::uint64_t tag = 0;
  DataBuffer payload;
  std::string error;  ///< PeerDown: why (clean close, reset, mid-frame...)
};

/// Cumulative per-transport traffic counters (frames exclude handshakes).
struct TransportCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< payload bytes
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual NodeId self() const noexcept = 0;

  /// Queue a frame for `to`. Returns false when the peer is unknown or
  /// down; throws TransportError when the peer's outbound budget stays
  /// exhausted past the send timeout.
  virtual bool send(NodeId to, Channel channel, std::uint64_t tag, DataBuffer payload) = 0;

  /// Next event, blocking up to `timeout_ms` (<0 = wait forever). Returns
  /// false on timeout or after close() drained the queue.
  virtual bool recv(RecvEvent& out, int timeout_ms) = 0;

  /// Peers that completed the handshake and are not (yet) down.
  [[nodiscard]] virtual std::vector<NodeId> peers() const = 0;
  [[nodiscard]] virtual bool peer_up(NodeId id) const = 0;

  [[nodiscard]] virtual TransportCounters counters() const = 0;

  /// Stop delivering, close connections/sockets. Idempotent.
  virtual void close() = 0;
};

}  // namespace dooc::net
