#include "net/inproc.hpp"

#include <condition_variable>
#include <deque>

#include "common/error.hpp"

namespace dooc::net {

namespace {

struct Mailbox {
  std::deque<RecvEvent> queue;
  std::condition_variable cv;
  bool closed = false;
};

}  // namespace

struct InProcHub::State {
  std::mutex mutex;
  std::map<NodeId, std::shared_ptr<Mailbox>> endpoints;

  // Must hold mutex.
  void deliver_locked(NodeId to, RecvEvent ev) {
    auto it = endpoints.find(to);
    if (it == endpoints.end() || it->second->closed) return;
    it->second->queue.push_back(std::move(ev));
    it->second->cv.notify_one();
  }
};

InProcHub::InProcHub() : state_(std::make_shared<State>()) {}
InProcHub::~InProcHub() = default;

std::unique_ptr<InProcTransport> InProcHub::make_endpoint(NodeId id) {
  std::lock_guard lock(state_->mutex);
  DOOC_REQUIRE(state_->endpoints.count(id) == 0, "inproc endpoint id already registered");
  auto box = std::make_shared<Mailbox>();
  // Everyone already here sees the newcomer, and the newcomer sees them.
  for (auto& [peer, peer_box] : state_->endpoints) {
    if (peer_box->closed) continue;
    RecvEvent up;
    up.kind = RecvEvent::Kind::PeerUp;
    up.peer = id;
    peer_box->queue.push_back(up);
    peer_box->cv.notify_one();
    RecvEvent see;
    see.kind = RecvEvent::Kind::PeerUp;
    see.peer = peer;
    box->queue.push_back(see);
  }
  state_->endpoints.emplace(id, box);
  return std::unique_ptr<InProcTransport>(new InProcTransport(state_, id));
}

InProcTransport::InProcTransport(std::shared_ptr<InProcHub::State> state, NodeId self)
    : state_(std::move(state)), self_(self) {}

InProcTransport::~InProcTransport() { close(); }

bool InProcTransport::send(NodeId to, Channel channel, std::uint64_t tag, DataBuffer payload) {
  std::lock_guard lock(state_->mutex);
  auto self_it = state_->endpoints.find(self_);
  if (self_it == state_->endpoints.end() || self_it->second->closed) {
    throw TransportError("inproc send after close()");
  }
  auto it = state_->endpoints.find(to);
  if (it == state_->endpoints.end() || it->second->closed) return false;

  RecvEvent ev;
  ev.kind = RecvEvent::Kind::Frame;
  ev.peer = self_;
  ev.channel = channel;
  ev.tag = tag;
  // The node-boundary rule: no two nodes ever alias mutable memory.
  ev.payload = payload.clone();
  const std::size_t bytes = ev.payload.size();
  it->second->queue.push_back(std::move(ev));
  it->second->cv.notify_one();
  {
    std::lock_guard clock(counters_mutex_);
    counters_.frames_sent += 1;
    counters_.bytes_sent += bytes;
  }
  return true;
}

bool InProcTransport::recv(RecvEvent& out, int timeout_ms) {
  std::unique_lock lock(state_->mutex);
  auto it = state_->endpoints.find(self_);
  if (it == state_->endpoints.end()) return false;
  auto box = it->second;
  const auto ready = [&] { return !box->queue.empty() || box->closed; };
  if (timeout_ms < 0) {
    box->cv.wait(lock, ready);
  } else if (!box->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
    return false;
  }
  if (box->queue.empty()) return false;  // closed and drained
  out = std::move(box->queue.front());
  box->queue.pop_front();
  if (out.kind == RecvEvent::Kind::Frame) {
    std::lock_guard clock(counters_mutex_);
    counters_.frames_received += 1;
    counters_.bytes_received += out.payload.size();
  }
  return true;
}

std::vector<NodeId> InProcTransport::peers() const {
  std::lock_guard lock(state_->mutex);
  std::vector<NodeId> out;
  for (const auto& [id, box] : state_->endpoints) {
    if (id != self_ && !box->closed) out.push_back(id);
  }
  return out;
}

bool InProcTransport::peer_up(NodeId id) const {
  std::lock_guard lock(state_->mutex);
  auto it = state_->endpoints.find(id);
  return it != state_->endpoints.end() && !it->second->closed;
}

TransportCounters InProcTransport::counters() const {
  std::lock_guard lock(counters_mutex_);
  return counters_;
}

void InProcTransport::close() {
  std::lock_guard lock(state_->mutex);
  auto it = state_->endpoints.find(self_);
  if (it == state_->endpoints.end() || it->second->closed) return;
  it->second->closed = true;
  it->second->cv.notify_all();
  for (auto& [peer, box] : state_->endpoints) {
    if (peer == self_) continue;
    RecvEvent down;
    down.kind = RecvEvent::Kind::PeerDown;
    down.peer = self_;
    down.error = "peer closed";
    state_->deliver_locked(peer, std::move(down));
  }
}

}  // namespace dooc::net
