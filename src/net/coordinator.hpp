// The cluster-side half of the two-level scheduler (paper §III-C) for the
// wire backend: the coordinator owns the built sched::TaskGraph, tracks
// where every array currently lives, and dispatches ready tasks to worker
// nodes as ExecTask frames — the per-node half (kernel binding, input
// fetching) lives in NodeServer.
//
// Dispatch is deterministic: ready tasks are ordered by (group, seq, id)
// and pinned to their preferred node, so two runs of the same deployment
// produce the same task placement and the same cross-node traffic.
//
// Fault handling mirrors the in-process fault layer's semantics: a
// PeerDown re-queues the dead node's in-flight tasks onto survivors and
// re-homes its arrays to kDurableOnly (readers fall back to the shared
// durable directory, where every acknowledged output already lives).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "net/block_store.hpp"
#include "net/protocol.hpp"
#include "net/transport.hpp"
#include "obs/telemetry.hpp"
#include "sched/task.hpp"

namespace dooc::net {

struct CoordinatorConfig {
  int num_nodes = 1;
  /// Shared durable directory (for gather fallback after a node death).
  std::string durable_dir;
  int max_inflight_per_node = 4;
  /// Re-dispatch attempts for a task that *failed* (post-death re-queues
  /// are not counted against this).
  int max_task_retries = 2;
  std::uint64_t serial_nnz_threshold = 0;  ///< 0 = kernel default
  int fetch_timeout_ms = 10000;
  int report_timeout_ms = 10000;
  /// run() aborts when no event arrives for this long (hung cluster).
  int idle_timeout_ms = 60000;
  /// Live telemetry policy. nullopt resolves from DOOC_TELEMETRY. When
  /// enabled the coordinator keeps a rolling TelemetryHub of the workers'
  /// frames and runs the health watchdog over it on every pump — missed
  /// heartbeats become dead-node *suspicion* (surfaced via
  /// suspected_nodes() and HealthEvents) well before a TCP timeout turns
  /// into a PeerDown; scheduling itself stays driven by PeerDown so runs
  /// remain deterministic.
  std::optional<obs::telemetry::TelemetryConfig> telemetry;
};

struct RunResult {
  bool ok = false;
  std::string error;
  std::uint64_t tasks_total = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t retries = 0;               ///< failed-task re-dispatches
  std::uint64_t requeued_after_death = 0;  ///< in-flight tasks re-queued on PeerDown
  double makespan_s = 0.0;
  std::vector<NodeId> dead_nodes;
  /// Watchdog verdicts raised during the run (telemetry enabled only).
  std::vector<obs::telemetry::HealthEvent> health_events;
  /// Nodes with an active missed-heartbeat suspicion at run end.
  std::vector<NodeId> suspected_nodes;
};

class Coordinator {
 public:
  Coordinator(Transport& transport, CoordinatorConfig config);

  /// Record a pre-existing array (deployed block) and where it lives.
  void register_array(const std::string& name, NodeId home, std::uint64_t bytes);

  /// Ship a block to its home node (which stores it durably unless
  /// `durable_elsewhere`) and register it. Returns false if the node is
  /// not connected.
  bool put_block(NodeId home, const std::string& name, DataBuffer bytes,
                 bool durable_elsewhere = false);

  /// Execute the built graph to completion (or failure). Single-threaded:
  /// drives dispatch and event handling from the calling thread.
  RunResult run(const sched::TaskGraph& graph);

  /// Called after every completed task with the completion count — lets a
  /// harness kill a process mid-run at a deterministic point.
  std::function<void(std::uint64_t)> progress_hook;

  /// Pull one array's bytes back to the caller: from its home node, then
  /// from any live peer's cached replica (hot blocks spread under
  /// DOOC_REPLICATION), and from the durable directory as last resort.
  [[nodiscard]] DataBuffer fetch_block(const std::string& name);

  /// Blocks served by a non-home peer's cached replica during gather.
  [[nodiscard]] std::uint64_t replica_fetches() const noexcept { return replica_fetches_; }

  /// One ReportReq round over the live workers.
  [[nodiscard]] std::map<NodeId, NodeReportMsg> collect_reports();

  /// Send Shutdown to every live worker.
  void shutdown_cluster();

  [[nodiscard]] const std::set<NodeId>& dead_nodes() const noexcept { return dead_; }
  [[nodiscard]] NodeId home_of(const std::string& name) const;

  /// The rolling per-node frame series (nullptr when telemetry is off).
  [[nodiscard]] const obs::telemetry::TelemetryHub* telemetry_hub() const noexcept {
    return hub_.get();
  }
  /// Watchdog verdicts so far (thread-safe copy; scrape endpoints read
  /// this from their own thread).
  [[nodiscard]] std::vector<obs::telemetry::HealthEvent> health_events() const;
  /// Nodes currently under missed-heartbeat suspicion.
  [[nodiscard]] std::set<NodeId> suspected_nodes() const;
  /// Prometheus text of the hub aggregate plus per-kind health counters —
  /// the coordinator-side scrape endpoint's provider. Empty when telemetry
  /// is off.
  [[nodiscard]] std::string telemetry_prometheus() const;

 private:
  struct ArrayInfo {
    NodeId home = 0;
    std::uint64_t bytes = 0;
  };

  /// recv + peer bookkeeping (alive_/dead_ upkeep). Returns false on
  /// timeout.
  bool pump(RecvEvent& ev, int timeout_ms);
  /// One FetchReq round-trip against a single peer. nullopt on timeout,
  /// FetchFail, or peer death — callers fall through to the next source.
  [[nodiscard]] std::optional<DataBuffer> fetch_from(NodeId peer, const std::string& name);
  /// Time-gated watchdog evaluation; runs on every pump (including
  /// timeouts) so suspicion advances even when the cluster is silent.
  void poll_watchdog();
  void refresh_alive();
  [[nodiscard]] NodeId assign_node(const sched::Task& task,
                                   const std::map<NodeId, std::set<sched::TaskId>>& inflight) const;

  Transport& transport_;
  CoordinatorConfig config_;
  BlockStore store_;  ///< durable reads only (gather fallback)
  std::map<std::string, ArrayInfo> arrays_;
  std::set<NodeId> alive_;
  std::set<NodeId> dead_;
  std::uint64_t next_tag_ = 1;
  std::uint64_t replica_fetches_ = 0;

  obs::telemetry::TelemetryConfig telemetry_;
  std::unique_ptr<obs::telemetry::TelemetryHub> hub_;
  std::unique_ptr<obs::telemetry::Watchdog> watchdog_;
  std::uint64_t next_watchdog_ns_ = 0;
  mutable std::mutex health_mutex_;  ///< guards health_ + watchdog_ state
  std::vector<obs::telemetry::HealthEvent> health_;
};

}  // namespace dooc::net
