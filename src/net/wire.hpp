// dooc::net wire format: length-prefixed frames with a fixed 32-byte
// header (magic, protocol version, channel, src/dst node, tag, payload
// length, payload CRC-32). Everything that arrives from a socket is
// untrusted: headers are validated field by field, the payload length is
// bounded before any allocation, and the CRC is checked before a frame is
// surfaced — a truncated or corrupted stream fails with a typed FrameError
// instead of feeding garbage into message deserialization.
//
// FrameAssembler is the reassembly state machine: feed it whatever byte
// spans read() produced (partial frames welcome) and it yields complete
// frames. It is transport-agnostic and unit-testable without sockets.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace dooc::net {

/// Node identity on the wire. Worker nodes are 0..N-1 (manifest order);
/// the coordinator/launcher joins as kCoordinatorId.
using NodeId = std::int32_t;
constexpr NodeId kCoordinatorId = -1;

/// A peer sent bytes that cannot be a valid frame (bad magic, foreign
/// protocol version, oversized length prefix, CRC mismatch, malformed
/// message payload). The connection carrying it is beyond recovery.
class FrameError : public Error {
 public:
  explicit FrameError(const std::string& what) : Error(what) {}
};

constexpr std::uint32_t kFrameMagic = 0x444F6F43;  // "DOoC"
constexpr std::uint16_t kProtocolVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 32;
/// Upper bound a receiver enforces on the payload length prefix before
/// allocating. Matrix blocks dominate frame sizes; 256 MiB is far above
/// any block this middleware ships while still rejecting a hostile
/// 2^63-byte prefix outright.
constexpr std::uint32_t kMaxFramePayload = 256u << 20;

/// Message kinds multiplexed over one connection.
enum class Channel : std::uint16_t {
  Hello = 1,     ///< first frame on every connection: node id + os pid
  HelloAck = 2,  ///< acceptor's reply; connection is Ready after this
  PutBlock = 3,  ///< coordinator -> node: store a named block
  FetchReq = 4,  ///< any -> block home: send me array `name` (tag = req id)
  FetchOk = 5,   ///< fetch reply carrying the block bytes (same tag)
  FetchFail = 6, ///< fetch reply: not found / load failed (same tag)
  ExecTask = 7,  ///< coordinator -> node: run one task (tag = task id)
  TaskDone = 8,  ///< node -> coordinator: task finished (same tag)
  ReportReq = 9, ///< coordinator -> node: send your NodeReport
  ReportRep = 10,
  Shutdown = 11, ///< coordinator -> node: drain and exit
  Telemetry = 12, ///< node -> coordinator: periodic TelemetryFrame (tag = seq)
};

[[nodiscard]] const char* channel_name(Channel c) noexcept;

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t channel = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t tag = 0;          ///< request id / task id correlation
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;  ///< CRC-32 (IEEE) of the payload bytes
};

/// One complete, validated frame.
struct Frame {
  FrameHeader header;
  DataBuffer payload;

  [[nodiscard]] Channel channel() const noexcept {
    return static_cast<Channel>(header.channel);
  }
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the classic
/// zlib polynomial, table-driven. crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> bytes) noexcept;

/// Serialize a header into its 32-byte wire form (little-endian fields).
void encode_header(const FrameHeader& h, std::byte out[kFrameHeaderBytes]) noexcept;

/// Parse and validate a 32-byte header. Throws FrameError on bad magic,
/// foreign version, unknown channel, or a payload length above `max_payload`.
[[nodiscard]] FrameHeader decode_header(std::span<const std::byte> bytes,
                                        std::uint32_t max_payload = kMaxFramePayload);

/// Header + payload as one contiguous byte vector, ready for write().
[[nodiscard]] std::vector<std::byte> encode_frame(Channel channel, NodeId src, NodeId dst,
                                                  std::uint64_t tag,
                                                  std::span<const std::byte> payload);

/// Incremental frame reassembly over an arbitrary chunking of the byte
/// stream. feed() consumes any number of bytes (partial reads, multiple
/// frames per read) and appends completed frames to an internal queue;
/// next() pops them. Throws FrameError as soon as the stream is provably
/// corrupt. in_frame() reports whether the stream stopped mid-frame —
/// how a receiver distinguishes a clean EOF from a truncated one.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(std::span<const std::byte> bytes);

  /// Pop the next completed frame, if any.
  [[nodiscard]] bool next(Frame& out);

  /// True when bytes of an incomplete header/payload are pending.
  [[nodiscard]] bool in_frame() const noexcept { return !partial_.empty() || have_header_; }
  [[nodiscard]] std::size_t frames_ready() const noexcept { return ready_.size(); }

 private:
  std::uint32_t max_payload_;
  std::vector<std::byte> partial_;  ///< bytes of the frame being assembled
  bool have_header_ = false;
  FrameHeader header_{};
  std::deque<Frame> ready_;
};

}  // namespace dooc::net
