#include "net/wire.hpp"

#include <cstring>

#include "common/crc32.hpp"

namespace dooc::net {

namespace {

template <typename T>
void put_le(std::byte*& p, T value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &value, sizeof(T));
  p += sizeof(T);
}

template <typename T>
T get_le(const std::byte*& p) noexcept {
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}

}  // namespace

const char* channel_name(Channel c) noexcept {
  switch (c) {
    case Channel::Hello: return "hello";
    case Channel::HelloAck: return "hello-ack";
    case Channel::PutBlock: return "put-block";
    case Channel::FetchReq: return "fetch-req";
    case Channel::FetchOk: return "fetch-ok";
    case Channel::FetchFail: return "fetch-fail";
    case Channel::ExecTask: return "exec-task";
    case Channel::TaskDone: return "task-done";
    case Channel::ReportReq: return "report-req";
    case Channel::ReportRep: return "report-rep";
    case Channel::Shutdown: return "shutdown";
    case Channel::Telemetry: return "telemetry";
  }
  return "unknown";
}

std::uint32_t crc32(std::span<const std::byte> bytes) noexcept { return common::crc32(bytes); }

void encode_header(const FrameHeader& h, std::byte out[kFrameHeaderBytes]) noexcept {
  std::byte* p = out;
  put_le(p, h.magic);
  put_le(p, h.version);
  put_le(p, h.channel);
  put_le(p, h.src);
  put_le(p, h.dst);
  put_le(p, h.tag);
  put_le(p, h.payload_len);
  put_le(p, h.payload_crc);
}

FrameHeader decode_header(std::span<const std::byte> bytes, std::uint32_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw FrameError("frame header: need 32 bytes, have " + std::to_string(bytes.size()));
  }
  const std::byte* p = bytes.data();
  FrameHeader h;
  h.magic = get_le<std::uint32_t>(p);
  h.version = get_le<std::uint16_t>(p);
  h.channel = get_le<std::uint16_t>(p);
  h.src = get_le<NodeId>(p);
  h.dst = get_le<NodeId>(p);
  h.tag = get_le<std::uint64_t>(p);
  h.payload_len = get_le<std::uint32_t>(p);
  h.payload_crc = get_le<std::uint32_t>(p);

  if (h.magic != kFrameMagic) {
    throw FrameError("frame header: bad magic (not a dooc::net peer?)");
  }
  if (h.version != kProtocolVersion) {
    throw FrameError("frame header: protocol version " + std::to_string(h.version) +
                     ", this node speaks " + std::to_string(kProtocolVersion));
  }
  if (h.channel < static_cast<std::uint16_t>(Channel::Hello) ||
      h.channel > static_cast<std::uint16_t>(Channel::Telemetry)) {
    throw FrameError("frame header: unknown channel " + std::to_string(h.channel));
  }
  if (h.payload_len > max_payload) {
    throw FrameError("frame header: payload length " + std::to_string(h.payload_len) +
                     " exceeds the " + std::to_string(max_payload) + "-byte frame cap");
  }
  return h;
}

std::vector<std::byte> encode_frame(Channel channel, NodeId src, NodeId dst, std::uint64_t tag,
                                    std::span<const std::byte> payload) {
  DOOC_REQUIRE(payload.size() <= kMaxFramePayload, "frame payload exceeds kMaxFramePayload");
  FrameHeader h;
  h.channel = static_cast<std::uint16_t>(channel);
  h.src = src;
  h.dst = dst;
  h.tag = tag;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = crc32(payload);

  std::vector<std::byte> out(kFrameHeaderBytes + payload.size());
  encode_header(h, out.data());
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  }
  return out;
}

void FrameAssembler::feed(std::span<const std::byte> bytes) {
  std::size_t pos = 0;
  auto take_into_partial = [&](std::size_t want) {
    const std::size_t take = std::min(want - partial_.size(), bytes.size() - pos);
    partial_.insert(partial_.end(), bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                    bytes.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
    return partial_.size() >= want;
  };
  for (;;) {
    if (!have_header_) {
      if (!take_into_partial(kFrameHeaderBytes)) return;
      header_ = decode_header(partial_, max_payload_);
      partial_.clear();
      have_header_ = true;
    }
    if (!take_into_partial(header_.payload_len)) return;

    Frame f;
    f.header = header_;
    f.payload = DataBuffer::copy_of(partial_.data(), partial_.size());
    if (crc32(f.payload.span()) != header_.payload_crc) {
      throw FrameError(std::string("frame payload: CRC mismatch on channel ") +
                       channel_name(f.channel()));
    }
    ready_.push_back(std::move(f));
    partial_.clear();
    have_header_ = false;
    if (pos >= bytes.size()) return;
  }
}

bool FrameAssembler::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace dooc::net
