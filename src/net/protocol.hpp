// Typed messages carried in dooc::net frame payloads, serialized with the
// common BinaryWriter/BinaryReader layer. Decoders treat the payload as
// untrusted input: element counts and string lengths are bounded against
// the actual payload size with the same overflow-latching ByteCount
// arithmetic the spmv wire layer uses, so a hostile count cannot wrap a
// size computation or drive a multi-gigabyte allocation. Every decode
// failure surfaces as FrameError.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.hpp"
#include "net/wire.hpp"
#include "spmv/kernel_config.hpp"

namespace dooc::net {

/// First frame on every connection, both directions (connector sends
/// Hello, acceptor answers HelloAck with its own identity).
struct HelloMsg {
  NodeId node = 0;
  std::uint64_t os_pid = 0;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static HelloMsg decode(const DataBuffer& payload);
};

/// Coordinator -> node: store a named single-block array.
struct PutBlockMsg {
  std::string name;
  /// The sender already persisted the block durably; do not re-spill.
  bool durable_elsewhere = false;
  DataBuffer bytes;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static PutBlockMsg decode(const DataBuffer& payload);
};

/// Any -> home node: send me this array. Reply is FetchOk / FetchFail with
/// the request's frame tag echoed.
struct FetchReqMsg {
  std::string name;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static FetchReqMsg decode(const DataBuffer& payload);
};

struct FetchOkMsg {
  std::string name;
  DataBuffer bytes;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static FetchOkMsg decode(const DataBuffer& payload);
};

struct FetchFailMsg {
  std::string name;
  std::string error;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static FetchFailMsg decode(const DataBuffer& payload);
};

/// One input of a remote task: where the bytes live right now. home ==
/// kDurableOnly means the block's home node died — read the durable copy.
constexpr NodeId kDurableOnly = -2;

struct TaskInput {
  std::string array;
  std::uint64_t bytes = 0;
  NodeId home = 0;
};

struct TaskOutput {
  std::string array;
  std::uint64_t bytes = 0;
};

/// Coordinator -> node: execute one task of the DAG. The frame tag is the
/// TaskId. Task semantics travel as the `kind` string of the existing
/// sched::Task model ("multiply", "sum", "aggregate", "sync"): the worker
/// binds the same spmv kernels the in-process engine's task bodies call,
/// so results are bitwise identical across backends.
struct ExecTaskMsg {
  std::string name;  ///< display name ("x_{0,1}^2"), for traces/errors
  std::string kind;
  std::vector<TaskInput> inputs;
  std::vector<TaskOutput> outputs;
  /// Kernel-layer knobs (format dispatch is magic-sniffed; these carry the
  /// partition/serial-gate config so backends agree).
  std::uint64_t serial_nnz_threshold = spmv::KernelConfig{}.serial_nnz_threshold;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static ExecTaskMsg decode(const DataBuffer& payload);
};

/// Node -> coordinator: a task finished (frame tag = TaskId).
struct TaskDoneMsg {
  bool ok = false;
  std::string error;                  ///< set when !ok
  std::uint64_t fetched_bytes = 0;    ///< remote input bytes pulled for it
  std::uint64_t durable_fallbacks = 0;///< inputs read from durable files
  double exec_seconds = 0.0;

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static TaskDoneMsg decode(const DataBuffer& payload);
};

/// Node -> coordinator: per-node counters for the launcher's report.
struct NodeReportMsg {
  std::uint64_t os_pid = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t blocks_stored = 0;
  std::uint64_t bytes_stored = 0;
  std::uint64_t fetches_served = 0;
  std::uint64_t fetch_bytes_out = 0;
  /// Subset of fetches_served answered from the replica cache (blocks this
  /// node pulled from a peer earlier, not blocks homed here).
  std::uint64_t replica_serves = 0;
  std::uint64_t fetches_issued = 0;
  std::uint64_t fetch_bytes_in = 0;
  std::uint64_t durable_fallbacks = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Fetch round-trip latency quantiles, seconds (count == fetches_issued).
  double fetch_p50_s = 0.0;
  double fetch_p99_s = 0.0;
  double fetch_max_s = 0.0;
  std::string trace_path;  ///< where this process will write its trace

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static NodeReportMsg decode(const DataBuffer& payload);
};

}  // namespace dooc::net
