#include "net/manifest.hpp"

#include <fstream>
#include <sstream>

namespace dooc::net {

std::string NodeAddress::to_string() const {
  if (kind == Kind::Unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

NodeAddress NodeAddress::parse(const std::string& spec) {
  NodeAddress a;
  if (spec.rfind("unix:", 0) == 0) {
    a.kind = Kind::Unix;
    a.path = spec.substr(5);
    if (a.path.empty()) throw InvalidArgument("node address: empty unix socket path");
    // sockaddr_un limit; fail at parse time, not bind time.
    if (a.path.size() >= 100) {
      throw InvalidArgument("node address: unix socket path too long (" + a.path + ")");
    }
    return a;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    a.kind = Kind::Tcp;
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw InvalidArgument("node address: tcp wants host:port, got '" + rest + "'");
    }
    a.host = rest.substr(0, colon);
    try {
      a.port = std::stoi(rest.substr(colon + 1));
    } catch (const std::exception&) {
      throw InvalidArgument("node address: bad tcp port in '" + rest + "'");
    }
    if (a.port <= 0 || a.port > 65535) {
      throw InvalidArgument("node address: tcp port out of range in '" + rest + "'");
    }
    return a;
  }
  throw InvalidArgument("node address: want unix:<path> or tcp:<host>:<port>, got '" + spec +
                        "'");
}

std::string Manifest::to_text() const {
  std::ostringstream os;
  os << "# dooc cluster manifest (" << nodes.size() << " nodes)\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << "node " << i << " " << nodes[i].to_string() << "\n";
  }
  return os.str();
}

void Manifest::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("cannot write manifest '" + path + "'");
  out << to_text();
  if (!out) throw IoError("short write to manifest '" + path + "'");
}

Manifest Manifest::parse(const std::string& text) {
  Manifest m;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    int id = -1;
    std::string addr;
    if (!(ls >> word >> id >> addr) || word != "node") {
      throw InvalidArgument("manifest line " + std::to_string(lineno) +
                            ": want 'node <id> <address>', got '" + line + "'");
    }
    if (id != static_cast<int>(m.nodes.size())) {
      throw InvalidArgument("manifest line " + std::to_string(lineno) + ": node ids must be " +
                            "dense and ordered (expected " + std::to_string(m.nodes.size()) +
                            ", got " + std::to_string(id) + ")");
    }
    m.nodes.push_back(NodeAddress::parse(addr));
  }
  if (m.nodes.empty()) throw InvalidArgument("manifest names no nodes");
  return m;
}

Manifest Manifest::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot read manifest '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return parse(os.str());
}

Manifest Manifest::local_unix(const std::string& dir, int num_nodes) {
  Manifest m;
  for (int i = 0; i < num_nodes; ++i) {
    NodeAddress a;
    a.kind = NodeAddress::Kind::Unix;
    a.path = dir + "/n" + std::to_string(i) + ".sock";
    if (a.path.size() >= 100) {
      throw InvalidArgument("manifest: unix socket path too long: " + a.path);
    }
    m.nodes.push_back(std::move(a));
  }
  return m;
}

Manifest Manifest::local_tcp(int base_port, int num_nodes) {
  Manifest m;
  for (int i = 0; i < num_nodes; ++i) {
    NodeAddress a;
    a.kind = NodeAddress::Kind::Tcp;
    a.host = "127.0.0.1";
    a.port = base_port + i;
    m.nodes.push_back(std::move(a));
  }
  return m;
}

}  // namespace dooc::net
