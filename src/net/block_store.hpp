// Per-node block storage for doocd: an in-memory name -> DataBuffer map
// with durable write-through. Every block stored with `durable = true` is
// persisted (atomic tmp + rename) into a directory shared by the cluster
// *before* the node acknowledges it — which is what makes failover cheap:
// when a node dies, everything it ever acknowledged is re-readable from
// the durable directory by any survivor, so the coordinator only has to
// re-run the tasks that were in flight.
//
// Codec interop: the in-memory map always holds RAW payloads (executors
// bind kernels straight to them), while the durable file keeps the codec
// frame when one exists — arriving compressed from a peer, or encoded
// here when this node's codec is on. Decoding of incoming frames always
// works regardless of the local mode, so mixed-configuration clusters
// (compressed daemons, raw coordinator, or vice versa) interoperate.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "common/buffer.hpp"
#include "common/error.hpp"
#include "spmv/codec.hpp"
#include "storage/buffer_pool.hpp"

namespace dooc::net {

class BlockStore {
 public:
  /// `durable_dir` empty disables write-through (memory-only store).
  explicit BlockStore(std::string durable_dir) : durable_dir_(std::move(durable_dir)) {}

  /// Codec policy for the durable write path (mode=on/adaptive encodes
  /// matrix payloads before they hit disk). Decode of incoming frames is
  /// unconditional.
  void set_codec(spmv::codec::CodecConfig cfg) noexcept { codec_ = cfg; }
  [[nodiscard]] const spmv::codec::CodecConfig& codec() const noexcept { return codec_; }

  struct Counters {
    std::uint64_t blocks_stored = 0;
    std::uint64_t bytes_stored = 0;
    std::uint64_t durable_writes = 0;
    std::uint64_t durable_bytes = 0;
  };

  /// Store (write-once: re-putting the same name replaces, which only
  /// happens on task retry with bitwise-identical bytes). With `durable`
  /// and a configured dir, the block is on disk before put() returns.
  void put(const std::string& name, DataBuffer bytes, bool durable);

  /// Cache a remotely-fetched block without counting it as stored here
  /// (it already has a home; no durable write either). These cached copies
  /// are what make every reader a replica holder: the FetchReq handler
  /// serves them to other nodes exactly like home blocks.
  void put_cached(const std::string& name, DataBuffer bytes);

  /// Invalidate a cached replica (write-once coherence: only called when a
  /// block is being re-produced after a fault). No-op if not cached.
  void drop_cached(const std::string& name);

  /// `cached`, when non-null, reports whether the hit came from the
  /// replica cache rather than a home block.
  [[nodiscard]] bool get(const std::string& name, DataBuffer& out,
                         bool* cached = nullptr) const;
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Read a block's durable file (any node's — the dir is shared) with a
  /// single copy: pread straight into a pooled aligned buffer. The result
  /// may be a codec frame; callers decode (see spmv::codec::decode_if_encoded).
  /// Throws IoError when the file does not exist or is unreadable.
  [[nodiscard]] DataBuffer load_durable(const std::string& name) const;
  [[nodiscard]] bool durable_exists(const std::string& name) const;

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] const std::string& durable_dir() const noexcept { return durable_dir_; }

  /// Where `name` lives in `dir` (block names are sanitized into safe
  /// file names deterministically, so every process agrees on the path).
  [[nodiscard]] static std::string durable_path(const std::string& dir, const std::string& name);

 private:
  std::string durable_dir_;
  spmv::codec::CodecConfig codec_;
  /// Reusable aligned buffers for durable reads (the old ifstream path
  /// staged every byte through the stream's internal buffer first — the
  /// same double copy the storage layer's IoWorkerPool eliminated).
  mutable storage::BufferPool pool_;
  mutable std::mutex mutex_;
  std::map<std::string, DataBuffer> blocks_;
  std::map<std::string, DataBuffer> cached_;
  Counters counters_;
};

}  // namespace dooc::net
