#include "net/block_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "net/wire.hpp"

namespace dooc::net {

namespace {

void write_atomic(const std::string& path, const DataBuffer& bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot write durable block file '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw IoError("short write to durable block file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    throw IoError("cannot rename durable block file into place: '" + path + "'");
  }
}

}  // namespace

std::string BlockStore::durable_path(const std::string& dir, const std::string& name) {
  std::string safe;
  safe.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-' || c == '.';
    safe.push_back(ok ? c : '_');
  }
  return dir + "/" + safe + ".blk";
}

void BlockStore::put(const std::string& name, DataBuffer bytes, bool durable) {
  // Memory holds the raw payload; the durable file keeps the codec frame
  // when one is available — arriving compressed from the coordinator or a
  // peer, or encoded here when this node's codec is on. Compressed at rest
  // and on the wire, decoded at most once per process.
  DataBuffer durable_bytes = bytes;
  if (spmv::codec::is_encoded(bytes.span())) {
    bytes = spmv::codec::decode_block(bytes.span(), kMaxFramePayload);
  } else if (durable && !durable_dir_.empty() && codec_.enabled()) {
    if (auto frame = spmv::codec::encode_block(bytes.span(), codec_)) {
      durable_bytes = std::move(*frame);
    }
  }
  if (durable && !durable_dir_.empty()) {
    write_atomic(durable_path(durable_dir_, name), durable_bytes);
  }
  std::lock_guard lock(mutex_);
  auto [it, inserted] = blocks_.insert_or_assign(name, std::move(bytes));
  if (inserted) {
    counters_.blocks_stored += 1;
    counters_.bytes_stored += it->second.size();
  }
  if (durable && !durable_dir_.empty()) {
    counters_.durable_writes += 1;
    counters_.durable_bytes += durable_bytes.size();
  }
}

void BlockStore::put_cached(const std::string& name, DataBuffer bytes) {
  if (spmv::codec::is_encoded(bytes.span())) {
    bytes = spmv::codec::decode_block(bytes.span(), kMaxFramePayload);
  }
  std::lock_guard lock(mutex_);
  cached_.insert_or_assign(name, std::move(bytes));
}

void BlockStore::drop_cached(const std::string& name) {
  std::lock_guard lock(mutex_);
  cached_.erase(name);
}

bool BlockStore::get(const std::string& name, DataBuffer& out, bool* cached) const {
  std::lock_guard lock(mutex_);
  if (cached != nullptr) *cached = false;
  if (auto it = blocks_.find(name); it != blocks_.end()) {
    out = it->second;
    return true;
  }
  if (auto it = cached_.find(name); it != cached_.end()) {
    out = it->second;
    if (cached != nullptr) *cached = true;
    return true;
  }
  return false;
}

bool BlockStore::contains(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return blocks_.count(name) != 0 || cached_.count(name) != 0;
}

DataBuffer BlockStore::load_durable(const std::string& name) const {
  if (durable_dir_.empty()) throw IoError("no durable directory configured");
  const std::string path = durable_path(durable_dir_, name);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw IoError("durable block file missing: '" + path + "'");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat durable block file '" + path + "'");
  }
  // Single copy: pread lands directly in a pooled aligned buffer (the old
  // ifstream read staged every byte through the stream's internal buffer
  // first). The bytes may be a codec frame; callers decode.
  const auto size = static_cast<std::size_t>(st.st_size);
  DataBuffer buf = pool_.acquire(size);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::pread(fd, buf.data() + got, size - got, static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw IoError("read error on durable block file '" + path + "'");
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (got != size) throw IoError("short read from durable block file '" + path + "'");
  return buf;
}

bool BlockStore::durable_exists(const std::string& name) const {
  if (durable_dir_.empty()) return false;
  const std::string path = durable_path(durable_dir_, name);
  return ::access(path.c_str(), R_OK) == 0;
}

BlockStore::Counters BlockStore::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace dooc::net
