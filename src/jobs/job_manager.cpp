#include "jobs/job_manager.hpp"

#include <cstdlib>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace dooc::jobs {

JobManagerConfig JobManagerConfig::parse(const std::string& grammar) {
  JobManagerConfig cfg;
  std::size_t pos = 0;
  while (pos <= grammar.size()) {
    std::size_t comma = grammar.find(',', pos);
    if (comma == std::string::npos) comma = grammar.size();
    std::string token = grammar.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace so "active=2, queued=8" parses.
    const std::size_t b = token.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t e = token.find_last_not_of(" \t");
    token = token.substr(b, e - b + 1);
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("DOOC_JOBS: expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    int parsed = 0;
    try {
      std::size_t used = 0;
      parsed = std::stoi(val, &used);
      if (used != val.size()) throw std::invalid_argument(val);
    } catch (const std::exception&) {
      throw InvalidArgument("DOOC_JOBS: value of '" + key + "' is not an integer: '" + val + "'");
    }
    if (parsed < 0) {
      throw InvalidArgument("DOOC_JOBS: '" + key + "' must be >= 0 (0 = unlimited)");
    }
    if (key == "active") {
      cfg.max_active = parsed;
    } else if (key == "queued") {
      cfg.max_queued = parsed;
    } else {
      throw InvalidArgument("DOOC_JOBS: unknown key '" + key + "' (want active/queued)");
    }
  }
  return cfg;
}

JobManagerConfig JobManagerConfig::from_env() {
  const char* env = std::getenv("DOOC_JOBS");
  return env != nullptr ? parse(env) : JobManagerConfig{};
}

JobManager::JobManager(storage::StorageCluster& cluster, sched::Engine& engine,
                       JobManagerConfig config)
    : cluster_(cluster), engine_(engine), config_(config) {
  engine_.set_on_job_done([this](std::uint32_t id) { on_job_done(id); });
}

JobManager::~JobManager() {
  // Detach from the engine first: a job finishing after this line must not
  // call into a dying manager. Jobs still queued here were never
  // dispatched and their awaiters (if any) stay blocked — awaiting every
  // submitted job before destruction is the caller's contract.
  engine_.set_on_job_done(nullptr);
}

void JobManager::namespace_graph(sched::TaskGraph& graph, JobId id) {
  std::set<std::string> written;
  for (sched::TaskId t = 0; t < graph.size(); ++t) {
    for (const auto& out : graph.task(t).outputs) written.insert(out.array);
  }
  for (const std::string& name : written) {
    const std::string priv = namespaced(id, name);
    if (cluster_.catalog().shard_for(priv).find(priv)) continue;  // already cloned
    const auto meta = cluster_.catalog().shard_for(name).find(name);
    DOOC_REQUIRE(meta.has_value(),
                 "namespace_arrays: written array '" + name + "' is not in the catalog");
    // Same geometry, same home node: the clone only changes identity, so
    // the job's locality (and the global scheduler's affinity picks) match
    // what the un-namespaced graph would see.
    cluster_.node(meta->home_node).create_array(priv, meta->size, meta->block_size);
  }
  graph.rename_arrays([&](const std::string& array) {
    return written.count(array) != 0 ? namespaced(id, array) : array;
  });
}

JobId JobManager::submit(sched::TaskGraph& graph, JobOptions options) {
  DOOC_REQUIRE(graph.built(), "JobManager::submit needs a built task graph");
  const JobId id = engine_.reserve_job_id();
  // Rename before admission, not at dispatch: the caller sees the job's
  // final array names (j<id>.*) as soon as submit returns, queued or not.
  if (options.namespace_arrays) namespace_graph(graph, id);

  bool dispatch_now = false;
  {
    std::lock_guard lock(mutex_);
    if (config_.max_active == 0 || active_ < static_cast<std::size_t>(config_.max_active)) {
      ++active_;
      states_.emplace(id, JobState::Running);
      dispatch_now = true;
    } else if (config_.max_queued != 0 &&
               queue_.size() >= static_cast<std::size_t>(config_.max_queued)) {
      ++rejected_;
      throw AdmissionError("job admission queue full (" + std::to_string(queue_.size()) +
                           " queued, limit " + std::to_string(config_.max_queued) +
                           ", " + std::to_string(active_) + " active)");
    } else {
      // Keep the queue priority-descending, FIFO within a tier.
      auto it = queue_.begin();
      while (it != queue_.end() && it->options.priority >= options.priority) ++it;
      queue_.insert(it, Pending{id, &graph, options});
      states_.emplace(id, JobState::Queued);
    }
  }
  if (dispatch_now) {
    engine_.submit(graph, sched::SubmitOptions{id, options.weight, options.priority});
  }
  return id;
}

void JobManager::on_job_done(JobId id) {
  std::vector<Pending> dispatch;
  {
    std::lock_guard lock(mutex_);
    auto it = states_.find(id);
    if (it == states_.end() || it->second != JobState::Running) return;  // not ours
    it->second = JobState::Finished;
    DOOC_CHECK(active_ > 0, "job finished with no active slot accounted");
    --active_;
    while (!queue_.empty() &&
           (config_.max_active == 0 || active_ < static_cast<std::size_t>(config_.max_active))) {
      dispatch.push_back(queue_.front());
      queue_.pop_front();
      states_[dispatch.back().id] = JobState::Running;
      ++active_;
    }
  }
  dispatched_cv_.notify_all();
  // Dispatch with the lock released: an empty graph settles inside
  // submit(), re-entering this callback.
  for (const Pending& p : dispatch) {
    engine_.submit(*p.graph, sched::SubmitOptions{p.id, p.options.weight, p.options.priority});
  }
}

sched::Report JobManager::await(JobId id) {
  {
    std::unique_lock lock(mutex_);
    auto it = states_.find(id);
    DOOC_REQUIRE(it != states_.end(), "await() of an unknown or already-awaited job");
    dispatched_cv_.wait(lock, [&] { return states_.at(id) != JobState::Queued; });
  }
  sched::Report report;
  std::exception_ptr err;
  try {
    report = engine_.await(id);
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard lock(mutex_);
    states_.erase(id);
  }
  if (err) std::rethrow_exception(err);
  return report;
}

JobState JobManager::state(JobId id) {
  std::lock_guard lock(mutex_);
  auto it = states_.find(id);
  return it == states_.end() ? JobState::Unknown : it->second;
}

std::size_t JobManager::active_count() {
  std::lock_guard lock(mutex_);
  return active_;
}

std::size_t JobManager::queued_count() {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::uint64_t JobManager::rejected_count() {
  std::lock_guard lock(mutex_);
  return rejected_;
}

}  // namespace dooc::jobs
