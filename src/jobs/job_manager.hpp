// JobManager: admission control in front of the multi-tenant engine.
//
// The engine itself accepts any number of concurrent jobs; the manager is
// the policy layer that bounds how many actually run. Jobs past the
// active limit queue (FIFO within a priority tier, higher tiers first);
// jobs past the queue limit are rejected at submit with AdmissionError.
// The engine's on-job-done callback pumps the queue, so a freed slot is
// refilled without any polling thread.
//
// Limits come from JobManagerConfig, defaulting to the DOOC_JOBS
// environment variable: "active=N,queued=M" (either key optional, 0 or
// absence = unlimited), e.g. DOOC_JOBS=active=2,queued=8.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "jobs/job.hpp"
#include "sched/engine.hpp"
#include "storage/storage_cluster.hpp"

namespace dooc::jobs {

struct JobManagerConfig {
  /// Jobs allowed to run concurrently; 0 = unlimited.
  int max_active = 0;
  /// Jobs allowed to wait for a slot; 0 = unlimited. Ignored while
  /// max_active is unlimited (nothing ever queues then).
  int max_queued = 0;

  /// Parse "active=N,queued=M"; empty/absent keys mean unlimited.
  /// Throws InvalidArgument on malformed input.
  static JobManagerConfig parse(const std::string& grammar);
  /// parse(getenv("DOOC_JOBS")), defaults when unset.
  static JobManagerConfig from_env();
};

class JobManager {
 public:
  JobManager(storage::StorageCluster& cluster, sched::Engine& engine,
             JobManagerConfig config = JobManagerConfig::from_env());
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Admit a job: dispatch it to the engine if an active slot is free,
  /// else queue it. Throws AdmissionError when the queue is full. The
  /// graph must stay alive until await() returns. With namespace_arrays
  /// set the graph is renamed in place into the job's `j<id>.` namespace
  /// (and the written arrays cloned) before this returns.
  JobId submit(sched::TaskGraph& graph, JobOptions options = {});

  /// Block until the job settles and return its Report (rethrows the
  /// job's error). Each submitted job must be awaited exactly once.
  sched::Report await(JobId id);

  [[nodiscard]] JobState state(JobId id);
  [[nodiscard]] std::size_t active_count();
  [[nodiscard]] std::size_t queued_count();
  /// Jobs rejected with AdmissionError since construction.
  [[nodiscard]] std::uint64_t rejected_count();

  [[nodiscard]] const JobManagerConfig& config() const noexcept { return config_; }

 private:
  struct Pending {
    JobId id = 0;
    sched::TaskGraph* graph = nullptr;
    JobOptions options;
  };

  /// Clone every array `graph` writes into job `id`'s namespace and rename
  /// the graph to match (see JobOptions::namespace_arrays).
  void namespace_graph(sched::TaskGraph& graph, JobId id);
  /// Dispatch queued jobs while active slots are free. mutex_ held.
  void pump_locked();
  void on_job_done(JobId id);

  storage::StorageCluster& cluster_;
  sched::Engine& engine_;
  JobManagerConfig config_;

  std::mutex mutex_;
  std::condition_variable dispatched_cv_;  ///< signalled when a queued job starts
  std::deque<Pending> queue_;              ///< priority-desc, FIFO within a tier
  std::unordered_map<JobId, JobState> states_;
  std::size_t active_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dooc::jobs
