// Job identity and namespacing for the multi-tenant runtime.
//
// A job is one built TaskGraph submitted for execution. The job id is the
// single identity that threads through every layer: it keys the per-job
// ExecutorCore in the engine, travels as the storage tenant on every read
// the job issues (fair-share admission), rides in the high 16 bits of
// completion tags, and lands as the "job" arg on every trace span and
// causal flow the job emits — so Reports, blame and critical-path analyses
// come out per job.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace dooc::jobs {

using JobId = std::uint32_t;

/// Array-name prefix of a job's private namespace. '.' as the separator
/// because the storage layer reserves '/' in array names (scratch paths).
inline std::string job_array_prefix(JobId id) { return "j" + std::to_string(id) + "."; }

/// `name` moved into job `id`'s namespace.
inline std::string namespaced(JobId id, const std::string& name) {
  return job_array_prefix(id) + name;
}

/// The admission queue is full: the job was rejected, not queued. Callers
/// may retry after a running job finishes.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

enum class JobState {
  Queued,    ///< admitted but waiting for an active slot
  Running,   ///< submitted to the engine
  Finished,  ///< settled; await() will not block
  Unknown,   ///< never seen, or already awaited (reaped)
};

/// Per-job knobs for JobManager::submit.
struct JobOptions {
  /// Fair-share weight of the job's storage admission share (relative).
  double weight = 1.0;
  /// Compute priority: strict between tiers, round-robin within one.
  int priority = 0;
  /// Clone every array the graph writes into the job's `j<id>.` namespace
  /// (same geometry and home node) and rename the graph to match, so two
  /// jobs running the same graph concurrently never alias blocks. Arrays
  /// the graph only reads stay shared. Off by default: a graph whose
  /// arrays are already private needs no clone, and an un-renamed single
  /// job is bitwise-identical to the pre-multi-tenant engine.
  bool namespace_arrays = false;
};

}  // namespace dooc::jobs
