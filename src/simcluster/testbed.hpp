// The paper's SSD-testbed experiment (§V), reproduced on the DES backend.
//
// Workload (paper): runs on a perfect-square number of nodes; each node is
// responsible for a 50M-row block of the matrix holding ~12.8 billion
// non-zeros, decomposed into a 5×5 grid of sub-matrices of ~4 GB each in
// binary CSR ("the smallest unit of data transferred"). Four SpMV
// iterations are timed. Larger matrices are built by replicating the
// per-node block across nodes, exactly as the paper does.
#pragma once

#include "sched/policy.hpp"
#include "simcluster/sim_engine.hpp"
#include "solver/iterated_spmv.hpp"

namespace dooc::sim {

struct TestbedExperiment {
  int nodes = 1;  ///< must be a perfect square
  int iterations = 4;
  solver::ReductionMode mode = solver::ReductionMode::Simple;
  sched::LocalPolicy policy = sched::LocalPolicy::DataAware;
  // Per-node workload, from §V of the paper.
  std::uint64_t rows_per_node = 50'000'000ull;
  std::uint64_t nnz_per_node = 12'800'000'000ull;
  int blocks_per_node_side = 5;
  std::uint64_t submatrix_bytes = 4'000'000'000ull;
  /// Optional fault-injection schedule replayed under virtual time (see
  /// SimEngine::set_fault_plan for the outage-window caveat).
  std::shared_ptr<fault::FaultPlan> fault_plan;
  /// Modeled compression ratio of the sub-matrix files (raw/stored). 1 =
  /// stored raw. >1 marks every durable block as a codec frame of
  /// bytes/ratio, so reads move less data but charge the decode latency
  /// (SimResources::decode_rate) — the DES half of the codec ablation.
  double codec_ratio = 1.0;

  [[nodiscard]] double matrix_terabytes() const {
    const double per_node = static_cast<double>(blocks_per_node_side) * blocks_per_node_side *
                            static_cast<double>(submatrix_bytes);
    return per_node * nodes / 1e12;
  }
  [[nodiscard]] double total_nnz() const {
    return static_cast<double>(nnz_per_node) * nodes;
  }
  [[nodiscard]] std::uint64_t matrix_dimension() const;
};

struct TestbedResult {
  TestbedExperiment experiment;
  SimMetrics metrics;

  [[nodiscard]] double time_seconds() const { return metrics.makespan; }
  [[nodiscard]] double gflops() const { return metrics.gflops(); }
  [[nodiscard]] double read_bandwidth() const { return metrics.read_bandwidth(); }
  [[nodiscard]] double non_overlapped() const { return metrics.non_overlapped_fraction(); }
  [[nodiscard]] double cpu_hours_per_iteration() const {
    return metrics.cpu_hours_total() / experiment.iterations;
  }
  /// Minimum time to pull the matrix `iterations` times at peak bandwidth —
  /// the denominator of Fig. 6.
  [[nodiscard]] double optimal_io_seconds(double peak_bw = 20e9) const {
    return experiment.matrix_terabytes() * 1e12 * experiment.iterations / peak_bw;
  }
  [[nodiscard]] double relative_to_optimal_io(double peak_bw = 20e9) const {
    return time_seconds() / optimal_io_seconds(peak_bw);
  }
};

/// Run one testbed experiment on the DES backend.
[[nodiscard]] TestbedResult run_testbed(const TestbedExperiment& experiment,
                                        const SimResources& resources = {});

/// Variant of the paper's §V-B "star" run: solve an oversized matrix
/// (9x the per-node block of a `matrix_nodes`-node experiment) on only
/// `compute_nodes` nodes — out-of-core earns its keep here.
[[nodiscard]] TestbedResult run_testbed_oversized(int compute_nodes, int matrix_nodes,
                                                  const TestbedExperiment& base,
                                                  const SimResources& resources = {});

}  // namespace dooc::sim
