// Discrete-event execution backend: runs a TaskGraph on a *modeled* SSD
// testbed under virtual time, mirroring the real engine's hierarchical
// scheduling logic (affinity assignment, per-node ready sets, data-aware
// ordering, prefetch window) while charging modeled costs:
//
//  * durable arrays (sub-matrix files, initial vectors) load through a
//    shared GPFS modeled as max-min-fair flows over per-node client links
//    and an aggregate cap — the paper's "20 GB/s peak, 1.4-1.5 GB/s per
//    client" behaviour, with optional per-flow bandwidth noise standing in
//    for the "noticeable variation in read bandwidth" the paper reports;
//  * intermediate arrays travel node-to-node over InfiniBand links
//    (per-node egress/ingress caps);
//  * compute charges est_flops at a memory-bound SpMV rate; reductions
//    charge bytes at memory bandwidth; sync tasks charge a barrier cost
//    and move no data (control messages only);
//  * each node has a memory budget; durable arrays are reclaimed LRU,
//    intermediates are freed when their last reader completes.
//
// Used by the Table III / Table IV / Fig. 6 / Fig. 7 benches at paper scale
// (terabyte matrices) which cannot physically exist in this repository.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "common/fair_share.hpp"
#include "fault/fault_plan.hpp"
#include "obs/telemetry.hpp"
#include "sched/executor_core.hpp"
#include "sched/global_scheduler.hpp"
#include "sched/policy.hpp"
#include "sched/task.hpp"
#include "simcluster/flow_network.hpp"
#include "solver/array_creator.hpp"
#include "storage/replication.hpp"

namespace dooc::sim {

// Calibrated to Table III/IV behaviour (see EXPERIMENTS.md): the GPFS
// client and aggregate caps are read off the measured read bandwidths
// (1.5 GB/s at 1 node, ~18.5 GB/s plateau); the reduction throughput
// (`mem_bw`) and effective IB goodput model the 2012-era filter-stream
// middleware's per-buffer processing cost, calibrated from the 1-node
// non-overlapped fraction of Table III (sums of 2.4 GB per iteration
// explain its ~13% non-overlap only at ~0.25 GB/s effective throughput).
struct SimResources {
  int cores_per_node = 8;
  std::uint64_t node_memory = 20ull << 30;  ///< usable for arrays (of 24 GB)
  double node_read_cap = 1.5e9;             ///< GPFS client read, bytes/s
  double aggregate_read_cap = 18.6e9;       ///< GPFS total, bytes/s
  double ib_link = 0.15e9;                  ///< effective middleware goodput per link
  double compute_rate = 0.5e9;              ///< flops/s for SpMV (memory bound)
  double mem_bw = 0.25e9;                   ///< bytes/s for reductions (buffer handling)
  double task_overhead = 0.005;             ///< scheduling overhead per task, s
  double sync_cost = 0.5;                   ///< global synchronization cost, s
  double bw_noise = 0.10;                   ///< per-flow cap factor ~ U[1-noise, 1]
  /// Codec model: decompression throughput in raw-output bytes/s. A durable
  /// array with VirtualArray::stored_bytes != 0 moves its (smaller) stored
  /// size over the filesystem, then waits bytes/decode_rate on the io side
  /// (never a compute slot) before turning resident — trading CPU for
  /// bandwidth exactly like the real storage layer's fetcher-thread decode.
  /// 0 disables the latency charge (transfer still moves stored bytes).
  double decode_rate = 2.0e9;
  /// Concurrent compute filters per node (the real nodes ran multiply and
  /// sum filters concurrently across their 8 cores).
  int compute_slots = 2;
  int prefetch_window = 2;
  std::uint64_t seed = 42;
  /// Per-node in-flight fetch budget for run_jobs: concurrent fetch bytes a
  /// node admits, arbitrated WDRR across jobs by the same FairShare the
  /// real storage layer uses (under virtual time). 0 = no budget (fetches
  /// admit freely, as run() does). run() ignores this.
  std::uint64_t inflight_load_budget = 0;
  /// WDRR knobs for run_jobs (budget_bytes is overridden by
  /// inflight_load_budget; starvation_ns counts virtual nanoseconds).
  FairShareConfig fair_share;
  /// Live-telemetry replay under virtual time (run() only): when
  /// telemetry.enabled, every node emits one TelemetryFrame per
  /// telemetry.interval_ms of *virtual* time into a hub, and the same
  /// Watchdog the coordinator runs is polled at each tick — so watchdog
  /// thresholds and straggler verdicts are deterministically testable
  /// (SimMetrics::health). Disabled by default; virtual makespans are
  /// unchanged either way (telemetry charges no modeled cost).
  obs::telemetry::TelemetryConfig telemetry;
  /// Straggler injection for run(): per-node multiplier on every task
  /// duration (e.g. {2, 10.0} makes node 2 ten times slower). Empty for
  /// the calibrated paper-scale benches.
  std::map<int, double> node_compute_factor;
  /// Missed-heartbeat drill for run(): the node stops emitting telemetry
  /// frames after this many virtual seconds (the DES mirror of SIGSTOP —
  /// the node keeps computing, only its heartbeats vanish).
  std::map<int, double> node_telemetry_mute_after;
  /// Hot-block replication replay: the same decayed-frequency arithmetic
  /// the real catalog runs (storage::replication::HeatTracker, access-count
  /// driven so the replay is deterministic) classifies arrays as hot, and
  /// eviction protects hot arrays 2Q-style — replica-local re-reads of the
  /// hot set are charged at local (zero) cost instead of re-crossing GPFS.
  /// Defaults to off, matching the real storage layer.
  storage::ReplicationConfig replication;
};

struct SimMetrics {
  double makespan = 0;
  double gpfs_busy = 0;  ///< seconds with at least one filesystem read active
  std::uint64_t disk_bytes = 0;
  std::uint64_t net_bytes = 0;
  double total_flops = 0;
  int nodes = 0;
  int cores_per_node = 8;
  std::uint64_t fetch_faults = 0;   ///< injected fetch failures (incl. the final ones)
  std::uint64_t fetch_retries = 0;  ///< fetches re-issued after virtual-time backoff
  std::uint64_t tasks_faulted = 0;  ///< tasks settled as Faulted (incl. poisoned successors)
  /// Watchdog verdicts raised under virtual time (telemetry runs only).
  std::vector<obs::telemetry::HealthEvent> health;
  std::uint64_t telemetry_frames = 0;  ///< frames emitted into the virtual hub
  // Replication replay counters (replication runs only; all deterministic).
  std::uint64_t replica_hits = 0;     ///< task-input reads of a hot array
  std::uint64_t hot_promotions = 0;   ///< arrays that crossed the hot threshold
  std::uint64_t refetch_flows = 0;    ///< GPFS flows re-reading a previously resident array

  [[nodiscard]] double read_bandwidth() const {
    return gpfs_busy > 0 ? static_cast<double>(disk_bytes) / gpfs_busy : 0.0;
  }
  /// Fraction of the runtime not covered by filesystem I/O — the paper's
  /// "non-overlapped time" column.
  [[nodiscard]] double non_overlapped_fraction() const {
    return makespan > 0 ? std::max(0.0, 1.0 - gpfs_busy / makespan) : 0.0;
  }
  [[nodiscard]] double gflops() const { return makespan > 0 ? total_flops / makespan * 1e-9 : 0.0; }
  [[nodiscard]] double cpu_hours_total() const {
    return static_cast<double>(nodes) * cores_per_node * makespan / 3600.0;
  }
};

/// One tenant of a multi-job DES replay (see SimEngine::run_jobs). The
/// graph must be built, stay alive for the run, and not write any array
/// another job writes (namespace per-job arrays, e.g. jobs::namespaced).
struct SimJob {
  const sched::TaskGraph* graph = nullptr;
  double arrival = 0.0;  ///< virtual submit time, seconds
  double weight = 1.0;   ///< fair-share weight for fetch admission
  int priority = 0;      ///< strict between tiers, round-robin within one
};

/// Per-job outcome of a run_jobs replay.
struct SimJobMetrics {
  std::uint32_t job = 0;   ///< index into the submitted vector
  double arrival = 0.0;
  double finish = 0.0;     ///< virtual completion time
  double latency = 0.0;    ///< finish - arrival (queueing + service)
  double total_flops = 0.0;
  std::uint64_t tasks = 0;
};

struct MultiJobMetrics {
  std::vector<SimJobMetrics> jobs;
  double makespan = 0.0;          ///< last finish
  std::uint64_t disk_bytes = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t deferred_fetches = 0;   ///< fetch admissions the WDRR arbiter queued
  std::uint64_t starvation_overrides = 0;  ///< aging-guard grants across all nodes

  /// Jain fairness index over per-job values ((Σx)² / (n·Σx²), 1 = fair).
  static double jain(const std::vector<double>& xs);
};

// The DES shares the sched::ExecutorCore state machine with the real
// engine: staging decisions, policy ordering and the prefetch window come
// from the core; the simulator only charges virtual costs and reports
// residency through the ResidencyProbe interface. Where the real engine
// counts storage completions (note_input), the simulator re-probes after
// each virtual-time step (refresh) — flow completions have no per-input
// identity.
class SimEngine : private sched::ResidencyProbe {
 public:
  SimEngine(int num_nodes, SimResources resources,
            std::map<std::string, solver::VirtualArray> arrays);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Execute the graph under virtual time. Throws on deadlock (a task whose
  /// inputs can never materialize).
  SimMetrics run(const sched::TaskGraph& graph,
                 sched::LocalPolicy policy = sched::LocalPolicy::DataAware);

  /// Multi-tenant replay: execute N jobs concurrently under virtual time,
  /// mirroring the multi-tenant engine — one ExecutorCore per job, shared
  /// compute slots iterated priority-desc/round-robin, fetch admission
  /// arbitrated per node by the same FairShare WDRR arbiter the real
  /// storage layer runs (SimResources::inflight_load_budget). Jobs arrive
  /// at their virtual arrival times. Deterministic for fixed inputs; the
  /// fault plan is ignored on this path. Array read counts are pooled
  /// across jobs, so read-shared (durable) arrays persist until their last
  /// reader anywhere finishes.
  MultiJobMetrics run_jobs(const std::vector<SimJob>& jobs,
                           sched::LocalPolicy policy = sched::LocalPolicy::DataAware);

  /// Replay a fault-injection schedule under virtual time: modeled fetches
  /// draw verdicts from the same FaultPlan the real storage layer consults
  /// (one op per completed fetch per node). Failed fetches re-issue after a
  /// virtual backoff; past the retry budget their consumers retry / poison
  /// through the shared ExecutorCore. During an outage window a node starts
  /// no compute, issues no fetches and is skipped as a fetch source; its
  /// op clock ticks once per stalled scheduling round, so outage windows
  /// should be bounded (down=N@AFTER+OPS) or lifted via mark_up() — a
  /// permanent outage with tasks assigned to the node deadlocks the DES.
  /// Null (plus unset DOOC_FAULTS) disables injection.
  void set_fault_plan(std::shared_ptr<fault::FaultPlan> plan) { fault_plan_ = std::move(plan); }

 private:
  struct NodeState;

  /// Runtime state of one (virtual) array during a run.
  struct ArrayState {
    std::uint64_t bytes = 0;
    std::uint64_t stored = 0;  ///< on-disk codec-frame size (0 = raw)
    int home = 0;
    bool durable = false;
    int readers_remaining = 0;
    std::set<int> resident_on;
    std::set<int> fetching_on;
  };

  // ResidencyProbe (called by the core while picking/scoring candidates).
  std::uint64_t resident_input_bytes(int node, const sched::Task& task) override;
  bool inputs_resident(int node, const sched::Task& task) override;

  [[nodiscard]] double task_duration(const sched::Task& task) const;
  /// Modeled decompression latency for a stored-encoded array (0 when the
  /// array is raw or decode_rate is 0).
  [[nodiscard]] double decode_delay_s(const ArrayState& st) const;
  void schedule_node(NodeState& ns);
  void ensure_fetch(NodeState& ns, const std::string& array);
  /// Record one access in the replication heat counters (no-op when
  /// replication is off) and count replica hits / promotions.
  void record_heat(const std::string& array);
  /// True when replication is on and the array's decayed heat has reached
  /// the hot threshold (2Q protected segment).
  [[nodiscard]] bool array_hot(const std::string& array) const;
  void make_resident(int node, const std::string& array);
  void evict_for(NodeState& ns, std::uint64_t incoming);
  void finish_task(NodeState& ns, sched::TaskId task);
  void release_reader(const std::string& array);
  /// A fetch of `array` onto `node` failed past the retry budget: report it
  /// to the core for every InputsPending consumer (retry or poison).
  void fault_consumers(int node, const std::string& array);

  int num_nodes_;
  SimResources res_;
  std::map<std::string, solver::VirtualArray> meta_;
  sched::LocalPolicy policy_ = sched::LocalPolicy::DataAware;

  // Per-run state.
  const sched::TaskGraph* graph_ = nullptr;
  std::vector<int> assignment_;
  std::unique_ptr<sched::ExecutorCore> core_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::map<std::string, ArrayState> arrays_;
  FlowNetwork net_;
  std::map<FlowId, std::pair<int, std::string>> flow_target_;  // flow -> (node, array)
  std::map<FlowId, double> flow_start_;  // virtual start time, for trace export
  std::set<FlowId> gpfs_flows_;
  double now_ = 0;
  SimMetrics metrics_;
  std::shared_ptr<fault::FaultPlan> fault_plan_;
  fault::FaultPlan* plan_ = nullptr;  ///< active plan during run() (may be from_env)
  std::map<std::pair<int, std::string>, int> fetch_failures_;
  /// Backoff gates: (node, array) may not re-fetch before this virtual time.
  std::map<std::pair<int, std::string>, double> blocked_until_;
  /// Deferred residency from injected latency spikes: (when, node, array).
  std::vector<std::tuple<double, int, std::string>> arriving_;
  /// Replication replay state: decayed heat per array (shared arithmetic
  /// with the real catalog), and which (node, array) pairs were ever
  /// resident — a repeat GPFS fetch of one is a refetch_flow.
  std::unique_ptr<storage::replication::HeatTracker> heat_;
  std::set<std::pair<int, std::string>> ever_resident_;
  std::vector<ResourceId> gpfs_node_link_;
  ResourceId gpfs_aggregate_ = 0;
  std::vector<ResourceId> ib_egress_, ib_ingress_;
  std::uint64_t noise_state_ = 0;
};

}  // namespace dooc::sim
