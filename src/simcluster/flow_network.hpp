// Fluid-flow bandwidth model with max-min fairness.
//
// Transfers (flows) progress simultaneously; each flow's instantaneous rate
// is determined by water-filling across the capacitated resources it
// crosses (GPFS aggregate, per-node GPFS client link, IB egress/ingress,
// and an optional per-flow cap that models bandwidth noise). Whenever the
// flow set changes the simulator recomputes rates and advances remaining
// byte counts by elapsed-time * rate — the standard quasi-static fluid
// approximation used in network simulators.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dooc::sim {

using FlowId = std::uint64_t;
using ResourceId = int;

class FlowNetwork {
 public:
  /// Define a capacitated resource (bytes/s). Returns its id.
  ResourceId add_resource(std::string name, double capacity);

  /// Start a flow of `bytes` crossing the given resources; `own_cap` is an
  /// additional per-flow rate cap (0 = none).
  FlowId start_flow(std::uint64_t bytes, std::vector<ResourceId> resources, double own_cap = 0.0);

  [[nodiscard]] bool has_active_flows() const noexcept { return active_ != 0; }
  [[nodiscard]] std::size_t active_flows() const noexcept { return active_; }

  /// Recompute max-min fair rates for all active flows.
  void recompute_rates();

  /// Earliest completion time measured from `now`, or +inf when idle.
  /// recompute_rates() must be current.
  [[nodiscard]] double next_completion_delta() const;

  /// Advance all flows by `dt` seconds; returns the ids of flows that
  /// completed during the step (in completion order is not guaranteed —
  /// callers treat simultaneous completions as one batch).
  std::vector<FlowId> advance(double dt);

  /// Remaining bytes of a flow (0 once finished / unknown).
  [[nodiscard]] std::uint64_t remaining(FlowId id) const;

 private:
  struct Resource {
    std::string name;
    double capacity;
  };
  struct Flow {
    FlowId id = 0;
    double remaining = 0;
    double rate = 0;
    double own_cap = 0;
    std::vector<ResourceId> resources;
    bool done = false;
  };

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;  // compacted lazily
  std::size_t active_ = 0;
  FlowId next_id_ = 1;
};

}  // namespace dooc::sim
