#include "simcluster/flow_network.hpp"

#include <algorithm>
#include <cmath>

namespace dooc::sim {

ResourceId FlowNetwork::add_resource(std::string name, double capacity) {
  DOOC_REQUIRE(capacity > 0, "resource '" + name + "' needs positive capacity");
  resources_.push_back(Resource{std::move(name), capacity});
  return static_cast<ResourceId>(resources_.size() - 1);
}

FlowId FlowNetwork::start_flow(std::uint64_t bytes, std::vector<ResourceId> resources,
                               double own_cap) {
  DOOC_REQUIRE(bytes > 0, "flows must carry at least one byte");
  for (ResourceId r : resources) {
    DOOC_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < resources_.size(),
                 "unknown resource in flow");
  }
  Flow f;
  f.id = next_id_++;
  f.remaining = static_cast<double>(bytes);
  f.own_cap = own_cap;
  f.resources = std::move(resources);
  flows_.push_back(std::move(f));
  ++active_;
  recompute_rates();
  return flows_.back().id;
}

void FlowNetwork::recompute_rates() {
  // Water-filling max-min fairness. Each active flow is additionally capped
  // by own_cap (modeled as a single-member bottleneck).
  std::vector<double> residual(resources_.size());
  for (std::size_t r = 0; r < resources_.size(); ++r) residual[r] = resources_[r].capacity;
  std::vector<int> members(resources_.size(), 0);
  std::vector<Flow*> unfixed;
  for (auto& f : flows_) {
    if (f.done) continue;
    f.rate = 0;
    unfixed.push_back(&f);
    for (ResourceId r : f.resources) ++members[static_cast<std::size_t>(r)];
  }

  while (!unfixed.empty()) {
    // Bottleneck share: the tightest resource or per-flow cap.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (members[r] > 0) share = std::min(share, residual[r] / members[r]);
    }
    bool fixed_any = false;
    // Flows whose own cap binds below the resource share get their cap.
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      Flow* f = *it;
      if (f->own_cap > 0 && f->own_cap <= share) {
        f->rate = f->own_cap;
        for (ResourceId r : f->resources) {
          residual[static_cast<std::size_t>(r)] -= f->rate;
          --members[static_cast<std::size_t>(r)];
        }
        it = unfixed.erase(it);
        fixed_any = true;
      } else {
        ++it;
      }
    }
    if (fixed_any) continue;
    if (!std::isfinite(share)) {
      // No capacitated resource constrains the remaining flows (they have
      // no resources and no own cap) — run them at an arbitrary high rate.
      for (Flow* f : unfixed) f->rate = 1e12;
      break;
    }
    // Fix every flow passing through a bottleneck resource at `share`.
    std::vector<std::size_t> bottlenecks;
    for (std::size_t r = 0; r < resources_.size(); ++r) {
      if (members[r] > 0 && residual[r] / members[r] <= share * (1 + 1e-12)) {
        bottlenecks.push_back(r);
      }
    }
    for (auto it = unfixed.begin(); it != unfixed.end();) {
      Flow* f = *it;
      const bool hits = std::any_of(f->resources.begin(), f->resources.end(), [&](ResourceId r) {
        return std::find(bottlenecks.begin(), bottlenecks.end(), static_cast<std::size_t>(r)) !=
               bottlenecks.end();
      });
      if (hits) {
        f->rate = share;
        for (ResourceId r : f->resources) {
          residual[static_cast<std::size_t>(r)] -= f->rate;
          --members[static_cast<std::size_t>(r)];
        }
        it = unfixed.erase(it);
      } else {
        ++it;
      }
    }
  }
}

double FlowNetwork::next_completion_delta() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_) {
    if (f.done || f.rate <= 0) continue;
    best = std::min(best, f.remaining / f.rate);
  }
  return best;
}

std::vector<FlowId> FlowNetwork::advance(double dt) {
  std::vector<FlowId> finished;
  for (auto& f : flows_) {
    if (f.done) continue;
    f.remaining -= f.rate * dt;
    if (f.remaining <= 1e-6) {
      f.remaining = 0;
      f.done = true;
      --active_;
      finished.push_back(f.id);
    }
  }
  if (!finished.empty()) {
    // Compact occasionally to keep the vector small on long runs.
    if (flows_.size() > 4096) {
      flows_.erase(std::remove_if(flows_.begin(), flows_.end(),
                                  [](const Flow& f) { return f.done; }),
                   flows_.end());
    }
    recompute_rates();
  }
  return finished;
}

std::uint64_t FlowNetwork::remaining(FlowId id) const {
  for (const auto& f : flows_) {
    if (f.id == id) return static_cast<std::uint64_t>(f.remaining);
  }
  return 0;
}

}  // namespace dooc::sim
