#include "simcluster/testbed.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dooc::sim {

using solver::VirtualArrayCreator;
using spmv::BlockGrid;
using spmv::DeployedMatrix;

std::uint64_t TestbedExperiment::matrix_dimension() const {
  const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(nodes))));
  return rows_per_node * static_cast<std::uint64_t>(s);
}

namespace {

TestbedResult run_impl(int compute_nodes, int grid_k, std::uint64_t dimension,
                       std::uint64_t block_bytes, std::uint64_t block_nnz,
                       const TestbedExperiment& experiment, const SimResources& resources) {
  const BlockGrid grid(dimension, grid_k);
  const auto owner = spmv::square_tile_owner(compute_nodes, grid_k);

  VirtualArrayCreator creator;
  // Modeled on-disk size of a sub-matrix when the codec is on (0 = raw).
  const std::uint64_t block_stored =
      experiment.codec_ratio > 1.0
          ? static_cast<std::uint64_t>(static_cast<double>(block_bytes) / experiment.codec_ratio)
          : 0;
  DeployedMatrix dm;
  dm.grid = grid;
  dm.prefix = "A";
  const auto cells = static_cast<std::size_t>(grid_k) * grid_k;
  dm.owner.resize(cells);
  dm.nnz.assign(cells, block_nnz);
  dm.bytes.assign(cells, block_bytes);
  for (int u = 0; u < grid_k; ++u) {
    for (int v = 0; v < grid_k; ++v) {
      const int node = owner(u, v);
      dm.owner[static_cast<std::size_t>(u) * grid_k + v] = node;
      creator.add_durable(dm.name_of(u, v), block_bytes, node, block_stored);
    }
  }
  for (int u = 0; u < grid_k; ++u) {
    creator.add_durable(BlockGrid::vector_name("x", 0, u), grid.part_size(u) * sizeof(double),
                        owner(u, u));
  }

  solver::IteratedSpmvConfig config;
  config.iterations = experiment.iterations;
  config.mode = experiment.mode;
  config.inter_iteration_sync = true;  // the Lanczos reorthogonalization point
  solver::IteratedSpmv driver(creator, dm, config);

  SimEngine engine(compute_nodes, resources, creator.arrays());
  engine.set_fault_plan(experiment.fault_plan);
  TestbedResult result;
  result.experiment = experiment;
  result.metrics = engine.run(driver.graph(), experiment.policy);
  return result;
}

}  // namespace

TestbedResult run_testbed(const TestbedExperiment& experiment, const SimResources& resources) {
  const int s = static_cast<int>(std::lround(std::sqrt(static_cast<double>(experiment.nodes))));
  DOOC_REQUIRE(s * s == experiment.nodes, "testbed runs need a perfect-square node count");
  const int grid_k = experiment.blocks_per_node_side * s;
  const std::uint64_t dim = experiment.matrix_dimension();
  const auto blocks_per_node = static_cast<std::uint64_t>(experiment.blocks_per_node_side) *
                               experiment.blocks_per_node_side;
  return run_impl(experiment.nodes, grid_k, dim, experiment.submatrix_bytes,
                  experiment.nnz_per_node / blocks_per_node, experiment, resources);
}

TestbedResult run_testbed_oversized(int compute_nodes, int matrix_nodes,
                                    const TestbedExperiment& base,
                                    const SimResources& resources) {
  const int sc = static_cast<int>(std::lround(std::sqrt(static_cast<double>(compute_nodes))));
  const int sm = static_cast<int>(std::lround(std::sqrt(static_cast<double>(matrix_nodes))));
  DOOC_REQUIRE(sc * sc == compute_nodes && sm * sm == matrix_nodes,
               "node counts must be perfect squares");
  const int grid_k = base.blocks_per_node_side * sm;
  DOOC_REQUIRE(grid_k % sc == 0, "matrix grid must tile over the compute nodes");

  TestbedExperiment experiment = base;
  experiment.nodes = compute_nodes;
  // The experiment describes the oversized matrix: scale the per-node
  // figures so matrix_terabytes()/total_nnz() report the full matrix.
  const double scale = static_cast<double>(matrix_nodes) / compute_nodes;
  experiment.rows_per_node = static_cast<std::uint64_t>(base.rows_per_node * sm / sc);
  experiment.nnz_per_node = static_cast<std::uint64_t>(static_cast<double>(base.nnz_per_node) * scale);
  experiment.blocks_per_node_side = grid_k / sc;

  const std::uint64_t dim = base.rows_per_node * static_cast<std::uint64_t>(sm);
  const auto blocks = static_cast<std::uint64_t>(grid_k) * grid_k;
  const auto total_nnz =
      static_cast<std::uint64_t>(static_cast<double>(base.nnz_per_node) * matrix_nodes);
  return run_impl(compute_nodes, grid_k, dim, base.submatrix_bytes, total_nnz / blocks,
                  experiment, resources);
}

}  // namespace dooc::sim
