#include "simcluster/sim_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/rng.hpp"
#include "obs/causal.hpp"
#include "obs/trace.hpp"

namespace dooc::sim {

using sched::Task;
using sched::TaskId;

namespace {
/// Inputs smaller than this are control messages (sync tokens): their cost
/// is part of the sync task's barrier charge, not a modeled transfer.
constexpr std::uint64_t kControlBytes = 4096;

/// Emit a Complete event stamped in *virtual* nanoseconds. Same schema as
/// the real backend (pid = virtual node, cat "task"/"io"), so the trace
/// reader and dooc_tracecat work unchanged on simulated runs.
void emit_virtual(std::string_view cat, std::string_view name, int pid, int tid,
                  double start_s, double dur_s, std::string_view arg_name = {},
                  std::uint64_t arg_val = 0) {
  obs::Event ev;
  ev.phase = obs::Phase::Complete;
  ev.cat = obs::intern(cat);
  ev.name = obs::intern(name);
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = static_cast<std::uint64_t>(start_s * 1e9);
  ev.dur_ns = static_cast<std::uint64_t>(dur_s * 1e9);
  if (!arg_name.empty()) {
    ev.nargs = 1;
    ev.arg_name[0] = obs::intern(arg_name);
    ev.arg_val[0] = arg_val;
  }
  obs::TraceSession::instance().emit(ev);
}

/// Flow point stamped in virtual nanoseconds. Correlation ids come from the
/// same obs::causal::flow_id_* functions the real engine uses, so a DES
/// trace and an engine trace of the same graph correlate identically.
void emit_virtual_flow(obs::Phase phase, std::string_view cat, std::string_view name, int pid,
                       int tid, double ts_s, std::uint64_t flow_id,
                       std::string_view arg_name = {}, std::uint64_t arg_val = 0) {
  obs::emit_flow(phase, obs::intern(cat), obs::intern(name), pid, tid,
                 static_cast<std::uint64_t>(ts_s * 1e9), flow_id,
                 arg_name.empty() ? 0 : obs::intern(arg_name), arg_val);
}
}  // namespace

struct SimEngine::NodeState {
  int node = -1;
  /// Concurrently running tasks (up to SimResources::compute_slots).
  std::vector<std::pair<TaskId, double>> running;  // (task, end time)
  // Memory accounting.
  std::uint64_t used_bytes = 0;
  std::uint64_t inflight_bytes = 0;
  std::map<std::string, std::uint64_t> lru_tick;  // resident arrays
  std::map<std::string, int> pins;
  std::uint64_t tick = 0;
  std::uint64_t tasks_done = 0;  ///< completed tasks (telemetry frames)
};

SimEngine::~SimEngine() = default;

SimEngine::SimEngine(int num_nodes, SimResources resources,
                     std::map<std::string, solver::VirtualArray> arrays)
    : num_nodes_(num_nodes), res_(std::move(resources)), meta_(std::move(arrays)) {
  DOOC_REQUIRE(num_nodes > 0, "simulated cluster needs at least one node");
}

double SimEngine::task_duration(const Task& task) const {
  if (task.kind == "sync") return res_.sync_cost;
  if (task.kind == "multiply") {
    return task.est_flops / res_.compute_rate + res_.task_overhead;
  }
  if (task.kind == "sum" || task.kind == "aggregate") {
    std::uint64_t touched = 0;
    for (const auto& in : task.inputs) {
      if (in.length > kControlBytes) touched += in.length;
    }
    for (const auto& out : task.outputs) touched += out.length;
    return static_cast<double>(touched) / res_.mem_bw + res_.task_overhead;
  }
  return task.est_flops / res_.compute_rate + res_.task_overhead;
}

double SimEngine::decode_delay_s(const ArrayState& st) const {
  if (st.stored == 0 || res_.decode_rate <= 0.0) return 0.0;
  return static_cast<double>(st.bytes) / res_.decode_rate;
}

bool SimEngine::inputs_resident(int node, const Task& task) {
  if (task.kind == "sync") return true;  // control-only
  for (const auto& in : task.inputs) {
    if (in.length <= kControlBytes) continue;
    const auto it = arrays_.find(in.array);
    if (it == arrays_.end() || it->second.resident_on.count(node) == 0) return false;
  }
  return true;
}

std::uint64_t SimEngine::resident_input_bytes(int node, const Task& task) {
  std::uint64_t bytes = 0;
  for (const auto& in : task.inputs) {
    const auto it = arrays_.find(in.array);
    if (it != arrays_.end() && it->second.resident_on.count(node) != 0) bytes += in.length;
  }
  return bytes;
}

void SimEngine::evict_for(NodeState& ns, std::uint64_t incoming) {
  while (ns.used_bytes + ns.inflight_bytes + incoming > res_.node_memory) {
    // LRU over durable, unpinned resident arrays. With replication on, hot
    // arrays sit in the protected 2Q class: they are victimised only when no
    // cold candidate remains — the same scan resistance the real node's
    // TwoQ policy provides.
    std::string victim;
    std::uint64_t best_tick = 0;
    bool found = false;
    bool victim_hot = false;
    for (const auto& [name, tick] : ns.lru_tick) {
      const auto& st = arrays_.at(name);
      if (!st.durable) continue;
      auto pin = ns.pins.find(name);
      if (pin != ns.pins.end() && pin->second > 0) continue;
      const bool hot = array_hot(name);
      if (!found || (hot == victim_hot ? tick < best_tick : victim_hot)) {
        victim = name;
        best_tick = tick;
        found = true;
        victim_hot = hot;
      }
    }
    if (!found) return;  // allow overshoot (mirrors the real storage layer)
    auto& st = arrays_.at(victim);
    st.resident_on.erase(ns.node);
    ns.used_bytes -= st.bytes;
    ns.lru_tick.erase(victim);
    ns.pins.erase(victim);
  }
}

void SimEngine::make_resident(int node, const std::string& array) {
  auto& st = arrays_.at(array);
  if (st.resident_on.insert(node).second) {
    auto& ns = *nodes_[static_cast<std::size_t>(node)];
    ns.used_bytes += st.bytes;
    ns.lru_tick[array] = ++ns.tick;
    ever_resident_.insert({node, array});
  }
}

void SimEngine::record_heat(const std::string& array) {
  if (heat_ == nullptr) return;
  // The DES tracks heat per array (block 0 stands in for the whole array):
  // virtual tasks read whole partitions, so array granularity is the faithful
  // analogue of the real catalog's per-block counters.
  const storage::BlockKey key{array, 0};
  const bool was_hot = heat_->peek(key) >= res_.replication.hot_threshold;
  const bool hot = heat_->record(key) >= res_.replication.hot_threshold;
  if (hot && !was_hot) ++metrics_.hot_promotions;
  if (hot) ++metrics_.replica_hits;
}

bool SimEngine::array_hot(const std::string& array) const {
  return heat_ != nullptr &&
         heat_->peek(storage::BlockKey{array, 0}) >= res_.replication.hot_threshold;
}

void SimEngine::ensure_fetch(NodeState& ns, const std::string& array) {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return;
  ArrayState& st = it->second;
  if (st.bytes <= kControlBytes) return;
  if (st.resident_on.count(ns.node) != 0 || st.fetching_on.count(ns.node) != 0) return;
  if (plan_ != nullptr) {
    const auto bit = blocked_until_.find({ns.node, array});
    if (bit != blocked_until_.end() && bit->second > now_) return;  // backoff in force
  }

  std::vector<ResourceId> path;
  bool is_gpfs = false;
  double own_cap = 0.0;
  // Stored-encoded arrays move their (smaller) codec-frame size over the
  // filesystem — the bandwidth half of the compression trade. The memory
  // reservation stays the raw size (that is what becomes resident).
  std::uint64_t wire_bytes = st.bytes;
  if (st.durable) {
    // Filesystem read through the node's GPFS client and the shared
    // aggregate, individually perturbed by bandwidth noise.
    path = {gpfs_node_link_[static_cast<std::size_t>(ns.node)], gpfs_aggregate_};
    is_gpfs = true;
    SplitMix64 rng(res_.seed ^ (noise_state_++ * 0x9e3779b97f4a7c15ull));
    const double factor = 1.0 - res_.bw_noise * rng.next_double();
    own_cap = res_.node_read_cap * factor;
    if (st.stored != 0) wire_bytes = st.stored;
  } else {
    // Produced data: fetch over IB from a live node that holds it.
    if (st.resident_on.empty()) return;  // producer not done yet
    int src = -1;
    for (int cand : st.resident_on) {
      if (cand == ns.node) return;  // already local (shouldn't happen)
      if (plan_ != nullptr && plan_->node_down(cand)) continue;  // holder unreachable
      src = cand;
      break;
    }
    if (src < 0) return;  // every holder is down: wait out the outage
    path = {ib_egress_[static_cast<std::size_t>(src)],
            ib_ingress_[static_cast<std::size_t>(ns.node)]};
  }

  // Memory admission control for the incoming copy.
  evict_for(ns, st.bytes);
  if (ns.used_bytes + ns.inflight_bytes + st.bytes > res_.node_memory &&
      ns.used_bytes + ns.inflight_bytes > 0) {
    return;  // try again later; something will drain
  }

  ns.inflight_bytes += st.bytes;
  st.fetching_on.insert(ns.node);
  const FlowId id = net_.start_flow(wire_bytes, std::move(path), own_cap);
  flow_target_[id] = {ns.node, array};
  flow_start_[id] = now_;
  if (obs::trace_enabled()) {
    // Same lane as the io span emitted at flow completion (100 + id%16).
    emit_virtual_flow(obs::Phase::FlowStart, "load", "read-issue", ns.node,
                      100 + static_cast<int>(id % 16), now_,
                      obs::causal::flow_id_load(array, 0));
  }
  if (is_gpfs) {
    gpfs_flows_.insert(id);
    metrics_.disk_bytes += wire_bytes;
    // A GPFS read of an array this node has held before is exactly the
    // demand-io the replication policy exists to avoid.
    if (heat_ != nullptr && ever_resident_.count({ns.node, array}) != 0) {
      ++metrics_.refetch_flows;
    }
  } else {
    metrics_.net_bytes += wire_bytes;
  }
}

void SimEngine::schedule_node(NodeState& ns) {
  using sched::StageDecision;
  using sched::StageSelect;

  if (plan_ != nullptr && plan_->node_down(ns.node)) {
    // A down node serves nothing and starts nothing; compute already in
    // flight finishes. Its op clock still ticks once per stalled scheduling
    // round so bounded outage windows (down=N@AFTER+OPS) expire under
    // virtual time.
    if (core_->backlog(ns.node) > 0 || core_->pending(ns.node) > 0 ||
        core_->runnable(ns.node) > 0 || !ns.running.empty()) {
      (void)plan_->next_read(ns.node);
    }
    return;
  }

  // 1. Let the core re-probe residency: staged tasks whose flows landed
  //    become Runnable; runnable tasks whose data was evicted fall back.
  core_->refresh(ns.node);

  // 2. Stage fully-resident candidates — they never consume the prefetch
  //    window and become Runnable immediately.
  while (true) {
    const StageDecision d = core_->next_to_stage(ns.node, StageSelect::Resident);
    if (d.task == sched::kInvalidTask) break;
    core_->stage(d.task, 0);
  }

  // 3. Start compute while slots are free (a node's compute filters run
  //    concurrently on its cores). Inputs pin for the task's duration —
  //    before step 4's fetches can trigger evictions.
  while (static_cast<int>(ns.running.size()) < res_.compute_slots) {
    const TaskId t = core_->take_runnable(ns.node);
    if (t == sched::kInvalidTask) break;
    double dur = task_duration(graph_->task(t));
    // Injected straggler: this node's compute is uniformly slower.
    if (const auto f = res_.node_compute_factor.find(ns.node);
        f != res_.node_compute_factor.end()) {
      dur *= f->second;
    }
    ns.running.emplace_back(t, now_ + dur);
    if (obs::trace_enabled()) {
      // Slot index the task just took doubles as its compute-lane tid.
      const int tid = static_cast<int>(ns.running.size()) - 1;
      emit_virtual("task", graph_->task(t).name, ns.node, tid, now_, dur, "task", t);
      for (const auto& in : graph_->task(t).inputs) {
        // Close the producer→consumer dep flow, and (for bulk inputs) the
        // load flow of the fetch that made the input resident here — an
        // input this node never fetched leaves an orphan 'f', which both
        // viewers and the causal graph drop.
        emit_virtual_flow(obs::Phase::FlowEnd, "dep", "consume", ns.node, tid, now_,
                          obs::causal::flow_id_dep(in.array), "task", t);
        if (in.length > kControlBytes) {
          emit_virtual_flow(obs::Phase::FlowEnd, "load", "load-ready", ns.node, tid, now_,
                            obs::causal::flow_id_load(in.array, 0), "task", t);
        }
      }
    }
    for (const auto& in : graph_->task(t).inputs) {
      if (in.length <= kControlBytes) continue;
      ++ns.pins[in.array];
      ns.lru_tick[in.array] = ++ns.tick;
      record_heat(in.array);
    }
  }

  // 4. Keep the I/O pipeline full: stage tasks with missing data up to the
  //    core's prefetch window and issue their fetches. The input count is
  //    symbolic (the DES promotes by re-probing, not by counting arrival
  //    events).
  while (true) {
    const StageDecision d = core_->next_to_stage(ns.node, StageSelect::Missing);
    if (d.task == sched::kInvalidTask) break;
    core_->stage(d.task, 1);
    for (const auto& in : graph_->task(d.task).inputs) ensure_fetch(ns, in.array);
  }
  // Re-issue fetches for staged tasks whose admission was deferred on
  // memory pressure (ensure_fetch is a no-op for flows already running).
  for (const TaskId t : core_->pending_tasks(ns.node)) {
    for (const auto& in : graph_->task(t).inputs) ensure_fetch(ns, in.array);
  }
}

void SimEngine::release_reader(const std::string& array) {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return;
  ArrayState& st = it->second;
  if (--st.readers_remaining > 0) return;
  // Last reader done: drop every copy (intermediates and spent inputs).
  for (int node : st.resident_on) {
    auto& ns = *nodes_[static_cast<std::size_t>(node)];
    ns.used_bytes -= st.bytes;
    ns.lru_tick.erase(array);
    ns.pins.erase(array);
  }
  st.resident_on.clear();
}

void SimEngine::fault_consumers(int node, const std::string& array) {
  for (const TaskId t : core_->pending_tasks(node)) {
    const Task& task = graph_->task(t);
    bool uses = false;
    for (const auto& in : task.inputs) {
      if (in.array == array) {
        uses = true;
        break;
      }
    }
    if (!uses) continue;
    std::vector<TaskId> poisoned;
    if (core_->fault(t, &poisoned) == sched::ExecutorCore::FaultAction::Poisoned) {
      metrics_.tasks_faulted += poisoned.size();
      if (obs::trace_enabled()) {
        obs::emit_instant(obs::intern("fault"), obs::intern("task-poisoned"), node, 0);
      }
    }
  }
}

void SimEngine::finish_task(NodeState& ns, TaskId t) {
  const Task& task = graph_->task(t);

  // Unpin inputs and account their consumption.
  for (const auto& in : task.inputs) {
    if (in.length > kControlBytes) {
      auto pin = ns.pins.find(in.array);
      if (pin != ns.pins.end() && pin->second > 0) --pin->second;
    }
    release_reader(in.array);
  }
  // Outputs become resident here.
  for (const auto& out : task.outputs) {
    evict_for(ns, arrays_.at(out.array).bytes);
    make_resident(ns.node, out.array);
    if (obs::trace_enabled()) {
      emit_virtual_flow(obs::Phase::FlowStart, "dep", "produce", ns.node, 0, now_,
                        obs::causal::flow_id_dep(out.array), "task", t);
    }
  }
  metrics_.total_flops += task.est_flops;
  ++ns.tasks_done;

  std::vector<std::pair<int, TaskId>> newly_assigned;
  core_->finish(t, newly_assigned);  // dependents enter the core's queues
}

SimMetrics SimEngine::run(const sched::TaskGraph& graph, sched::LocalPolicy policy) {
  DOOC_REQUIRE(graph.built(), "run() needs a built task graph");
  policy_ = policy;
  graph_ = &graph;
  now_ = 0;
  metrics_ = SimMetrics{};
  metrics_.nodes = num_nodes_;
  metrics_.cores_per_node = res_.cores_per_node;
  net_ = FlowNetwork{};
  flow_target_.clear();
  flow_start_.clear();
  gpfs_flows_.clear();
  noise_state_ = 0;
  heat_ = res_.replication.enabled
              ? std::make_unique<storage::replication::HeatTracker>(res_.replication.decay)
              : nullptr;
  ever_resident_.clear();
  // Programmatic plan wins; DOOC_FAULTS reaches the DES the same way it
  // reaches a real StorageCluster. `hold` keeps an env-derived plan alive
  // for the duration of the run.
  const std::shared_ptr<fault::FaultPlan> hold =
      fault_plan_ != nullptr ? fault_plan_ : fault::FaultPlan::from_env();
  plan_ = hold != nullptr && hold->enabled() ? hold.get() : nullptr;
  fetch_failures_.clear();
  blocked_until_.clear();
  arriving_.clear();

  // Resources.
  gpfs_node_link_.clear();
  ib_egress_.clear();
  ib_ingress_.clear();
  gpfs_aggregate_ = net_.add_resource("gpfs", res_.aggregate_read_cap);
  for (int n = 0; n < num_nodes_; ++n) {
    gpfs_node_link_.push_back(
        net_.add_resource("gpfs_client_" + std::to_string(n), res_.node_read_cap));
    ib_egress_.push_back(net_.add_resource("ib_out_" + std::to_string(n), res_.ib_link));
    ib_ingress_.push_back(net_.add_resource("ib_in_" + std::to_string(n), res_.ib_link));
  }

  // Array runtime state.
  arrays_.clear();
  for (const auto& [name, meta] : meta_) {
    ArrayState st;
    st.bytes = meta.bytes;
    st.stored = meta.stored_bytes;
    st.home = meta.home_node;
    st.durable = meta.durable;
    arrays_.emplace(name, st);
  }
  for (TaskId t = 0; t < graph.size(); ++t) {
    for (const auto& in : graph.task(t).inputs) {
      auto it = arrays_.find(in.array);
      DOOC_REQUIRE(it != arrays_.end(), "task reads unknown array '" + in.array + "'");
      ++it->second.readers_remaining;
    }
  }

  // Global assignment (same affinity heuristic as the real engine).
  class VirtualLocator final : public sched::DataLocator {
   public:
    explicit VirtualLocator(const std::map<std::string, solver::VirtualArray>* m) : m_(m) {}
    [[nodiscard]] int home_of(const storage::ArrayName& name) const override {
      auto it = m_->find(name);
      return it == m_->end() ? -1 : it->second.home_node;
    }

   private:
    const std::map<std::string, solver::VirtualArray>* m_;
  };
  sched::GlobalScheduler global(num_nodes_);
  VirtualLocator locator(&meta_);
  assignment_ = global.assign(graph, locator);

  // The shared execution state machine (dependency counting, per-node
  // queues, policy order, prefetch window) — same core as sched::Engine.
  sched::CoreConfig core_config;
  core_config.policy = policy;
  core_config.prefetch_window = res_.prefetch_window;
  core_config.demand_slots = 0;  // the DES never demand-stages past the window
  core_ = std::make_unique<sched::ExecutorCore>(graph, assignment_, num_nodes_, core_config,
                                                static_cast<sched::ResidencyProbe*>(this));

  nodes_.clear();
  for (int n = 0; n < num_nodes_; ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    nodes_.push_back(std::move(ns));
  }

  // Virtual-time telemetry replay: the same Hub + Watchdog the coordinator
  // runs, fed per-node frames on the configured cadence of *virtual*
  // seconds. Telemetry charges no modeled cost, so makespans are identical
  // with it on or off — only the verdicts (SimMetrics::health) appear.
  const bool telemetry_on = res_.telemetry.enabled;
  std::optional<obs::telemetry::TelemetryHub> hub;
  std::optional<obs::telemetry::Watchdog> watchdog;
  std::vector<std::uint64_t> telemetry_seq(static_cast<std::size_t>(num_nodes_), 0);
  const double telemetry_interval_s = static_cast<double>(res_.telemetry.interval_ms) * 1e-3;
  double next_telemetry_s = 0.0;
  if (telemetry_on) {
    hub.emplace(res_.telemetry.history);
    watchdog.emplace(res_.telemetry);
  }
  const auto telemetry_tick = [&](double at_s) {
    const auto vns = static_cast<std::uint64_t>(at_s * 1e9);
    for (int n = 0; n < num_nodes_; ++n) {
      if (const auto mute = res_.node_telemetry_mute_after.find(n);
          mute != res_.node_telemetry_mute_after.end() && at_s > mute->second) {
        continue;  // the SIGSTOP drill: heartbeats vanish, compute does not
      }
      auto& ns = *nodes_[static_cast<std::size_t>(n)];
      obs::telemetry::TelemetryFrame f;
      f.node = n;
      f.seq = telemetry_seq[static_cast<std::size_t>(n)]++;
      f.ts_ns = vns;
      f.tasks_executed = ns.tasks_done;
      f.tasks_inflight = ns.running.size() + static_cast<std::uint64_t>(core_->pending(n));
      f.queue_depth = static_cast<std::uint64_t>(core_->backlog(n)) +
                      static_cast<std::uint64_t>(core_->runnable(n));
      f.inflight_bytes = ns.inflight_bytes;
      hub->add(f, vns);
      ++metrics_.telemetry_frames;
    }
    for (auto& e : watchdog->poll(*hub, vns)) metrics_.health.push_back(std::move(e));
  };

  // Main event loop.
  const std::size_t total = graph.size();
  std::size_t guard = 0;
  const std::size_t guard_limit = 100 * total + 100000;
  while (!core_->all_settled()) {
    DOOC_CHECK(++guard < guard_limit, "simulation event-loop guard tripped");
    // Due telemetry ticks fire before scheduling so frames snapshot the
    // state as of the tick time, exactly like a daemon's cadence.
    while (telemetry_on && next_telemetry_s <= now_ + 1e-12) {
      telemetry_tick(next_telemetry_s);
      next_telemetry_s += telemetry_interval_s;
    }
    // Expired backoff gates are consumed (ensure_fetch may retry now);
    // live ones bound dt below so the clock jumps straight to the retry.
    for (auto it = blocked_until_.begin(); it != blocked_until_.end();) {
      it = it->second <= now_ ? blocked_until_.erase(it) : std::next(it);
    }
    for (auto& ns : nodes_) schedule_node(*ns);

    double dt = net_.next_completion_delta();
    for (const auto& ns : nodes_) {
      for (const auto& [t, end] : ns->running) dt = std::min(dt, end - now_);
    }
    for (const auto& [key, until] : blocked_until_) dt = std::min(dt, until - now_);
    for (const auto& [when, n, a] : arriving_) dt = std::min(dt, when - now_);
    if (telemetry_on && std::isfinite(dt)) dt = std::min(dt, next_telemetry_s - now_);
    if (!std::isfinite(dt)) {
      // Nothing in flight: either we just enabled work (loop again) or the
      // graph is stuck.
      bool progress_possible = false;
      for (const auto& ns : nodes_) {
        if (!ns->running.empty() || core_->backlog(ns->node) > 0 ||
            core_->pending(ns->node) > 0 || core_->runnable(ns->node) > 0) {
          progress_possible = true;
        }
      }
      DOOC_CHECK(progress_possible, "simulated execution deadlocked");
      // A node has ready tasks but can neither run nor fetch — this only
      // happens transiently when fetches were deferred on memory pressure;
      // re-running schedule_node after other nodes drained resolves it.
      // Guard against a true livelock by charging a small idle step.
      now_ += 1e-3;
      continue;
    }
    dt = std::max(dt, 0.0);
    if (!gpfs_flows_.empty()) metrics_.gpfs_busy += dt;
    const auto finished = net_.advance(dt);
    now_ += dt;
    for (FlowId id : finished) {
      const auto [node, array] = flow_target_.at(id);
      flow_target_.erase(id);
      const bool was_gpfs = gpfs_flows_.erase(id) != 0;
      auto& ns = *nodes_[static_cast<std::size_t>(node)];
      auto& st = arrays_.at(array);
      const double dec = decode_delay_s(st);
      if (const auto sit = flow_start_.find(id); sit != flow_start_.end()) {
        if (obs::trace_enabled()) {
          emit_virtual("io", was_gpfs ? "gpfs_read" : "ib_fetch", node,
                       100 + static_cast<int>(id % 16), sit->second, now_ - sit->second,
                       "bytes", st.stored != 0 ? st.stored : st.bytes);
          if (dec > 0.0) {
            // Same cat/name as the real fetcher-thread decompression span,
            // so the causal layer attributes kBlameDecode on both backends.
            emit_virtual("storage", "decode", node, 100 + static_cast<int>(id % 16), now_, dec,
                         "bytes", st.bytes);
          }
          // Delivery is when raw data exists — after the decode.
          emit_virtual_flow(obs::Phase::FlowStep, "load", "deliver", node,
                            100 + static_cast<int>(id % 16), now_ + dec,
                            obs::causal::flow_id_load(array, 0));
        }
        flow_start_.erase(sit);
      }
      st.fetching_on.erase(node);
      ns.inflight_bytes -= st.bytes;
      // One completed fetch = one storage op against `node`: draw the same
      // deterministic verdict the real I/O filters would.
      fault::FaultDecision verdict;
      if (plan_ != nullptr) verdict = plan_->next_read(node);
      using Action = fault::FaultDecision::Action;
      if (verdict.action == Action::Fail || verdict.action == Action::ShortRead) {
        const auto key = std::make_pair(node, array);
        const int failures = ++fetch_failures_[key];
        const fault::RetryPolicy& rp = plan_->config().retry;
        ++metrics_.fetch_faults;
        if (failures < rp.max_attempts) {
          // Not resident: ensure_fetch re-issues once the backoff expires.
          ++metrics_.fetch_retries;
          blocked_until_[key] = now_ + fault::backoff_delay_s(rp, failures);
        } else {
          // Budget exhausted: consumers retry or poison through the core.
          // The failure count resets so a retried consumer starts a fresh
          // fetch budget (mirroring the real engine's per-staging retries).
          fetch_failures_.erase(key);
          blocked_until_.erase(key);
          fault_consumers(node, array);
        }
      } else if (verdict.action == Action::Delay && verdict.delay_s > 0.0) {
        arriving_.emplace_back(now_ + verdict.delay_s + dec, node, array);
      } else if (st.readers_remaining > 0) {
        // Residency waits out the modeled decompression (the real layer
        // installs a block only after its fetcher thread decoded the frame).
        if (dec > 0.0) {
          arriving_.emplace_back(now_ + dec, node, array);
        } else {
          make_resident(node, array);
        }
      }
    }
    // Latency-spiked fetches whose deferred delivery time arrived.
    for (auto it = arriving_.begin(); it != arriving_.end();) {
      if (std::get<0>(*it) <= now_ + 1e-12) {
        if (arrays_.at(std::get<2>(*it)).readers_remaining > 0) {
          make_resident(std::get<1>(*it), std::get<2>(*it));
        }
        it = arriving_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& ns : nodes_) {
      for (std::size_t i = 0; i < ns->running.size();) {
        if (ns->running[i].second <= now_ + 1e-12) {
          const TaskId t = ns->running[i].first;
          ns->running.erase(ns->running.begin() + static_cast<std::ptrdiff_t>(i));
          finish_task(*ns, t);
        } else {
          ++i;
        }
      }
    }
  }

  metrics_.makespan = now_;
  core_.reset();  // holds a pointer into `graph`
  graph_ = nullptr;
  plan_ = nullptr;  // `hold` dies with this frame
  return metrics_;
}

double MultiJobMetrics::jain(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  return sq > 0.0 ? (sum * sum) / (static_cast<double>(xs.size()) * sq) : 1.0;
}

MultiJobMetrics SimEngine::run_jobs(const std::vector<SimJob>& jobs, sched::LocalPolicy policy) {
  DOOC_REQUIRE(!jobs.empty(), "run_jobs() needs at least one job");

  // Per-job execution contexts: one ExecutorCore each, multiplexed onto
  // the shared modeled nodes — the DES mirror of the multi-tenant engine.
  struct Ctx {
    const SimJob* spec = nullptr;
    std::uint32_t idx = 0;
    std::vector<int> assignment;
    std::unique_ptr<sched::ExecutorCore> core;
    bool done = false;
    double finish = 0.0;
    double flops = 0.0;
    std::uint64_t tasks = 0;
  };

  policy_ = policy;
  now_ = 0;
  metrics_ = SimMetrics{};  // scratch for ensure_fetch's byte counters
  net_ = FlowNetwork{};
  flow_target_.clear();
  flow_start_.clear();
  gpfs_flows_.clear();
  noise_state_ = 0;
  heat_ = res_.replication.enabled
              ? std::make_unique<storage::replication::HeatTracker>(res_.replication.decay)
              : nullptr;
  ever_resident_.clear();
  plan_ = nullptr;  // fault injection is a single-job (run) feature
  fetch_failures_.clear();
  blocked_until_.clear();
  arriving_.clear();

  gpfs_node_link_.clear();
  ib_egress_.clear();
  ib_ingress_.clear();
  gpfs_aggregate_ = net_.add_resource("gpfs", res_.aggregate_read_cap);
  for (int n = 0; n < num_nodes_; ++n) {
    gpfs_node_link_.push_back(
        net_.add_resource("gpfs_client_" + std::to_string(n), res_.node_read_cap));
    ib_egress_.push_back(net_.add_resource("ib_out_" + std::to_string(n), res_.ib_link));
    ib_ingress_.push_back(net_.add_resource("ib_in_" + std::to_string(n), res_.ib_link));
  }

  // Array state is shared: read counts pool across jobs, so a durable
  // array read by several jobs survives until its last reader anywhere.
  // Written arrays must be private to one job (namespace them).
  arrays_.clear();
  for (const auto& [name, meta] : meta_) {
    ArrayState st;
    st.bytes = meta.bytes;
    st.stored = meta.stored_bytes;
    st.home = meta.home_node;
    st.durable = meta.durable;
    arrays_.emplace(name, st);
  }
  std::map<std::string, std::uint32_t> writer_job;
  std::vector<Ctx> ctxs(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const SimJob& spec = jobs[j];
    DOOC_REQUIRE(spec.graph != nullptr && spec.graph->built(),
                 "run_jobs() needs built task graphs");
    DOOC_REQUIRE(spec.weight > 0.0, "job weight must be positive");
    for (TaskId t = 0; t < spec.graph->size(); ++t) {
      for (const auto& in : spec.graph->task(t).inputs) {
        auto it = arrays_.find(in.array);
        DOOC_REQUIRE(it != arrays_.end(), "task reads unknown array '" + in.array + "'");
        ++it->second.readers_remaining;
      }
      for (const auto& out : spec.graph->task(t).outputs) {
        const auto [wit, inserted] = writer_job.emplace(out.array, static_cast<std::uint32_t>(j));
        DOOC_REQUIRE(inserted || wit->second == j,
                     "jobs " + std::to_string(wit->second) + " and " + std::to_string(j) +
                         " both write array '" + out.array + "' — namespace per-job arrays");
      }
    }
  }

  class VirtualLocator final : public sched::DataLocator {
   public:
    explicit VirtualLocator(const std::map<std::string, solver::VirtualArray>* m) : m_(m) {}
    [[nodiscard]] int home_of(const storage::ArrayName& name) const override {
      auto it = m_->find(name);
      return it == m_->end() ? -1 : it->second.home_node;
    }

   private:
    const std::map<std::string, solver::VirtualArray>* m_;
  };
  VirtualLocator locator(&meta_);
  sched::CoreConfig core_config;
  core_config.policy = policy;
  core_config.prefetch_window = res_.prefetch_window;
  core_config.demand_slots = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    Ctx& c = ctxs[j];
    c.spec = &jobs[j];
    c.idx = static_cast<std::uint32_t>(j);
    sched::GlobalScheduler global(num_nodes_);
    c.assignment = global.assign(*jobs[j].graph, locator);
    c.core = std::make_unique<sched::ExecutorCore>(*jobs[j].graph, c.assignment, num_nodes_,
                                                   core_config,
                                                   static_cast<sched::ResidencyProbe*>(this));
  }

  nodes_.clear();
  for (int n = 0; n < num_nodes_; ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    nodes_.push_back(std::move(ns));
  }

  // Per-node fair-share fetch arbitration: the same WDRR arbiter the real
  // storage layer runs, clocked in virtual nanoseconds.
  MultiJobMetrics out;
  const bool budgeted = res_.inflight_load_budget != 0;
  std::vector<FairShare> fair(static_cast<std::size_t>(num_nodes_));
  struct Deferred {
    std::string array;
    std::uint64_t bytes = 0;
    std::uint64_t since_ns = 0;
  };
  // node -> tenant (job index) -> FIFO of deferred fetch admissions.
  std::vector<std::map<TenantId, std::deque<Deferred>>> deferred(
      static_cast<std::size_t>(num_nodes_));
  if (budgeted) {
    FairShareConfig fcfg = res_.fair_share;
    fcfg.budget_bytes = res_.inflight_load_budget;
    for (int n = 0; n < num_nodes_; ++n) {
      fair[static_cast<std::size_t>(n)].set_config(fcfg);
      for (const Ctx& c : ctxs) {
        fair[static_cast<std::size_t>(n)].set_tenant(c.idx, c.spec->weight, c.spec->priority);
      }
    }
  }
  // (node, array) -> job charged for the in-flight fetch.
  std::map<std::pair<int, std::string>, std::uint32_t> flow_job;
  // node -> (job, task, end time) of running compute.
  std::vector<std::vector<std::tuple<std::uint32_t, TaskId, double>>> running(
      static_cast<std::size_t>(num_nodes_));
  std::vector<std::uint64_t> rr(static_cast<std::size_t>(num_nodes_), 0);

  const auto now_ns = [&] { return static_cast<std::uint64_t>(now_ * 1e9); };
  const bool tracing = obs::trace_enabled();

  const auto active = [&](const Ctx& c) { return !c.done && c.spec->arrival <= now_ + 1e-12; };

  // Active jobs in scheduling order: priority desc, index asc, rotated
  // within the top tier — same ordering rule as the engine's job_snapshot.
  const auto job_order = [&](int node) {
    std::vector<Ctx*> order;
    for (Ctx& c : ctxs) {
      if (active(c)) order.push_back(&c);
    }
    std::sort(order.begin(), order.end(), [](const Ctx* a, const Ctx* b) {
      if (a->spec->priority != b->spec->priority) return a->spec->priority > b->spec->priority;
      return a->idx < b->idx;
    });
    if (order.size() > 1) {
      std::size_t tier = 1;
      while (tier < order.size() && order[tier]->spec->priority == order[0]->spec->priority) {
        ++tier;
      }
      if (tier > 1) {
        const std::size_t off = static_cast<std::size_t>(rr[static_cast<std::size_t>(node)]) % tier;
        std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(off),
                    order.begin() + static_cast<std::ptrdiff_t>(tier));
      }
    }
    return order;
  };

  // Start the modeled fetch if ensure_fetch admits it (memory, holder).
  const auto try_start = [&](NodeState& ns, const std::string& array) {
    ensure_fetch(ns, array);
    const auto it = arrays_.find(array);
    return it != arrays_.end() && it->second.fetching_on.count(ns.node) != 0;
  };

  const auto others_waiting = [&](int node, TenantId tenant) {
    for (const auto& [t, q] : deferred[static_cast<std::size_t>(node)]) {
      if (t != tenant && !q.empty()) return true;
    }
    return false;
  };

  // Fetch with fair-share admission in front of ensure_fetch's memory
  // admission (the DES mirror of StorageNode::schedule_fetch).
  const auto fetch = [&](NodeState& ns, const Ctx& c, const std::string& array) {
    const auto it = arrays_.find(array);
    if (it == arrays_.end() || it->second.bytes <= kControlBytes) return;
    const ArrayState& st = it->second;
    if (st.resident_on.count(ns.node) != 0 || st.fetching_on.count(ns.node) != 0) return;
    const auto n = static_cast<std::size_t>(ns.node);
    if (!budgeted) {
      (void)try_start(ns, array);
      return;
    }
    auto& queue = deferred[n][c.idx];
    for (const Deferred& d : queue) {
      if (d.array == array) return;  // already waiting for admission
    }
    if (!fair[n].try_admit(c.idx, st.bytes, others_waiting(ns.node, c.idx))) {
      queue.push_back(Deferred{array, st.bytes, now_ns()});
      ++out.deferred_fetches;
      return;
    }
    if (try_start(ns, array)) {
      fair[n].charge(c.idx, st.bytes);
      flow_job[{ns.node, array}] = c.idx;
    }
  };

  // Grant deferred fetches in WDRR order while the budget allows.
  const auto drain_deferred = [&](NodeState& ns) {
    if (!budgeted) return;
    const auto n = static_cast<std::size_t>(ns.node);
    while (true) {
      auto& queues = deferred[n];
      std::vector<FairShare::Head> heads;
      for (auto qit = queues.begin(); qit != queues.end();) {
        auto& q = qit->second;
        // Entries whose array landed meanwhile (another job fetched it, or
        // a producer output it here) are satisfied already.
        while (!q.empty()) {
          const auto ait = arrays_.find(q.front().array);
          if (ait != arrays_.end() && ait->second.resident_on.count(ns.node) == 0 &&
              ait->second.fetching_on.count(ns.node) == 0) {
            break;
          }
          q.pop_front();
        }
        if (q.empty()) {
          qit = queues.erase(qit);
          continue;
        }
        heads.push_back(FairShare::Head{qit->first, q.front().bytes, q.front().since_ns});
        ++qit;
      }
      if (heads.empty()) return;
      const TenantId granted = fair[n].pick(heads, now_ns());
      if (granted == FairShare::kNone) return;
      auto& q = queues.at(granted);
      const Deferred d = q.front();
      q.pop_front();
      if (q.empty()) queues.erase(granted);
      if (try_start(ns, d.array)) {
        fair[n].charge(granted, d.bytes);
        flow_job[{ns.node, d.array}] = granted;
      } else {
        // Memory admission refused: put it back and stop — pressure clears
        // when running tasks finish or flows land.
        deferred[n][granted].push_front(d);
        return;
      }
    }
  };

  const auto schedule_node = [&](NodeState& ns) {
    using sched::StageDecision;
    using sched::StageSelect;
    const std::vector<Ctx*> order = job_order(ns.node);
    if (order.empty()) return;
    // 1+2. Re-probe residency and stage fully-resident candidates, per job.
    for (Ctx* c : order) {
      c->core->refresh(ns.node);
      while (true) {
        const StageDecision d = c->core->next_to_stage(ns.node, StageSelect::Resident);
        if (d.task == sched::kInvalidTask) break;
        c->core->stage(d.task, 0);
      }
    }
    // 3. Fill the shared compute slots round-robin over the jobs. The
    //    rotation is re-derived after every grant: a single call often fills
    //    several slots, and advancing rr without re-rotating lets the offset
    //    alias with the pick count (e.g. two jobs, two slots per wake-up →
    //    the same job wins the front position forever).
    auto& runs = running[static_cast<std::size_t>(ns.node)];
    while (static_cast<int>(runs.size()) < res_.compute_slots) {
      Ctx* picked = nullptr;
      TaskId t = sched::kInvalidTask;
      for (Ctx* c : job_order(ns.node)) {
        t = c->core->take_runnable(ns.node);
        if (t != sched::kInvalidTask) {
          picked = c;
          break;
        }
      }
      if (picked == nullptr) break;
      ++rr[static_cast<std::size_t>(ns.node)];
      const Task& task = picked->spec->graph->task(t);
      const double dur = task_duration(task);
      runs.emplace_back(picked->idx, t, now_ + dur);
      if (tracing) {
        obs::Event ev;
        ev.phase = obs::Phase::Complete;
        ev.cat = obs::intern("task");
        ev.name = obs::intern(task.name);
        ev.pid = ns.node;
        ev.tid = static_cast<std::int32_t>(runs.size()) - 1;
        ev.ts_ns = now_ns();
        ev.dur_ns = static_cast<std::uint64_t>(dur * 1e9);
        ev.nargs = 2;
        ev.arg_name[0] = obs::intern("task");
        ev.arg_val[0] = t;
        ev.arg_name[1] = obs::intern("job");
        ev.arg_val[1] = picked->idx;
        obs::TraceSession::instance().emit(ev);
      }
      for (const auto& in : task.inputs) {
        if (in.length <= kControlBytes) continue;
        ++ns.pins[in.array];
        ns.lru_tick[in.array] = ++ns.tick;
        record_heat(in.array);
      }
    }
    // 4. Stage missing-data tasks up to each job's window and issue their
    //    fetches through the fair-share arbiter.
    for (Ctx* c : order) {
      while (true) {
        const StageDecision d = c->core->next_to_stage(ns.node, StageSelect::Missing);
        if (d.task == sched::kInvalidTask) break;
        c->core->stage(d.task, 1);
        for (const auto& in : c->spec->graph->task(d.task).inputs) fetch(ns, *c, in.array);
      }
      for (const TaskId pending : c->core->pending_tasks(ns.node)) {
        for (const auto& in : c->spec->graph->task(pending).inputs) fetch(ns, *c, in.array);
      }
    }
    drain_deferred(ns);
  };

  const auto finish_task = [&](NodeState& ns, Ctx& c, TaskId t) {
    const Task& task = c.spec->graph->task(t);
    for (const auto& in : task.inputs) {
      if (in.length > kControlBytes) {
        auto pin = ns.pins.find(in.array);
        if (pin != ns.pins.end() && pin->second > 0) --pin->second;
      }
      release_reader(in.array);
    }
    for (const auto& out : task.outputs) {
      evict_for(ns, arrays_.at(out.array).bytes);
      make_resident(ns.node, out.array);
    }
    c.flops += task.est_flops;
    ++c.tasks;
    std::vector<std::pair<int, TaskId>> newly_assigned;
    c.core->finish(t, newly_assigned);
    if (c.core->all_settled()) {
      c.done = true;
      c.finish = now_;
    }
  };

  const auto all_done = [&] {
    for (const Ctx& c : ctxs) {
      if (!c.done) return false;
    }
    return true;
  };

  std::size_t total = 0;
  for (const SimJob& j : jobs) total += j.graph->size();
  std::size_t guard = 0;
  const std::size_t guard_limit = 100 * total + 100000;
  while (!all_done()) {
    DOOC_CHECK(++guard < guard_limit, "multi-job simulation event-loop guard tripped");
    for (auto& ns : nodes_) schedule_node(*ns);

    double dt = net_.next_completion_delta();
    for (int n = 0; n < num_nodes_; ++n) {
      for (const auto& [j, t, end] : running[static_cast<std::size_t>(n)]) {
        dt = std::min(dt, end - now_);
      }
    }
    for (const Ctx& c : ctxs) {
      if (!c.done && c.spec->arrival > now_ + 1e-12) dt = std::min(dt, c.spec->arrival - now_);
    }
    for (const auto& [when, n, a] : arriving_) dt = std::min(dt, when - now_);
    if (!std::isfinite(dt)) {
      bool progress_possible = false;
      for (const auto& ns : nodes_) {
        for (const Ctx& c : ctxs) {
          if (!active(c)) continue;
          if (c.core->backlog(ns->node) > 0 || c.core->pending(ns->node) > 0 ||
              c.core->runnable(ns->node) > 0) {
            progress_possible = true;
          }
        }
        if (!running[static_cast<std::size_t>(ns->node)].empty()) progress_possible = true;
      }
      DOOC_CHECK(progress_possible, "multi-job simulated execution deadlocked");
      now_ += 1e-3;
      continue;
    }
    dt = std::max(dt, 0.0);
    const auto finished = net_.advance(dt);
    now_ += dt;
    for (FlowId id : finished) {
      const auto [node, array] = flow_target_.at(id);
      flow_target_.erase(id);
      gpfs_flows_.erase(id);
      flow_start_.erase(id);
      auto& ns = *nodes_[static_cast<std::size_t>(node)];
      auto& st = arrays_.at(array);
      st.fetching_on.erase(node);
      ns.inflight_bytes -= st.bytes;
      if (budgeted) {
        const auto fj = flow_job.find({node, array});
        if (fj != flow_job.end()) {
          fair[static_cast<std::size_t>(node)].release(fj->second, st.bytes);
          flow_job.erase(fj);
        }
      }
      const double dec = decode_delay_s(st);
      if (st.readers_remaining > 0) {
        // Residency waits out the modeled decompression, same as run().
        if (dec > 0.0) {
          arriving_.emplace_back(now_ + dec, node, array);
        } else {
          make_resident(node, array);
        }
      }
      drain_deferred(ns);
    }
    // Decode-deferred deliveries whose virtual decode finished.
    for (auto it = arriving_.begin(); it != arriving_.end();) {
      if (std::get<0>(*it) <= now_ + 1e-12) {
        if (arrays_.at(std::get<2>(*it)).readers_remaining > 0) {
          make_resident(std::get<1>(*it), std::get<2>(*it));
        }
        it = arriving_.erase(it);
      } else {
        ++it;
      }
    }
    for (int n = 0; n < num_nodes_; ++n) {
      auto& runs = running[static_cast<std::size_t>(n)];
      for (std::size_t i = 0; i < runs.size();) {
        if (std::get<2>(runs[i]) <= now_ + 1e-12) {
          const auto [j, t, end] = runs[i];
          runs.erase(runs.begin() + static_cast<std::ptrdiff_t>(i));
          finish_task(*nodes_[static_cast<std::size_t>(n)], ctxs[j], t);
        } else {
          ++i;
        }
      }
    }
  }

  out.makespan = now_;
  out.disk_bytes = metrics_.disk_bytes;
  out.net_bytes = metrics_.net_bytes;
  for (const FairShare& f : fair) out.starvation_overrides += f.starvation_overrides();
  out.jobs.reserve(ctxs.size());
  for (const Ctx& c : ctxs) {
    SimJobMetrics jm;
    jm.job = c.idx;
    jm.arrival = c.spec->arrival;
    jm.finish = c.finish;
    jm.latency = c.finish - c.spec->arrival;
    jm.total_flops = c.flops;
    jm.tasks = c.tasks;
    out.jobs.push_back(jm);
  }
  metrics_ = SimMetrics{};
  return out;
}

}  // namespace dooc::sim
