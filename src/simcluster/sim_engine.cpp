#include "simcluster/sim_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace dooc::sim {

using sched::Task;
using sched::TaskId;

namespace {
/// Inputs smaller than this are control messages (sync tokens): their cost
/// is part of the sync task's barrier charge, not a modeled transfer.
constexpr std::uint64_t kControlBytes = 4096;

/// Emit a Complete event stamped in *virtual* nanoseconds. Same schema as
/// the real backend (pid = virtual node, cat "task"/"io"), so the trace
/// reader and dooc_tracecat work unchanged on simulated runs.
void emit_virtual(std::string_view cat, std::string_view name, int pid, int tid,
                  double start_s, double dur_s, std::string_view arg_name = {},
                  std::uint64_t arg_val = 0) {
  obs::Event ev;
  ev.phase = obs::Phase::Complete;
  ev.cat = obs::intern(cat);
  ev.name = obs::intern(name);
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = static_cast<std::uint64_t>(start_s * 1e9);
  ev.dur_ns = static_cast<std::uint64_t>(dur_s * 1e9);
  if (!arg_name.empty()) {
    ev.nargs = 1;
    ev.arg_name[0] = obs::intern(arg_name);
    ev.arg_val[0] = arg_val;
  }
  obs::TraceSession::instance().emit(ev);
}
}  // namespace

struct SimEngine::NodeState {
  int node = -1;
  std::vector<TaskId> ready;
  /// Concurrently running tasks (up to SimResources::compute_slots).
  std::vector<std::pair<TaskId, double>> running;  // (task, end time)
  // Memory accounting.
  std::uint64_t used_bytes = 0;
  std::uint64_t inflight_bytes = 0;
  std::map<std::string, std::uint64_t> lru_tick;  // resident arrays
  std::map<std::string, int> pins;
  std::uint64_t tick = 0;
};

SimEngine::~SimEngine() = default;

SimEngine::SimEngine(int num_nodes, SimResources resources,
                     std::map<std::string, solver::VirtualArray> arrays)
    : num_nodes_(num_nodes), res_(std::move(resources)), meta_(std::move(arrays)) {
  DOOC_REQUIRE(num_nodes > 0, "simulated cluster needs at least one node");
}

double SimEngine::task_duration(const Task& task) const {
  if (task.kind == "sync") return res_.sync_cost;
  if (task.kind == "multiply") {
    return task.est_flops / res_.compute_rate + res_.task_overhead;
  }
  if (task.kind == "sum" || task.kind == "aggregate") {
    std::uint64_t touched = 0;
    for (const auto& in : task.inputs) {
      if (in.length > kControlBytes) touched += in.length;
    }
    for (const auto& out : task.outputs) touched += out.length;
    return static_cast<double>(touched) / res_.mem_bw + res_.task_overhead;
  }
  return task.est_flops / res_.compute_rate + res_.task_overhead;
}

bool SimEngine::inputs_resident(const Task& task, int node) const {
  if (task.kind == "sync") return true;  // control-only
  for (const auto& in : task.inputs) {
    if (in.length <= kControlBytes) continue;
    const auto it = arrays_.find(in.array);
    if (it == arrays_.end() || it->second.resident_on.count(node) == 0) return false;
  }
  return true;
}

std::uint64_t SimEngine::resident_input_bytes(const Task& task, int node) const {
  std::uint64_t bytes = 0;
  for (const auto& in : task.inputs) {
    const auto it = arrays_.find(in.array);
    if (it != arrays_.end() && it->second.resident_on.count(node) != 0) bytes += in.length;
  }
  return bytes;
}

void SimEngine::evict_for(NodeState& ns, std::uint64_t incoming) {
  while (ns.used_bytes + ns.inflight_bytes + incoming > res_.node_memory) {
    // LRU over durable, unpinned resident arrays.
    std::string victim;
    std::uint64_t best_tick = 0;
    bool found = false;
    for (const auto& [name, tick] : ns.lru_tick) {
      const auto& st = arrays_.at(name);
      if (!st.durable) continue;
      auto pin = ns.pins.find(name);
      if (pin != ns.pins.end() && pin->second > 0) continue;
      if (!found || tick < best_tick) {
        victim = name;
        best_tick = tick;
        found = true;
      }
    }
    if (!found) return;  // allow overshoot (mirrors the real storage layer)
    auto& st = arrays_.at(victim);
    st.resident_on.erase(ns.node);
    ns.used_bytes -= st.bytes;
    ns.lru_tick.erase(victim);
    ns.pins.erase(victim);
  }
}

void SimEngine::make_resident(int node, const std::string& array) {
  auto& st = arrays_.at(array);
  if (st.resident_on.insert(node).second) {
    auto& ns = *nodes_[static_cast<std::size_t>(node)];
    ns.used_bytes += st.bytes;
    ns.lru_tick[array] = ++ns.tick;
  }
}

void SimEngine::ensure_fetch(NodeState& ns, const std::string& array) {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return;
  ArrayState& st = it->second;
  if (st.bytes <= kControlBytes) return;
  if (st.resident_on.count(ns.node) != 0 || st.fetching_on.count(ns.node) != 0) return;

  std::vector<ResourceId> path;
  bool is_gpfs = false;
  double own_cap = 0.0;
  if (st.durable) {
    // Filesystem read through the node's GPFS client and the shared
    // aggregate, individually perturbed by bandwidth noise.
    path = {gpfs_node_link_[static_cast<std::size_t>(ns.node)], gpfs_aggregate_};
    is_gpfs = true;
    SplitMix64 rng(res_.seed ^ (noise_state_++ * 0x9e3779b97f4a7c15ull));
    const double factor = 1.0 - res_.bw_noise * rng.next_double();
    own_cap = res_.node_read_cap * factor;
  } else {
    // Produced data: fetch over IB from a node that holds it.
    if (st.resident_on.empty()) return;  // producer not done yet
    int src = *st.resident_on.begin();
    for (int cand : st.resident_on) {
      if (cand == ns.node) return;  // already local (shouldn't happen)
      src = cand;
      break;
    }
    path = {ib_egress_[static_cast<std::size_t>(src)],
            ib_ingress_[static_cast<std::size_t>(ns.node)]};
  }

  // Memory admission control for the incoming copy.
  evict_for(ns, st.bytes);
  if (ns.used_bytes + ns.inflight_bytes + st.bytes > res_.node_memory &&
      ns.used_bytes + ns.inflight_bytes > 0) {
    return;  // try again later; something will drain
  }

  ns.inflight_bytes += st.bytes;
  st.fetching_on.insert(ns.node);
  const FlowId id = net_.start_flow(st.bytes, std::move(path), own_cap);
  flow_target_[id] = {ns.node, array};
  flow_start_[id] = now_;
  if (is_gpfs) {
    gpfs_flows_.insert(id);
    metrics_.disk_bytes += st.bytes;
  } else {
    metrics_.net_bytes += st.bytes;
  }
}

void SimEngine::schedule_node(NodeState& ns) {
  // 1. Start compute while slots are free and fully-resident ready tasks
  //    exist (a node's compute filters run concurrently on its cores).
  while (static_cast<int>(ns.running.size()) < res_.compute_slots && !ns.ready.empty()) {
    // Order candidates by policy (mirrors Engine::pick_locked).
    auto static_key = [&](TaskId t) {
      const Task& task = graph_->task(t);
      std::int64_t seq = task.seq;
      if (policy_ == sched::LocalPolicy::BackAndForth && (task.group % 2) != 0) seq = -seq;
      return std::make_pair(task.group, seq);
    };
    std::size_t best = ns.ready.size();
    std::uint64_t best_score = 0;
    for (std::size_t i = 0; i < ns.ready.size(); ++i) {
      const TaskId t = ns.ready[i];
      if (!inputs_resident(graph_->task(t), ns.node)) continue;
      if (best == ns.ready.size()) {
        best = i;
        best_score = resident_input_bytes(graph_->task(t), ns.node);
        continue;
      }
      bool better;
      if (policy_ == sched::LocalPolicy::DataAware) {
        const std::uint64_t score = resident_input_bytes(graph_->task(t), ns.node);
        better = score > best_score ||
                 (score == best_score && static_key(t) < static_key(ns.ready[best]));
        if (better) best_score = score;
      } else {
        better = static_key(t) < static_key(ns.ready[best]);
      }
      if (better) best = i;
    }
    if (best == ns.ready.size()) break;  // nothing resident-ready
    const TaskId t = ns.ready[best];
    ns.ready.erase(ns.ready.begin() + static_cast<std::ptrdiff_t>(best));
    const double dur = task_duration(graph_->task(t));
    ns.running.emplace_back(t, now_ + dur);
    if (obs::trace_enabled()) {
      // Slot index the task just took doubles as its compute-lane tid.
      emit_virtual("task", graph_->task(t).name, ns.node,
                   static_cast<int>(ns.running.size()) - 1, now_, dur, "task", t);
    }
    // Pin inputs for the duration.
    for (const auto& in : graph_->task(t).inputs) {
      if (in.length <= kControlBytes) continue;
      ++ns.pins[in.array];
      ns.lru_tick[in.array] = ++ns.tick;
    }
  }

  // 2. Keep the I/O pipeline full: prefetch inputs of the next ready tasks
  //    in *policy* order — under the data-aware policy a task whose big
  //    input is already resident and only misses a small vector part must
  //    be completed first, or its resident block gets evicted by the
  //    prefetches of later tasks.
  std::vector<TaskId> order = ns.ready;
  std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const Task& ta = graph_->task(a);
    const Task& tb = graph_->task(b);
    if (policy_ == sched::LocalPolicy::DataAware) {
      const std::uint64_t ra = resident_input_bytes(ta, ns.node);
      const std::uint64_t rb = resident_input_bytes(tb, ns.node);
      if (ra != rb) return ra > rb;
    }
    return std::make_pair(ta.group, ta.seq) < std::make_pair(tb.group, tb.seq);
  });
  // Issue fetches for the first `prefetch_window` tasks that are actually
  // missing data; tasks already satisfied from resident blocks don't use
  // up the window.
  int window = res_.prefetch_window;
  for (const TaskId t : order) {
    if (window <= 0) break;
    const Task& task = graph_->task(t);
    if (task.kind == "sync") continue;
    if (inputs_resident(task, ns.node)) continue;
    for (const auto& in : task.inputs) ensure_fetch(ns, in.array);
    --window;
  }
}

void SimEngine::release_reader(const std::string& array) {
  auto it = arrays_.find(array);
  if (it == arrays_.end()) return;
  ArrayState& st = it->second;
  if (--st.readers_remaining > 0) return;
  // Last reader done: drop every copy (intermediates and spent inputs).
  for (int node : st.resident_on) {
    auto& ns = *nodes_[static_cast<std::size_t>(node)];
    ns.used_bytes -= st.bytes;
    ns.lru_tick.erase(array);
    ns.pins.erase(array);
  }
  st.resident_on.clear();
}

void SimEngine::finish_task(NodeState& ns, TaskId t) {
  const Task& task = graph_->task(t);

  // Unpin inputs and account their consumption.
  for (const auto& in : task.inputs) {
    if (in.length > kControlBytes) {
      auto pin = ns.pins.find(in.array);
      if (pin != ns.pins.end() && pin->second > 0) --pin->second;
    }
    release_reader(in.array);
  }
  // Outputs become resident here.
  for (const auto& out : task.outputs) {
    evict_for(ns, arrays_.at(out.array).bytes);
    make_resident(ns.node, out.array);
  }
  metrics_.total_flops += task.est_flops;
  ++completed_;

  for (TaskId s : graph_->successors(t)) {
    if (--deps_[s] == 0) {
      nodes_[static_cast<std::size_t>(assignment_[s])]->ready.push_back(s);
    }
  }
}

SimMetrics SimEngine::run(const sched::TaskGraph& graph, sched::LocalPolicy policy) {
  DOOC_REQUIRE(graph.built(), "run() needs a built task graph");
  policy_ = policy;
  graph_ = &graph;
  now_ = 0;
  completed_ = 0;
  metrics_ = SimMetrics{};
  metrics_.nodes = num_nodes_;
  metrics_.cores_per_node = res_.cores_per_node;
  net_ = FlowNetwork{};
  flow_target_.clear();
  flow_start_.clear();
  gpfs_flows_.clear();
  noise_state_ = 0;

  // Resources.
  gpfs_node_link_.clear();
  ib_egress_.clear();
  ib_ingress_.clear();
  gpfs_aggregate_ = net_.add_resource("gpfs", res_.aggregate_read_cap);
  for (int n = 0; n < num_nodes_; ++n) {
    gpfs_node_link_.push_back(
        net_.add_resource("gpfs_client_" + std::to_string(n), res_.node_read_cap));
    ib_egress_.push_back(net_.add_resource("ib_out_" + std::to_string(n), res_.ib_link));
    ib_ingress_.push_back(net_.add_resource("ib_in_" + std::to_string(n), res_.ib_link));
  }

  // Array runtime state.
  arrays_.clear();
  for (const auto& [name, meta] : meta_) {
    ArrayState st;
    st.bytes = meta.bytes;
    st.home = meta.home_node;
    st.durable = meta.durable;
    arrays_.emplace(name, st);
  }
  for (TaskId t = 0; t < graph.size(); ++t) {
    for (const auto& in : graph.task(t).inputs) {
      auto it = arrays_.find(in.array);
      DOOC_REQUIRE(it != arrays_.end(), "task reads unknown array '" + in.array + "'");
      ++it->second.readers_remaining;
    }
  }

  // Global assignment (same affinity heuristic as the real engine).
  class VirtualLocator final : public sched::DataLocator {
   public:
    explicit VirtualLocator(const std::map<std::string, solver::VirtualArray>* m) : m_(m) {}
    [[nodiscard]] int home_of(const storage::ArrayName& name) const override {
      auto it = m_->find(name);
      return it == m_->end() ? -1 : it->second.home_node;
    }

   private:
    const std::map<std::string, solver::VirtualArray>* m_;
  };
  sched::GlobalScheduler global(num_nodes_);
  VirtualLocator locator(&meta_);
  assignment_ = global.assign(graph, locator);

  deps_.assign(graph.size(), 0);
  for (TaskId t = 0; t < graph.size(); ++t) {
    deps_[t] = static_cast<int>(graph.predecessors(t).size());
  }
  nodes_.clear();
  for (int n = 0; n < num_nodes_; ++n) {
    auto ns = std::make_unique<NodeState>();
    ns->node = n;
    nodes_.push_back(std::move(ns));
  }
  for (TaskId t = 0; t < graph.size(); ++t) {
    if (deps_[t] == 0) nodes_[static_cast<std::size_t>(assignment_[t])]->ready.push_back(t);
  }

  // Main event loop.
  const std::size_t total = graph.size();
  std::size_t guard = 0;
  const std::size_t guard_limit = 100 * total + 100000;
  while (completed_ < total) {
    DOOC_CHECK(++guard < guard_limit, "simulation event-loop guard tripped");
    for (auto& ns : nodes_) schedule_node(*ns);

    double dt = net_.next_completion_delta();
    for (const auto& ns : nodes_) {
      for (const auto& [t, end] : ns->running) dt = std::min(dt, end - now_);
    }
    if (!std::isfinite(dt)) {
      // Nothing in flight: either we just enabled work (loop again) or the
      // graph is stuck.
      bool progress_possible = false;
      for (const auto& ns : nodes_) {
        if (!ns->running.empty() || !ns->ready.empty()) progress_possible = true;
      }
      DOOC_CHECK(progress_possible, "simulated execution deadlocked");
      // A node has ready tasks but can neither run nor fetch — this only
      // happens transiently when fetches were deferred on memory pressure;
      // re-running schedule_node after other nodes drained resolves it.
      // Guard against a true livelock by charging a small idle step.
      now_ += 1e-3;
      continue;
    }
    dt = std::max(dt, 0.0);
    if (!gpfs_flows_.empty()) metrics_.gpfs_busy += dt;
    const auto finished = net_.advance(dt);
    now_ += dt;
    for (FlowId id : finished) {
      const auto [node, array] = flow_target_.at(id);
      flow_target_.erase(id);
      const bool was_gpfs = gpfs_flows_.erase(id) != 0;
      auto& ns = *nodes_[static_cast<std::size_t>(node)];
      auto& st = arrays_.at(array);
      if (const auto sit = flow_start_.find(id); sit != flow_start_.end()) {
        if (obs::trace_enabled()) {
          emit_virtual("io", was_gpfs ? "gpfs_read" : "ib_fetch", node,
                       100 + static_cast<int>(id % 16), sit->second, now_ - sit->second,
                       "bytes", st.bytes);
        }
        flow_start_.erase(sit);
      }
      st.fetching_on.erase(node);
      ns.inflight_bytes -= st.bytes;
      if (st.readers_remaining > 0) make_resident(node, array);
    }
    for (auto& ns : nodes_) {
      for (std::size_t i = 0; i < ns->running.size();) {
        if (ns->running[i].second <= now_ + 1e-12) {
          const TaskId t = ns->running[i].first;
          ns->running.erase(ns->running.begin() + static_cast<std::ptrdiff_t>(i));
          finish_task(*ns, t);
        } else {
          ++i;
        }
      }
    }
  }

  metrics_.makespan = now_;
  graph_ = nullptr;
  return metrics_;
}

}  // namespace dooc::sim
