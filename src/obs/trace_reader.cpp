#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace dooc::obs {

namespace {

/// Minimal recursive-descent JSON reader — just enough for trace-event
/// documents (objects, arrays, strings, numbers, bools, null).
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::vector<ParsedEvent> read_document() {
    skip_ws();
    std::vector<ParsedEvent> events;
    if (peek() == '[') {
      read_event_array(events);
    } else {
      expect('{');
      bool found = false;
      while (true) {
        skip_ws();
        const std::string key = read_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "traceEvents") {
          read_event_array(events);
          found = true;
        } else {
          skip_value();
        }
        skip_ws();
        if (peek() == ',') { ++pos_; continue; }
        expect('}');
        break;
      }
      if (!found) fail("no traceEvents array");
    }
    return events;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("trace JSON parse error at byte " + std::to_string(pos_) + ": " +
                             why);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // ASCII control codes are all we ever emit; map others to '?'.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double read_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  /// Flow-event "id": we export it as a decimal string (64-bit ids exceed
  /// double precision) but also accept bare numbers from other producers.
  std::uint64_t read_flow_id() {
    if (peek() == '"') {
      const std::string s = read_string();
      try {
        return std::stoull(s, nullptr, 0);
      } catch (const std::exception&) {
        return 0;  // non-numeric id (some tools use strings): no correlation
      }
    }
    return static_cast<std::uint64_t>(read_number());
  }

  void skip_value() {
    skip_ws();
    switch (peek()) {
      case '"': read_string(); return;
      case '{': skip_composite('{', '}'); return;
      case '[': skip_composite('[', ']'); return;
      case 't': pos_ += 4; return;  // true
      case 'f': pos_ += 5; return;  // false
      case 'n': pos_ += 4; return;  // null
      default: read_number(); return;
    }
  }

  void skip_composite(char open, char close) {
    expect(open);
    int depth = 1;
    while (depth > 0) {
      if (pos_ >= text_.size()) fail("unterminated value");
      const char c = text_[pos_];
      if (c == '"') {
        read_string();
        continue;
      }
      if (c == open) ++depth;
      if (c == close) --depth;
      ++pos_;
    }
  }

  void read_args(ParsedEvent& ev) {
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return; }
    while (true) {
      skip_ws();
      const std::string key = read_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (peek() == '"' || peek() == '{' || peek() == '[' || peek() == 't' ||
          peek() == 'f' || peek() == 'n') {
        skip_value();
      } else {
        ev.args[key] = read_number();
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      break;
    }
  }

  ParsedEvent read_event() {
    ParsedEvent ev;
    expect('{');
    while (true) {
      skip_ws();
      const std::string key = read_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "name") ev.name = read_string();
      else if (key == "cat") ev.cat = read_string();
      else if (key == "ph") { const std::string p = read_string(); ev.phase = p.empty() ? '?' : p[0]; }
      else if (key == "ts") ev.ts_us = read_number();
      else if (key == "dur") ev.dur_us = read_number();
      else if (key == "pid") ev.pid = static_cast<int>(read_number());
      else if (key == "tid") ev.tid = static_cast<int>(read_number());
      else if (key == "id") ev.flow_id = read_flow_id();
      else if (key == "args") read_args(ev);
      else skip_value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      break;
    }
    return ev;
  }

  void read_event_array(std::vector<ParsedEvent>& out) {
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return; }
    while (true) {
      skip_ws();
      out.push_back(read_event());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      break;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_io_category(const std::string& cat) {
  return cat.find("io") != std::string::npos || cat == "storage";
}

/// Total length of the union of [start, end) intervals.
double union_length(std::vector<std::pair<double, double>> iv) {
  std::sort(iv.begin(), iv.end());
  double total = 0.0, cur_start = 0.0, cur_end = -1.0;
  bool open = false;
  for (const auto& [s, e] : iv) {
    if (e <= s) continue;
    if (!open || s > cur_end) {
      if (open) total += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
      open = true;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (open) total += cur_end - cur_start;
  return total;
}

/// Length of the intersection of two interval unions.
double intersection_length(std::vector<std::pair<double, double>> a,
                           std::vector<std::pair<double, double>> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Merge each side into disjoint intervals first, then sweep.
  auto merge = [](std::vector<std::pair<double, double>>& iv) {
    std::vector<std::pair<double, double>> out;
    for (const auto& [s, e] : iv) {
      if (e <= s) continue;
      if (!out.empty() && s <= out.back().second) {
        out.back().second = std::max(out.back().second, e);
      } else {
        out.emplace_back(s, e);
      }
    }
    iv = std::move(out);
  };
  merge(a);
  merge(b);
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) ++i; else ++j;
  }
  return total;
}

}  // namespace

std::vector<ParsedEvent> parse_chrome_trace(const std::string& json) {
  return JsonReader(json).read_document();
}

std::vector<ParsedEvent> load_chrome_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open trace file '" + path + "'");
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_chrome_trace(text);
}

TraceSummary summarize(const std::vector<ParsedEvent>& events) {
  TraceSummary s;
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  std::map<std::string, std::vector<std::pair<double, double>>> by_cat;
  std::vector<std::pair<double, double>> io, compute;
  for (const auto& ev : events) {
    if (ev.phase != 'X') continue;
    const double end = ev.ts_us + ev.dur_us;
    lo = std::min(lo, ev.ts_us);
    hi = std::max(hi, end);
    by_cat[ev.cat].emplace_back(ev.ts_us, end);
    s.category_sum_us[ev.cat] += ev.dur_us;
    ++s.category_events[ev.cat];
    if (is_io_category(ev.cat)) io.emplace_back(ev.ts_us, end);
    if (ev.cat == "task") compute.emplace_back(ev.ts_us, end);
  }
  if (hi > lo) s.wall_us = hi - lo;
  for (auto& [cat, iv] : by_cat) s.category_busy_us[cat] = union_length(iv);
  s.io_busy_us = union_length(io);
  s.compute_busy_us = union_length(compute);
  s.io_overlapped_us = intersection_length(std::move(io), std::move(compute));
  return s;
}

WaitAnalysis analyze_waits(const std::vector<ParsedEvent>& events, const std::string& name) {
  std::vector<double> all;
  std::map<int, std::vector<double>> by_node;
  std::map<int, std::vector<double>> by_group;
  for (const auto& ev : events) {
    if (ev.phase != 'X' || ev.cat != "sched" || ev.name != name) continue;
    all.push_back(ev.dur_us);
    by_node[ev.pid].push_back(ev.dur_us);
    const auto g = ev.args.find("group");
    by_group[g != ev.args.end() ? static_cast<int>(g->second) : -1].push_back(ev.dur_us);
  }
  const auto stats = [](std::vector<double>& durs) {
    WaitStats s;
    s.count = durs.size();
    if (durs.empty()) return s;
    std::sort(durs.begin(), durs.end());
    for (const double d : durs) s.total_us += d;
    s.mean_us = s.total_us / static_cast<double>(durs.size());
    const auto rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(durs.size())));
    s.p99_us = durs[rank > 0 ? rank - 1 : 0];
    s.max_us = durs.back();
    return s;
  };
  WaitAnalysis a;
  a.overall = stats(all);
  for (auto& [node, durs] : by_node) a.per_node[node] = stats(durs);
  for (auto& [group, durs] : by_group) a.per_group[group] = stats(durs);
  return a;
}

std::vector<ParsedEvent> slowest(const std::vector<ParsedEvent>& events, std::size_t n,
                                 const std::string& cat) {
  std::vector<ParsedEvent> picked;
  for (const auto& ev : events) {
    if (ev.phase != 'X') continue;
    if (!cat.empty() && ev.cat != cat) continue;
    picked.push_back(ev);
  }
  std::sort(picked.begin(), picked.end(),
            [](const ParsedEvent& a, const ParsedEvent& b) { return a.dur_us > b.dur_us; });
  if (picked.size() > n) picked.resize(n);
  return picked;
}

MetricsSnapshot snapshot_from_trace(const std::vector<ParsedEvent>& events) {
  MetricsSnapshot snap;

  // 'C' samples: latest ts wins per (name, node).
  std::map<MetricsSnapshot::Key, double> gauge_ts;

  // "metrics_hist" records are cumulative: latest ts wins per field and
  // per bucket, then the fields fold back into a Log2Histogram.
  struct HistRebuild {
    std::map<std::string, std::pair<double, double>> fields;  ///< name -> (ts, value)
    std::map<int, std::pair<double, double>> buckets;         ///< index -> (ts, count)
  };
  std::map<MetricsSnapshot::Key, HistRebuild> hists;

  for (const auto& ev : events) {
    if (ev.phase == 'C') {
      const MetricsSnapshot::Key key{ev.name, ev.pid};
      auto [it, fresh] = gauge_ts.try_emplace(key, ev.ts_us);
      if (!fresh && ev.ts_us < it->second) continue;
      it->second = ev.ts_us;
      const auto v = ev.args.find("value");
      auto& e = snap.entries[key];
      e.kind = MetricKind::Gauge;
      e.value = v != ev.args.end() ? v->second : 0.0;
    } else if (ev.phase == 'i' && ev.cat == "metrics_hist") {
      HistRebuild& h = hists[MetricsSnapshot::Key{ev.name, ev.pid}];
      const auto bucket = ev.args.find("bucket");
      const auto bcount = ev.args.find("bcount");
      if (bucket != ev.args.end() && bcount != ev.args.end()) {
        auto& slot = h.buckets[static_cast<int>(bucket->second)];
        if (ev.ts_us >= slot.first) slot = {ev.ts_us, bcount->second};
      } else {
        for (const auto& [name, value] : ev.args) {
          auto [it, fresh] = h.fields.try_emplace(name, ev.ts_us, value);
          if (!fresh && ev.ts_us >= it->second.first) it->second = {ev.ts_us, value};
        }
      }
    }
  }

  for (const auto& [key, h] : hists) {
    const auto field = [&](const char* name) {
      const auto it = h.fields.find(name);
      return it != h.fields.end() ? it->second.second : 0.0;
    };
    const auto n = static_cast<std::uint64_t>(field("count"));
    const RunningStats stats = RunningStats::from_parts(n, field("mean"), field("m2"),
                                                        field("sum"), field("min"), field("max"));
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(Log2Histogram::kBuckets), 0);
    for (const auto& [b, slot] : h.buckets) {
      if (b >= 0 && b < Log2Histogram::kBuckets) {
        counts[static_cast<std::size_t>(b)] = static_cast<std::uint64_t>(slot.second);
      }
    }
    auto& e = snap.entries[key];
    e.kind = MetricKind::Histogram;
    e.hist = Log2Histogram::from_parts(stats, counts);
  }
  return snap;
}

}  // namespace dooc::obs
