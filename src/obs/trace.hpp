// dooc::obs trace layer (half 1 of the observability subsystem).
//
// Timestamped events (task begin/end, block load/evict/hit/miss, stream
// credit stalls, prefetch issue/complete, simulated virtual-time events)
// flow through lock-free per-thread rings into a process-wide TraceSession
// which exports Chrome trace-event JSON — loadable in chrome://tracing or
// https://ui.perfetto.dev. Virtual nodes map to Chrome pids, worker
// threads to tids, so a 3-node run renders as three process lanes.
//
// Tracing is compiled in but OFF by default: every instrumentation site
// guards on trace_enabled(), a single relaxed atomic load, so the disabled
// path costs one predictable branch. Enable programmatically
// (TraceSession::start), via Options key "trace-out", or via the
// environment (DOOC_TRACE=out.json).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"

namespace dooc::obs {

namespace detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// The fast gate every instrumentation site checks first.
inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Chrome trace-event phases we emit. Complete carries ts+dur ("X"),
/// Instant is a point marker ("i"), Counter a sampled value ("C").
/// FlowStart/FlowStep/FlowEnd ("s"/"t"/"f") are causal arrows between
/// spans, correlated by Event::id — Perfetto draws them, and
/// obs::CausalGraph rebuilds the producer→consumer DAG from them.
enum class Phase : std::uint8_t { Complete, Instant, Counter, FlowStart, FlowStep, FlowEnd };

/// Fixed-size POD event record (what the rings store). Strings are interned
/// ids resolved by the session at export time.
struct Event {
  std::uint64_t ts_ns = 0;   ///< process-epoch ns, or virtual ns (sim runs)
  std::uint64_t dur_ns = 0;  ///< Complete events only
  std::uint64_t id = 0;      ///< flow correlation id (Flow* phases only)
  std::uint32_t name = 0;    ///< interned
  std::uint32_t cat = 0;     ///< interned category ("task", "io", "storage", ...)
  std::int32_t pid = -1;     ///< virtual node id (-1 = whole process)
  std::int32_t tid = 0;      ///< worker-thread / lane id
  Phase phase = Phase::Instant;
  std::uint8_t nargs = 0;
  std::uint32_t arg_name[3] = {0, 0, 0};
  std::uint64_t arg_val[3] = {0, 0, 0};
};

/// Intern a string for use in Event::name / cat / arg_name. Cheap for
/// strings already seen (shared-lock hash lookup); never forgets.
std::uint32_t intern(std::string_view s);
/// Reverse lookup (export/tests). Lifetime: until process exit.
const std::string& interned(std::uint32_t id);
/// Number of distinct strings interned so far (exported trace metadata).
std::size_t intern_count();

/// Session-level facts embedded in the exported trace as a Chrome metadata
/// record ("ph":"M", name "dooc_trace_stats") so a consumer can tell a
/// complete trace from one that lost events to full rings.
struct TraceMeta {
  std::uint64_t dropped_events = 0;
  std::uint64_t ring_capacity = 0;    ///< per-thread ring slots
  std::uint64_t interned_strings = 0;
};

class TraceSession {
 public:
  static TraceSession& instance();

  /// Enable tracing. Events collect in memory; stop() writes them to
  /// `path` as Chrome trace JSON (empty path = collect only).
  void start(std::string path = {});
  /// Disable, drain every thread ring, write the JSON file if a path was
  /// given, and return the collected events (sorted by ts).
  std::vector<Event> stop();
  /// Reads DOOC_TRACE from the environment and start()s if set. Invoked
  /// once automatically; harmless to call again.
  void init_from_env();

  [[nodiscard]] bool active() const noexcept { return trace_enabled(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Events rejected across all rings since start() (full-ring drops are
  /// recovered by self-draining, so this stays 0 in practice).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Queue one event (any thread). No-op unless the session is active.
  void emit(const Event& ev);

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

 private:
  TraceSession() = default;
  struct Impl;
  Impl& impl();

  std::string path_;
};

/// Write events as Chrome trace-event JSON ({"traceEvents":[...]}).
/// `meta`, when given, is embedded as a "dooc_trace_stats" metadata record.
void write_chrome_trace(const std::string& path, const std::vector<Event>& events,
                        const TraceMeta* meta = nullptr);
/// Same, to a string (tests).
std::string chrome_trace_json(const std::vector<Event>& events, const TraceMeta* meta = nullptr);

// ---- convenience emitters --------------------------------------------------

inline void emit_complete(std::uint32_t cat, std::uint32_t name, std::int32_t pid,
                          std::int32_t tid, std::uint64_t ts_ns, std::uint64_t dur_ns) {
  Event ev;
  ev.phase = Phase::Complete;
  ev.cat = cat;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  TraceSession::instance().emit(ev);
}

inline void emit_instant(std::uint32_t cat, std::uint32_t name, std::int32_t pid,
                         std::int32_t tid) {
  Event ev;
  ev.phase = Phase::Instant;
  ev.cat = cat;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = TraceClock::now_ns();
  TraceSession::instance().emit(ev);
}

inline void emit_counter(std::uint32_t cat, std::uint32_t name, std::int32_t pid,
                         std::uint64_t value) {
  Event ev;
  ev.phase = Phase::Counter;
  ev.cat = cat;
  ev.name = name;
  ev.pid = pid;
  ev.ts_ns = TraceClock::now_ns();
  ev.nargs = 1;
  ev.arg_name[0] = intern("value");
  ev.arg_val[0] = value;
  TraceSession::instance().emit(ev);
}

/// One point of a causal flow (s/t/f). The correlation id ties the points
/// of one flow together; `ts_ns` must sit inside (or on the edge of) the
/// span the point should bind to, on the same pid/tid lane.
inline void emit_flow(Phase phase, std::uint32_t cat, std::uint32_t name, std::int32_t pid,
                      std::int32_t tid, std::uint64_t ts_ns, std::uint64_t flow_id,
                      std::uint32_t arg_name = 0, std::uint64_t arg_val = 0,
                      std::uint32_t arg2_name = 0, std::uint64_t arg2_val = 0) {
  Event ev;
  ev.phase = phase;
  ev.cat = cat;
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = ts_ns;
  ev.id = flow_id;
  if (arg_name != 0) {
    ev.nargs = 1;
    ev.arg_name[0] = arg_name;
    ev.arg_val[0] = arg_val;
  }
  if (arg2_name != 0) {
    ev.arg_name[ev.nargs] = arg2_name;
    ev.arg_val[ev.nargs] = arg2_val;
    ++ev.nargs;
  }
  TraceSession::instance().emit(ev);
}

/// A small per-thread lane id for Chrome tids: stable, dense, assigned on
/// first use (worker threads come and go; raw OS tids are sparse).
std::int32_t current_thread_lane();

/// RAII span: records its construction time, emits one Complete event at
/// destruction. Nesting falls out of Chrome's stacking of X events that
/// share a tid. Construct only behind trace_enabled() — the object itself
/// does not re-check.
class Span {
 public:
  Span(std::string_view cat, std::string_view name, std::int32_t pid,
       std::int32_t tid = current_thread_lane()) {
    ev_.phase = Phase::Complete;
    ev_.cat = intern(cat);
    ev_.name = intern(name);
    ev_.pid = pid;
    ev_.tid = tid;
    ev_.ts_ns = TraceClock::now_ns();
  }

  Span& arg(std::string_view name, std::uint64_t value) {
    if (ev_.nargs < 3) {
      ev_.arg_name[ev_.nargs] = intern(name);
      ev_.arg_val[ev_.nargs] = value;
      ++ev_.nargs;
    }
    return *this;
  }

  /// Elapsed so far (also the recorded duration once destroyed).
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return TraceClock::now_ns() - ev_.ts_ns;
  }

  ~Span() {
    ev_.dur_ns = elapsed_ns();
    TraceSession::instance().emit(ev_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Event ev_;
};

}  // namespace dooc::obs
