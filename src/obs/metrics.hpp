// dooc::obs metrics registry (half 2 of the observability subsystem).
//
// Named counters, gauges and histograms with per-node scoping: a metric is
// identified by (name, node), node -1 meaning runtime-wide. Counters and
// gauges are relaxed atomics (always on — same cost class as the storage
// layer's existing StorageStats); histograms reuse Log2Histogram under a
// mutex and sit on paths where the measured operation dominates (I/O,
// stream stalls). Snapshots are plain values that merge associatively, so
// per-node snapshots roll up into cluster totals and benches print them
// with to_text().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"

namespace dooc::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double get() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void add(double x) noexcept {
    std::lock_guard lock(mutex_);
    hist_.add(x);
  }
  [[nodiscard]] Log2Histogram get() const {
    std::lock_guard lock(mutex_);
    return hist_;
  }
  void reset() {
    std::lock_guard lock(mutex_);
    hist_ = Log2Histogram{};
  }

 private:
  mutable std::mutex mutex_;
  Log2Histogram hist_;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Point-in-time copy of the registry (or a subset). Values only — safe to
/// merge, ship, diff and print.
struct MetricsSnapshot {
  struct Key {
    std::string name;
    int node = -1;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    MetricKind kind = MetricKind::Counter;
    std::uint64_t count = 0;  ///< Counter value
    double value = 0.0;       ///< Gauge value
    Log2Histogram hist;       ///< Histogram contents
  };

  std::map<Key, Entry> entries;

  /// Associative, commutative combine: counters add, gauges keep the
  /// non-default (last-written wins on conflict), histograms merge.
  void merge(const MetricsSnapshot& other);

  /// "name[node]  kind  value" table; histograms print count/mean/p50/p99.
  [[nodiscard]] std::string to_text() const;

  /// Prometheus text exposition format: one `# TYPE` line per metric name,
  /// samples labeled {node="n"} (node -1 omitted), histograms exported as
  /// <name>_count / _sum / _max summaries. Stable-sorted (the underlying
  /// map is ordered), so output is diffable across runs.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Process-wide registry. Lookups take a mutex — resolve references once
/// (constructor time) and keep the pointer; the metric objects live for
/// the process lifetime.
class Metrics {
 public:
  static Metrics& instance();

  Counter& counter(const std::string& name, int node = -1);
  Gauge& gauge(const std::string& name, int node = -1);
  Histogram& histogram(const std::string& name, int node = -1);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (benches/tests isolating a phase).
  void reset();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

 private:
  Metrics() = default;
  struct Slot;
  Slot& slot(const std::string& name, int node, MetricKind kind);

  struct Impl;
  Impl& impl() const;
};

/// Periodically flushes the registry's counters and gauges into the trace
/// as Chrome Counter events (cat "metrics", pid = metric node), so a
/// Perfetto timeline shows cache-hit counts, inflight bytes and completion
/// queue depth *over time* next to the spans that caused them. A no-op
/// while tracing is disabled. RAII: sampling stops (with one final flush)
/// on destruction.
class MetricsSampler {
 public:
  explicit MetricsSampler(std::chrono::milliseconds interval = std::chrono::milliseconds(10));
  ~MetricsSampler();

  /// Emit one Counter event per registered counter/gauge right now
  /// (histograms are distributions, not time series — skipped).
  static void flush_once();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dooc::obs
