// Lock-free single-producer / single-consumer ring of trace events.
//
// Each tracing thread owns one ring: the owner pushes (producer side), and
// either the TraceSession drains it at stop() or the owner drains its own
// ring when full — both consumer roles are serialized by the session's
// drain mutex, so the SPSC invariant holds. A push onto a full ring fails
// (drop-newest) so the producer never touches slots the consumer may be
// reading; callers that must not lose events flush first and retry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dooc::obs {

template <typename Event>
class EventRing {
 public:
  explicit EventRing(std::size_t capacity_pow2 = 1 << 13)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {
    static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side (owning thread only). False when full. A failed push is
  /// not yet a drop — the caller may flush and retry; it records the drop
  /// with note_dropped() only when it gives the event up.
  bool try_push(const Event& ev) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = ev;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Record one abandoned event (push failed and the caller won't retry).
  void note_dropped() noexcept { dropped_.fetch_add(1, std::memory_order_relaxed); }

  /// Consumer side (hold the session drain mutex). Appends to `out`.
  std::size_t drain(std::vector<Event>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    for (; tail != head; ++tail) out.push_back(slots_[tail & mask_]);
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  /// Events abandoned after a failed push (never silently lost:
  /// exported traces report this count).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Event> slots_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace dooc::obs
