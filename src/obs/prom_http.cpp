#include "obs/prom_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace dooc::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 4096;

sockaddr_in loopback_addr(int port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return sa;
}

/// Read until the blank line ending the request head, a cap, a timeout or
/// EOF. We never look past the head — scrapes are bodyless GETs.
bool read_request_head(int fd, int timeout_ms) {
  std::string head;
  char buf[512];
  while (head.size() < kMaxRequestBytes) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) return false;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos || head.find("\n\n") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

PromHttpServer::PromHttpServer(int port, Provider provider) : provider_(std::move(provider)) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(std::string("metrics endpoint socket(): ") + std::strerror(errno));
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in sa = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw IoError("metrics endpoint bind(127.0.0.1:" + std::to_string(port) + "): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve(); });
}

PromHttpServer::~PromHttpServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void PromHttpServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, 200);  // bounded wait so stop_ is noticed
    if (r <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (read_request_head(client, 1000)) {
      std::string body;
      try {
        body = provider_ ? provider_() : std::string{};
      } catch (const std::exception& e) {
        body = std::string("# provider error: ") + e.what() + "\n";
      }
      std::string resp = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n";
      resp += "Content-Length: " + std::to_string(body.size()) + "\r\n";
      resp += "Connection: close\r\n\r\n";
      resp += body;
      send_all(client, resp);
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(client);
  }
}

std::string http_get(const std::string& host, int port, const std::string& path,
                     int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(std::string("http_get socket(): ") + std::strerror(errno));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw IoError("http_get wants a dotted IPv4 host, got '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw IoError("http_get connect(" + host + ":" + std::to_string(port) + "): " + err);
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  send_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, timeout_ms);
    if (r <= 0) {
      ::close(fd);
      throw IoError("http_get: timed out reading from " + host + ":" + std::to_string(port));
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      throw IoError("http_get recv(): " + err);
    }
    if (n == 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t line_end = resp.find("\r\n");
  if (line_end == std::string::npos || resp.compare(0, 5, "HTTP/") != 0) {
    throw IoError("http_get: malformed response from " + host + ":" + std::to_string(port));
  }
  const std::string status_line = resp.substr(0, line_end);
  if (status_line.find(" 200 ") == std::string::npos) {
    throw IoError("http_get: non-200 status '" + status_line + "'");
  }
  const std::size_t body_at = resp.find("\r\n\r\n");
  if (body_at == std::string::npos) return {};
  return resp.substr(body_at + 4);
}

std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    PromSample s;
    // name, optional {label="..."} block, whitespace, value.
    std::size_t name_end = line.find_first_of("{ \t");
    if (name_end == std::string::npos) continue;
    s.name = line.substr(0, name_end);
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string::npos) continue;
      const std::string labels = line.substr(name_end + 1, close - name_end - 1);
      const std::size_t node_at = labels.find("node=\"");
      if (node_at != std::string::npos) {
        s.node = std::atoi(labels.c_str() + node_at + 6);
      }
      value_at = close + 1;
    }
    const std::size_t digits = line.find_first_not_of(" \t", value_at);
    if (digits == std::string::npos) continue;
    char* parse_end = nullptr;
    const double v = std::strtod(line.c_str() + digits, &parse_end);
    if (parse_end == line.c_str() + digits) continue;
    s.value = v;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dooc::obs
