// dooc::obs::causal — causality analysis over the trace stream.
//
// The trace layer's flow events ('s'/'t'/'f', correlated by a 64-bit id)
// link producer-task-end → block → consumer-task-start and
// read_async-issue → completion-delivery → wait-end. This module rebuilds
// that DAG from a parsed trace (engine or DES — same schema, real or
// virtual time), extracts the longest weighted path bounding the makespan,
// attributes each path segment to a blame category (compute, demand I/O,
// prefetch-shadowed I/O, scheduler wait, stream credit stall), and
// re-times the DAG under counterfactuals ("what if storage were free?").
//
// Correlation-id rules (shared by sched::Engine and simcluster::SimEngine):
//   dep flows:  id = kFlowDep  | fnv1a(array name)        — one per array,
//               valid because storage arrays are write-once (immutability
//               contract): the array name uniquely names its producer.
//   load flows: id = kFlowLoad | fnv1a(array name, offset) — one per block
//               read; re-reads after eviction reuse the id, so the graph
//               splits instances at each 's' point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_reader.hpp"

namespace dooc::obs::causal {

// ---- correlation ids --------------------------------------------------------

/// Namespace bits (top two of the id) keep the flow families disjoint.
inline constexpr std::uint64_t kFlowNamespaceMask = 0x3ull << 62;
inline constexpr std::uint64_t kFlowDep = 0x1ull << 62;
inline constexpr std::uint64_t kFlowLoad = 0x2ull << 62;

/// FNV-1a based ids — pure functions of the array name (and offset), so the
/// real engine and the DES assign the *same* id to the same logical
/// dependency, which is what makes traces comparable across the two.
std::uint64_t flow_id_dep(std::string_view array);
std::uint64_t flow_id_load(std::string_view array, std::uint64_t offset);

// ---- graph ------------------------------------------------------------------

/// Blame categories, as they appear in Blame::by_category_us and
/// PathSegment::category.
inline constexpr const char* kBlameCompute = "compute";
inline constexpr const char* kBlameDemandIo = "demand-io";
inline constexpr const char* kBlamePrefetchIo = "prefetch-io";
inline constexpr const char* kBlameSchedWait = "sched-wait";
inline constexpr const char* kBlameStreamStall = "stream-stall";
/// Load time spent inside fault-injection machinery (retry backoff sleeps,
/// injected latency spikes — the cat "fault" spans): I/O that only exists
/// because something misbehaved, split out so a faulty run's blame shows
/// *why* its demand-io grew.
inline constexpr const char* kBlameFault = "fault";
/// Load time spent decompressing codec frames on the fetcher/io threads
/// (the cat "storage" name "decode" spans). This is the CPU half of the
/// compression trade: with the codec on, demand-io blame should shrink and
/// this category appear in its place — the causal evidence that bandwidth
/// was bought with decode cycles.
inline constexpr const char* kBlameDecode = "decode";

enum class NodeKind : std::uint8_t {
  Compute,  ///< 'X' cat "task"
  Load,     ///< synthesized from one load-flow instance (issue → last point)
  Wait,     ///< 'X' cat "sched" name "wait-inputs" (blocking-I/O ablation)
  Stall,    ///< 'X' cat "stream" name "credit-stall"
};

struct CausalNode {
  NodeKind kind = NodeKind::Compute;
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;
  int pid = -1;  ///< virtual node
  int tid = 0;
  std::int64_t task = -1;          ///< Compute: task id (span arg "task")
  std::vector<std::size_t> preds;  ///< indices into CausalGraph::nodes()

  [[nodiscard]] double dur_us() const { return end_us - start_us; }
};

/// One hop of the critical path, in source→sink order. A Load node may
/// contribute two segments (its demand and prefetch-shadowed portions); a
/// gap between a node and its critical predecessor contributes a
/// "sched-wait" segment attached to the downstream node.
struct PathSegment {
  std::size_t node = 0;  ///< index into nodes()
  std::string category;
  double us = 0.0;
};

struct Blame {
  std::map<std::string, double> by_category_us;

  [[nodiscard]] double total_us() const {
    double t = 0.0;
    for (const auto& [cat, us] : by_category_us) t += us;
    return t;
  }
  [[nodiscard]] double get(const std::string& category) const {
    const auto it = by_category_us.find(category);
    return it != by_category_us.end() ? it->second : 0.0;
  }
};

/// The reconstructed producer→consumer DAG. Edges come from three sources:
/// dep flows (producer task → consumer task), load flows (block load →
/// consumer task) and per-(pid,tid) program order between non-Load spans
/// (a worker lane runs one span at a time). Load nodes take no program
/// order: they are concurrent by design and are ordered by flows alone.
class CausalGraph {
 public:
  static CausalGraph build(const std::vector<ParsedEvent>& events);

  [[nodiscard]] const std::vector<CausalNode>& nodes() const { return nodes_; }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  /// max end − min start over all nodes (µs).
  [[nodiscard]] double makespan_us() const { return max_end_us_ - min_start_us_; }

  /// Longest-weighted path: walk back from the latest-ending node, at each
  /// step following the predecessor with the latest end. Returned in
  /// source→sink order.
  [[nodiscard]] std::vector<PathSegment> critical_path() const;

  /// Per-category time summed along critical_path().
  [[nodiscard]] Blame blame() const;

  /// Re-time the DAG with the duration of every node matching `category`
  /// scaled by `factor`; returns the predicted makespan (µs). Categories:
  /// "io" (Load + Wait), "compute", "stream" (credit stalls). Roots re-time
  /// to 0, so with factor ≤ 1 the prediction never exceeds makespan_us().
  [[nodiscard]] double what_if(std::string_view category, double factor) const;

  /// makespan_us() / what_if(category, factor) — the paper-style headline
  /// ("how much faster if storage were free?").
  [[nodiscard]] double speedup_if(std::string_view category, double factor) const {
    const double w = what_if(category, factor);
    return w > 0.0 ? makespan_us() / w : 0.0;
  }

 private:
  /// Demand/shadowed split of a Load node on the path: the part of its
  /// interval overlapped by compute on the same pid was hidden (prefetch-
  /// shadowed); the rest stalled the node (demand).
  [[nodiscard]] double shadowed_us(const CausalNode& n) const;
  /// Part of a Load node's interval overlapped by fault machinery (cat
  /// "fault" spans: retry backoff, injected latency) on the same pid.
  [[nodiscard]] double fault_us(const CausalNode& n) const;
  /// Part of a Load node's interval overlapped by codec decompression (cat
  /// "storage" name "decode" spans) on the same pid.
  [[nodiscard]] double decode_us(const CausalNode& n) const;

  std::vector<CausalNode> nodes_;
  /// Per-pid union of Compute intervals, merged and sorted (for the
  /// demand/shadowed split).
  std::map<int, std::vector<std::pair<double, double>>> compute_busy_;
  /// Per-pid union of cat "fault" span intervals (for the fault split).
  std::map<int, std::vector<std::pair<double, double>>> fault_busy_;
  /// Per-pid union of decode span intervals (for the decode split).
  std::map<int, std::vector<std::pair<double, double>>> decode_busy_;
  double min_start_us_ = 0.0;
  double max_end_us_ = 0.0;
};

/// Human-readable report (the dooc_tracecat --critical-path/--blame/
/// --what-if sections). `what_ifs` holds (category, factor) pairs.
std::string causal_report(const CausalGraph& graph, bool critical_path, bool blame,
                          const std::vector<std::pair<std::string, double>>& what_ifs);

}  // namespace dooc::obs::causal
