// The single steady clock behind every runtime measurement: trace event
// timestamps, Stopwatch, the I/O filters' latency accounting and the bench
// timing helpers all read TraceClock, so their numbers line up in one
// trace file without cross-clock skew.
#pragma once

#include <chrono>
#include <cstdint>

namespace dooc::obs {

class TraceClock {
 public:
  /// Nanoseconds since the process epoch (the first call in this process).
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
  }

  static double now_seconds() noexcept { return static_cast<double>(now_ns()) * 1e-9; }

 private:
  static std::chrono::steady_clock::time_point epoch() noexcept {
    static const auto e = std::chrono::steady_clock::now();
    return e;
  }
};

}  // namespace dooc::obs
