// Re-parse Chrome trace-event JSON produced by the trace layer (or by any
// compatible tool) back into events, plus the summary analytics behind
// `dooc_tracecat`: per-category time, I/O vs compute overlap fraction and
// slowest-task ranking. Lives in the library so the round-trip is testable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dooc::obs {

/// One parsed trace event. Times in microseconds (Chrome's unit).
struct ParsedEvent {
  std::string name;
  std::string cat;
  char phase = '?';  ///< 'X', 'i', 'C', 'M', 's', 't', 'f', ...
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  std::uint64_t flow_id = 0;  ///< "id" field of flow events ('s'/'t'/'f')
  std::map<std::string, double> args;
};

/// Parse a {"traceEvents":[...]} document (a bare top-level array is also
/// accepted). Throws std::runtime_error with position info on malformed
/// input. Non-numeric args are kept out of `args` (names/labels only
/// matter to viewers).
std::vector<ParsedEvent> parse_chrome_trace(const std::string& json);
std::vector<ParsedEvent> load_chrome_trace(const std::string& path);

struct TraceSummary {
  double wall_us = 0.0;  ///< max(ts+dur) - min(ts) over duration events
  /// Per-category busy time: union of that category's event intervals
  /// (overlapping spans within a category are not double-counted).
  std::map<std::string, double> category_busy_us;
  /// Sum of durations per category (double-counts concurrency; the ratio
  /// busy/sum is the category's parallelism).
  std::map<std::string, double> category_sum_us;
  std::map<std::string, std::uint64_t> category_events;
  double io_busy_us = 0.0;       ///< union of "io" + "storage" spans
  double compute_busy_us = 0.0;  ///< union of "task" spans
  double io_overlapped_us = 0.0; ///< io time with compute active too

  /// The paper's headline: the fraction of I/O hidden behind compute.
  [[nodiscard]] double overlap_fraction() const {
    return io_busy_us > 0.0 ? io_overlapped_us / io_busy_us : 0.0;
  }
};

/// Aggregate duration ('X') events. Categories containing "io" or equal to
/// "storage" count as I/O; category "task" counts as compute.
TraceSummary summarize(const std::vector<ParsedEvent>& events);

/// The `n` longest events of category `cat` (all categories if empty),
/// longest first.
std::vector<ParsedEvent> slowest(const std::vector<ParsedEvent>& events, std::size_t n,
                                 const std::string& cat = "task");

/// Distribution of one population of wait spans.
struct WaitStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
  double p99_us = 0.0;  ///< nearest-rank
  double max_us = 0.0;
};

/// How long staged tasks sat InputsPending — the completion-driven
/// engine's wait-for-data spans ("sched"/"inputs-pending"), broken out per
/// node and per task group (the solver phase carried as the span's
/// "group" arg).
struct WaitAnalysis {
  WaitStats overall;
  std::map<int, WaitStats> per_node;   ///< key: pid (virtual node)
  std::map<int, WaitStats> per_group;  ///< key: "group" arg; -1 = untagged
};

WaitAnalysis analyze_waits(const std::vector<ParsedEvent>& events,
                           const std::string& name = "inputs-pending");

/// Rebuild a MetricsSnapshot from one trace's metric samples:
///  - Counter ('C') samples: the latest sample of each (name, node) series
///    wins; offline we cannot tell a counter from a gauge, so these export
///    as gauges.
///  - "metrics_hist" Instant records (the cumulative histogram stream
///    MetricsSampler::flush_once emits): the latest record per field and
///    per bucket folds back into a Log2Histogram, so snapshots from
///    different trace files merge by summing bucket counts — quantiles of
///    the merge reflect the union of the populations.
MetricsSnapshot snapshot_from_trace(const std::vector<ParsedEvent>& events);

}  // namespace dooc::obs
