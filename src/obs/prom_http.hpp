// Tiny Prometheus scrape endpoint for the telemetry layer.
//
// PromHttpServer is a deliberately small blocking HTTP/1.0 server: one
// accept-loop thread, one request per connection, no keep-alive, no routing
// beyond "every GET returns the provider's text". That is exactly the shape
// a Prometheus scrape needs and keeps the obs layer free of any web
// machinery. The provider callback runs per request, so the body is always
// a fresh snapshot (registry, hub aggregate, ...).
//
// http_get / parse_prometheus are the matching client half, used by
// dooc_top and the tests — again raw sockets and a line parser, no deps.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace dooc::obs {

class PromHttpServer {
 public:
  /// Returns the text/plain body for one scrape (called per request, from
  /// the server thread — must be thread-safe against the producers).
  using Provider = std::function<std::string()>;

  /// Bind + listen on 127.0.0.1:port and start the accept thread. Port 0
  /// picks an ephemeral port — read it back with port(). Throws IoError if
  /// the socket cannot be bound.
  PromHttpServer(int port, Provider provider);
  ~PromHttpServer();

  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

  /// The bound port (resolved after construction, also for port 0).
  [[nodiscard]] int port() const noexcept { return port_; }
  /// Requests served so far.
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve();

  Provider provider_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

/// Blocking one-shot GET http://host:port/path, returning the response
/// body. Minimal HTTP/1.0 client for scraping our own endpoint (dooc_top,
/// tests). Throws IoError on connect/read failure or a non-200 status.
std::string http_get(const std::string& host, int port, const std::string& path = "/metrics",
                     int timeout_ms = 2000);

/// One sample line of Prometheus text exposition: `name{node="3"} 42`.
/// node is -1 when the sample carries no node label.
struct PromSample {
  std::string name;
  int node = -1;
  double value = 0.0;
};

/// Parse the subset of the Prometheus text format that to_prometheus()
/// emits (and that dooc_top needs): `# ...` comments are skipped, samples
/// keep their name, optional node="N" label and value. Unparseable lines
/// are skipped, not fatal — scrapes should degrade, not crash a dashboard.
std::vector<PromSample> parse_prometheus(const std::string& text);

}  // namespace dooc::obs
