// dooc::obs::telemetry — the live half of the observability subsystem.
//
// Post-mortem traces (trace.hpp) tell you a node was a straggler after the
// run ends; this layer makes the same signals visible *while jobs run*.
// Every producer — a doocd daemon, the in-process engine, or the DES under
// virtual time — periodically snapshots its metrics registry plus runtime
// gauges into a compact versioned TelemetryFrame. Frames stream to a
// TelemetryHub (over the net layer's Telemetry channel in a real cluster;
// directly in-process otherwise) which keeps a rolling per-node time
// series. A Watchdog polled over that series detects missed heartbeats,
// stalled completion queues and stragglers, and surfaces typed
// HealthEvents that flow into the trace (cat "health") and into whoever
// polls — the Coordinator uses them as dead-node suspicion ahead of TCP
// timeouts.
//
// Everything here is time-source agnostic: producers stamp frames and
// pollers pass "now" in nanoseconds, so the DES replays the exact same
// cadence and thresholds under virtual time — watchdog verdicts are
// deterministic and testable without wall-clock sleeps.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "obs/metrics.hpp"

namespace dooc::obs::telemetry {

/// Runtime policy, parsed from the DOOC_TELEMETRY environment variable
/// (same grammar style as DOOC_CODEC): a comma-separated key=value list
/// with an optional bare leading on|off token, e.g.
/// "on,interval=100,miss=3,zscore=2.5,port=9464".
struct TelemetryConfig {
  bool enabled = false;
  /// Frame cadence (and the watchdog's base unit), milliseconds.
  int interval_ms = 250;
  /// Heartbeat silence longer than miss*interval raises MissedHeartbeat.
  int miss_intervals = 3;
  /// No completed task for stall*interval with work in flight raises
  /// StalledQueue.
  int stall_intervals = 8;
  /// One-sided task-rate z-score below the cluster mean that flags a
  /// straggler (needs >= 3 reporting nodes with work in flight; an idle
  /// node is done, not slow).
  double straggler_zscore = 2.0;
  /// Median-based straggler test: rate_i * slow_factor < median rate.
  double slow_factor = 4.0;
  /// Exec-time straggler test: node p99 > p99_factor * the cluster's
  /// median per-node p99 of the "*.exec_us" histograms (needs >= 8
  /// samples per node) — tails are judged against everyone else's tail.
  double p99_factor = 8.0;
  /// Frames retained per node in the hub's rolling window.
  int history = 64;
  /// Prometheus scrape endpoint port (0 = disabled; tools pass it through
  /// --metrics-port as well).
  int metrics_port = 0;

  [[nodiscard]] std::uint64_t interval_ns() const noexcept {
    return static_cast<std::uint64_t>(interval_ms) * 1'000'000ull;
  }

  /// Parse the DOOC_TELEMETRY grammar. Throws InvalidArgument on unknown
  /// keys or out-of-range values. An empty spec is the disabled default; a
  /// non-empty spec enables telemetry unless it says "off".
  [[nodiscard]] static TelemetryConfig parse(const std::string& spec);
  /// DOOC_TELEMETRY from the environment (unset -> disabled default).
  [[nodiscard]] static TelemetryConfig from_env();
};

/// Per-job progress carried in a frame (coordinator/engine producers; a
/// plain daemon does not know job composition and leaves this empty).
struct JobProgress {
  std::uint32_t job = 0;
  std::uint64_t tasks_done = 0;
  std::uint64_t tasks_total = 0;
};

/// One node's periodic self-report: runtime scalars every consumer wants
/// cheap access to, plus the producer's full metrics-registry snapshot.
/// Versioned binary codec; decode() treats the payload as untrusted (it
/// arrives off a socket) and throws IoError on anything malformed before
/// allocating for it.
struct TelemetryFrame {
  static constexpr std::uint32_t kMagic = 0x544C4D46;  // "TLMF"
  static constexpr std::uint16_t kVersion = 1;

  std::int32_t node = -1;
  std::uint64_t seq = 0;
  std::uint64_t ts_ns = 0;  ///< producer clock: steady ns, or virtual ns (DES)
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_inflight = 0;  ///< queued + running on the producer
  std::uint64_t queue_depth = 0;     ///< executor/completion queue backlog
  std::uint64_t inflight_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t faults = 0;
  std::uint64_t trace_dropped = 0;  ///< live obs.trace_dropped_events value
  std::vector<JobProgress> jobs;
  MetricsSnapshot metrics;

  [[nodiscard]] double cache_hit_rate() const noexcept {
    const auto total = cache_hits + cache_misses;
    return total != 0 ? static_cast<double>(cache_hits) / static_cast<double>(total) : 0.0;
  }

  [[nodiscard]] DataBuffer encode() const;
  [[nodiscard]] static TelemetryFrame decode(const DataBuffer& payload);
};

/// Rolling per-node time series of frames plus arrival times. Thread-safe:
/// a transport recv loop adds while a scrape endpoint aggregates.
class TelemetryHub {
 public:
  explicit TelemetryHub(int history = 64) : history_(history > 0 ? history : 1) {}

  struct Series {
    std::deque<TelemetryFrame> frames;   ///< oldest -> newest, <= history
    std::uint64_t last_arrival_ns = 0;   ///< consumer clock (watchdog's "now")
  };

  void add(TelemetryFrame frame, std::uint64_t arrival_ns);

  /// Visit every node's series under the hub lock (watchdog, rendering).
  void for_each_series(const std::function<void(int, const Series&)>& fn) const;

  /// Latest frame per node (copies).
  [[nodiscard]] std::map<int, TelemetryFrame> latest() const;

  /// Cluster aggregate for the scrape endpoint / dooc_top: every node's
  /// latest frame.metrics merged, plus the frame scalars synthesized as
  /// "telemetry.*" entries and per-job progress as "jobs.j<id>.*".
  [[nodiscard]] MetricsSnapshot aggregate() const;

  [[nodiscard]] std::uint64_t frames_received() const;
  [[nodiscard]] int history() const noexcept { return history_; }

 private:
  mutable std::mutex mutex_;
  int history_;
  std::map<int, Series> series_;
  std::uint64_t frames_ = 0;
};

enum class HealthKind : std::uint8_t {
  MissedHeartbeat,  ///< silence longer than miss_intervals * interval
  StalledQueue,     ///< inflight work but no completions over the stall window
  Straggler,        ///< task rate or exec p99 far off the cluster's
  Recovered,        ///< a previously raised condition cleared
};

[[nodiscard]] const char* health_kind_name(HealthKind k) noexcept;

/// One typed verdict from the watchdog. `value` and `threshold` carry the
/// measurement that tripped (seconds of silence, rate, p99 factor...).
struct HealthEvent {
  HealthKind kind = HealthKind::MissedHeartbeat;
  int node = -1;
  int job = -1;  ///< -1 = node-level (no job attribution)
  std::uint64_t ts_ns = 0;
  double value = 0.0;
  double threshold = 0.0;
  std::string detail;

  [[nodiscard]] std::string to_text() const;
};

/// Emit a HealthEvent into the trace as an Instant event (cat "health",
/// pid = node, float args via the *_f64 convention). No-op when tracing is
/// off.
void emit_health_event(const HealthEvent& ev);

/// Pure, deterministic health detector over a TelemetryHub. poll() is
/// edge-triggered: a condition raises one event when it trips and one
/// Recovered when it clears; `suspected()` is the set of nodes with an
/// active MissedHeartbeat — the coordinator's dead-node suspicion.
class Watchdog {
 public:
  explicit Watchdog(TelemetryConfig config) : config_(config) {}

  /// Evaluate every condition at consumer time `now_ns` and return the
  /// events that newly tripped or cleared. Deterministic given the same
  /// hub contents and the same now.
  std::vector<HealthEvent> poll(const TelemetryHub& hub, std::uint64_t now_ns);

  [[nodiscard]] const std::set<int>& suspected() const noexcept { return suspected_; }
  [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }

 private:
  /// Condition keys: (node, HealthKind) -> currently active.
  void transition(std::vector<HealthEvent>& out, int node, HealthKind kind, bool active,
                  std::uint64_t now_ns, double value, double threshold, std::string detail);

  TelemetryConfig config_;
  std::map<std::pair<int, std::uint8_t>, bool> active_;
  std::set<int> suspected_;
};

/// In-process producer+consumer: a sampling thread that, every interval,
/// builds one frame per node from the process-wide metrics registry, feeds
/// its own hub, polls its own watchdog and emits HealthEvents into the
/// trace. This is how the single-process engine (and anything else that
/// only has the registry) gets live telemetry without a transport. RAII:
/// the thread stops on destruction after one final sample.
class LocalTelemetry {
 public:
  LocalTelemetry(TelemetryConfig config, int num_nodes, std::string source = "engine");
  ~LocalTelemetry();

  LocalTelemetry(const LocalTelemetry&) = delete;
  LocalTelemetry& operator=(const LocalTelemetry&) = delete;

  [[nodiscard]] const TelemetryHub& hub() const noexcept { return hub_; }
  /// Health events observed so far (copy; also emitted into the trace).
  [[nodiscard]] std::vector<HealthEvent> health_events() const;
  /// Prometheus text of the hub aggregate (scrape endpoint provider).
  [[nodiscard]] std::string prometheus_text() const;

  /// One sampling step at time now_ns (also what the thread runs). Public
  /// so tests can drive it deterministically without the thread.
  void sample_once(std::uint64_t now_ns);

  /// Build per-node frames from the process-wide registry: scalar fields
  /// resolve from the well-known metric names ("sched.tasks_executed",
  /// "sched.completion_queue_depth", "storage.inflight_bytes",
  /// "storage.cache_hit"/"cache_miss", "obs.trace_dropped_events"), the
  /// embedded snapshot carries that node's entries, and "jobs.tasks_done"
  /// (keyed by job id) becomes JobProgress on node 0's frame.
  [[nodiscard]] static std::vector<TelemetryFrame> frames_from_registry(int num_nodes,
                                                                        std::uint64_t seq,
                                                                        std::uint64_t ts_ns);

 private:
  void thread_main();

  TelemetryConfig config_;
  int num_nodes_;
  std::string source_;
  TelemetryHub hub_;
  Watchdog watchdog_;
  mutable std::mutex mutex_;
  std::vector<HealthEvent> events_;
  std::uint64_t seq_ = 0;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dooc::obs::telemetry
