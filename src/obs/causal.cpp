#include "obs/causal.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_map>

namespace dooc::obs::causal {

namespace {

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Sorted-merge of intervals into a disjoint ascending list.
std::vector<std::pair<double, double>> merge_intervals(
    std::vector<std::pair<double, double>> iv) {
  std::sort(iv.begin(), iv.end());
  std::vector<std::pair<double, double>> out;
  for (const auto& [s, e] : iv) {
    if (e <= s) continue;
    if (!out.empty() && s <= out.back().second) {
      out.back().second = std::max(out.back().second, e);
    } else {
      out.emplace_back(s, e);
    }
  }
  return out;
}

/// Overlap of [lo, hi) with a disjoint ascending interval list.
double overlap_with(double lo, double hi,
                    const std::vector<std::pair<double, double>>& merged) {
  double total = 0.0;
  for (const auto& [s, e] : merged) {
    if (s >= hi) break;
    const double a = std::max(lo, s);
    const double b = std::min(hi, e);
    if (b > a) total += b - a;
  }
  return total;
}

}  // namespace

std::uint64_t flow_id_dep(std::string_view array) {
  return kFlowDep | (fnv1a(array) & ~kFlowNamespaceMask);
}

std::uint64_t flow_id_load(std::string_view array, std::uint64_t offset) {
  std::uint64_t h = fnv1a(array);
  h ^= offset + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 1099511628211ull;
  return kFlowLoad | (h & ~kFlowNamespaceMask);
}

CausalGraph CausalGraph::build(const std::vector<ParsedEvent>& events) {
  CausalGraph g;

  // ---- span nodes -----------------------------------------------------------
  std::unordered_map<std::int64_t, std::size_t> task_node;
  std::map<int, std::vector<std::pair<double, double>>> fault_iv;
  std::map<int, std::vector<std::pair<double, double>>> decode_iv;
  for (const auto& ev : events) {
    if (ev.phase != 'X') continue;
    if (ev.cat == "fault") {
      // Retry-backoff / injected-latency intervals are not nodes of the DAG
      // (the enclosing load already is); they are remembered so Load-node
      // blame can attribute the slice of I/O time the fault machinery ate.
      fault_iv[ev.pid].emplace_back(ev.ts_us, ev.ts_us + ev.dur_us);
      continue;
    }
    if (ev.cat == "storage" && ev.name == "decode") {
      // Codec decompression on a fetcher/io thread: like fault spans, not a
      // DAG node (the enclosing load is) but remembered so Load-node blame
      // can show the CPU-for-bandwidth trade explicitly.
      decode_iv[ev.pid].emplace_back(ev.ts_us, ev.ts_us + ev.dur_us);
      continue;
    }
    CausalNode n;
    if (ev.cat == "task") {
      n.kind = NodeKind::Compute;
      const auto it = ev.args.find("task");
      if (it != ev.args.end()) n.task = static_cast<std::int64_t>(it->second);
    } else if (ev.cat == "sched" && ev.name == "wait-inputs") {
      n.kind = NodeKind::Wait;
    } else if (ev.cat == "stream" && ev.name == "credit-stall") {
      n.kind = NodeKind::Stall;
    } else {
      // Everything else ("inputs-pending" bookkeeping, raw storage/io
      // spans, ...) is descriptive, not causal: load flows already carry
      // the I/O structure, and double-counting them here would skew blame.
      continue;
    }
    n.name = ev.name;
    n.start_us = ev.ts_us;
    n.end_us = ev.ts_us + ev.dur_us;
    n.pid = ev.pid;
    n.tid = ev.tid;
    if (n.kind == NodeKind::Compute && n.task >= 0) task_node[n.task] = g.nodes_.size();
    g.nodes_.push_back(std::move(n));
  }

  // ---- flow instances -------------------------------------------------------
  struct Point {
    char ph = '?';
    double ts = 0.0;
    int pid = -1;
    int tid = 0;
    std::int64_t task = -1;  ///< the "task" arg (s: producer, f: consumer)
  };
  // Load flows never cross nodes (a node reads through its own storage
  // node), so they group by (id, pid) — two nodes fetching the same block
  // are two separate loads. Dep flows cross nodes by design: id only.
  std::map<std::pair<std::uint64_t, int>, std::vector<Point>> flows;
  for (const auto& ev : events) {
    if ((ev.phase != 's' && ev.phase != 't' && ev.phase != 'f') || ev.flow_id == 0) continue;
    Point p;
    p.ph = ev.phase;
    p.ts = ev.ts_us;
    p.pid = ev.pid;
    p.tid = ev.tid;
    const auto it = ev.args.find("task");
    if (it != ev.args.end()) p.task = static_cast<std::int64_t>(it->second);
    const bool load = (ev.flow_id & kFlowNamespaceMask) == kFlowLoad;
    flows[{ev.flow_id, load ? ev.pid : -1}].push_back(p);
  }

  // Edges must respect a strict order so the DAG cannot cycle even with
  // zero-duration nodes at equal (virtual) timestamps: pred must end by
  // succ's start AND come strictly earlier in (start, index) order.
  auto add_edge = [&](std::size_t pred, std::size_t succ) {
    if (pred == kNoNode || succ == kNoNode || pred == succ) return;
    const CausalNode& p = g.nodes_[pred];
    CausalNode& s = g.nodes_[succ];
    if (p.end_us > s.start_us) return;  // overlap (clock skew / nesting): drop
    if (p.start_us > s.start_us || (p.start_us == s.start_us && pred >= succ)) return;
    if (std::find(s.preds.begin(), s.preds.end(), pred) == s.preds.end()) {
      s.preds.push_back(pred);
    }
  };

  auto find_task = [&](std::int64_t t) -> std::size_t {
    const auto it = task_node.find(t);
    return it != task_node.end() ? it->second : kNoNode;
  };

  for (auto& [key, points] : flows) {
    const std::uint64_t id = key.first;
    // The same id recurs when a block is re-read after eviction; each 's'
    // opens a new instance. At equal ts, non-'s' points sort first so a
    // closing point binds to the earlier instance.
    std::stable_sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return (a.ph != 's') && (b.ph == 's');
    });
    const bool is_load = (id & kFlowNamespaceMask) == kFlowLoad;
    std::size_t i = 0;
    while (i < points.size()) {
      if (points[i].ph != 's') {
        ++i;  // orphan 't'/'f' (e.g. a resident read's delivery): no instance
        continue;
      }
      const std::size_t begin = i++;
      while (i < points.size() && points[i].ph != 's') ++i;
      // Instance = [begin, i).
      if (is_load) {
        CausalNode n;
        n.kind = NodeKind::Load;
        n.name = "load";
        n.pid = points[begin].pid;
        n.tid = points[begin].tid;
        n.start_us = points[begin].ts;
        // The 't' (delivery) point is when the data actually arrived; the
        // 'f' only links the consumer and may trail delivery (it fires when
        // the whole task turns Runnable). Fall back to 'f' when there is no
        // delivery point (e.g. a synthetic or foreign trace).
        double end_st = points[begin].ts, end_any = points[begin].ts;
        bool has_step = false;
        for (std::size_t k = begin; k < i; ++k) {
          end_any = std::max(end_any, points[k].ts);
          if (points[k].ph != 'f') end_st = std::max(end_st, points[k].ts);
          if (points[k].ph == 't') has_step = true;
        }
        n.end_us = has_step ? end_st : end_any;
        const std::size_t load_idx = g.nodes_.size();
        g.nodes_.push_back(std::move(n));
        for (std::size_t k = begin; k < i; ++k) {
          if (points[k].ph == 'f' && points[k].task >= 0) {
            add_edge(load_idx, find_task(points[k].task));
          }
        }
      } else {
        const std::size_t producer = points[begin].task >= 0
                                         ? find_task(points[begin].task)
                                         : kNoNode;
        for (std::size_t k = begin; k < i; ++k) {
          if (points[k].ph == 'f' && points[k].task >= 0) {
            add_edge(producer, find_task(points[k].task));
          }
        }
      }
    }
  }

  // ---- program order --------------------------------------------------------
  // A worker lane runs one span at a time: chain consecutive non-Load
  // nodes per (pid, tid). Nested spans (a credit stall inside a task) fail
  // the end<=start check inside add_edge and are simply not chained.
  std::map<std::pair<int, int>, std::vector<std::size_t>> lanes;
  for (std::size_t idx = 0; idx < g.nodes_.size(); ++idx) {
    if (g.nodes_[idx].kind == NodeKind::Load) continue;
    lanes[{g.nodes_[idx].pid, g.nodes_[idx].tid}].push_back(idx);
  }
  for (auto& [lane, idxs] : lanes) {
    std::sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
      if (g.nodes_[a].start_us != g.nodes_[b].start_us)
        return g.nodes_[a].start_us < g.nodes_[b].start_us;
      return a < b;
    });
    for (std::size_t k = 1; k < idxs.size(); ++k) add_edge(idxs[k - 1], idxs[k]);
  }

  // ---- extents and per-pid compute busy intervals ---------------------------
  if (!g.nodes_.empty()) {
    g.min_start_us_ = std::numeric_limits<double>::infinity();
    g.max_end_us_ = -std::numeric_limits<double>::infinity();
    std::map<int, std::vector<std::pair<double, double>>> busy;
    for (const auto& n : g.nodes_) {
      g.min_start_us_ = std::min(g.min_start_us_, n.start_us);
      g.max_end_us_ = std::max(g.max_end_us_, n.end_us);
      if (n.kind == NodeKind::Compute) busy[n.pid].emplace_back(n.start_us, n.end_us);
    }
    for (auto& [pid, iv] : busy) g.compute_busy_[pid] = merge_intervals(std::move(iv));
  }
  for (auto& [pid, iv] : fault_iv) g.fault_busy_[pid] = merge_intervals(std::move(iv));
  for (auto& [pid, iv] : decode_iv) g.decode_busy_[pid] = merge_intervals(std::move(iv));
  return g;
}

double CausalGraph::shadowed_us(const CausalNode& n) const {
  const auto it = compute_busy_.find(n.pid);
  if (it == compute_busy_.end()) return 0.0;
  return overlap_with(n.start_us, n.end_us, it->second);
}

double CausalGraph::fault_us(const CausalNode& n) const {
  const auto it = fault_busy_.find(n.pid);
  if (it == fault_busy_.end()) return 0.0;
  return overlap_with(n.start_us, n.end_us, it->second);
}

double CausalGraph::decode_us(const CausalNode& n) const {
  const auto it = decode_busy_.find(n.pid);
  if (it == decode_busy_.end()) return 0.0;
  return overlap_with(n.start_us, n.end_us, it->second);
}

std::vector<PathSegment> CausalGraph::critical_path() const {
  std::vector<PathSegment> path;
  if (nodes_.empty()) return path;
  std::size_t cur = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].end_us > nodes_[cur].end_us) cur = i;
  }
  // Walk back (the edge order invariant makes cycles impossible; the hop
  // bound is belt and braces).
  for (std::size_t hops = 0; hops <= nodes_.size(); ++hops) {
    const CausalNode& n = nodes_[cur];
    if (n.kind == NodeKind::Load) {
      // Fault machinery (backoff sleeps, injected latency) takes precedence
      // over the demand/shadowed split: that slice of the load exists only
      // because something misbehaved. Decode (codec decompression) comes
      // next — CPU the compression trade spent inside this load. The splits
      // may overlap (a backoff or a decode can be compute-shadowed), so the
      // demand remainder is clamped at zero.
      const double fl = fault_us(n);
      const double dec = decode_us(n);
      const double sh = shadowed_us(n);
      const double demand = std::max(0.0, n.dur_us() - sh - fl - dec);
      if (fl > 0.0) path.push_back({cur, kBlameFault, fl});
      if (dec > 0.0) path.push_back({cur, kBlameDecode, dec});
      if (sh > 0.0) path.push_back({cur, kBlamePrefetchIo, sh});
      if (demand > 0.0) path.push_back({cur, kBlameDemandIo, demand});
    } else if (n.dur_us() > 0.0) {
      const char* cat = n.kind == NodeKind::Compute   ? kBlameCompute
                        : n.kind == NodeKind::Wait    ? kBlameDemandIo
                                                      : kBlameStreamStall;
      path.push_back({cur, cat, n.dur_us()});
    }
    std::size_t best = kNoNode;
    for (const std::size_t p : n.preds) {
      if (best == kNoNode || nodes_[p].end_us > nodes_[best].end_us) best = p;
    }
    if (best == kNoNode) {
      const double gap = n.start_us - min_start_us_;
      if (gap > 0.0) path.push_back({cur, kBlameSchedWait, gap});
      break;
    }
    const double gap = n.start_us - nodes_[best].end_us;
    if (gap > 0.0) path.push_back({cur, kBlameSchedWait, gap});
    cur = best;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Blame CausalGraph::blame() const {
  Blame b;
  for (const auto& seg : critical_path()) b.by_category_us[seg.category] += seg.us;
  return b;
}

double CausalGraph::what_if(std::string_view category, double factor) const {
  const auto matches = [&](NodeKind k) {
    if (category == "io") return k == NodeKind::Load || k == NodeKind::Wait;
    if (category == "compute") return k == NodeKind::Compute;
    if (category == "stream") return k == NodeKind::Stall;
    return false;
  };
  std::vector<std::size_t> order(nodes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (nodes_[a].start_us != nodes_[b].start_us)
      return nodes_[a].start_us < nodes_[b].start_us;
    return a < b;
  });
  // Retiming: every root starts at 0, everything else as soon as its
  // predecessors allow. Scaling is monotone, so with factor <= 1 the
  // result cannot exceed the measured makespan.
  std::vector<double> new_end(nodes_.size(), 0.0);
  double makespan = 0.0;
  for (const std::size_t i : order) {
    double start = 0.0;
    for (const std::size_t p : nodes_[i].preds) start = std::max(start, new_end[p]);
    const double scale = matches(nodes_[i].kind) ? factor : 1.0;
    new_end[i] = start + nodes_[i].dur_us() * scale;
    makespan = std::max(makespan, new_end[i]);
  }
  return makespan;
}

std::string causal_report(const CausalGraph& graph, bool critical_path, bool blame,
                          const std::vector<std::pair<std::string, double>>& what_ifs) {
  std::string out;
  char buf[256];
  const auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  if (graph.empty()) return "causal: no task/flow events in trace\n";
  const auto path = graph.critical_path();
  if (critical_path) {
    out += "== critical path ==\n";
    double covered = 0.0;
    for (const auto& seg : path) covered += seg.us;
    line("makespan %.3f ms, path explains %.3f ms over %zu segment(s)\n",
         graph.makespan_us() / 1e3, covered / 1e3, path.size());
    line("%12s %12s  %-14s %s\n", "start_ms", "dur_ms", "category", "node");
    for (const auto& seg : path) {
      const auto& n = graph.nodes()[seg.node];
      line("%12.3f %12.3f  %-14s %s (pid %d tid %d%s)\n", n.start_us / 1e3, seg.us / 1e3,
           seg.category.c_str(), n.name.c_str(), n.pid, n.tid,
           n.task >= 0 ? (" task " + std::to_string(n.task)).c_str() : "");
    }
  }
  if (blame) {
    const Blame b = graph.blame();
    out += "== blame (critical path) ==\n";
    for (const auto& [cat, us] : b.by_category_us) {
      line("%-14s %12.3f ms  %5.1f%%\n", cat.c_str(), us / 1e3,
           b.total_us() > 0.0 ? 100.0 * us / b.total_us() : 0.0);
    }
  }
  for (const auto& [cat, factor] : what_ifs) {
    const double predicted = graph.what_if(cat, factor);
    line("what-if %s x%g: predicted makespan %.3f ms (speedup %.2fx over %.3f ms)\n",
         cat.c_str(), factor, predicted / 1e3,
         predicted > 0.0 ? graph.makespan_us() / predicted : 0.0,
         graph.makespan_us() / 1e3);
  }
  return out;
}

}  // namespace dooc::obs::causal
