#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace dooc::obs {

// ---- string interning -------------------------------------------------------

namespace {

struct InternTable {
  std::shared_mutex mutex;
  std::unordered_map<std::string_view, std::uint32_t> ids;
  std::deque<std::string> strings;  // deque: stable addresses for the views

  InternTable() {
    strings.emplace_back("");  // id 0 = empty
    ids.emplace(strings.back(), 0);
  }
};

InternTable& intern_table() {
  // Leaked: events may outlive statics. Construction (which seeds id 0) is
  // serialized by the magic-static initialization guard.
  static InternTable* t = new InternTable;
  return *t;
}

}  // namespace

std::uint32_t intern(std::string_view s) {
  InternTable& t = intern_table();
  {
    std::shared_lock lock(t.mutex);
    auto it = t.ids.find(s);
    if (it != t.ids.end()) return it->second;
  }
  std::unique_lock lock(t.mutex);
  auto it = t.ids.find(s);
  if (it != t.ids.end()) return it->second;
  t.strings.emplace_back(s);
  const auto id = static_cast<std::uint32_t>(t.strings.size() - 1);
  t.ids.emplace(t.strings.back(), id);
  return id;
}

const std::string& interned(std::uint32_t id) {
  InternTable& t = intern_table();
  std::shared_lock lock(t.mutex);
  return t.strings.at(id);
}

std::size_t intern_count() {
  InternTable& t = intern_table();
  std::shared_lock lock(t.mutex);
  return t.strings.size();
}

std::int32_t current_thread_lane() {
  static std::atomic<std::int32_t> next{0};
  thread_local const std::int32_t lane = next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

// ---- session ----------------------------------------------------------------

struct TraceSession::Impl {
  using Ring = EventRing<Event>;

  std::mutex mutex;  ///< guards rings registry, central buffer, path (consumer side)
  std::vector<std::shared_ptr<Ring>> rings;
  std::vector<Event> central;  ///< drained-but-not-yet-exported events
  std::string path;

  std::shared_ptr<Ring> ring_for_this_thread() {
    thread_local std::shared_ptr<Ring> mine;
    if (!mine) {
      mine = std::make_shared<Ring>();
      std::lock_guard lock(mutex);
      rings.push_back(mine);
    }
    return mine;
  }
};

TraceSession& TraceSession::instance() {
  static TraceSession* s = new TraceSession;
  return *s;
}

TraceSession::Impl& TraceSession::impl() {
  static Impl* i = new Impl;
  return *i;
}

void TraceSession::start(std::string path) {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  // Discard any stale events from before this session.
  std::vector<Event> scratch;
  for (auto& r : im.rings) r->drain(scratch);
  im.central.clear();
  im.path = path_ = std::move(path);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

std::vector<Event> TraceSession::stop() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
  Impl& im = impl();
  std::vector<Event> events;
  std::string path;
  TraceMeta meta;
  {
    std::lock_guard lock(im.mutex);
    events.swap(im.central);
    for (auto& r : im.rings) {
      r->drain(events);
      meta.dropped_events += r->dropped();
      meta.ring_capacity = r->capacity();
    }
    path = im.path;
    im.path.clear();
  }
  meta.interned_strings = intern_count();
  if (meta.ring_capacity == 0) meta.ring_capacity = Impl::Ring().capacity();
  if (meta.dropped_events > 0) {
    // The exported file says so too (dooc_trace_stats metadata record), but
    // a consumer eyeballing Perfetto will not read metadata — warn loudly.
    std::fprintf(stderr,
                 "obs: trace is INCOMPLETE: %llu event(s) dropped on full rings "
                 "(ring capacity %llu)\n",
                 static_cast<unsigned long long>(meta.dropped_events),
                 static_cast<unsigned long long>(meta.ring_capacity));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts_ns < b.ts_ns; });
  if (!path.empty()) {
    // A bad output path must not abort the run (stop() may execute from an
    // atexit handler, where an escaping exception calls std::terminate).
    try {
      write_chrome_trace(path, events, &meta);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "obs: trace not written: %s\n", e.what());
    }
  }
  return events;
}

void TraceSession::init_from_env() {
  static std::once_flag once;
  std::call_once(once, [this] {
    if (const char* p = std::getenv("DOOC_TRACE"); p != nullptr && *p != '\0') {
      start(p);
      // Nobody will call stop() for us: flush the trace when the process
      // exits (rings are leaked singletons, so draining here is safe).
      std::atexit([] {
        auto& session = TraceSession::instance();
        if (session.active()) (void)session.stop();
      });
    }
  });
}

std::uint64_t TraceSession::dropped() const {
  Impl& im = const_cast<TraceSession*>(this)->impl();
  std::lock_guard lock(im.mutex);
  std::uint64_t n = 0;
  for (const auto& r : im.rings) n += r->dropped();
  return n;
}

void TraceSession::emit(const Event& ev) {
  if (!trace_enabled()) return;
  Impl& im = impl();
  auto ring = im.ring_for_this_thread();
  if (ring->try_push(ev)) return;
  // Ring full: become the consumer of our own ring (serialized with the
  // session drain by the same mutex), flush into the central buffer, retry.
  std::lock_guard lock(im.mutex);
  ring->drain(im.central);
  if (!ring->try_push(ev)) {
    ring->note_dropped();
    // Mirror the loss into the metrics registry so a live scrape can alert
    // on trace incompleteness mid-run (the end-of-run dooc_trace_stats
    // metadata is too late for an operator).
    static Counter& dropped = Metrics::instance().counter("obs.trace_dropped_events");
    dropped.add();
  }
}

namespace {

/// Pulls DOOC_TRACE from the environment once per process, as soon as any
/// binary linking the instrumentation starts up.
const bool g_env_hook = [] {
  TraceSession::instance().init_from_env();
  return true;
}();

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event_json(std::string& out, const Event& ev) {
  char buf[160];
  out += "{\"name\":\"";
  json_escape(out, interned(ev.name));
  out += "\",\"cat\":\"";
  json_escape(out, interned(ev.cat));
  out += "\",\"ph\":\"";
  switch (ev.phase) {
    case Phase::Complete: out += 'X'; break;
    case Phase::Instant: out += 'i'; break;
    case Phase::Counter: out += 'C'; break;
    case Phase::FlowStart: out += 's'; break;
    case Phase::FlowStep: out += 't'; break;
    case Phase::FlowEnd: out += 'f'; break;
  }
  out += '"';
  // Chrome expects microseconds; keep ns precision with 3 decimals.
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", static_cast<double>(ev.ts_ns) / 1e3);
  out += buf;
  if (ev.phase == Phase::Complete) {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", static_cast<double>(ev.dur_ns) / 1e3);
    out += buf;
  }
  if (ev.phase == Phase::Instant) out += ",\"s\":\"t\"";
  if (ev.phase == Phase::FlowStart || ev.phase == Phase::FlowStep ||
      ev.phase == Phase::FlowEnd) {
    // 64-bit correlation ids exceed JSON double precision: ship as string.
    std::snprintf(buf, sizeof(buf), ",\"id\":\"%llu\"",
                  static_cast<unsigned long long>(ev.id));
    out += buf;
    // Bind the arrowhead to the enclosing slice, not the next one.
    if (ev.phase == Phase::FlowEnd) out += ",\"bp\":\"e\"";
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%d", ev.pid, ev.tid);
  out += buf;
  if (ev.nargs > 0) {
    out += ",\"args\":{";
    for (std::uint8_t i = 0; i < ev.nargs; ++i) {
      if (i > 0) out += ',';
      out += '"';
      // Arg values are u64 in the POD record. The "_f64" name suffix marks
      // a double bit-cast into that slot: strip the suffix from the JSON
      // key and print the float with full round-trip precision.
      const std::string& arg_name = interned(ev.arg_name[i]);
      const bool is_f64 =
          arg_name.size() > 4 && arg_name.compare(arg_name.size() - 4, 4, "_f64") == 0;
      if (is_f64) {
        json_escape(out, arg_name.substr(0, arg_name.size() - 4));
        double v;
        std::memcpy(&v, &ev.arg_val[i], sizeof(v));
        std::snprintf(buf, sizeof(buf), "\":%.17g", v);
      } else {
        json_escape(out, arg_name);
        std::snprintf(buf, sizeof(buf), "\":%llu",
                      static_cast<unsigned long long>(ev.arg_val[i]));
      }
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string chrome_trace_json(const std::vector<Event>& events, const TraceMeta* meta) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  if (meta != nullptr) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"dooc_trace_stats\",\"ph\":\"M\",\"pid\":-1,\"tid\":0,"
                  "\"args\":{\"dropped_events\":%llu,\"ring_capacity\":%llu,"
                  "\"interned_strings\":%llu}}",
                  static_cast<unsigned long long>(meta->dropped_events),
                  static_cast<unsigned long long>(meta->ring_capacity),
                  static_cast<unsigned long long>(meta->interned_strings));
    out += buf;
    first = false;
  }
  // Name the process lanes: pid -1 is runtime-wide, pid n is virtual node n.
  std::vector<std::int32_t> pids;
  for (const auto& ev : events) pids.push_back(ev.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (std::int32_t pid : pids) {
    if (!first) out += ",\n";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                  "\"args\":{\"name\":\"%s%d\"}}",
                  pid, pid < 0 ? "runtime" : "node", pid < 0 ? 0 : pid);
    out += buf;
  }
  for (const auto& ev : events) {
    if (!first) out += ",\n";
    first = false;
    append_event_json(out, ev);
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path, const std::vector<Event>& events,
                        const TraceMeta* meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw std::runtime_error("cannot open trace output '" + path + "'");
  const std::string json = chrome_trace_json(events, meta);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace dooc::obs
