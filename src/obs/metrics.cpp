#include "obs/metrics.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "obs/trace.hpp"

namespace dooc::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map onto
/// underscores under a "dooc_" prefix ("sched.tasks_parked" →
/// "dooc_sched_tasks_parked").
std::string prom_name(const std::string& name) {
  std::string out = "dooc_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_labels(int node) {
  return node >= 0 ? "{node=\"" + std::to_string(node) + "\"}" : std::string();
}

}  // namespace

// ---- snapshot ---------------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [key, in] : other.entries) {
    auto [it, fresh] = entries.try_emplace(key, in);
    if (fresh) continue;
    Entry& mine = it->second;
    switch (in.kind) {
      case MetricKind::Counter: mine.count += in.count; break;
      case MetricKind::Gauge:
        if (in.value != 0.0) mine.value = in.value;
        break;
      case MetricKind::Histogram: mine.hist.merge(in.hist); break;
    }
  }
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[256];
  for (const auto& [key, e] : entries) {
    std::string label = key.name;
    if (key.node >= 0) label += "[node" + std::to_string(key.node) + "]";
    switch (e.kind) {
      case MetricKind::Counter:
        std::snprintf(buf, sizeof(buf), "%-44s counter  %llu\n", label.c_str(),
                      static_cast<unsigned long long>(e.count));
        break;
      case MetricKind::Gauge:
        std::snprintf(buf, sizeof(buf), "%-44s gauge    %.6g\n", label.c_str(), e.value);
        break;
      case MetricKind::Histogram:
        std::snprintf(buf, sizeof(buf),
                      "%-44s hist     n=%llu mean=%.3g p50=%.3g p99=%.3g max=%.3g\n",
                      label.c_str(), static_cast<unsigned long long>(e.hist.stats().count()),
                      e.hist.stats().mean(), e.hist.quantile(0.50), e.hist.quantile(0.99),
                      e.hist.stats().max());
        break;
    }
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  char buf[256];
  std::string last_name;
  // entries is ordered by (name, node): one TYPE header per name, then the
  // per-node samples in node order — stable across runs by construction.
  for (const auto& [key, e] : entries) {
    const std::string name = prom_name(key.name);
    const std::string labels = prom_labels(key.node);
    if (key.name != last_name) {
      const char* type = e.kind == MetricKind::Counter   ? "counter"
                         : e.kind == MetricKind::Gauge   ? "gauge"
                                                         : "summary";
      out += "# TYPE " + name + " " + type + "\n";
      last_name = key.name;
    }
    switch (e.kind) {
      case MetricKind::Counter:
        std::snprintf(buf, sizeof(buf), "%s%s %llu\n", name.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(e.count));
        out += buf;
        break;
      case MetricKind::Gauge:
        std::snprintf(buf, sizeof(buf), "%s%s %.9g\n", name.c_str(), labels.c_str(), e.value);
        out += buf;
        break;
      case MetricKind::Histogram: {
        const std::string node_label = key.node >= 0
                                           ? "node=\"" + std::to_string(key.node) + "\","
                                           : std::string();
        const auto& st = e.hist.stats();
        for (const double q : {0.5, 0.99}) {
          std::snprintf(buf, sizeof(buf), "%s{%squantile=\"%g\"} %.9g\n", name.c_str(),
                        node_label.c_str(), q, e.hist.quantile(q));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_sum%s %.9g\n", name.c_str(), labels.c_str(),
                      st.mean() * static_cast<double>(st.count()));
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_count%s %llu\n", name.c_str(), labels.c_str(),
                      static_cast<unsigned long long>(st.count()));
        out += buf;
        break;
      }
    }
  }
  return out;
}

// ---- sampler ----------------------------------------------------------------

namespace {

/// One Instant record of the "metrics_hist" stream (see flush_once).
void emit_hist_record(std::uint32_t name, int node, std::uint32_t a0, std::uint64_t v0,
                      std::uint32_t a1, std::uint64_t v1, std::uint32_t a2, std::uint64_t v2) {
  Event ev;
  ev.phase = Phase::Instant;
  ev.cat = intern("metrics_hist");
  ev.name = name;
  ev.pid = node;
  ev.ts_ns = TraceClock::now_ns();
  ev.nargs = 3;
  ev.arg_name[0] = a0;
  ev.arg_val[0] = v0;
  ev.arg_name[1] = a1;
  ev.arg_val[1] = v1;
  ev.arg_name[2] = a2;
  ev.arg_val[2] = v2;
  TraceSession::instance().emit(ev);
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

void MetricsSampler::flush_once() {
  if (!trace_enabled()) return;
  const MetricsSnapshot snap = Metrics::instance().snapshot();
  for (const auto& [key, e] : snap.entries) {
    if (e.kind == MetricKind::Histogram) {
      // Histograms are not a single time series; export their cumulative
      // state as Instant records (cat "metrics_hist") that a reader folds
      // back into a Log2Histogram: one stats record for the counts and
      // extrema, one for the moments, one per non-empty bucket. Latest
      // record per field wins on reconstruction, so repeated flushes are
      // idempotent.
      const std::uint32_t name = intern(key.name);
      const auto& st = e.hist.stats();
      emit_hist_record(name, key.node, intern("count"), st.count(), intern("min_f64"),
                       f64_bits(st.min()), intern("max_f64"), f64_bits(st.max()));
      emit_hist_record(name, key.node, intern("sum_f64"), f64_bits(st.sum()),
                       intern("mean_f64"), f64_bits(st.mean()), intern("m2_f64"),
                       f64_bits(st.m2()));
      for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
        const std::uint64_t c = e.hist.bucket(static_cast<std::size_t>(b));
        if (c == 0) continue;
        emit_hist_record(name, key.node, intern("bucket"), static_cast<std::uint64_t>(b),
                         intern("bcount"), c, intern("n"), st.count());
      }
      continue;
    }
    const double v = e.kind == MetricKind::Counter ? static_cast<double>(e.count) : e.value;
    emit_counter(intern("metrics"), intern(key.name), key.node,
                 v > 0.0 ? static_cast<std::uint64_t>(v) : 0);
  }
}

MetricsSampler::MetricsSampler(std::chrono::milliseconds interval) {
  thread_ = std::thread([this, interval] {
    std::unique_lock lock(mutex_);
    while (!stop_) {
      lock.unlock();
      flush_once();
      lock.lock();
      cv_.wait_for(lock, interval, [this] { return stop_; });
    }
  });
}

MetricsSampler::~MetricsSampler() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  flush_once();  // final sample so the series reaches the end of the run
}

// ---- registry ---------------------------------------------------------------

struct Metrics::Slot {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Metrics::Impl {
  mutable std::mutex mutex;
  std::map<MetricsSnapshot::Key, Slot> slots;
};

Metrics& Metrics::instance() {
  static Metrics* m = new Metrics;  // leaked: instrumented threads may outlive statics
  return *m;
}

Metrics::Impl& Metrics::impl() const {
  static Impl* i = new Impl;
  return *i;
}

Metrics::Slot& Metrics::slot(const std::string& name, int node, MetricKind kind) {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  auto [it, fresh] = im.slots.try_emplace(MetricsSnapshot::Key{name, node});
  Slot& s = it->second;
  if (fresh) {
    s.kind = kind;
    switch (kind) {
      case MetricKind::Counter: s.counter = std::make_unique<Counter>(); break;
      case MetricKind::Gauge: s.gauge = std::make_unique<Gauge>(); break;
      case MetricKind::Histogram: s.histogram = std::make_unique<Histogram>(); break;
    }
  } else if (s.kind != kind) {
    throw std::logic_error("metric '" + name + "' re-registered with a different kind");
  }
  return s;
}

Counter& Metrics::counter(const std::string& name, int node) {
  return *slot(name, node, MetricKind::Counter).counter;
}

Gauge& Metrics::gauge(const std::string& name, int node) {
  return *slot(name, node, MetricKind::Gauge).gauge;
}

Histogram& Metrics::histogram(const std::string& name, int node) {
  return *slot(name, node, MetricKind::Histogram).histogram;
}

MetricsSnapshot Metrics::snapshot() const {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  MetricsSnapshot snap;
  for (const auto& [key, s] : im.slots) {
    MetricsSnapshot::Entry e;
    e.kind = s.kind;
    switch (s.kind) {
      case MetricKind::Counter: e.count = s.counter->get(); break;
      case MetricKind::Gauge: e.value = s.gauge->get(); break;
      case MetricKind::Histogram: e.hist = s.histogram->get(); break;
    }
    snap.entries.emplace(key, std::move(e));
  }
  return snap;
}

void Metrics::reset() {
  Impl& im = impl();
  std::lock_guard lock(im.mutex);
  for (auto& [key, s] : im.slots) {
    switch (s.kind) {
      case MetricKind::Counter: s.counter->reset(); break;
      case MetricKind::Gauge: s.gauge->reset(); break;
      case MetricKind::Histogram: s.histogram->reset(); break;
    }
  }
}

}  // namespace dooc::obs
